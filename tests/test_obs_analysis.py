"""Trace analytics: critical paths, breakdowns, diffs — and determinism.

The analysis module is the read side of PR 7's tracing: every function
is a pure map from span records to a report, so these tests pin three
things: the *numbers* (exact self/child attribution on hand-built span
trees), the *robustness* (partial traces from killed workers analyze
without raising), and the *determinism* (repeated analysis of the same
trace — including the committed BENCH trace — is byte-identical JSON).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exec import RenderExecutor
from repro.exec.frames import FrameRenderError
from repro.exec.worker import CRASH_ENV
from repro.obs import ObsContext, chrome_trace
from repro.obs.analysis import (
    KERNEL_STAGES,
    analyze,
    critical_path,
    diff_analyses,
    events_from_trace,
    lane_breakdown,
    load_trace,
    occupancy_timeline,
    queue_depth_timeline,
    records_from_chrome_trace,
    stage_breakdown,
)
from repro.obs.trace import VIRTUAL, WALL
from repro.serve.trajectories import RenderJob, make_trajectory

REPO_ROOT = Path(__file__).resolve().parent.parent


def span(sid, parent, name, lane, t0, dur, clock=WALL, **attrs):
    return {
        "id": sid,
        "parent": parent,
        "name": name,
        "lane": lane,
        "clock": clock,
        "t0_ms": float(t0),
        "dur_ms": None if dur is None else float(dur),
        "attrs": attrs,
    }


def tree():
    """request > job > two frames; the later frame carries kernel stages.

    frame s4 ends at 195 vs s3's 152, so it is the job's blocking child;
    inside it blend dominates.  Numbers chosen for exact attribution:
    request self = 100 - 98 = 2, job self = 98 - (50 + 40) = 8,
    frame s4 self = 40 - (2 + 1 + 35) = 2.
    """
    return [
        span("s1", None, "request", "main", 100.0, 100.0),
        span("s2", "s1", "job", "main", 101.0, 98.0),
        span("s3", "s2", "frame", "main", 102.0, 50.0),
        span("s4", "s2", "frame", "main", 155.0, 40.0),
        span("s5", "s4", "blend", "main", 156.0, 35.0),
        span("s6", "s4", "project", "main", 155.2, 2.0),
        span("s7", "s4", "pair_build", "main", 155.5, 1.0),
    ]


def quick_job(num_frames=2, **kwargs) -> RenderJob:
    return RenderJob(
        "train", make_trajectory("orbit", num_frames=num_frames), quick=True, **kwargs
    )


class TestCriticalPath:
    def test_blocking_chain_and_exact_attribution(self):
        path = critical_path(tree())
        assert path["root"] == "s1" and path["root_name"] == "request"
        assert [s["name"] for s in path["steps"]] == [
            "request", "job", "frame", "blend",
        ]
        assert path["leaf"] == "blend"
        assert path["total_ms"] == 100.0
        self_ms = {s["name"]: s["self_ms"] for s in path["steps"]}
        assert self_ms == {"request": 2.0, "job": 8.0, "frame": 2.0, "blend": 35.0}
        # t0 is rebased to the trace start; errors are absent here.
        assert path["steps"][0]["t0_ms"] == 0.0
        assert all(s["error"] is None for s in path["steps"])

    def test_descends_into_blocking_child_not_longest(self):
        # s3 (dur 50) is longer than s4 (dur 40) but s4 ends later — the
        # walk must follow end times, not durations.
        steps = critical_path(tree())["steps"]
        frame_step = steps[2]
        assert frame_step["dur_ms"] == 40.0

    def test_longest_request_root_wins(self):
        records = tree() + [span("s8", None, "request", "main", 0.0, 10.0)]
        assert critical_path(records)["root"] == "s1"

    def test_no_wall_spans_yields_null_root(self):
        virtual_only = [span("v1", None, "request", "scheduler", 0, 5, clock=VIRTUAL)]
        for records in ([], virtual_only):
            path = critical_path(records)
            assert path["root"] is None and path["steps"] == []

    def test_error_annotated_childless_request_is_one_step_path(self):
        records = [
            span("s1", None, "request", "worker-1", 0.0, 30.0,
                 error="worker process died", frame=1),
        ]
        path = critical_path(records)
        assert [s["name"] for s in path["steps"]] == ["request"]
        assert path["steps"][0]["error"] == "worker process died"
        assert path["leaf"] == "request"


class TestStageBreakdown:
    def test_aggregates_and_frame_attribution(self):
        report = stage_breakdown(tree())
        frame = report["stages"]["frame"]
        assert frame["count"] == 2
        assert frame["total_ms"] == 90.0
        assert frame["p50_ms"] == 45.0  # median of (40, 50)
        assert frame["max_ms"] == 50.0
        # self: s3 has no children (50), s4 loses its stages (40-38=2).
        assert frame["self_ms"] == 52.0
        attribution = report["frame_attribution"]
        assert attribution["frame_ms"] == 90.0
        assert attribution["kernel_stage_ms"] == 38.0
        assert attribution["per_stage"] == {
            "project": 2.0, "pair_build": 1.0, "blend": 35.0,
        }
        assert attribution["attributed_fraction"] == round(38.0 / 90.0, 6)

    def test_empty_trace_attributes_nothing(self):
        report = stage_breakdown([])
        assert report["stages"] == {}
        assert report["frame_attribution"]["attributed_fraction"] == 0.0


class TestLaneBreakdown:
    def test_overlapping_spans_union_not_sum(self):
        records = [
            span("a", None, "request", "worker-0", 0.0, 10.0),
            span("b", None, "request", "worker-0", 5.0, 10.0),  # overlaps a
            span("c", None, "request", "worker-1", 0.0, 5.0),
        ]
        report = lane_breakdown(records)
        assert report["window_ms"] == 15.0
        assert report["lanes"]["worker-0"]["busy_ms"] == 15.0  # union of [0,15]
        assert report["lanes"]["worker-0"]["utilization"] == 1.0
        assert report["lanes"]["worker-1"]["busy_ms"] == 5.0
        assert report["lanes"]["worker-1"]["utilization"] == round(5 / 15, 6)

    def test_empty(self):
        assert lane_breakdown([]) == {"window_ms": 0.0, "lanes": {}}


class TestTimelines:
    def test_worker_occupancy_counts_concurrent_units(self):
        records = [
            span("a", None, "request", "worker-0", 0.0, 10.0),
            span("b", None, "request", "worker-1", 5.0, 10.0),
        ]
        timeline = occupancy_timeline(records)
        assert timeline["max"] == 2
        # 5 ms at depth 1, 5 ms at depth 2, 5 ms at depth 1 over 15 ms.
        assert timeline["mean"] == round((5 * 1 + 5 * 2 + 5 * 1) / 15.0, 6)
        assert timeline["samples"][0] == [0.0, 1]

    def test_sequential_falls_back_to_root_requests(self):
        timeline = occupancy_timeline(tree())
        assert timeline["max"] == 1

    def test_queue_depth_from_virtual_queue_wait_spans(self):
        records = [
            span("q1", None, "queue_wait", "scheduler", 0.0, 10.0, clock=VIRTUAL),
            span("q2", None, "queue_wait", "scheduler", 5.0, 10.0, clock=VIRTUAL),
        ]
        timeline = queue_depth_timeline(records)
        assert timeline["max"] == 2
        assert timeline["samples"][-1] == [15.0, 0]

    def test_wall_only_trace_has_empty_queue(self):
        assert queue_depth_timeline(tree()) == {"max": 0, "mean": 0.0, "samples": []}


class TestTraceLoading:
    def test_jsonl_and_bare_list_and_chrome(self, tmp_path):
        records = tree()
        jsonl = tmp_path / "spans.jsonl"
        jsonl.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert load_trace(str(jsonl)) == records

        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(records))
        assert load_trace(str(bare)) == records

        chrome = tmp_path / "chrome.json"
        chrome.write_text(json.dumps(chrome_trace(records)))
        loaded = load_trace(str(chrome))
        assert {r["id"] for r in loaded} == {r["id"] for r in records}

    def test_unrecognised_payload_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('"just a string"')
        with pytest.raises(ValueError):
            load_trace(str(bad))

    def test_chrome_round_trip_preserves_tree(self):
        records = tree()
        back = {r["id"]: r for r in records_from_chrome_trace(chrome_trace(records))}
        assert set(back) == {r["id"] for r in records}
        for original in records:
            restored = back[original["id"]]
            assert restored["parent"] == original["parent"]
            assert restored["name"] == original["name"]
            assert restored["lane"] == original["lane"]
            assert restored["clock"] == original["clock"]
            assert restored["dur_ms"] == pytest.approx(original["dur_ms"], abs=1e-6)

    def test_events_from_trace_recovers_decision_log(self):
        records = [
            span("i2", None, "complete", "scheduler", 700.0, None,
                 clock=VIRTUAL, e2e_ms=12.5, tier="lod0/lossless"),
            span("i1", None, "dispatch", "scheduler", 250.0, None,
                 clock=VIRTUAL, warmth="cold"),
            # Wall instants and spans must be excluded.
            span("w1", None, "lane_closed", "worker-0", 1.0, None, worker=0),
            span("s1", None, "request", "main", 0.0, 10.0),
        ]
        events = events_from_trace(records)
        assert [e["event"] for e in events] == ["dispatch", "complete"]
        assert events[1] == {
            "t_ms": 700.0, "event": "complete",
            "e2e_ms": 12.5, "tier": "lod0/lossless",
        }


class TestAnalyzeOnRealTraces:
    def test_executor_trace_attribution_and_byte_identical_repeat(self):
        obs = ObsContext.create()
        with RenderExecutor(num_workers=0, obs=obs) as executor:
            executor.submit(quick_job(2), trace={"request": "r1"}).result()
        records = obs.tracer.spans
        first = json.dumps(analyze(records), sort_keys=True)
        assert first == json.dumps(analyze(records), sort_keys=True)
        report = analyze(records)
        assert report["critical_path"]["root_name"] == "request"
        assert report["critical_path"]["leaf"] in KERNEL_STAGES + ("frame",)
        attribution = report["stages"]["frame_attribution"]
        assert attribution["attributed_fraction"] > 0.5
        assert report["lanes_closed"] == []

    def test_partial_trace_from_killed_worker_analyzes_cleanly(self, monkeypatch):
        # Satellite: an error-annotated request span plus a lane_closed
        # marker must yield a well-formed report, not a raise.
        monkeypatch.setenv(CRASH_ENV, "train:1")
        obs = ObsContext.create()
        with RenderExecutor(num_workers=2, obs=obs) as executor:
            with pytest.raises(FrameRenderError):
                executor.submit(quick_job(3)).result(timeout=300)
        report = analyze(obs.tracer.spans)
        assert len(report["lanes_closed"]) == 1
        assert report["critical_path"]["root"] is not None
        assert report["critical_path"]["steps"]
        errors = [
            s
            for s in report["critical_path"]["steps"]
            if s["error"] and "worker process died" in s["error"]
        ]
        # The killed unit either IS the critical path (childless error
        # span) or sits off it; in both cases the stage table sees it.
        assert report["stages"]["stages"]["request"]["count"] >= 1
        assert errors or report["wall_spans"] > 0
        # Determinism holds for partial traces too.
        assert json.dumps(report, sort_keys=True) == json.dumps(
            analyze(obs.tracer.spans), sort_keys=True
        )


class TestCommittedBenchTrace:
    def test_committed_trace_attributes_kernel_stages(self):
        # Acceptance: the committed 2-worker sharded obs-overhead trace
        # attributes >= 80% of frame time to named kernel stages, and the
        # committed analysis is exactly reproducible from the trace.
        doc = json.loads((REPO_ROOT / "BENCH_obs_overhead.json").read_text())
        analysis = doc["analysis"]
        fraction = analysis["stages"]["frame_attribution"]["attributed_fraction"]
        assert fraction >= 0.80, fraction
        assert analysis["critical_path"]["root_name"] == "request"
        recomputed = analyze(records_from_chrome_trace(doc["trace"]))
        assert json.dumps(recomputed, sort_keys=True) == json.dumps(
            analysis, sort_keys=True
        )


class TestDiffEngine:
    def test_attributes_regression_to_slowest_stage(self):
        base = analyze(tree())
        slower = tree()
        for record in slower:
            if record["name"] == "blend":
                record["dur_ms"] += 20.0
            if record["name"] in ("frame", "job", "request") and record["id"] != "s3":
                record["dur_ms"] += 20.0
        current = analyze(slower)
        diff = diff_analyses(base, current)
        assert diff["critical_path_ms"]["delta"] == 20.0
        assert diff["stages"]["blend"]["delta_ms"] == 20.0
        assert diff["attribution"] == "blend"
        assert diff["regressions"][0] == "blend"
        assert diff["stages"]["pair_build"]["delta_ms"] == 0.0

    def test_no_regressions_attributes_none(self):
        base = analyze(tree())
        diff = diff_analyses(base, base)
        assert diff["regressions"] == [] and diff["attribution"] is None
        assert diff["critical_path_ms"]["delta"] == 0.0
