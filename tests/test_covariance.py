"""Tests for covariance construction and EWA projection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.covariance import (
    build_covariance_3d,
    covariance_2d_eigenvalues,
    invert_covariance_2d,
    mahalanobis_sq,
    perspective_jacobian,
    project_covariance_2d,
    quaternion_to_rotation_matrix,
)

quaternions = st.lists(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False), min_size=4, max_size=4
).filter(lambda q: np.linalg.norm(q) > 1e-3)

scales = st.lists(
    st.floats(min_value=1e-3, max_value=10.0, allow_nan=False), min_size=3, max_size=3
)


class TestQuaternionRotation:
    def test_identity_quaternion_gives_identity_matrix(self):
        rot = quaternion_to_rotation_matrix(np.array([[1.0, 0.0, 0.0, 0.0]]))
        assert np.allclose(rot[0], np.eye(3))

    def test_unnormalised_quaternion_is_normalised(self):
        rot_a = quaternion_to_rotation_matrix(np.array([[1.0, 0.0, 0.0, 0.0]]))
        rot_b = quaternion_to_rotation_matrix(np.array([[7.0, 0.0, 0.0, 0.0]]))
        assert np.allclose(rot_a, rot_b)

    def test_z_rotation_by_90_degrees(self):
        half = np.pi / 4
        quat = np.array([[np.cos(half), 0.0, 0.0, np.sin(half)]])
        rot = quaternion_to_rotation_matrix(quat)[0]
        rotated = rot @ np.array([1.0, 0.0, 0.0])
        assert np.allclose(rotated, [0.0, 1.0, 0.0], atol=1e-12)

    @given(quaternion=quaternions)
    @settings(max_examples=50, deadline=None)
    def test_rotation_matrices_are_orthonormal(self, quaternion):
        rot = quaternion_to_rotation_matrix(np.array([quaternion]))[0]
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-9)
        assert np.linalg.det(rot) == pytest.approx(1.0, abs=1e-9)


class TestCovariance3d:
    def test_identity_rotation_gives_diagonal_covariance(self):
        cov = build_covariance_3d(np.array([[1.0, 2.0, 3.0]]), np.array([[1.0, 0.0, 0.0, 0.0]]))
        assert np.allclose(cov[0], np.diag([1.0, 4.0, 9.0]))

    @given(quaternion=quaternions, scale=scales)
    @settings(max_examples=50, deadline=None)
    def test_covariance_is_symmetric_positive_semidefinite(self, quaternion, scale):
        cov = build_covariance_3d(np.array([scale]), np.array([quaternion]))[0]
        assert np.allclose(cov, cov.T, atol=1e-9)
        eigvals = np.linalg.eigvalsh(cov)
        assert np.all(eigvals >= -1e-9)

    @given(quaternion=quaternions, scale=scales)
    @settings(max_examples=50, deadline=None)
    def test_determinant_equals_product_of_squared_scales(self, quaternion, scale):
        cov = build_covariance_3d(np.array([scale]), np.array([quaternion]))[0]
        expected = float(np.prod(np.array(scale) ** 2))
        assert np.linalg.det(cov) == pytest.approx(expected, rel=1e-6)


class TestProjection2d:
    def test_isotropic_gaussian_projects_isotropically(self):
        cov3d = build_covariance_3d(np.array([[0.5, 0.5, 0.5]]), np.array([[1.0, 0.0, 0.0, 0.0]]))
        cam_points = np.array([[0.0, 0.0, 5.0]])
        cov2d = project_covariance_2d(cov3d, cam_points, np.eye(3), fx=100.0, fy=100.0, dilation=0.0)
        assert cov2d[0, 0, 0] == pytest.approx(cov2d[0, 1, 1], rel=1e-6)
        assert cov2d[0, 0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_projection_shrinks_with_distance(self):
        cov3d = build_covariance_3d(np.array([[0.5, 0.5, 0.5]]), np.array([[1.0, 0.0, 0.0, 0.0]]))
        near = project_covariance_2d(cov3d, np.array([[0.0, 0.0, 2.0]]), np.eye(3), 100.0, 100.0, dilation=0.0)
        far = project_covariance_2d(cov3d, np.array([[0.0, 0.0, 20.0]]), np.eye(3), 100.0, 100.0, dilation=0.0)
        assert near[0, 0, 0] > far[0, 0, 0]

    def test_dilation_adds_to_diagonal(self):
        cov3d = build_covariance_3d(np.array([[0.5, 0.5, 0.5]]), np.array([[1.0, 0.0, 0.0, 0.0]]))
        cam_points = np.array([[0.0, 0.0, 5.0]])
        base = project_covariance_2d(cov3d, cam_points, np.eye(3), 100.0, 100.0, dilation=0.0)
        dilated = project_covariance_2d(cov3d, cam_points, np.eye(3), 100.0, 100.0, dilation=0.3)
        assert np.allclose(dilated[0] - base[0], 0.3 * np.eye(2), atol=1e-9)

    def test_jacobian_shape_and_zero_entries(self):
        jac = perspective_jacobian(np.array([[0.0, 0.0, 4.0]]), fx=50.0, fy=60.0)
        assert jac.shape == (1, 2, 3)
        assert jac[0, 0, 0] == pytest.approx(50.0 / 4.0)
        assert jac[0, 1, 1] == pytest.approx(60.0 / 4.0)
        assert jac[0, 0, 1] == 0.0
        assert jac[0, 1, 0] == 0.0


class TestEigenvaluesAndConics:
    def test_eigenvalues_of_diagonal_matrix(self):
        cov = np.array([[[4.0, 0.0], [0.0, 1.0]]])
        lam1, lam2 = covariance_2d_eigenvalues(cov)
        assert lam1[0] == pytest.approx(4.0)
        assert lam2[0] == pytest.approx(1.0)

    def test_eigenvalues_ordering(self, rng):
        mats = rng.normal(size=(10, 2, 2))
        covs = mats @ np.transpose(mats, (0, 2, 1))
        lam1, lam2 = covariance_2d_eigenvalues(covs)
        assert np.all(lam1 >= lam2 - 1e-12)

    def test_conic_inverts_covariance(self):
        cov = np.array([[[3.0, 0.5], [0.5, 2.0]]])
        conic, valid = invert_covariance_2d(cov)
        assert valid[0]
        inverse = np.array([[conic[0, 0], conic[0, 1]], [conic[0, 1], conic[0, 2]]])
        assert np.allclose(inverse @ cov[0], np.eye(2), atol=1e-9)

    def test_degenerate_covariance_flagged_invalid(self):
        cov = np.array([[[1.0, 1.0], [1.0, 1.0]]])
        _, valid = invert_covariance_2d(cov)
        assert not valid[0]

    def test_mahalanobis_identity_conic_is_euclidean(self):
        conic = np.array([1.0, 0.0, 1.0])
        assert mahalanobis_sq(conic, 3.0, 4.0) == pytest.approx(25.0)

    def test_mahalanobis_broadcasts_over_grids(self):
        conic = np.array([1.0, 0.0, 1.0])
        dx, dy = np.meshgrid(np.arange(3.0), np.arange(2.0))
        out = mahalanobis_sq(conic[None, :], dx, dy)
        assert out.shape == (2, 3)
