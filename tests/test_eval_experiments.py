"""Shape tests for the experiment harness (quick-mode runs of each figure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import experiments
from repro.eval import reporting
from repro.eval.runner import EvalSetup, clear_cache, load_scene_and_camera, run_tilewise
from repro.eval.scenes import (
    EVAL_SCENES,
    QUICK_SCENES,
    EvalScenePreset,
    eval_preset,
    quick_preset,
)


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestScenePresets:
    def test_all_six_scenes_have_presets(self):
        assert set(EVAL_SCENES) == {"palace", "lego", "train", "truck", "playroom", "drjohnson"}

    def test_quick_presets_are_smaller(self):
        for name in EVAL_SCENES:
            assert QUICK_SCENES[name].scale < EVAL_SCENES[name].scale

    def test_quick_presets_preserve_non_scale_fields(self):
        """Regression: quick derivation used to rebuild the preset from just
        (name, scale, image_scale), silently resetting ``view_index`` (and
        any future field) to its default."""
        import dataclasses

        derived = quick_preset(
            EvalScenePreset("lego", scale=0.1, image_scale=0.5, view_index=3)
        )
        assert derived.view_index == 3
        assert derived.scale == pytest.approx(0.1 * 0.25)
        assert derived.image_scale == pytest.approx(0.5 * 0.6)
        for name, preset in EVAL_SCENES.items():
            quick = QUICK_SCENES[name]
            for f in dataclasses.fields(EvalScenePreset):
                if f.name in ("scale", "image_scale"):
                    continue
                assert getattr(quick, f.name) == getattr(preset, f.name), f.name

    def test_unknown_scene_raises(self):
        with pytest.raises(KeyError):
            eval_preset("bonsai")

    def test_runner_caches_scene_objects(self):
        setup = EvalSetup("lego", quick=True)
        first = load_scene_and_camera(setup)
        second = load_scene_and_camera(setup)
        assert first[0] is second[0]

    def test_runner_caches_renders(self):
        setup = EvalSetup("lego", quick=True)
        assert run_tilewise(setup) is run_tilewise(setup)


class TestMotivationExperiments:
    def test_figure2_shape(self):
        rows = experiments.figure2(scenes=("train",), quick=True)
        row = rows[0]
        assert row["rendered"] <= row["in_frustum"] <= row["total"]
        assert row["avg_loads_per_gaussian"] >= 1.0
        assert 0.0 < row["rendered_fraction"] <= 1.0
        assert reporting.report_figure2(rows)

    def test_table1_orderings(self):
        rows = experiments.table1(scenes=("train",), quick=True)
        row = rows[0]
        # AABB >= OBB >= alpha-exact footprint; actual blending is smallest of
        # the footprint family once early termination kicks in.
        assert row["aabb_pixels"] >= row["obb_pixels"] >= row["alpha_pixels"]
        assert row["rendered_pixels"] <= row["aabb_pixels"]
        assert reporting.report_table1(rows)

    def test_figure4_opacity_effect(self):
        rows = experiments.figure4()
        high = next(r for r in rows if r["opacity"] == 1.0)
        low = next(r for r in rows if r["opacity"] == 0.01)
        assert high["aabb"] == low["aabb"]
        assert low["alpha"] < high["alpha"]

    def test_figure6_duplication_grows_for_small_subviews(self):
        result = experiments.figure6(scenes=("lego",), subview_sizes=(1024, 64, 16), quick=True)
        rows = result["lego"]
        assert rows[0]["duplication"] <= rows[-1]["duplication"]
        assert all(r["rendering_invocations"] >= r["rendered_gaussians"] for r in rows)


class TestMainResults:
    def test_table2_quality_is_high(self):
        rows = experiments.table2(scenes=("lego",), quick=True)
        assert rows[0]["gcc_psnr"] > 30.0
        assert rows[0]["gscore_psnr"] > 30.0
        assert rows[0]["gcc_lpips"] < 0.2
        assert reporting.report_table2(rows)

    def test_figure10_gcc_wins(self):
        result = experiments.figure10(scenes=("train",), quick=True)
        row = result["rows"][0]
        assert row["speedup"] > 1.0
        assert row["energy_efficiency"] > 1.0
        assert result["geomean_speedup"] > 1.0
        assert reporting.report_figure10(result)

    def test_figure11_cc_adds_on_top_of_gw(self):
        rows = experiments.figure11(scenes=("train",), quick=True)
        row = rows[0]
        assert row["speedup_gw"] > 0.5
        assert row["speedup_gw_cc"] >= row["speedup_gw"] * 0.9
        assert row["dram_gw_cc"]["total"] <= row["dram_baseline"]["total"]
        assert row["render_ops_gcc"] <= row["render_ops_baseline"] * 1.1
        assert reporting.report_figure11(rows)

    def test_table3_contains_measured_and_quoted_rows(self):
        rows = experiments.table3(quick=True)
        designs = {r["design"] for r in rows}
        assert any("GCC" in d for d in designs)
        assert any("GSCore" in d for d in designs)
        assert any("MetaVRain" in d for d in designs)
        gcc_row = next(r for r in rows if "GCC" in r["design"])
        gscore_row = next(r for r in rows if "GSCore" in r["design"])
        assert gcc_row["fps_per_mm2"] > gscore_row["fps_per_mm2"]
        assert reporting.report_table3(rows)

    def test_table4_static_content(self):
        rows = experiments.table4()
        total = next(r for r in rows if r["component"] == "GCC Total")
        assert total["area_mm2"] == pytest.approx(2.711)
        assert reporting.report_table4(rows)

    def test_figure12_dram_dominates_gscore(self):
        rows = experiments.figure12(scenes=("train",), quick=True)
        gscore_row = next(r for r in rows if r["accelerator"] == "GSCore")
        assert gscore_row["offchip_mj"] > gscore_row["onchip_mj"]
        gcc_row = next(r for r in rows if r["accelerator"] == "GCC")
        assert gcc_row["offchip_mj"] < gscore_row["offchip_mj"]
        assert reporting.report_figure12(rows)


class TestSensitivityStudies:
    def test_figure13a_large_buffers_hurt_area_efficiency(self):
        rows = experiments.figure13a(scene="train", buffer_sizes_kb=(128, 8192), quick=True)
        small, large = rows[0], rows[-1]
        assert large["area_mm2"] > small["area_mm2"]
        assert large["fps_per_mm2"] < small["fps_per_mm2"] * 1.5

    def test_figure13b_array_size_tradeoff(self):
        rows = experiments.figure13b(scene="train", array_sizes=(4, 8, 16), quick=True)
        assert all(r["fps"] > 0 for r in rows)
        by_size = {r["array_size"]: r for r in rows}
        assert by_size[16]["area_mm2"] > by_size[8]["area_mm2"] > by_size[4]["area_mm2"]

    def test_figure14_bandwidth_monotonic_then_flat(self):
        rows = experiments.figure14(scene="train", quick=True)
        assert len(rows) == 5
        gcc_fps = [r["gcc_fps"] for r in rows]
        gscore_fps = [r["gscore_fps"] for r in rows]
        # Throughput never decreases with more bandwidth for either design.
        assert all(b >= a * 0.999 for a, b in zip(gcc_fps, gcc_fps[1:]))
        assert all(b >= a * 0.999 for a, b in zip(gscore_fps, gscore_fps[1:]))
        # GCC saturates: its relative gain from the last bandwidth step is
        # smaller than GSCore's.
        gcc_gain = gcc_fps[-1] / gcc_fps[0]
        gscore_gain = gscore_fps[-1] / gscore_fps[0]
        assert gcc_gain <= gscore_gain + 1e-9
        assert reporting.report_figure14(rows)

    def test_figure15_gpu_render_dominates_and_gcc_render_slower(self):
        rows = experiments.figure15(scenes=("train",), platforms=("jetson",), quick=True)
        gpu_row = next(r for r in rows if r["platform"] == "Jetson AGX Xavier")
        assert gpu_row["standard"]["render"] == max(gpu_row["standard"].values())
        assert gpu_row["gcc"]["render"] >= gpu_row["standard"]["render"]
        accel_row = next(r for r in rows if r["platform"] == "GSCore / GCC")
        assert accel_row["gcc_total_s"] < accel_row["standard_total_s"]
