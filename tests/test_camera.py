"""Tests for the pinhole camera model and view transforms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.gaussians.camera import Camera, look_at, orbit_cameras


class TestCameraConstruction:
    def test_default_principal_point_is_image_centre(self):
        camera = Camera(width=640, height=480, fx=500.0, fy=500.0)
        assert camera.cx == 320.0
        assert camera.cy == 240.0

    def test_default_view_matrix_is_identity(self):
        camera = Camera(width=64, height=64, fx=50.0, fy=50.0)
        assert np.allclose(camera.world_to_camera, np.eye(4))

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            Camera(width=0, height=64, fx=50.0, fy=50.0)

    def test_rejects_non_positive_focal_length(self):
        with pytest.raises(ValueError):
            Camera(width=64, height=64, fx=-1.0, fy=50.0)

    def test_rejects_bad_clip_planes(self):
        with pytest.raises(ValueError):
            Camera(width=64, height=64, fx=50.0, fy=50.0, znear=2.0, zfar=1.0)

    def test_rejects_wrong_matrix_shape(self):
        with pytest.raises(ValueError):
            Camera(width=64, height=64, fx=50.0, fy=50.0, world_to_camera=np.eye(3))

    def test_from_fov_matches_expected_focal(self):
        camera = Camera.from_fov(width=100, height=100, fov_y_degrees=90.0)
        assert camera.fy == pytest.approx(50.0, rel=1e-6)
        assert camera.fx == pytest.approx(camera.fy)

    def test_num_pixels(self):
        camera = Camera(width=10, height=20, fx=5.0, fy=5.0)
        assert camera.num_pixels == 200


class TestCameraTransforms:
    def test_identity_camera_projects_origin_axis_point_to_centre(self):
        camera = Camera(width=100, height=100, fx=50.0, fy=50.0)
        pixels, depths = camera.project_points(np.array([[0.0, 0.0, 5.0]]))
        assert depths[0] == pytest.approx(5.0)
        assert pixels[0, 0] == pytest.approx(camera.cx)
        assert pixels[0, 1] == pytest.approx(camera.cy)

    def test_point_to_the_right_projects_right_of_centre(self):
        camera = Camera(width=100, height=100, fx=50.0, fy=50.0)
        pixels, _ = camera.project_points(np.array([[1.0, 0.0, 5.0]]))
        assert pixels[0, 0] > camera.cx

    def test_position_is_inverse_of_view_transform(self):
        eye = np.array([1.0, 2.0, 3.0])
        camera = Camera(
            width=64, height=64, fx=50.0, fy=50.0, world_to_camera=look_at(eye, np.zeros(3))
        )
        assert np.allclose(camera.position, eye, atol=1e-9)

    def test_view_directions_are_unit_length(self):
        camera = Camera(width=64, height=64, fx=50.0, fy=50.0)
        points = np.array([[0.0, 1.0, 4.0], [2.0, -1.0, 3.0]])
        directions = camera.view_directions(points)
        assert np.allclose(np.linalg.norm(directions, axis=1), 1.0)

    def test_scaled_camera_preserves_fov(self):
        camera = Camera.from_fov(width=200, height=100, fov_y_degrees=60.0)
        half = camera.scaled(0.5)
        assert half.width == 100
        assert half.height == 50
        assert half.tan_half_fov_y == pytest.approx(camera.tan_half_fov_y, rel=1e-6)

    def test_world_to_camera_points_roundtrip_depth(self):
        eye = np.array([0.0, 0.0, -4.0])
        camera = Camera(
            width=64, height=64, fx=50.0, fy=50.0, world_to_camera=look_at(eye, np.zeros(3))
        )
        cam_points = camera.world_to_camera_points(np.zeros((1, 3)))
        assert cam_points[0, 2] == pytest.approx(4.0)


class TestLookAt:
    def test_target_is_on_positive_z_axis(self):
        matrix = look_at(np.array([3.0, 2.0, 1.0]), np.array([0.0, 0.0, 0.0]))
        target_cam = (matrix[:3, :3] @ np.zeros(3)) + matrix[:3, 3]
        assert target_cam[0] == pytest.approx(0.0, abs=1e-9)
        assert target_cam[1] == pytest.approx(0.0, abs=1e-9)
        assert target_cam[2] > 0

    def test_rotation_is_orthonormal(self):
        matrix = look_at(np.array([1.0, 5.0, -2.0]), np.array([0.0, 1.0, 0.0]))
        rotation = matrix[:3, :3]
        assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-9)

    def test_coincident_eye_and_target_raises(self):
        with pytest.raises(ValueError):
            look_at(np.zeros(3), np.zeros(3))

    def test_up_parallel_to_forward_is_handled(self):
        matrix = look_at(np.array([0.0, 5.0, 0.0]), np.zeros(3), up=(0.0, 1.0, 0.0))
        assert np.allclose(matrix[:3, :3] @ matrix[:3, :3].T, np.eye(3), atol=1e-9)


class TestOrbitCameras:
    def test_produces_requested_number_of_views(self):
        cameras = orbit_cameras(num_views=6, radius=4.0, height=1.0)
        assert len(cameras) == 6

    def test_all_views_look_at_target(self):
        target = np.array([0.5, 0.0, -0.5])
        cameras = orbit_cameras(num_views=4, radius=3.0, height=2.0, target=target)
        for camera in cameras:
            cam_target = camera.world_to_camera_points(target[None, :])[0]
            assert cam_target[2] > 0
            assert abs(cam_target[0]) < 1e-9

    def test_camera_distance_matches_radius_and_height(self):
        cameras = orbit_cameras(num_views=3, radius=3.0, height=4.0)
        for camera in cameras:
            assert np.linalg.norm(camera.position) == pytest.approx(5.0, rel=1e-9)

    def test_rejects_zero_views(self):
        with pytest.raises(ValueError):
            orbit_cameras(num_views=0, radius=1.0, height=0.0)
