"""Request scheduler: admission, EDF dispatch, accounting, determinism."""

from __future__ import annotations

import json

import pytest

from repro.eval.scenes import eval_preset
from repro.gaussians.synthetic import make_scene
from repro.sched.qos import QoSPolicy, SLOController
from repro.sched.scheduler import (
    RequestScheduler,
    SchedulerPolicy,
    ServiceModel,
    run_workload,
)
from repro.sched.workload import Request, WorkloadSpec
from repro.serve.farm import RenderFarm
from repro.store.lod import select_lod


def request(
    request_id: int,
    arrival_ms: float = 0.0,
    priority: int = 1,
    slo_ms: float = 500.0,
    num_frames: int = 2,
) -> Request:
    return Request(
        request_id=request_id,
        client_id=request_id % 2,
        priority=priority,
        arrival_ms=arrival_ms,
        scene="train",
        trajectory_kind="orbit",
        num_frames=num_frames,
        view_index=0,
        traj_seed=0,
        slo_ms=slo_ms,
    )


SPEC = WorkloadSpec(duration_s=10.0)


def fresh_scheduler(**kwargs) -> RequestScheduler:
    kwargs.setdefault("qos", SLOController())
    return RequestScheduler(**kwargs)


class TestServiceModel:
    def test_gaussian_count_matches_built_scene(self):
        model = ServiceModel()
        preset = eval_preset("train", quick=True)
        scene = make_scene(preset.name, scale=preset.scale)
        assert model.num_gaussians("train", quick=True, lod=0) == scene.num_gaussians
        assert (
            model.num_gaussians("train", quick=True, lod=2)
            == select_lod(scene, 2).num_gaussians
        )

    def test_lod_cuts_frame_cost(self):
        model = ServiceModel()
        costs = [model.frame_ms("train", quick=False, lod=k) for k in range(4)]
        assert costs == sorted(costs, reverse=True)

    def test_cheaper_quant_cuts_job_cost(self):
        model = ServiceModel()
        req = request(0, num_frames=4)
        lossless = model.job_ms(req, (0, "lossless"), workers=1, quick=False)
        compact = model.job_ms(req, (0, "compact"), workers=1, quick=False)
        assert compact < lossless

    def test_workers_cut_job_cost_by_waves(self):
        model = ServiceModel()
        req = request(0, num_frames=8)
        one = model.job_ms(req, (0, "lossless"), workers=1, quick=False)
        four = model.job_ms(req, (0, "lossless"), workers=4, quick=False)
        frame = model.frame_ms("train", quick=False, lod=0)
        assert one - four == pytest.approx(6 * frame)


class TestDispatchWarmth:
    """The cold/warm split of the dispatch overhead (persistent executor)."""

    def test_warm_dispatch_skips_ship_cost(self):
        from repro.store.codec import quant_spec

        model = ServiceModel()
        req = request(0, num_frames=4)
        cold = model.job_ms(req, (0, "lossless"), workers=1, quick=False)
        warm = model.job_ms(req, (0, "lossless"), workers=1, quick=False, warm=True)
        frames = 4 * model.frame_ms("train", quick=False, lod=0)
        gaussians = model.num_gaussians("train", quick=False, lod=0)
        ship_mb = quant_spec("lossless").bytes_per_gaussian() * gaussians / 1e6
        assert warm == pytest.approx(model.dispatch_warm_ms + frames)
        assert cold == pytest.approx(
            model.dispatch_cold_ms + model.ship_ms_per_mb * ship_mb + frames
        )
        assert warm < cold

    def test_first_dispatch_cold_then_warm(self):
        requests = [request(i, arrival_ms=1000.0 * i) for i in range(3)]
        report = fresh_scheduler().run(requests, SPEC)
        dispatches = [e for e in report.log.events if e["event"] == "dispatch"]
        assert [e["warm"] for e in dispatches] == [False, True, True]
        assert report.dispatch_counts == {"cold": 1, "warm": 2}
        assert report.summary()["dispatch"] == {"cold": 1, "warm": 2}
        # The warm completions finished faster in virtual time.
        cold_outcome, *warm_outcomes = report.outcomes
        assert all(
            o.service_ms < cold_outcome.service_ms for o in warm_outcomes
        )

    def test_distinct_scenes_are_separately_cold(self):
        import dataclasses as dc

        requests = [
            request(0, arrival_ms=0.0),
            dc.replace(request(1, arrival_ms=1000.0), scene="truck"),
            request(2, arrival_ms=2000.0),
            dc.replace(request(3, arrival_ms=3000.0), scene="truck"),
        ]
        report = fresh_scheduler().run(requests, SPEC)
        assert report.dispatch_counts == {"cold": 2, "warm": 2}

    def test_warmth_resets_between_runs(self):
        scheduler = fresh_scheduler()
        first = scheduler.run([request(0)], SPEC)
        second = scheduler.run([request(0)], SPEC)
        assert first.dispatch_counts == {"cold": 1, "warm": 0}
        assert second.dispatch_counts == {"cold": 1, "warm": 0}


class TestVirtualScheduling:
    def test_underload_completes_everything_within_slo(self):
        # One request at a time, generous SLO: nothing queues, sheds or misses.
        requests = [request(i, arrival_ms=1000.0 * i) for i in range(5)]
        report = fresh_scheduler().run(requests, SPEC)
        assert [o.status for o in report.outcomes] == ["completed"] * 5
        assert report.slo_attainment == 1.0
        assert report.shed_rate == 0.0
        assert all(o.queue_wait_ms == 0.0 for o in report.outcomes)
        assert report.log.counts()["admit"] == 5

    def test_priority_class_preempts_queue_order(self):
        # r0 occupies the server; r1 (standard) then r2 (premium) wait.
        requests = [
            request(0, arrival_ms=0.0),
            request(1, arrival_ms=1.0, priority=1),
            request(2, arrival_ms=2.0, priority=0),
        ]
        report = fresh_scheduler().run(requests, SPEC)
        order = [e["request"] for e in report.log.events if e["event"] == "dispatch"]
        assert order == [0, 2, 1]

    def test_edf_within_priority_class(self):
        # Same class: the tighter absolute deadline dispatches first.
        requests = [
            request(0, arrival_ms=0.0),
            request(1, arrival_ms=1.0, slo_ms=5000.0),
            request(2, arrival_ms=2.0, slo_ms=800.0),
        ]
        report = fresh_scheduler().run(requests, SPEC)
        order = [e["request"] for e in report.log.events if e["event"] == "dispatch"]
        assert order == [0, 2, 1]

    def test_queue_bound_rejects_overflow(self):
        policy = SchedulerPolicy(max_queue=2)
        requests = [request(i, arrival_ms=float(i) * 0.01) for i in range(8)]
        report = fresh_scheduler(policy=policy).run(requests, SPEC)
        statuses = {o.status for o in report.outcomes}
        assert "rejected" in statuses
        rejected = [e for e in report.log.events if e["event"] == "reject"]
        assert all(e["reason"] == "queue_full" for e in rejected)

    def test_hopeless_deadline_is_shed(self):
        # Tight SLO, long job: even the cheapest tier cannot make it.
        requests = [
            request(0, arrival_ms=0.0, num_frames=8),
            request(1, arrival_ms=1.0, slo_ms=10.0, num_frames=8),
        ]
        report = fresh_scheduler().run(requests, SPEC)
        assert report.outcomes[1].status == "shed"
        shed = next(e for e in report.log.events if e["event"] == "shed")
        assert shed["reason"] == "deadline_infeasible"
        assert shed["projected_ms"] > 10.0

    def test_e2e_is_wait_plus_service(self):
        requests = [request(i, arrival_ms=float(i)) for i in range(4)]
        report = fresh_scheduler().run(requests, SPEC)
        for outcome in report.outcomes:
            assert outcome.e2e_ms == pytest.approx(
                outcome.queue_wait_ms + outcome.service_ms
            )

    def test_tight_deadline_demotes_per_request(self):
        # Idle server, but the SLO is too tight for the controller's
        # lossless rung: the dispatcher demotes this one request down the
        # ladder just far enough, records where it came from, and the
        # modeled service then fits the deadline.
        tight = [request(0, arrival_ms=0.0, slo_ms=60.0, num_frames=8)]
        report = fresh_scheduler().run(tight, SPEC)
        outcome = report.outcomes[0]
        assert outcome.status == "completed"
        assert outcome.tier != (0, "lossless")
        assert outcome.slo_met
        dispatch = next(e for e in report.log.events if e["event"] == "dispatch")
        assert dispatch["demoted_from"] == "lod0/lossless"
        assert dispatch["tier"] != "lod0/lossless"

    def test_generous_deadline_keeps_controller_rung(self):
        report = fresh_scheduler().run([request(0, slo_ms=5000.0)], SPEC)
        assert report.outcomes[0].tier == (0, "lossless")
        dispatch = next(e for e in report.log.events if e["event"] == "dispatch")
        assert "demoted_from" not in dispatch

    def test_premium_arrival_not_shed_behind_standard_queue(self):
        # A deep standard-tenant queue must not count against a premium
        # arrival's feasibility projection: the dispatcher will jump the
        # premium request over all of it, so admission may only charge the
        # running job plus queued work that actually outranks it.
        requests = [request(i, arrival_ms=float(i) * 0.1, num_frames=8) for i in range(10)]
        requests.append(
            request(10, arrival_ms=2.0, priority=0, slo_ms=250.0, num_frames=2)
        )
        report = fresh_scheduler().run(requests, SPEC)
        premium = report.outcomes[10]
        assert premium.status == "completed"
        assert premium.slo_met
        # It was dispatched immediately after the running job finished.
        order = [e["request"] for e in report.log.events if e["event"] == "dispatch"]
        assert order.index(10) == 1

    def test_fixed_policy_on_full_ladder_never_demotes(self):
        # adaptive=False is the documented fixed-tier baseline even on a
        # multi-rung ladder: no per-request demotion, and admission sheds
        # against the pinned rung, not the ladder's cheap end.
        qos = SLOController(policy=QoSPolicy(adaptive=False))
        spec = WorkloadSpec(arrival="bursty", rate_rps=14.0, duration_s=30.0, seed=0)
        report = run_workload(spec, fresh_scheduler(qos=qos))
        assert set(report.tier_histogram()) == {"lod0/lossless"}
        dispatches = [e for e in report.log.events if e["event"] == "dispatch"]
        assert all("demoted_from" not in e for e in dispatches)
        sheds = [e for e in report.log.events if e["event"] == "shed"]
        assert sheds, "overload should shed under the fixed tier"
        assert all(e["cheapest_tier"] == "lod0/lossless" for e in sheds)

    def test_overload_degrades_tiers_adaptively(self):
        # Bursty overload: burst episodes push windowed p95 into violation,
        # walking the global ladder down (and back up between bursts).
        spec = WorkloadSpec(
            arrival="bursty", rate_rps=12.0, duration_s=30.0, seed=0
        )
        qos = SLOController(
            policy=QoSPolicy(
                window=8, min_samples=4, cooldown=2, degrade_at=0.9, upgrade_at=0.45
            )
        )
        report = run_workload(spec, fresh_scheduler(qos=qos))
        assert any(e["event"] == "tier_down" for e in report.log.events)
        assert len(report.tier_histogram()) > 1


class TestDeterminism:
    def test_same_seed_reproduces_decision_log(self):
        spec = WorkloadSpec(arrival="bursty", rate_rps=12.0, duration_s=15.0, seed=9)

        def run_once():
            return run_workload(spec, fresh_scheduler())

        first, second = run_once(), run_once()
        assert first.log.events == second.log.events
        assert first.summary(include_events=True) == second.summary(
            include_events=True
        )

    def test_reused_scheduler_instance_replays_identically(self):
        # run() resets the controller (rung, window) and installs a fresh
        # log, so back-to-back runs on ONE scheduler are independent: the
        # second run must match the first, and the first run's log must not
        # grow while the second runs.
        spec = WorkloadSpec(arrival="bursty", rate_rps=12.0, duration_s=15.0, seed=9)
        scheduler = fresh_scheduler()
        first = run_workload(spec, scheduler)
        first_events = list(first.log.events)
        second = run_workload(spec, scheduler)
        assert first.log.events == first_events
        assert second.log.events == first_events
        assert first.summary() == second.summary()


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        spec = WorkloadSpec(rate_rps=10.0, duration_s=15.0, seed=4)
        return run_workload(spec, fresh_scheduler())

    def test_summary_is_json_serialisable(self, report):
        payload = report.summary(include_events=True)
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["requests"]["offered"] == len(report.outcomes)

    def test_summary_schema(self, report):
        summary = report.summary()
        assert set(summary) == {
            "workload",
            "policy",
            "requests",
            "offered_rps",
            "goodput_rps",
            "slo_attainment",
            "shed_rate",
            "latency_ms",
            "tier_histogram",
            "dispatch",
            "decisions",
            "num_events",
            "makespan_s",
            "executed",
            "measured",
        }
        assert summary["measured"] is None  # virtual run has no data plane
        assert set(summary["dispatch"]) == {"cold", "warm"}

    def test_request_accounting_adds_up(self, report):
        counts = report.summary()["requests"]
        assert (
            counts["completed"] + counts["shed"] + counts["rejected"]
            == counts["offered"]
        )
        histogram_total = sum(report.tier_histogram().values())
        assert histogram_total == counts["completed"]

    def test_attainment_counts_deadline_met_completions(self, report):
        completed = report.completed
        met = sum(1 for o in completed if o.e2e_ms <= o.request.slo_ms)
        assert report.slo_attainment == pytest.approx(met / len(completed))


class TestExecutedDataPlane:
    def test_dispatched_jobs_really_render(self):
        spec = WorkloadSpec(
            rate_rps=4.0,
            duration_s=1.0,
            num_clients=2,
            scenes=("train",),
            frame_choices=(1, 2),
            seed=0,
        )
        scheduler = fresh_scheduler(
            policy=SchedulerPolicy(num_workers=0),
            quick=True,
            execute=True,
            farm=RenderFarm(num_workers=0),
        )
        report = run_workload(spec, scheduler)
        completed = report.completed
        assert completed, "workload produced no requests"
        assert report.executed
        total_frames = sum(o.measured_frames for o in completed)
        assert total_frames == sum(o.request.num_frames for o in completed)
        assert len(report.measured_frame_ms) == total_frames
        assert all(o.measured_wall_ms > 0 for o in completed)
        measured = report.summary()["measured"]
        assert measured["frames"] == total_frames
        assert measured["frame_p95_ms"] >= measured["frame_p50_ms"] > 0


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_workers=-1),
            dict(max_queue=0),
            dict(shed_slack=0.0),
            dict(dataflow="vulkan"),
            dict(backend="cuda"),
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SchedulerPolicy(**kwargs)

    def test_sequential_farm_models_one_lane(self):
        assert SchedulerPolicy(num_workers=0).model_workers == 1
        assert SchedulerPolicy(num_workers=4).model_workers == 4
