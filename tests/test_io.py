"""Tests for scene serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians.io import (
    load_scene_npz,
    load_scene_text,
    save_scene_npz,
    save_scene_text,
    scene_from_text,
    scene_to_text,
)
from repro.gaussians.model import GaussianScene
from repro.gaussians.synthetic import make_scene


class TestNpzRoundtrip:
    def test_roundtrip_preserves_all_arrays(self, tmp_path, smoke_scene):
        path = tmp_path / "scene.npz"
        save_scene_npz(smoke_scene, path)
        loaded = load_scene_npz(path)
        assert loaded.name == smoke_scene.name
        assert np.allclose(loaded.means, smoke_scene.means)
        assert np.allclose(loaded.scales, smoke_scene.scales)
        assert np.allclose(loaded.quaternions, smoke_scene.quaternions)
        assert np.allclose(loaded.opacities, smoke_scene.opacities)
        assert np.allclose(loaded.sh_coeffs, smoke_scene.sh_coeffs)

    def test_roundtrip_empty_scene(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_scene_npz(GaussianScene.empty("nothing"), path)
        loaded = load_scene_npz(path)
        assert loaded.num_gaussians == 0
        assert loaded.name == "nothing"

    def test_creates_parent_directories(self, tmp_path, smoke_scene):
        path = tmp_path / "nested" / "dir" / "scene.npz"
        save_scene_npz(smoke_scene, path)
        assert path.exists()


class TestTextRoundtrip:
    def test_roundtrip_preserves_values(self):
        scene = make_scene("smoke", scale=0.1)
        text = scene_to_text(scene)
        loaded = scene_from_text(text)
        assert loaded.num_gaussians == scene.num_gaussians
        assert np.allclose(loaded.means, scene.means, atol=1e-6, rtol=1e-6)
        assert np.allclose(loaded.opacities, scene.opacities, atol=1e-6, rtol=1e-6)

    def test_name_is_preserved(self):
        scene = make_scene("smoke", scale=0.1)
        assert scene_from_text(scene_to_text(scene)).name == scene.name

    def test_file_roundtrip(self, tmp_path):
        scene = make_scene("smoke", scale=0.1)
        path = tmp_path / "scene.txt"
        save_scene_text(scene, path)
        loaded = load_scene_text(path)
        assert loaded.num_gaussians == scene.num_gaussians

    def test_empty_text_gives_empty_scene(self):
        assert scene_from_text("# name: empty\n").num_gaussians == 0

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            scene_from_text("1.0 2.0 3.0\n")


class TestVersionMismatch:
    def test_npz_version_mismatch_raises(self, tmp_path, smoke_scene):
        path = tmp_path / "scene.npz"
        save_scene_npz(smoke_scene, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        arrays["version"] = np.array(999)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version 999"):
            load_scene_npz(path)

    def test_text_version_mismatch_raises(self):
        scene = make_scene("smoke", scale=0.1)
        text = scene_to_text(scene).replace(
            "# repro-gaussian-scene v1", "# repro-gaussian-scene v99"
        )
        with pytest.raises(ValueError, match="version 99"):
            scene_from_text(text)

    def test_text_current_version_header_accepted(self):
        scene = make_scene("smoke", scale=0.1)
        assert scene_to_text(scene).startswith("# repro-gaussian-scene v1\n")
        assert scene_from_text(scene_to_text(scene)).num_gaussians == scene.num_gaussians

    def test_headerless_text_still_loads(self):
        scene = make_scene("smoke", scale=0.1)
        body = "\n".join(
            line
            for line in scene_to_text(scene).splitlines()
            if not line.startswith("# repro-gaussian-scene")
        )
        assert scene_from_text(body).num_gaussians == scene.num_gaussians
