"""Observability is a pure side channel: outputs are bitwise unperturbed.

The one property that makes tracing safe to leave on: with an
:class:`ObsContext` attached, every contract-bearing output — rendered
images, statistics counters, the scheduler's decision log and report —
is *bitwise identical* to the same run without observability.  Anything
less and traces could never be trusted against committed replays.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.exec import RenderExecutor
from repro.obs import (
    CompositeObserver,
    MemoryAttributor,
    ObsContext,
    SpanStackTracker,
    StackSampler,
    TelemetryServer,
)
from repro.obs.health import Watchdog
from repro.sched.scheduler import RequestScheduler, run_workload
from repro.sched.workload import WorkloadSpec
from repro.serve.trajectories import RenderJob, make_trajectory

#: Two quick presets spanning the store dimensions: the lossless default
#: tier and a pruned+quantized tier (different codec path, LOD path).
PRESETS = (
    dict(lod=0, quant="lossless"),
    dict(lod=1, quant="compact"),
)


def quick_job(**kwargs) -> RenderJob:
    return RenderJob(
        "train", make_trajectory("orbit", num_frames=2), quick=True, **kwargs
    )


def _run(num_workers: int, obs, **preset):
    with RenderExecutor(num_workers=num_workers, obs=obs) as executor:
        return executor.submit(quick_job(**preset)).result(timeout=300)


def _assert_results_identical(plain, traced) -> None:
    assert [f.index for f in plain.frames] == [f.index for f in traced.frames]
    for a, b in zip(plain.frames, traced.frames):
        assert np.array_equal(a.image, b.image)
        assert type(a.stats) is type(b.stats)
        for field in dataclasses.fields(a.stats):
            va, vb = getattr(a.stats, field.name), getattr(b.stats, field.name)
            if isinstance(va, np.ndarray):
                assert np.array_equal(va, vb), field.name
            else:
                assert va == vb, field.name
    assert plain.aggregate_counters() == traced.aggregate_counters()


class TestRenderPathUnperturbed:
    @pytest.mark.parametrize("preset", PRESETS, ids=lambda p: f"lod{p['lod']}-{p['quant']}")
    def test_sequential_bitwise_identical(self, preset):
        plain = _run(0, None, **preset)
        traced = _run(0, ObsContext.create(), **preset)
        _assert_results_identical(plain, traced)

    @pytest.mark.parametrize("preset", PRESETS, ids=lambda p: f"lod{p['lod']}-{p['quant']}")
    def test_pool_bitwise_identical(self, preset):
        plain = _run(2, None, **preset)
        traced = _run(2, ObsContext.create(), **preset)
        _assert_results_identical(plain, traced)

    def test_sharded_bitwise_identical(self):
        plain = _run(2, None, shards=2)
        traced = _run(2, ObsContext.create(), shards=2)
        _assert_results_identical(plain, traced)

    def test_health_plane_polled_mid_run_bitwise_identical(self):
        # A hyper-sensitive watchdog classifying every worker slow plus
        # health() polls racing the job: all of it is report-only, so the
        # output must still be the plain run's exact bytes.
        plain = _run(2, None)
        watchdog = Watchdog(slow_after_s=1e-6, stalled_after_s=1e-3)
        obs = ObsContext.create()
        with RenderExecutor(num_workers=2, obs=obs, watchdog=watchdog) as executor:
            handle = executor.submit(quick_job())
            for _ in range(10):
                executor.health()  # mid-run polls must not perturb anything
            traced = handle.result(timeout=300)
            health = executor.health()
        assert health["mode"] == "pool" and len(health["workers"]) == 2
        _assert_results_identical(plain, traced)


def _live_plane(obs):
    """Attach the full telemetry plane to ``obs``: span tracker + memory
    attributor on the tracer's observer slot, a fast CPU sampler, and a
    started attributor.  Returns (sampler, memory); caller stops both."""
    tracker = SpanStackTracker()
    memory = MemoryAttributor()
    memory.start()
    obs.tracer.observer = CompositeObserver(tracker, memory)
    sampler = StackSampler(interval_s=0.002, tracker=tracker)
    sampler.start()
    return sampler, memory


def _hammer(base_url: str, stop: threading.Event, errors: list) -> None:
    """Scrape every endpoint in a tight loop until ``stop`` is set."""
    cursor = 0
    while not stop.is_set():
        try:
            for path in ("/metrics", "/health", f"/trace.jsonl?cursor={cursor}", "/"):
                with urllib.request.urlopen(base_url + path, timeout=30) as resp:
                    if path.startswith("/trace"):
                        cursor = int(resp.headers["X-Trace-Cursor"])
                    resp.read()
        except Exception as exc:  # noqa: BLE001 - surfaced via the assert
            errors.append(exc)
            return


class TestLiveTelemetryUnperturbed:
    def test_server_sampler_and_memory_attached_bitwise_identical(self):
        # The whole live plane at once — HTTP server, CPU sampler, memory
        # attributor, per-worker /proc sampling on replies — with three
        # scraper threads hammering every endpoint mid-run.  The output
        # must still be the plain run's exact bytes.
        plain = _run(2, None)
        obs = ObsContext.create()
        sampler, memory = _live_plane(obs)
        stop = threading.Event()
        errors: list = []
        try:
            with RenderExecutor(num_workers=2, obs=obs) as executor, TelemetryServer(
                "127.0.0.1",
                0,
                tracer=obs.tracer,
                metrics_fn=executor.collect_metrics,
                health_fn=executor.health,
                sampler=sampler,
                memory=memory,
            ) as server:
                base = f"http://{server.address}"
                scrapers = [
                    threading.Thread(target=_hammer, args=(base, stop, errors))
                    for _ in range(3)
                ]
                for thread in scrapers:
                    thread.start()
                traced = executor.submit(quick_job()).result(timeout=300)
                stop.set()
                for thread in scrapers:
                    thread.join()
        finally:
            stop.set()
            sampler.stop()
            memory.stop()
        assert not errors, errors
        _assert_results_identical(plain, traced)

    def test_scheduler_decision_log_identical_under_scraping(self):
        spec = WorkloadSpec(
            arrival="bursty", rate_rps=8, duration_s=3, num_clients=2, slo_ms=250, seed=0
        )
        plain = run_workload(spec, RequestScheduler(quick=True))
        obs = ObsContext.create()
        sampler, memory = _live_plane(obs)
        stop = threading.Event()
        errors: list = []
        try:
            scheduler = RequestScheduler(quick=True, obs=obs)
            with TelemetryServer(
                "127.0.0.1",
                0,
                tracer=obs.tracer,
                metrics_fn=scheduler.live_metrics,
                health_fn=scheduler.health,
                sampler=sampler,
                memory=memory,
            ) as server:
                scraper = threading.Thread(
                    target=_hammer, args=(f"http://{server.address}", stop, errors)
                )
                scraper.start()
                traced = run_workload(spec, scheduler)
                stop.set()
                scraper.join()
        finally:
            stop.set()
            sampler.stop()
            memory.stop()
        assert not errors, errors
        assert json.dumps(plain.log.events) == json.dumps(traced.log.events)
        assert json.dumps(
            plain.summary(include_events=True), sort_keys=True
        ) == json.dumps(traced.summary(include_events=True), sort_keys=True)


class TestSchedulerUnperturbed:
    SPEC = WorkloadSpec(
        arrival="bursty", rate_rps=8, duration_s=3, num_clients=2, slo_ms=250, seed=0
    )

    def test_decision_log_and_report_identical(self):
        plain = run_workload(self.SPEC, RequestScheduler(quick=True))
        obs = ObsContext.create()
        traced = run_workload(self.SPEC, RequestScheduler(quick=True, obs=obs))
        # The decision log — the committed replay artifact — is equal as a
        # list of dicts AND as serialized bytes.
        assert plain.log.events == traced.log.events
        assert json.dumps(plain.log.events) == json.dumps(traced.log.events)
        assert json.dumps(
            plain.summary(include_events=True), sort_keys=True
        ) == json.dumps(traced.summary(include_events=True), sort_keys=True)
        # ... while the traced run actually produced a trace.
        assert len(obs.tracer) > 0
