"""Tests for image quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render.metrics import lpips_proxy, mse, psnr, ssim


class TestPsnrAndMse:
    def test_identical_images_have_zero_mse_and_infinite_psnr(self, rng):
        image = rng.uniform(size=(32, 32, 3))
        assert mse(image, image) == 0.0
        assert psnr(image, image) == float("inf")

    def test_known_mse(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.5)
        assert mse(a, b) == pytest.approx(0.25)
        assert psnr(a, b) == pytest.approx(10.0 * np.log10(1.0 / 0.25))

    def test_psnr_decreases_with_noise(self, rng):
        image = rng.uniform(size=(32, 32, 3))
        small = np.clip(image + rng.normal(scale=0.01, size=image.shape), 0, 1)
        large = np.clip(image + rng.normal(scale=0.1, size=image.shape), 0, 1)
        assert psnr(image, small) > psnr(image, large)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            mse(rng.uniform(size=(4, 4)), rng.uniform(size=(5, 5)))

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            mse(np.zeros(16), np.zeros(16))


class TestSsim:
    def test_identical_images_give_one(self, rng):
        image = rng.uniform(size=(32, 32, 3))
        assert ssim(image, image) == pytest.approx(1.0, abs=1e-9)

    def test_uncorrelated_noise_scores_lower(self, rng):
        image = rng.uniform(size=(32, 32))
        noise = rng.uniform(size=(32, 32))
        assert ssim(image, noise) < 0.7

    def test_ssim_bounded(self, rng):
        a = rng.uniform(size=(16, 16))
        b = rng.uniform(size=(16, 16))
        value = ssim(a, b)
        assert -1.0 <= value <= 1.0


class TestLpipsProxy:
    def test_identical_images_give_zero(self, rng):
        image = rng.uniform(size=(64, 64, 3))
        assert lpips_proxy(image, image) == pytest.approx(0.0, abs=1e-12)

    def test_increases_with_distortion(self, rng):
        image = rng.uniform(size=(64, 64, 3))
        mild = np.clip(image + rng.normal(scale=0.02, size=image.shape), 0, 1)
        severe = np.clip(image + rng.normal(scale=0.3, size=image.shape), 0, 1)
        assert lpips_proxy(image, mild) < lpips_proxy(image, severe)

    def test_tiny_images_do_not_crash(self):
        a = np.zeros((3, 3))
        b = np.ones((3, 3))
        assert lpips_proxy(a, b) >= 0.0

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            lpips_proxy(rng.uniform(size=(8, 8)), rng.uniform(size=(8, 9)))
