"""Tests for energy accounting and the published area/power tables."""

from __future__ import annotations

import pytest

from repro.arch.area import (
    GCC_BUFFER_MODULES,
    GCC_COMPUTE_MODULES,
    GCC_TOTAL_AREA_MM2,
    GSCORE_TOTAL_AREA_MM2,
    gcc_area_table,
    scaled_alpha_blend_area,
    scaled_image_buffer_area,
)
from repro.arch.energy import compute_energy_breakdown
from repro.arch.params import EnergyParams, dram_preset


class TestEnergyBreakdown:
    def test_all_components_present_and_nonnegative(self):
        energy = compute_energy_breakdown(
            dram_bytes=1000,
            sram_bytes=2000,
            compute_ops={"fma": 500, "sfu": 100, "cmp": 50},
            frame_time_s=1e-3,
            energy=EnergyParams(),
        )
        assert set(energy) == {"dram", "sram", "compute", "static"}
        assert all(value >= 0 for value in energy.values())

    def test_dram_energy_scales_with_bytes(self):
        params = EnergyParams()
        small = compute_energy_breakdown(1000, 0, {}, 0.0, params)
        large = compute_energy_breakdown(10_000, 0, {}, 0.0, params)
        assert large["dram"] == pytest.approx(10 * small["dram"])

    def test_preset_overrides_dram_energy_per_byte(self):
        params = EnergyParams(dram_pj_per_byte=100.0)
        with_preset = compute_energy_breakdown(
            1000, 0, {}, 0.0, params, dram=dram_preset("LPDDR4-3200")
        )
        assert with_preset["dram"] == pytest.approx(1000 * 20.0)

    def test_unknown_op_kind_charged_at_fma_rate(self):
        params = EnergyParams(fma_pj=2.0)
        energy = compute_energy_breakdown(0, 0, {"mystery": 10}, 0.0, params)
        assert energy["compute"] == pytest.approx(20.0)

    def test_static_term_scales_with_frame_time(self):
        params = EnergyParams(static_power_w=0.1)
        energy = compute_energy_breakdown(0, 0, {}, 2e-3, params)
        assert energy["static"] == pytest.approx(0.1 * 2e-3 * 1e12)


class TestAreaTables:
    def test_module_breakdown_sums_to_published_totals(self):
        compute_area = sum(m.area_mm2 for m in GCC_COMPUTE_MODULES)
        buffer_area = sum(m.area_mm2 for m in GCC_BUFFER_MODULES)
        # Table 4 totals (within rounding of the published per-module numbers).
        assert compute_area == pytest.approx(1.675, abs=0.01)
        assert buffer_area == pytest.approx(1.036, abs=0.01)
        assert compute_area + buffer_area == pytest.approx(GCC_TOTAL_AREA_MM2, abs=0.01)

    def test_gcc_is_smaller_than_gscore(self):
        # The paper: GCC occupies ~30-40% less area than GSCore.
        assert GCC_TOTAL_AREA_MM2 < GSCORE_TOTAL_AREA_MM2
        assert GCC_TOTAL_AREA_MM2 / GSCORE_TOTAL_AREA_MM2 == pytest.approx(0.686, abs=0.02)

    def test_area_table_contains_all_modules_and_totals(self):
        table = gcc_area_table()
        components = {row["component"] for row in table}
        assert "Alpha Unit" in components
        assert "Image Buffer" in components
        assert "GCC Total" in components
        assert "GSCore Total" in components

    def test_image_buffer_area_scales_linearly(self):
        assert scaled_image_buffer_area(256 * 1024) == pytest.approx(2 * 0.872, rel=1e-6)
        assert scaled_image_buffer_area(128 * 1024) == pytest.approx(0.872, rel=1e-6)

    def test_alpha_blend_area_scales_with_pe_count(self):
        base = scaled_alpha_blend_area(8)
        assert base == pytest.approx(0.958, abs=1e-6)
        assert scaled_alpha_blend_area(16) == pytest.approx(4 * base, rel=1e-6)

    def test_invalid_scaling_inputs_raise(self):
        with pytest.raises(ValueError):
            scaled_image_buffer_area(0)
        with pytest.raises(ValueError):
            scaled_alpha_blend_area(0)
