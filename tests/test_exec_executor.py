"""Persistent executor: concurrency, residency, crash recovery, facade.

The heavyweight throughput claim (warm-pool repeats >= 2x the cold
per-job-pool path) lives in ``benchmarks/bench_exec_residency.py``; here we
verify correctness on tiny jobs: concurrent mixed-tier jobs stay bitwise
identical to the sequential path, scene tiers ship at most once per worker,
a killed worker is replaced and its frame surfaces as
:class:`FrameRenderError`, and the farm facade delegates faithfully.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.exec import RenderExecutor
from repro.exec.frames import FrameRenderError
from repro.exec.worker import CRASH_ENV
from repro.serve.farm import RenderFarm
from repro.serve.trajectories import RenderJob, make_trajectory


def _assert_stats_equal(a, b) -> None:
    assert type(a) is type(b)
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), f.name
        else:
            assert va == vb, f.name


def quick_job(num_frames: int = 3, **kwargs) -> RenderJob:
    return RenderJob(
        "train", make_trajectory("orbit", num_frames=num_frames), quick=True, **kwargs
    )


class TestValidation:
    def test_negative_worker_count_rejected(self):
        with pytest.raises(ValueError):
            RenderExecutor(num_workers=-1)

    def test_unknown_scene_format_rejected(self):
        with pytest.raises(ValueError):
            RenderExecutor(scene_format="yaml")

    @pytest.mark.parametrize(
        "kwargs", [dict(worker_cache_size=0), dict(resident_cache_size=0)]
    )
    def test_nonpositive_cache_sizes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RenderExecutor(**kwargs)

    def test_submit_after_shutdown_rejected(self):
        executor = RenderExecutor(num_workers=0)
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            executor.submit(quick_job())


class TestSequentialMode:
    def test_matches_farm_sequential_bitwise(self):
        farm = RenderFarm(num_workers=0).run(quick_job())
        with RenderExecutor(num_workers=0) as executor:
            result = executor.submit(quick_job()).result()
        assert result.num_workers == 0
        assert result.ship_bytes == 0
        for a, b in zip(farm.frames, result.frames):
            assert np.array_equal(a.image, b.image)
            _assert_stats_equal(a.stats, b.stats)

    def test_resident_cache_makes_repeats_warm(self):
        with RenderExecutor(num_workers=0) as executor:
            cold = executor.submit(quick_job()).result()
            warm = executor.submit(quick_job()).result()
        assert cold.cache_misses == 1 and cold.cache_hits == 0
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        assert warm.warm and not cold.warm
        assert executor.stats.cache_hits == 1
        assert executor.stats.frames_rendered == 6

    def test_streams_frames_in_index_order(self):
        seen: list[int] = []
        with RenderExecutor(num_workers=0) as executor:
            executor.submit(quick_job(), on_frame=lambda r: seen.append(r.index)).result()
        assert seen == [0, 1, 2]

    def test_frame_failure_carries_index_scene_and_cause(self, monkeypatch):
        import repro.exec.frames as frames_module

        def explode(scene, camera, spec):
            raise ValueError("synthetic kernel failure")

        monkeypatch.setattr(frames_module, "render_frame", explode)
        handle = RenderExecutor(num_workers=0).submit(quick_job())
        with pytest.raises(FrameRenderError) as excinfo:
            handle.result()
        assert excinfo.value.frame_index == 0
        assert excinfo.value.scene == "train"
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert excinfo.value is handle._error  # failure is sticky on the handle


class TestConcurrentDispatch:
    def test_two_concurrent_mixed_tier_jobs_bitwise_identical(self):
        """The acceptance-criteria check: 2 jobs at mixed (lod, quant)
        tiers dispatched concurrently onto one 2-worker executor produce
        exactly the sequential path's bits — images and stats counters."""
        lossless = quick_job(3)
        compact = quick_job(3, lod=1, quant="compact")
        with RenderExecutor(num_workers=2) as executor:
            handles = [executor.submit(lossless), executor.submit(compact)]
            pooled = [handle.result(timeout=300) for handle in handles]
        for job, result in zip((lossless, compact), pooled):
            expected = RenderFarm(num_workers=0).run(job)
            assert [f.index for f in result.frames] == [0, 1, 2]
            for a, b in zip(expected.frames, result.frames):
                assert np.array_equal(a.image, b.image)
                _assert_stats_equal(a.stats, b.stats)
            assert expected.aggregate_counters() == result.aggregate_counters()

    def test_pool_streams_every_frame_once(self):
        seen: list[int] = []
        with RenderExecutor(num_workers=2) as executor:
            result = executor.submit(
                quick_job(4), on_frame=lambda r: seen.append(r.index)
            ).result(timeout=300)
        assert sorted(seen) == [0, 1, 2, 3]
        assert [f.index for f in result.frames] == [0, 1, 2, 3]

    def test_summary_is_json_serialisable(self):
        with RenderExecutor(num_workers=2) as executor:
            summary = executor.submit(quick_job(2)).result(timeout=300).summary()
        encoded = json.loads(json.dumps(summary))
        assert encoded["residency"]["cache_misses"] >= 1
        assert encoded["ship_bytes"] > 0


class TestResidency:
    def test_tier_ships_at_most_once_per_worker(self):
        job = quick_job(4)
        with RenderExecutor(num_workers=2) as executor:
            first = executor.submit(job).result(timeout=300)
            repeats = [executor.submit(job).result(timeout=300) for _ in range(3)]
            stats = executor.stats
        # The payload is encoded exactly once, and each of the two workers
        # decodes it at most once — no matter how many jobs follow.
        assert first.ship_bytes > 0
        assert all(r.ship_bytes == 0 for r in repeats)
        assert all(r.warm for r in repeats)
        assert stats.published_payloads == 1
        assert stats.cache_misses <= 2  # <= num_workers
        assert stats.loaded_bytes <= 2 * first.ship_bytes
        assert stats.cache_hits == stats.frames_rendered - stats.cache_misses

    def test_distinct_tiers_publish_distinct_payloads(self):
        with RenderExecutor(num_workers=2) as executor:
            a = executor.submit(quick_job(2)).result(timeout=300)
            b = executor.submit(quick_job(2, lod=1, quant="compact")).result(timeout=300)
            assert executor.stats.published_payloads == 2
        assert 0 < b.ship_bytes < a.ship_bytes

    def test_caller_supplied_scene_never_aliases(self):
        from repro.gaussians.synthetic import make_scene

        scene = make_scene("train", scale=0.05)
        job = quick_job(2)
        with RenderExecutor(num_workers=2) as executor:
            first = executor.submit(job, scene=scene).result(timeout=300)
            second = executor.submit(job, scene=scene).result(timeout=300)
            # ... and each payload is deleted when its job finishes, so a
            # long-lived executor cannot leak one file per submission.
            assert not executor._payloads
        # Custom scenes get a unique payload per submission (no residency
        # reuse, exactly the pre-executor per-job shipping semantics).
        assert first.ship_bytes > 0
        assert second.ship_bytes > 0


class TestCrashRecovery:
    def test_killed_worker_is_replaced_and_frame_surfaces(self, monkeypatch):
        """Kill a worker mid-job: the frame fails as FrameRenderError with
        index + scene, a replacement worker joins, and later jobs finish."""
        monkeypatch.setenv(CRASH_ENV, "train:1")
        with RenderExecutor(num_workers=2) as executor:
            with pytest.raises(FrameRenderError) as excinfo:
                executor.submit(quick_job(4)).result(timeout=300)
            error = excinfo.value
            assert error.frame_index == 1
            assert error.scene == "train"
            assert "worker process died" in str(error)

            # The executor healed itself: full capacity, and a follow-up
            # job (frame 0 only — the crash directive names frame 1)
            # completes normally on the replaced pool.
            follow_up = executor.submit(quick_job(1)).result(timeout=300)
            assert follow_up.num_frames == 1
            assert executor.stats.workers_replaced == 1
            assert len(executor._workers) == 2

    def test_crash_does_not_fail_other_jobs(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "train:2")
        doomed = quick_job(3)  # frame 2 exists only here
        survivor = quick_job(2, lod=1, quant="compact")
        expected = RenderFarm(num_workers=0).run(survivor)
        with RenderExecutor(num_workers=2) as executor:
            doomed_handle = executor.submit(doomed)
            survivor_handle = executor.submit(survivor)
            with pytest.raises(FrameRenderError):
                doomed_handle.result(timeout=300)
            result = survivor_handle.result(timeout=300)
        for a, b in zip(expected.frames, result.frames):
            assert np.array_equal(a.image, b.image)


class TestFarmFacade:
    def test_shared_executor_keeps_scenes_resident_across_runs(self):
        with RenderExecutor(num_workers=2) as executor:
            farm = RenderFarm(executor=executor)
            assert farm.num_workers == 2
            cold = farm.run(quick_job(2))
            warm = farm.run(quick_job(2))
        assert cold.ship_bytes > 0
        assert warm.ship_bytes == 0 and warm.warm
        for a, b in zip(cold.frames, warm.frames):
            assert np.array_equal(a.image, b.image)

    def test_farm_submit_requires_shared_executor(self):
        with pytest.raises(RuntimeError, match="shared executor"):
            RenderFarm(num_workers=0).submit(quick_job())

    def test_farm_submit_overlaps_jobs(self):
        with RenderExecutor(num_workers=2) as executor:
            farm = RenderFarm(executor=executor)
            handles = [farm.submit(quick_job(2)) for _ in range(3)]
            results = [h.result(timeout=300) for h in handles]
        assert all(r.num_frames == 2 for r in results)
        assert executor.stats.jobs_completed == 3


class TestShutdown:
    def test_shutdown_is_idempotent(self):
        executor = RenderExecutor(num_workers=2)
        executor.submit(quick_job(2)).result(timeout=300)
        executor.shutdown()
        executor.shutdown()

    def test_nowait_shutdown_fails_unfinished_jobs(self):
        executor = RenderExecutor(num_workers=2)
        # Enough frames that the job cannot complete in the instants
        # between submit and the abort below.
        handle = executor.submit(quick_job(16))
        executor.shutdown(wait=False)
        with pytest.raises(RuntimeError, match="shut down"):
            handle.result(timeout=300)
