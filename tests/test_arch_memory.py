"""Tests for the DRAM/SRAM models and technology parameters."""

from __future__ import annotations

import pytest

from repro.arch.memory import DramModel, SramBuffer, TrafficCounter, image_buffer_bytes
from repro.arch.params import DRAM_PRESETS, EnergyParams, TechnologyParams, dram_preset


class TestTrafficCounter:
    def test_total_sums_all_classes(self):
        counter = TrafficCounter(gaussian_3d=10, gaussian_2d=20, key_value=30, grouping=5, framebuffer=1)
        assert counter.total == 66
        assert counter.as_dict()["total"] == 66

    def test_addition(self):
        a = TrafficCounter(gaussian_3d=1, key_value=2)
        b = TrafficCounter(gaussian_3d=10, grouping=3)
        merged = a + b
        assert merged.gaussian_3d == 11
        assert merged.key_value == 2
        assert merged.grouping == 3


class TestDramModel:
    def test_bytes_per_cycle_matches_preset(self):
        dram = DramModel(preset=dram_preset("LPDDR4-3200"), tech=TechnologyParams(clock_hz=1e9))
        assert dram.bytes_per_cycle == pytest.approx(51.2)

    def test_record_and_transfer_cycles(self):
        dram = DramModel(preset=dram_preset("LPDDR4-3200"))
        dram.record("gaussian_3d", 512)
        assert dram.traffic.gaussian_3d == 512
        assert dram.transfer_cycles() == pytest.approx(10.0)

    def test_unknown_traffic_class_raises(self):
        with pytest.raises(KeyError):
            DramModel().record("cache", 10)

    def test_negative_bytes_raise(self):
        with pytest.raises(ValueError):
            DramModel().record("gaussian_3d", -1)

    def test_energy_uses_preset_per_byte(self):
        dram = DramModel(preset=dram_preset("LPDDR4-3200"))
        dram.record("gaussian_3d", 100)
        assert dram.energy_pj() == pytest.approx(100 * 20.0)

    def test_faster_dram_moves_data_in_fewer_cycles(self):
        slow = DramModel(preset=dram_preset("LPDDR4-3200"))
        fast = DramModel(preset=dram_preset("LPDDR6-14400"))
        slow.record("gaussian_3d", 10_000)
        fast.record("gaussian_3d", 10_000)
        assert fast.transfer_cycles() < slow.transfer_cycles()


class TestSramBuffer:
    def test_capacity_check(self):
        buffer = SramBuffer("image", capacity_bytes=1024)
        assert buffer.fits(1024)
        assert not buffer.fits(1025)

    def test_access_accumulates_and_energy_scales(self):
        buffer = SramBuffer("image", capacity_bytes=1024)
        buffer.access(100)
        buffer.access(50)
        assert buffer.bytes_accessed == 150
        assert buffer.energy_pj(0.6) == pytest.approx(90.0)

    def test_negative_access_raises(self):
        with pytest.raises(ValueError):
            SramBuffer("x", 10).access(-1)


class TestParams:
    def test_all_presets_have_positive_bandwidth(self):
        for preset in DRAM_PRESETS.values():
            assert preset.bandwidth_gbps > 0
            assert preset.energy_pj_per_byte > 0

    def test_bandwidth_ordering_matches_generations(self):
        assert (
            DRAM_PRESETS["LPDDR4-3200"].bandwidth_gbps
            < DRAM_PRESETS["LPDDR5-6400"].bandwidth_gbps
            < DRAM_PRESETS["LPDDR6-14400"].bandwidth_gbps
        )

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            dram_preset("HBM3")

    def test_cycle_time(self):
        assert TechnologyParams(clock_hz=2e9).cycle_time_s == pytest.approx(0.5e-9)

    def test_energy_params_defaults_are_positive(self):
        params = EnergyParams()
        assert params.fma_pj > 0 and params.sram_pj_per_byte > 0 and params.dram_pj_per_byte > 0

    def test_image_buffer_bytes(self):
        assert image_buffer_bytes(128, 128, bytes_per_pixel=16) == 128 * 128 * 16
