"""Tests for alpha computation and front-to-back blending primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render.blending import blend_pixels, compute_alpha, finalize_image
from repro.render.common import ALPHA_MAX, ALPHA_MIN


class TestComputeAlpha:
    def test_peak_alpha_at_centre_equals_opacity(self):
        conic = np.array([0.5, 0.0, 0.5])
        alpha = compute_alpha(conic, 0.7, np.array([0.0]), np.array([0.0]))
        assert alpha[0] == pytest.approx(0.7)

    def test_alpha_is_clamped_to_maximum(self):
        conic = np.array([0.5, 0.0, 0.5])
        alpha = compute_alpha(conic, 1.0, np.array([0.0]), np.array([0.0]))
        assert alpha[0] == pytest.approx(ALPHA_MAX)

    def test_values_below_threshold_are_zeroed(self):
        conic = np.array([1.0, 0.0, 1.0])
        alpha = compute_alpha(conic, 0.9, np.array([10.0]), np.array([10.0]))
        assert alpha[0] == 0.0

    def test_alpha_decreases_with_distance(self):
        conic = np.array([0.2, 0.0, 0.2])
        dx = np.array([0.0, 1.0, 2.0, 3.0])
        alpha = compute_alpha(conic, 0.9, dx, np.zeros_like(dx))
        nonzero = alpha[alpha > 0]
        assert np.all(np.diff(nonzero) <= 0)

    @given(
        opacity=st.floats(min_value=ALPHA_MIN, max_value=1.0),
        dx=st.floats(min_value=-5.0, max_value=5.0),
        dy=st.floats(min_value=-5.0, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_alpha_always_in_valid_range(self, opacity, dx, dy):
        conic = np.array([0.3, 0.05, 0.4])
        alpha = compute_alpha(conic, opacity, np.array([dx]), np.array([dy]))
        assert alpha[0] == 0.0 or ALPHA_MIN <= alpha[0] <= ALPHA_MAX


class TestBlendPixels:
    def test_blending_reduces_transmittance(self):
        color = np.zeros((4, 3))
        trans = np.ones(4)
        alpha = np.array([0.5, 0.25, 0.0, 0.9])
        count = blend_pixels(color, trans, alpha, np.array([1.0, 0.0, 0.0]), 1e-4)
        assert count == 3
        assert np.allclose(trans, [0.5, 0.75, 1.0, 0.1])

    def test_color_accumulates_weighted_contribution(self):
        color = np.zeros((1, 3))
        trans = np.ones(1)
        blend_pixels(color, trans, np.array([0.5]), np.array([0.2, 0.4, 0.6]), 1e-4)
        assert np.allclose(color[0], [0.1, 0.2, 0.3])

    def test_saturated_pixels_are_skipped(self):
        color = np.zeros((2, 3))
        trans = np.array([1e-6, 1.0])
        count = blend_pixels(color, trans, np.array([0.5, 0.5]), np.array([1.0, 1.0, 1.0]), 1e-4)
        assert count == 1
        assert color[0, 0] == 0.0
        assert trans[0] == pytest.approx(1e-6)

    def test_zero_alpha_contributes_nothing(self):
        color = np.zeros((2, 3))
        trans = np.ones(2)
        count = blend_pixels(color, trans, np.zeros(2), np.ones(3), 1e-4)
        assert count == 0
        assert np.allclose(trans, 1.0)

    @given(alphas=st.lists(st.floats(min_value=0.0, max_value=0.99), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_transmittance_is_monotone_non_increasing(self, alphas):
        color = np.zeros((1, 3))
        trans = np.ones(1)
        previous = 1.0
        for alpha in alphas:
            blend_pixels(color, trans, np.array([alpha]), np.array([0.5, 0.5, 0.5]), 1e-6)
            assert trans[0] <= previous + 1e-12
            previous = trans[0]
        assert trans[0] >= 0.0

    @given(alphas=st.lists(st.floats(min_value=0.0, max_value=0.99), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_blended_color_bounded_by_input_color(self, alphas):
        # Blending a constant colour c can never exceed c per channel.
        color = np.zeros((1, 3))
        trans = np.ones(1)
        target = np.array([0.3, 0.6, 0.9])
        for alpha in alphas:
            blend_pixels(color, trans, np.array([alpha]), target, 1e-6)
        assert np.all(color[0] <= target + 1e-9)


class TestFinalizeImage:
    def test_background_fills_untouched_pixels(self):
        color = np.zeros((2, 2, 3))
        trans = np.ones((2, 2))
        image = finalize_image(color, trans, (0.1, 0.2, 0.3))
        assert np.allclose(image[0, 0], [0.1, 0.2, 0.3])

    def test_opaque_pixels_ignore_background(self):
        color = np.full((1, 1, 3), 0.7)
        trans = np.zeros((1, 1))
        image = finalize_image(color, trans, (1.0, 1.0, 1.0))
        assert np.allclose(image[0, 0], 0.7)
