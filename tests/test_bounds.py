"""Tests for AABB/OBB/alpha footprint analysis (Table 1 / Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render.bounds import (
    alpha_footprint_mask,
    count_footprint_pixels,
    frame_footprint_counts,
    obb_axes,
)
from repro.render.preprocess import project_scene


def _projected_single(opacity: float, front_camera, aspect: float = 3.0):
    from repro.gaussians.synthetic import make_single_gaussian_scene

    scene = make_single_gaussian_scene(opacity=opacity, scale=0.2, aspect=aspect)
    projected = project_scene(scene, front_camera)
    assert projected.num_visible == 1
    return projected


class TestObbAxes:
    def test_axes_are_orthonormal(self, rng):
        mats = rng.normal(size=(2, 2))
        cov = mats @ mats.T + 0.1 * np.eye(2)
        major, minor, half_major, half_minor = obb_axes(cov)
        assert np.dot(major, minor) == pytest.approx(0.0, abs=1e-9)
        assert np.linalg.norm(major) == pytest.approx(1.0)
        assert half_major >= half_minor

    def test_half_lengths_follow_eigenvalues(self):
        cov = np.diag([16.0, 4.0])
        _, _, half_major, half_minor = obb_axes(cov)
        assert half_major == pytest.approx(12.0)
        assert half_minor == pytest.approx(6.0)


class TestFootprintCounts:
    def test_obb_is_no_larger_than_aabb(self, front_camera):
        projected = _projected_single(0.9, front_camera)
        counts = count_footprint_pixels(
            projected.means2d[0], projected.cov2d[0], projected.conics[0], 0.9,
            front_camera.width, front_camera.height,
        )
        assert counts.obb <= counts.aabb
        assert counts.aabb > 0

    def test_alpha_region_shrinks_with_opacity(self, front_camera):
        high = _projected_single(1.0, front_camera)
        low = _projected_single(0.01, front_camera)
        counts_high = count_footprint_pixels(
            high.means2d[0], high.cov2d[0], high.conics[0], 1.0,
            front_camera.width, front_camera.height,
        )
        counts_low = count_footprint_pixels(
            low.means2d[0], low.cov2d[0], low.conics[0], 0.01,
            front_camera.width, front_camera.height,
        )
        # AABB/OBB are opacity-independent; the alpha-exact region is not.
        assert counts_low.aabb == counts_high.aabb
        assert counts_low.obb == counts_high.obb
        assert counts_low.alpha < counts_high.alpha

    def test_opacity_below_threshold_gives_empty_alpha_region(self, front_camera):
        projected = _projected_single(0.9, front_camera)
        counts = count_footprint_pixels(
            projected.means2d[0], projected.cov2d[0], projected.conics[0], 1.0 / 1000.0,
            front_camera.width, front_camera.height,
        )
        assert counts.alpha == 0

    def test_counts_add(self):
        from repro.render.bounds import FootprintCounts

        total = FootprintCounts(1, 2, 3) + FootprintCounts(10, 20, 30)
        assert (total.aabb, total.obb, total.alpha) == (11, 22, 33)

    def test_frame_counts_sum_over_gaussians(self, smoke_scene, smoke_camera):
        projected = project_scene(smoke_scene, smoke_camera)
        counts = frame_footprint_counts(projected, smoke_camera.width, smoke_camera.height)
        assert counts.aabb >= counts.obb >= 0
        assert counts.aabb >= counts.alpha >= 0
        assert counts.aabb > 0


class TestAlphaFootprintMask:
    def test_mask_matches_counted_pixels(self, front_camera):
        projected = _projected_single(0.8, front_camera)
        counts = count_footprint_pixels(
            projected.means2d[0], projected.cov2d[0], projected.conics[0], 0.8,
            front_camera.width, front_camera.height,
        )
        mask = alpha_footprint_mask(
            projected.means2d[0], projected.conics[0], 0.8,
            front_camera.width, front_camera.height,
        )
        assert int(mask.sum()) == counts.alpha

    def test_mask_contains_projected_centre_for_opaque_gaussian(self, front_camera):
        projected = _projected_single(1.0, front_camera)
        mask = alpha_footprint_mask(
            projected.means2d[0], projected.conics[0], 1.0,
            front_camera.width, front_camera.height,
        )
        cx = int(round(projected.means2d[0, 0]))
        cy = int(round(projected.means2d[0, 1]))
        assert mask[cy, cx]
