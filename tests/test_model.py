"""Tests for the GaussianScene container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians.model import (
    BYTES_PER_GAUSSIAN,
    FLOATS_PER_GAUSSIAN,
    GaussianScene,
    SceneValidationError,
)
from repro.gaussians.sh import SH_COEFFS_PER_CHANNEL


def _valid_arrays(count: int, rng: np.random.Generator) -> dict:
    quats = rng.normal(size=(count, 4))
    return {
        "means": rng.normal(size=(count, 3)),
        "scales": np.abs(rng.normal(size=(count, 3))) + 0.01,
        "quaternions": quats,
        "opacities": rng.uniform(0.05, 1.0, size=count),
        "sh_coeffs": rng.normal(size=(count, 3, SH_COEFFS_PER_CHANNEL)),
    }


class TestConstructionAndValidation:
    def test_parameter_count_matches_paper(self):
        # The paper: each Gaussian is 59 floating-point parameters.
        assert FLOATS_PER_GAUSSIAN == 59
        assert BYTES_PER_GAUSSIAN == 236

    def test_valid_scene_constructs(self, rng):
        scene = GaussianScene(**_valid_arrays(10, rng), name="test")
        assert scene.num_gaussians == 10
        assert len(scene) == 10
        assert scene.total_bytes == 10 * BYTES_PER_GAUSSIAN

    def test_empty_scene(self):
        scene = GaussianScene.empty()
        assert scene.num_gaussians == 0
        assert scene.total_bytes == 0

    def test_rejects_mismatched_shapes(self, rng):
        arrays = _valid_arrays(5, rng)
        arrays["scales"] = arrays["scales"][:4]
        with pytest.raises(SceneValidationError):
            GaussianScene(**arrays)

    def test_rejects_negative_scales(self, rng):
        arrays = _valid_arrays(5, rng)
        arrays["scales"][2, 1] = -0.1
        with pytest.raises(SceneValidationError):
            GaussianScene(**arrays)

    def test_rejects_out_of_range_opacity(self, rng):
        arrays = _valid_arrays(5, rng)
        arrays["opacities"][0] = 1.5
        with pytest.raises(SceneValidationError):
            GaussianScene(**arrays)

    def test_rejects_zero_quaternion(self, rng):
        arrays = _valid_arrays(5, rng)
        arrays["quaternions"][3] = 0.0
        with pytest.raises(SceneValidationError):
            GaussianScene(**arrays)

    def test_rejects_wrong_sh_width(self, rng):
        arrays = _valid_arrays(5, rng)
        arrays["sh_coeffs"] = arrays["sh_coeffs"][:, :, :8]
        with pytest.raises(SceneValidationError):
            GaussianScene(**arrays)


class TestSceneOperations:
    def test_subset_by_indices(self, rng):
        scene = GaussianScene(**_valid_arrays(10, rng))
        subset = scene.subset(np.array([1, 3, 5]))
        assert subset.num_gaussians == 3
        assert np.allclose(subset.means[1], scene.means[3])

    def test_subset_by_boolean_mask(self, rng):
        scene = GaussianScene(**_valid_arrays(10, rng))
        mask = scene.opacities > np.median(scene.opacities)
        subset = scene.subset(mask)
        assert subset.num_gaussians == int(np.count_nonzero(mask))

    def test_concatenated_with(self, rng):
        scene_a = GaussianScene(**_valid_arrays(4, rng))
        scene_b = GaussianScene(**_valid_arrays(6, rng))
        merged = scene_a.concatenated_with(scene_b)
        assert merged.num_gaussians == 10
        assert np.allclose(merged.means[:4], scene_a.means)
        assert np.allclose(merged.means[4:], scene_b.means)

    def test_normalized_quaternions_are_unit(self, rng):
        scene = GaussianScene(**_valid_arrays(8, rng))
        norms = np.linalg.norm(scene.normalized_quaternions(), axis=1)
        assert np.allclose(norms, 1.0)

    def test_bounding_box_contains_all_means(self, rng):
        scene = GaussianScene(**_valid_arrays(20, rng))
        lo, hi = scene.bounding_box()
        assert np.all(scene.means >= lo - 1e-12)
        assert np.all(scene.means <= hi + 1e-12)

    def test_bounding_box_of_empty_scene_is_zero(self):
        lo, hi = GaussianScene.empty().bounding_box()
        assert np.allclose(lo, 0.0) and np.allclose(hi, 0.0)

    def test_from_flat_colors_reproduces_rgb(self):
        rgb = np.array([[0.1, 0.5, 0.9], [0.7, 0.2, 0.3]])
        scene = GaussianScene.from_flat_colors(
            means=np.zeros((2, 3)),
            scales=np.ones((2, 3)),
            quaternions=np.tile([1.0, 0.0, 0.0, 0.0], (2, 1)),
            opacities=np.array([0.5, 0.6]),
            rgb=rgb,
        )
        from repro.gaussians.sh import evaluate_sh_colors

        colors = evaluate_sh_colors(scene.sh_coeffs, np.tile([0.0, 0.0, 1.0], (2, 1)))
        assert np.allclose(colors, rgb, atol=1e-12)
