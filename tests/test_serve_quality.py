"""Tests for quality-tiered serving: farm lod/quant, encoded shipping, CLI."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.eval.runner import EvalSetup, run_tilewise
from repro.serve.__main__ import build_parser, main
from repro.serve.farm import FrameSpec, RenderFarm
from repro.serve.trajectories import RenderJob, make_trajectory
from repro.store.codec import QUANT_SPECS, quant_spec, roundtrip_scene
from repro.store.lod import select_lod


def _assert_stats_equal(a, b) -> None:
    assert type(a) is type(b)
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), f.name
        else:
            assert va == vb, f.name


class TestJobValidation:
    def test_negative_lod_rejected(self):
        with pytest.raises(ValueError, match="lod"):
            RenderJob("train", make_trajectory("orbit", num_frames=1), lod=-1)

    def test_unknown_quant_rejected(self):
        with pytest.raises(ValueError, match="quant"):
            RenderJob("train", make_trajectory("orbit", num_frames=1), quant="int4")

    def test_framespec_validates_tier(self):
        with pytest.raises(ValueError, match="quant"):
            FrameSpec(quant="int4")
        with pytest.raises(ValueError, match="lod"):
            FrameSpec(lod=-2)

    def test_framespec_carries_job_tier(self):
        job = RenderJob(
            "train", make_trajectory("orbit", num_frames=1), quick=True,
            lod=2, quant="compact",
        )
        spec = FrameSpec.for_job(job)
        assert (spec.lod, spec.quant) == (2, "compact")


class TestSequentialTiers:
    def test_lossless_tier_matches_eval_runner_bitwise(self):
        job = RenderJob("train", make_trajectory("orbit", num_frames=1), quick=True)
        result = RenderFarm(num_workers=0).run(job)
        single = run_tilewise(EvalSetup("train", quick=True))
        assert np.array_equal(result.frames[0].image, single.image)
        _assert_stats_equal(result.frames[0].stats, single.stats)
        assert result.ship_bytes == 0
        assert result.num_gaussians == 2500

    def test_quantized_tier_renders_the_roundtripped_scene(self):
        from repro.eval.runner import load_scene_and_camera
        from repro.serve.farm import render_frame

        job = RenderJob(
            "train", make_trajectory("orbit", num_frames=1), quick=True,
            lod=1, quant="compact",
        )
        result = RenderFarm(num_workers=0).run(job)

        scene, camera = load_scene_and_camera(EvalSetup("train", quick=True))
        expected_scene = roundtrip_scene(select_lod(scene, 1), quant_spec("compact"))
        expected = render_frame(expected_scene, camera, FrameSpec())
        assert np.array_equal(result.frames[0].image, expected.image)
        assert result.num_gaussians == expected_scene.num_gaussians

    def test_lod_shrinks_the_scene(self):
        job0 = RenderJob("train", make_trajectory("orbit", num_frames=1), quick=True)
        job2 = dataclasses.replace(job0, lod=2)
        n0 = RenderFarm(num_workers=0).run(job0).num_gaussians
        n2 = RenderFarm(num_workers=0).run(job2).num_gaussians
        assert n2 == max(1, round(n0 * 0.25))


class TestPoolShipping:
    @pytest.fixture(scope="class")
    def quant_job(self) -> RenderJob:
        return RenderJob(
            "train", make_trajectory("orbit", num_frames=2), quick=True,
            lod=1, quant="compact",
        )

    def test_pool_is_bitwise_identical_to_sequential(self, quant_job):
        sequential = RenderFarm(num_workers=0).run(quant_job)
        pooled = RenderFarm(num_workers=2).run(quant_job)
        assert pooled.num_workers == 2
        for seq, par in zip(sequential.frames, pooled.frames):
            assert np.array_equal(seq.image, par.image)
            _assert_stats_equal(seq.stats, par.stats)

    def test_quantized_shipping_is_smaller_than_lossless(self, quant_job):
        lossless_job = dataclasses.replace(quant_job, lod=0, quant="lossless")
        quantized = RenderFarm(num_workers=2).run(quant_job)
        lossless = RenderFarm(num_workers=2).run(lossless_job)
        assert 0 < quantized.ship_bytes < lossless.ship_bytes / 4

    def test_summary_reports_tier_and_bytes(self, quant_job):
        result = RenderFarm(num_workers=2).run(quant_job)
        summary = result.summary()
        assert summary["lod"] == 1
        assert summary["quant"] == "compact"
        assert summary["ship_bytes"] == result.ship_bytes > 0
        assert summary["num_gaussians"] == result.num_gaussians


class TestCli:
    def test_parser_accepts_tier_flags(self):
        args = build_parser().parse_args(["--lod", "1", "--quant", "compact"])
        assert args.lod == 1
        assert args.quant == "compact"
        assert sorted(QUANT_SPECS) == ["compact", "fp16", "lossless"]

    def test_cli_runs_quantized_tier(self, capsys):
        rc = main(
            ["--scene", "train", "--quick", "--frames", "1",
             "--lod", "1", "--quant", "compact", "--json"]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["lod"] == 1
        assert report["quant"] == "compact"
        assert report["num_gaussians"] == 1250

    def test_cli_scene_file_npz(self, tmp_path, smoke_scene, capsys):
        from repro.gaussians.io import save_scene_npz

        path = tmp_path / "disk_scene.npz"
        save_scene_npz(smoke_scene, path)
        rc = main(["--scene-file", str(path), "--frames", "1", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scene"] == "file:disk_scene"
        assert report["num_gaussians"] == smoke_scene.num_gaussians

    def test_cli_scene_file_text(self, tmp_path, smoke_scene, capsys):
        from repro.gaussians.io import save_scene_text

        path = tmp_path / "disk_scene.txt"
        save_scene_text(smoke_scene, path)
        rc = main(["--scene-file", str(path), "--frames", "1", "--lod", "1"])
        assert rc == 0
        assert "file:disk_scene" in capsys.readouterr().out

    def test_cli_scene_file_unknown_format_exits_2(self, tmp_path, capsys):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"\x00\x01\x02 definitely not a scene")
        with pytest.raises(SystemExit) as excinfo:
            main(["--scene-file", str(path), "--frames", "1"])
        assert excinfo.value.code == 2
        assert "known formats" in capsys.readouterr().err

    def test_cli_scene_file_missing_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--scene-file", str(tmp_path / "absent.npz")])
        assert excinfo.value.code == 2
        assert "not found" in capsys.readouterr().err

    def test_cli_scene_file_corrupt_zip_exits_2(self, tmp_path, capsys):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"PK\x03\x04 truncated zip garbage")
        with pytest.raises(SystemExit) as excinfo:
            main(["--scene-file", str(path), "--frames", "1"])
        assert excinfo.value.code == 2
        assert "not a recognised scene" in capsys.readouterr().err
