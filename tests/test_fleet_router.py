"""Fleet router, autoscaler, and tenant usage/fairness units."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.fleet import (
    Autoscaler,
    AutoscalePolicy,
    ExecutorLane,
    FairQueue,
    FleetPolicy,
    FleetRouter,
    ROUTINGS,
    UsageMeter,
)

KEY = ("train", (0, "lossless"))


def req(request_id: int = 0):
    return SimpleNamespace(request_id=request_id)


def flat_cost(lane):
    return 100.0


def warmth_cost(lane):
    """A cost model where lanes that touched KEY serve it 10x cheaper."""
    return 10.0 if KEY in lane.touched else 100.0


class TestFleetPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_executors": 0},
            {"routing": "round-robin"},
            {"tenant_quota": 0.5},  # quota without fair
            {"fair": True, "tenant_quota": 0.0},
            {"fair": True, "tenant_quota": 1.5},
            {"vnodes": 0},
            {"failures": ((100.0,),)},
        ],
    )
    def test_rejects_bad_policies(self, kwargs):
        with pytest.raises(ValueError):
            FleetPolicy(**kwargs)

    def test_defaults_are_single_executor_affinity(self):
        policy = FleetPolicy()
        assert policy.num_executors == 1
        assert policy.routing == "affinity"
        assert policy.autoscale is None
        assert not policy.fair

    def test_routings_catalogue(self):
        assert ROUTINGS == ("affinity", "random", "least-loaded")


class TestAutoscalePolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_executors": 0},
            {"min_executors": 4, "max_executors": 2},
            {"interval_ms": 0},
            {"coldstart_ms": -1},
            {"idle_evals": 0},
        ],
    )
    def test_rejects_bad_policies(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalePolicy(**kwargs)


class TestExecutorLane:
    def test_free_at_tracks_busy_and_coldstart(self):
        lane = ExecutorLane(executor_id=0)
        assert lane.free_at() == 0.0
        lane.busy = True
        lane.busy_until = 500.0
        assert lane.free_at() == 500.0
        lane.busy = False
        lane.available_at = 800.0
        assert lane.free_at() == 800.0

    def test_name(self):
        assert ExecutorLane(executor_id=3).name == "executor-3"


class TestFleetRouter:
    def test_starts_with_policy_lanes_warm(self):
        router = FleetRouter(FleetPolicy(num_executors=3))
        assert sorted(router.lanes) == [0, 1, 2]
        assert router.ring.members == (0, 1, 2)
        assert router.peak_executors == 3
        assert all(lane.available_at == 0.0 for lane in router.active())

    def test_add_lane_ids_are_monotonic(self):
        router = FleetRouter(FleetPolicy(num_executors=2))
        router.remove_lane(0)
        lane = router.add_lane(1000.0, coldstart_ms=200.0)
        assert lane.executor_id == 2  # never reuses a retired id
        assert lane.available_at == 1200.0
        assert router.ring.members == (1, 2)

    def test_free_lanes_excludes_busy_and_cold(self):
        router = FleetRouter(FleetPolicy(num_executors=3))
        router.lanes[0].busy = True
        router.lanes[1].available_at = 500.0
        free = router.free_lanes(now=100.0)
        assert [lane.executor_id for lane in free] == [2]

    def test_earliest_free_ms(self):
        router = FleetRouter(FleetPolicy(num_executors=2))
        router.lanes[0].busy = True
        router.lanes[0].busy_until = 700.0
        router.lanes[1].busy = True
        router.lanes[1].busy_until = 300.0
        assert router.earliest_free_ms(now=100.0) == 300.0
        router.lanes[1].busy = False
        assert router.earliest_free_ms(now=100.0) == 100.0

    def test_place_returns_none_when_nothing_free(self):
        router = FleetRouter(FleetPolicy(num_executors=1))
        router.lanes[0].busy = True
        assert router.place(KEY, req(), 0.0, 1000.0, flat_cost) is None


class TestAffinityRouting:
    def test_free_preferred_wins_outright(self):
        router = FleetRouter(FleetPolicy(num_executors=4))
        preferred = router.ring.lookup(KEY)
        lane = router.place(KEY, req(), 0.0, 1000.0, flat_cost)
        assert lane.executor_id == preferred

    def test_same_key_same_executor(self):
        router = FleetRouter(FleetPolicy(num_executors=4))
        first = router.place(KEY, req(0), 0.0, 1000.0, flat_cost)
        second = router.place(KEY, req(1), 0.0, 1000.0, flat_cost)
        assert first.executor_id == second.executor_id

    def test_defers_for_warm_preferred_when_wait_pays(self):
        router = FleetRouter(FleetPolicy(num_executors=2))
        preferred = router.lanes[router.ring.lookup(KEY)]
        preferred.touched.add(KEY)
        preferred.busy = True
        preferred.busy_until = 50.0  # wait 50 + warm 10 < cold 100
        assert router.place(KEY, req(), 0.0, 1000.0, warmth_cost) is None

    def test_falls_back_when_wait_violates_slack(self):
        router = FleetRouter(FleetPolicy(num_executors=2))
        preferred = router.lanes[router.ring.lookup(KEY)]
        preferred.touched.add(KEY)
        preferred.busy = True
        preferred.busy_until = 50.0
        lane = router.place(KEY, req(), 0.0, 30.0, warmth_cost)
        assert lane is not None
        assert lane.executor_id != preferred.executor_id

    def test_falls_back_when_waiting_never_beats_cold(self):
        router = FleetRouter(FleetPolicy(num_executors=2))
        preferred = router.lanes[router.ring.lookup(KEY)]
        preferred.busy = True
        preferred.busy_until = 50.0  # not warm: wait 50 + 100 > cold 100
        lane = router.place(KEY, req(), 0.0, 1000.0, warmth_cost)
        assert lane is not None
        assert lane.executor_id != preferred.executor_id

    def test_fallback_prefers_warm_free_lane(self):
        router = FleetRouter(FleetPolicy(num_executors=3))
        preferred = router.lanes[router.ring.lookup(KEY)]
        preferred.busy = True
        preferred.busy_until = 1e6  # unreachable — must fall back
        others = [l for l in router.active() if l is not preferred]
        others[1].touched.add(KEY)
        lane = router.place(KEY, req(), 0.0, 0.0, warmth_cost)
        assert lane is others[1]


class TestBaselineRoutings:
    def test_random_is_seed_deterministic(self):
        a = FleetRouter(FleetPolicy(num_executors=4, routing="random", seed=7))
        b = FleetRouter(FleetPolicy(num_executors=4, routing="random", seed=7))
        picks_a = [a.place(KEY, req(i), 0.0, 0.0, flat_cost).executor_id for i in range(32)]
        picks_b = [b.place(KEY, req(i), 0.0, 0.0, flat_cost).executor_id for i in range(32)]
        assert picks_a == picks_b

    def test_random_spreads_a_hot_key(self):
        router = FleetRouter(FleetPolicy(num_executors=4, routing="random"))
        picks = {
            router.place(KEY, req(i), 0.0, 0.0, flat_cost).executor_id
            for i in range(64)
        }
        assert len(picks) > 1  # affinity would pin all 64 to one executor

    def test_least_loaded_picks_min_worker_ms(self):
        router = FleetRouter(FleetPolicy(num_executors=3, routing="least-loaded"))
        router.lanes[0].worker_ms = 500.0
        router.lanes[1].worker_ms = 100.0
        router.lanes[2].worker_ms = 300.0
        lane = router.place(KEY, req(), 0.0, 0.0, flat_cost)
        assert lane.executor_id == 1


class TestAutoscaler:
    def policy(self, **kwargs):
        kwargs.setdefault("min_executors", 1)
        kwargs.setdefault("max_executors", 4)
        kwargs.setdefault("idle_evals", 2)
        return AutoscalePolicy(**kwargs)

    def test_scale_up_on_queue_depth(self):
        router = FleetRouter(FleetPolicy(num_executors=1))
        scaler = Autoscaler(self.policy(queue_depth_per_executor=3.0))
        actions = scaler.evaluate(0.0, queue_depth=4, backlog_ms=0.0, slo_ms=500.0, router=router)
        assert actions == [("scale_up", 1, "queue_depth")]
        assert router.lanes[1].available_at == scaler.policy.coldstart_ms

    def test_scale_up_on_slo_headroom(self):
        router = FleetRouter(FleetPolicy(num_executors=1))
        scaler = Autoscaler(self.policy())
        actions = scaler.evaluate(0.0, queue_depth=1, backlog_ms=900.0, slo_ms=500.0, router=router)
        assert actions == [("scale_up", 1, "slo_headroom")]

    def test_at_most_one_scale_up_per_tick(self):
        router = FleetRouter(FleetPolicy(num_executors=1))
        scaler = Autoscaler(self.policy())
        actions = scaler.evaluate(0.0, queue_depth=50, backlog_ms=9999.0, slo_ms=500.0, router=router)
        assert len(actions) == 1

    def test_respects_max_executors(self):
        router = FleetRouter(FleetPolicy(num_executors=4))
        scaler = Autoscaler(self.policy())
        actions = scaler.evaluate(0.0, queue_depth=50, backlog_ms=0.0, slo_ms=500.0, router=router)
        assert actions == []

    def test_scale_down_needs_consecutive_idle_evals(self):
        router = FleetRouter(FleetPolicy(num_executors=2))
        scaler = Autoscaler(self.policy())
        assert scaler.evaluate(0.0, 0, 0.0, 500.0, router) == []
        actions = scaler.evaluate(250.0, 0, 0.0, 500.0, router)
        assert actions == [("scale_down", 1, "idle")]
        assert sorted(router.lanes) == [0]

    def test_busy_lane_resets_idle_streak(self):
        router = FleetRouter(FleetPolicy(num_executors=2))
        scaler = Autoscaler(self.policy())
        router.lanes[0].busy = True  # keep lane 0 out of the drain pool
        scaler.evaluate(0.0, 0, 0.0, 500.0, router)
        router.lanes[1].busy = True  # lane 1 works mid-streak: reset
        scaler.evaluate(250.0, 0, 0.0, 500.0, router)
        router.lanes[1].busy = False
        assert scaler.evaluate(500.0, 0, 0.0, 500.0, router) == []
        assert sorted(router.lanes) == [0, 1]
        # One more idle tick completes a fresh streak and retires lane 1.
        assert scaler.evaluate(750.0, 0, 0.0, 500.0, router) == [
            ("scale_down", 1, "idle")
        ]

    def test_never_drains_below_min(self):
        router = FleetRouter(FleetPolicy(num_executors=1))
        scaler = Autoscaler(self.policy())
        for tick in range(5):
            assert scaler.evaluate(tick * 250.0, 0, 0.0, 500.0, router) == []
        assert sorted(router.lanes) == [0]

    def test_restores_fleet_below_min_after_failure(self):
        router = FleetRouter(FleetPolicy(num_executors=2))
        scaler = Autoscaler(self.policy(min_executors=2))
        router.remove_lane(1)
        actions = scaler.evaluate(1000.0, 0, 0.0, 500.0, router)
        assert actions == [("scale_up", 2, "below_min")]
        assert router.lanes[2].available_at == 1000.0 + scaler.policy.coldstart_ms

    def test_retires_newest_idle_executor_first(self):
        router = FleetRouter(FleetPolicy(num_executors=3))
        scaler = Autoscaler(self.policy())
        scaler.evaluate(0.0, 0, 0.0, 500.0, router)
        actions = scaler.evaluate(250.0, 0, 0.0, 500.0, router)
        assert actions == [("scale_down", 2, "idle")]


class TestFairQueue:
    def test_charge_advances_by_weighted_service(self):
        fair = FairQueue({0: 2.0})
        fair.charge(0, 100.0)
        fair.charge(1, 100.0)
        assert fair.tag(0) == 50.0  # weight 2 pays half the virtual time
        assert fair.tag(1) == 100.0

    def test_activate_floors_stale_tags(self):
        fair = FairQueue()
        fair.charge(0, 10.0)
        fair.activate(0, floor=500.0)
        assert fair.tag(0) == 500.0
        fair.activate(0, floor=100.0)  # never lowers an up-to-date tag
        assert fair.tag(0) == 500.0

    def test_nonpositive_weight_falls_back_to_one(self):
        fair = FairQueue({0: 0.0})
        assert fair.weight(0) == 1.0


class TestUsageMeter:
    def test_dispatch_and_frames_accumulate(self):
        meter = UsageMeter()
        meter.record_dispatch(0, worker_ms=1000.0, ship_bytes=5000)
        meter.record_dispatch(0, worker_ms=500.0, ship_bytes=0)
        meter.record_frames(0, 12)
        summary = meter.summary()
        assert summary["0"] == {
            "requests": 2,
            "frames": 12,
            "ship_bytes": 5000,
            "worker_seconds": 1.5,
        }
        assert meter.total_ship_bytes == 5000

    def test_first_job_is_never_quota_shed(self):
        meter = UsageMeter()
        assert not meter.over_quota(0, worker_ms=1000.0, quota=0.1)

    def test_over_quota_on_projected_share(self):
        meter = UsageMeter()
        meter.record_dispatch(0, worker_ms=600.0, ship_bytes=0)
        meter.record_dispatch(1, worker_ms=400.0, ship_bytes=0)
        # Tenant 0 at 60%; another 200ms projects 800/1200 = 66.7%.
        assert meter.over_quota(0, worker_ms=200.0, quota=0.5)
        assert not meter.over_quota(1, worker_ms=200.0, quota=0.5)

    def test_summary_keys_are_sorted_strings(self):
        meter = UsageMeter()
        meter.record_dispatch(10, 1.0, 0)
        meter.record_dispatch(2, 1.0, 0)
        assert list(meter.summary()) == ["2", "10"]
