"""Tests for projection, culling and footprint radii (Stage II behaviour)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render.common import RenderConfig
from repro.render.preprocess import (
    bounding_radius,
    frustum_cull_depths,
    project_geometry,
    project_scene,
    tile_range,
)


class TestBoundingRadius:
    def test_3sigma_radius_matches_formula(self):
        eigenvalues = np.array([[4.0, 1.0]])
        radius = bounding_radius(eigenvalues, np.array([1.0]), rule="3sigma")
        assert radius[0] == pytest.approx(np.ceil(3.0 * 2.0))

    def test_omega_sigma_shrinks_with_opacity(self):
        eigenvalues = np.array([[4.0, 1.0], [4.0, 1.0]])
        opacities = np.array([1.0, 0.01])
        radii = bounding_radius(eigenvalues, opacities, rule="omega-sigma")
        assert radii[1] < radii[0]

    def test_omega_sigma_is_zero_below_alpha_min(self):
        eigenvalues = np.array([[4.0, 1.0]])
        radii = bounding_radius(eigenvalues, np.array([1.0 / 512.0]), rule="omega-sigma")
        assert radii[0] == 0.0

    def test_omega_sigma_exceeds_3sigma_for_full_opacity(self):
        # For omega = 1 the threshold is sqrt(2 ln 255) ~ 3.33 sigma > 3 sigma.
        eigenvalues = np.array([[9.0, 1.0]])
        r3 = bounding_radius(eigenvalues, np.array([1.0]), rule="3sigma")
        rw = bounding_radius(eigenvalues, np.array([1.0]), rule="omega-sigma")
        assert rw[0] >= r3[0]

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError):
            bounding_radius(np.array([[1.0, 1.0]]), np.array([1.0]), rule="5sigma")


class TestFrustumCull:
    def test_points_behind_camera_are_culled(self, front_camera):
        from repro.gaussians.model import GaussianScene

        scene = GaussianScene.from_flat_colors(
            means=np.array([[0.0, 0.0, 0.0], [0.0, 0.0, -10.0]]),
            scales=np.full((2, 3), 0.1),
            quaternions=np.tile([1.0, 0.0, 0.0, 0.0], (2, 1)),
            opacities=np.array([0.9, 0.9]),
            rgb=np.full((2, 3), 0.5),
        )
        depths, keep = frustum_cull_depths(scene, front_camera)
        assert keep[0]
        assert not keep[1]
        assert depths[0] == pytest.approx(3.0)

    def test_near_plane_threshold_applies(self, front_camera):
        from repro.gaussians.model import GaussianScene

        scene = GaussianScene.from_flat_colors(
            means=np.array([[0.0, 0.0, -2.9]]),  # 0.1 in front of the camera
            scales=np.full((1, 3), 0.05),
            quaternions=np.array([[1.0, 0.0, 0.0, 0.0]]),
            opacities=np.array([0.9]),
            rgb=np.full((1, 3), 0.5),
        )
        _, keep = frustum_cull_depths(scene, front_camera, depth_near=0.2)
        assert not keep[0]


class TestProjectScene:
    def test_counts_are_consistent(self, smoke_scene, smoke_camera):
        projected = project_scene(smoke_scene, smoke_camera)
        assert projected.num_total == smoke_scene.num_gaussians
        assert 0 <= projected.num_visible <= projected.num_depth_passed <= projected.num_total

    def test_empty_scene_projects_to_empty(self, smoke_camera):
        from repro.gaussians.model import GaussianScene

        projected = project_scene(GaussianScene.empty(), smoke_camera)
        assert projected.num_visible == 0
        assert projected.num_total == 0

    def test_single_gaussian_projects_near_centre(self, single_gaussian_scene, front_camera):
        projected = project_scene(single_gaussian_scene, front_camera)
        assert projected.num_visible == 1
        assert projected.means2d[0, 0] == pytest.approx(front_camera.cx, abs=1.0)
        assert projected.means2d[0, 1] == pytest.approx(front_camera.cy, abs=1.0)
        assert projected.depths[0] == pytest.approx(3.0, abs=1e-6)

    def test_colors_and_conics_have_matching_rows(self, smoke_scene, smoke_camera):
        projected = project_scene(smoke_scene, smoke_camera)
        assert projected.colors.shape == (projected.num_visible, 3)
        assert projected.conics.shape == (projected.num_visible, 3)
        assert projected.radii.shape == (projected.num_visible,)

    def test_depth_order_is_sorted(self, smoke_scene, smoke_camera):
        projected = project_scene(smoke_scene, smoke_camera)
        order = projected.depth_order()
        assert np.all(np.diff(projected.depths[order]) >= 0)

    def test_omega_sigma_rule_prunes_more_or_equal(self, smoke_scene, smoke_camera):
        normal = project_scene(smoke_scene, smoke_camera, RenderConfig(radius_rule="3sigma"))
        tight = project_scene(smoke_scene, smoke_camera, RenderConfig(radius_rule="omega-sigma"))
        # The opacity-aware radius can only shrink footprints of translucent
        # Gaussians, so the visible count cannot grow by more than the few
        # near-opaque Gaussians whose radius grows from 3 to 3.33 sigma.
        assert tight.num_visible <= normal.num_visible + smoke_scene.num_gaussians * 0.05


class TestProjectGeometry:
    def test_matches_project_scene_geometry(self, smoke_scene, smoke_camera):
        config = RenderConfig(radius_rule="3sigma")
        full = project_scene(smoke_scene, smoke_camera, config)
        geometry = project_geometry(
            smoke_scene, smoke_camera, np.arange(smoke_scene.num_gaussians), config
        )
        assert set(geometry.source_indices) == set(full.source_indices)
        # Align rows by source index and compare projected centres.
        full_map = {int(i): full.means2d[k] for k, i in enumerate(full.source_indices)}
        for k, index in enumerate(geometry.source_indices):
            assert np.allclose(geometry.means2d[k], full_map[int(index)])

    def test_empty_indices(self, smoke_scene, smoke_camera):
        geometry = project_geometry(smoke_scene, smoke_camera, np.array([], dtype=np.int64))
        assert geometry.num_visible == 0
        assert geometry.num_input == 0


class TestTileRange:
    def test_single_pixel_gaussian_covers_one_tile(self):
        tx_min, tx_max, ty_min, ty_max = tile_range(
            np.array([[8.0, 8.0]]), np.array([1.0]), width=64, height=64, tile_size=16
        )
        assert (tx_max[0] - tx_min[0]) == 1
        assert (ty_max[0] - ty_min[0]) == 1

    def test_large_gaussian_covers_all_tiles(self):
        tx_min, tx_max, ty_min, ty_max = tile_range(
            np.array([[32.0, 32.0]]), np.array([100.0]), width=64, height=64, tile_size=16
        )
        assert (tx_max[0] - tx_min[0]) == 4
        assert (ty_max[0] - ty_min[0]) == 4

    def test_offscreen_gaussian_gets_empty_range(self):
        tx_min, tx_max, ty_min, ty_max = tile_range(
            np.array([[-100.0, -100.0]]), np.array([2.0]), width=64, height=64, tile_size=16
        )
        assert tx_max[0] == tx_min[0] or ty_max[0] == ty_min[0]

    def test_boundary_gaussian_clipped_to_image(self):
        tx_min, tx_max, ty_min, ty_max = tile_range(
            np.array([[63.0, 0.0]]), np.array([20.0]), width=64, height=64, tile_size=16
        )
        assert tx_max[0] <= 4 and ty_min[0] == 0
