"""SLO controller: ladder walking, hysteresis, shedding, event logging."""

from __future__ import annotations

import pytest

from repro.sched.qos import (
    DEFAULT_LADDER,
    EventLog,
    QoSPolicy,
    SLOController,
    tier_name,
)

SLO = 100.0


def fast_policy(**overrides) -> QoSPolicy:
    """A controller that reacts after a handful of completions."""
    defaults = dict(window=4, min_samples=2, cooldown=2)
    defaults.update(overrides)
    return QoSPolicy(**defaults)


def feed(controller: SLOController, latencies, slo_ms=SLO, t0=0.0):
    for i, e2e in enumerate(latencies):
        controller.observe(t0 + float(i), float(e2e), slo_ms)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(window=0),
            dict(min_samples=0),
            dict(window=4, min_samples=5),
            dict(cooldown=-1),
            dict(degrade_at=0.0),
            dict(upgrade_at=1.0, degrade_at=1.0),
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QoSPolicy(**kwargs)

    def test_ladder_must_be_valid(self):
        with pytest.raises(ValueError):
            SLOController(ladder=())
        with pytest.raises(ValueError):
            SLOController(ladder=((0, "mp3"),))
        with pytest.raises(ValueError):
            SLOController(ladder=((-1, "lossless"),))


class TestLadderWalk:
    def test_starts_at_most_expensive_rung(self):
        controller = SLOController()
        assert controller.current_tier == DEFAULT_LADDER[0]
        assert controller.cheapest_tier == DEFAULT_LADDER[-1]

    def test_degrades_under_sustained_violation(self):
        controller = SLOController(policy=fast_policy())
        feed(controller, [SLO * 3] * 4)
        assert controller.rung > 0
        events = [e["event"] for e in controller.log.events]
        assert "tier_down" in events

    def test_upgrades_when_load_relents(self):
        controller = SLOController(policy=fast_policy())
        feed(controller, [SLO * 3] * 4)
        degraded = controller.rung
        feed(controller, [SLO * 0.1] * 8, t0=100.0)
        assert controller.rung < degraded
        assert any(e["event"] == "tier_up" for e in controller.log.events)

    def test_never_walks_off_either_end(self):
        controller = SLOController(policy=fast_policy())
        feed(controller, [SLO * 10] * 100)
        assert controller.rung == len(controller.ladder) - 1
        feed(controller, [SLO * 0.01] * 100, t0=1000.0)
        assert controller.rung == 0

    def test_healthy_latency_inside_hysteresis_band_holds_tier(self):
        # Between upgrade_at and degrade_at nothing should move.
        controller = SLOController(policy=fast_policy())
        feed(controller, [SLO * 0.75] * 50)
        assert controller.rung == 0
        assert len(controller.log) == 0

    def test_cooldown_limits_move_frequency(self):
        controller = SLOController(policy=fast_policy(cooldown=4))
        feed(controller, [SLO * 5] * 7)
        # 7 completions with cooldown 4 allow at most one move.
        moves = [e for e in controller.log.events if e["event"] == "tier_down"]
        assert len(moves) == 1

    def test_window_cleared_on_move(self):
        controller = SLOController(policy=fast_policy())
        feed(controller, [SLO * 5] * 4)
        assert controller.window_p95_ms() is None  # below min_samples again

    def test_fixed_policy_never_moves(self):
        controller = SLOController(policy=fast_policy(adaptive=False))
        feed(controller, [SLO * 50] * 50)
        assert controller.rung == 0
        assert len(controller.log) == 0

    def test_single_rung_ladder_never_moves(self):
        controller = SLOController(
            policy=fast_policy(), ladder=((0, "lossless"),)
        )
        feed(controller, [SLO * 50] * 50)
        assert controller.current_tier == (0, "lossless")
        assert len(controller.log) == 0


class TestShedding:
    def test_sheds_when_cheapest_projection_misses(self):
        controller = SLOController()
        assert controller.should_shed(SLO + 1, SLO)
        assert not controller.should_shed(SLO - 1, SLO)


class TestEventLog:
    def test_entries_carry_timestamp_and_kind(self):
        log = EventLog()
        entry = log.emit(12.3456789, "admit", request=1)
        assert entry == {"t_ms": 12.345679, "event": "admit", "request": 1}
        assert log.events == [entry]
        assert len(log) == 1

    def test_counts_by_kind(self):
        log = EventLog()
        log.emit(0.0, "admit")
        log.emit(1.0, "admit")
        log.emit(2.0, "shed")
        assert log.counts() == {"admit": 2, "shed": 1}

    def test_tier_move_entries_are_structured(self):
        controller = SLOController(policy=fast_policy())
        feed(controller, [SLO * 3] * 4)
        move = next(e for e in controller.log.events if e["event"] == "tier_down")
        assert move["from_tier"] == tier_name(DEFAULT_LADDER[0])
        assert move["to_tier"] == tier_name(DEFAULT_LADDER[1])
        assert move["p95_ms"] > SLO
        assert move["slo_ms"] == SLO


class TestTierName:
    def test_format(self):
        assert tier_name((2, "compact")) == "lod2/compact"
