"""Float32 engine mode: config plumbing, cache keys, PSNR-floored accuracy.

``dtype="float32"`` is the tile-wise fast path: projection and pair
building stay float64 (tile assignment and therefore every statistics
counter is integer-identical across dtypes), while per-tile blending runs
in single precision.  Where float64 promises bitwise identity, float32
promises a PSNR floor against the float64 oracle — these tests pin both
halves of that ladder contract, plus the cache-key regression: a float32
render must never alias the float64 artefact under any memoisation layer.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.eval.runner import EvalSetup, clear_cache, load_scene_and_camera, run_tilewise
from repro.exec.frames import FrameSpec, render_frame
from repro.render.common import DTYPES, RenderConfig
from repro.render.metrics import psnr
from repro.render.tile_raster import render_tilewise
from repro.serve.trajectories import RenderJob, make_trajectory

#: Accuracy floor of the float32 fast path against the float64 oracle.
#: Measured ~140 dB on the quick presets — 80 dB leaves a wide margin
#: while still far exceeding visually-lossless territory (~50 dB).
FLOAT32_PSNR_FLOOR_DB = 80.0


def _scene_camera(scene: str = "train"):
    return load_scene_and_camera(EvalSetup(scene, quick=True))


def _assert_stats_equal(expected, actual) -> None:
    for field in dataclasses.fields(expected):
        a, b = getattr(expected, field.name), getattr(actual, field.name)
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b), f"stats array {field.name} differs"
        else:
            assert a == b, f"stats counter {field.name}: {a} != {b}"


class TestConfigValidation:
    def test_default_dtype_is_float64(self):
        assert RenderConfig().dtype == "float64"
        assert FrameSpec().dtype == "float64"

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError):
            RenderConfig(dtype="float16")
        with pytest.raises(ValueError):
            FrameSpec(dtype="bfloat16")

    def test_gaussianwise_is_float64_only(self):
        with pytest.raises(ValueError):
            FrameSpec(dataflow="gaussianwise", dtype="float32")
        with pytest.raises(ValueError):
            RenderJob(
                "train",
                make_trajectory("orbit", num_frames=1),
                quick=True,
                dataflow="gaussianwise",
                dtype="float32",
            )

    def test_dtypes_catalogue(self):
        assert DTYPES == ("float64", "float32")


class TestFloat32Accuracy:
    @pytest.fixture(scope="class")
    def renders(self):
        scene, camera = _scene_camera()
        return {
            dtype: {
                backend: render_tilewise(
                    scene, camera, RenderConfig(backend=backend, dtype=dtype)
                )
                for backend in ("vectorized", "reference")
            }
            for dtype in DTYPES
        }

    def test_float32_image_is_float32(self, renders):
        assert renders["float32"]["vectorized"].image.dtype == np.float32
        assert renders["float64"]["vectorized"].image.dtype == np.float64

    def test_counters_identical_across_dtypes(self, renders):
        # Tile assignment and culling run in float64 for both modes, so
        # the integer work counters match exactly (index arrays are left
        # out: early termination order inside a tile is dtype-sensitive).
        f64 = renders["float64"]["vectorized"].stats
        f32 = renders["float32"]["vectorized"].stats
        for field in dataclasses.fields(f64):
            a, b = getattr(f64, field.name), getattr(f32, field.name)
            if not isinstance(a, np.ndarray):
                assert a == b, f"stats counter {field.name}: {a} != {b}"

    def test_float32_backends_agree_bitwise_on_counters(self, renders):
        _assert_stats_equal(
            renders["float32"]["reference"].stats,
            renders["float32"]["vectorized"].stats,
        )

    def test_float32_meets_psnr_floor_against_float64_oracle(self, renders):
        # The reference float64 engine is the oracle; both float32 engines
        # must clear the stated floor against it.
        oracle = renders["float64"]["reference"].image
        for backend in ("vectorized", "reference"):
            value = psnr(oracle, renders["float32"][backend].image.astype(np.float64))
            assert value >= FLOAT32_PSNR_FLOOR_DB, (backend, value)

    def test_float64_backend_contract_unchanged(self, renders):
        # The pre-existing cross-backend promise (allclose images, bitwise
        # stats — see test_engine_equivalence) survives the dtype plumbing.
        assert np.allclose(
            renders["float64"]["vectorized"].image,
            renders["float64"]["reference"].image,
            atol=1e-9,
        )
        _assert_stats_equal(
            renders["float64"]["reference"].stats,
            renders["float64"]["vectorized"].stats,
        )


class TestCacheKeys:
    """A float32 render must never alias a float64 cache entry."""

    def test_runner_caches_dtypes_separately(self):
        clear_cache()
        setup = EvalSetup("train", quick=True)
        f64 = run_tilewise(setup)
        f32 = run_tilewise(setup, dtype="float32")
        assert f64.image.dtype == np.float64
        assert f32.image.dtype == np.float32
        assert not np.array_equal(f64.image, f32.image.astype(np.float64))
        # Repeat calls hit their own entries, not each other's.
        assert run_tilewise(setup) is f64
        assert run_tilewise(setup, dtype="float32") is f32

    def test_frame_spec_carries_dtype(self):
        job = RenderJob(
            "train",
            make_trajectory("orbit", num_frames=1),
            quick=True,
            dtype="float32",
        )
        spec = FrameSpec.for_job(job)
        assert spec.dtype == "float32"

    def test_render_frame_respects_spec_dtype(self):
        scene, camera = _scene_camera()
        f64 = render_frame(scene, camera, FrameSpec())
        f32 = render_frame(scene, camera, FrameSpec(dtype="float32"))
        assert f64.image.dtype == np.float64
        assert f32.image.dtype == np.float32
