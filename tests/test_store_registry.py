"""Tests for the SceneStore registry, format autodetection and preset wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.scenes import EVAL_SCENES, EvalScenePreset, eval_preset, register_preset
from repro.gaussians.io import save_scene_npz, save_scene_text
from repro.gaussians.model import GaussianScene
from repro.gaussians.synthetic import (
    make_scene,
    register_scene_spec,
    scene_spec,
)
from repro.store.codec import QUANT_SPECS, save_scene_store
from repro.store.store import (
    SceneStore,
    default_store,
    derive_scene_spec,
    load_scene_auto,
    reset_default_store,
)


@pytest.fixture()
def store() -> SceneStore:
    s = SceneStore(capacity=8)
    s.register("smoke", lambda: make_scene("smoke", scale=0.5))
    return s


class TestRegistration:
    def test_lazy_build_and_cache_stats(self, store):
        calls = {"n": 0}

        def factory():
            calls["n"] += 1
            return make_scene("smoke", scale=0.25)

        store.register("lazy", factory)
        assert calls["n"] == 0
        a = store.get("lazy")
        b = store.get("lazy")
        assert calls["n"] == 1
        assert a is b
        assert store.cache.stats.hits >= 1

    def test_duplicate_name_requires_overwrite(self, store):
        with pytest.raises(ValueError, match="already registered"):
            store.register("smoke", lambda: GaussianScene.empty())
        store.register("smoke", lambda: GaussianScene.empty(), overwrite=True)
        assert store.get("smoke").num_gaussians == 0

    def test_overwrite_invalidates_cached_tiers(self, store):
        full = store.get("smoke")
        tier = store.get("smoke", lod=1, quant="compact")
        assert tier.num_gaussians < full.num_gaussians
        store.add_scene("smoke", GaussianScene.empty(), overwrite=True)
        assert store.get("smoke").num_gaussians == 0
        assert store.get("smoke", lod=1, quant="compact").num_gaussians == 0

    def test_names_and_contains(self, store):
        assert "smoke" in store
        assert "SMOKE" in store
        assert "absent" not in store
        assert "smoke" in store.names()

    def test_unknown_scene_raises_with_names(self, store):
        with pytest.raises(KeyError, match="registered"):
            store.get("absent")


class TestTierResolution:
    def test_keys_are_name_lod_quant(self, store):
        store.get("smoke")
        store.get("smoke", lod=1)
        store.get("smoke", lod=1, quant="compact")
        keys = set(store.cache.keys())
        assert ("smoke", 0, "lossless") in keys
        assert ("smoke", 1, "lossless") in keys
        assert ("smoke", 1, "compact") in keys

    def test_lossless_lod0_is_base_object(self, store):
        base = store.get("smoke")
        assert store.get("smoke", lod=0, quant="lossless") is base

    def test_lod_reduces_and_quant_perturbs(self, store):
        base = store.get("smoke")
        pruned = store.get("smoke", lod=1)
        assert pruned.num_gaussians == max(1, round(base.num_gaussians * 0.5))
        quantized = store.get("smoke", quant="fp16")
        assert quantized.num_gaussians == base.num_gaussians
        assert not np.array_equal(quantized.means, base.means)

    def test_invalid_tier_arguments(self, store):
        with pytest.raises(ValueError, match="non-negative"):
            store.get("smoke", lod=-1)
        with pytest.raises(KeyError, match="available"):
            store.get("smoke", quant="int4")

    def test_fractional_lod_rejected(self, store):
        """A float lod must not silently alias an integer cache key."""
        with pytest.raises(ValueError, match="integer"):
            store.get("smoke", lod=1.5)
        # Whole-valued floats are harmless and normalise to the int key.
        assert store.get("smoke", lod=1.0) is store.get("smoke", lod=1)

    def test_custom_lod_ratio_honoured(self):
        store = SceneStore(capacity=4, lod_ratio=0.25)
        store.register("smoke", lambda: make_scene("smoke", scale=0.5))
        base = store.get("smoke")
        assert store.get("smoke", lod=1).num_gaussians == max(
            1, round(base.num_gaussians * 0.25)
        )

    def test_capacity_bounds_resident_tiers(self):
        store = SceneStore(capacity=2)
        store.register("smoke", lambda: make_scene("smoke", scale=0.25))
        for lod in range(4):
            store.get("smoke", lod=lod)
        assert len(store.cache) <= 2
        assert store.cache.stats.evictions >= 2


class TestDefaultStore:
    def test_zoo_contains_benchmark_scenes(self):
        reset_default_store()
        store = default_store()
        for name in ("train", "lego", "smoke"):
            assert name in store
        assert default_store() is store

    def test_zoo_scales_match_eval_presets(self):
        reset_default_store()
        scene = default_store().get("train")
        expected = make_scene("train", scale=EVAL_SCENES["train"].scale)
        assert np.array_equal(scene.means, expected.means)


class TestAutoDetection:
    def test_npz_store_and_text_all_load(self, tmp_path, smoke_scene):
        npz = tmp_path / "a.npz"
        save_scene_npz(smoke_scene, npz)
        storef = tmp_path / "b.npz"
        save_scene_store(smoke_scene, storef, QUANT_SPECS["lossless"])
        text = tmp_path / "c.txt"
        save_scene_text(smoke_scene, text)
        for path in (npz, storef, text):
            loaded = load_scene_auto(path)
            assert loaded.num_gaussians == smoke_scene.num_gaussians

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_scene_auto(tmp_path / "absent.npz")

    def test_unknown_binary_format_is_clear(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"\x00\x01\x02\x03 not a scene")
        with pytest.raises(ValueError, match="known formats"):
            load_scene_auto(path)

    def test_corrupt_zip_is_a_value_error(self, tmp_path):
        """A file with a zip magic but corrupt contents must not leak BadZipFile."""
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"PK\x03\x04 definitely truncated garbage")
        with pytest.raises(ValueError, match="not a recognised scene"):
            load_scene_auto(path)

    def test_unknown_text_format_is_clear(self, tmp_path):
        path = tmp_path / "notes.md"
        path.write_text("just some prose, no scene here\n")
        with pytest.raises(ValueError, match="known formats"):
            load_scene_auto(path)

    def test_npz_without_scene_keys_is_clear(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, unrelated=np.arange(3))
        with pytest.raises(ValueError, match="not a recognised scene"):
            load_scene_auto(path)


class TestFileBackedPresets:
    def test_derive_scene_spec_extent_is_robust(self, smoke_scene):
        spec = derive_scene_spec(smoke_scene, "file:test")
        assert spec.name == "file:test"
        assert spec.extent > 0
        # Outliers beyond the 90th percentile must not inflate the extent.
        means = np.zeros((100, 3))
        means[:99, 0] = np.linspace(-1, 1, 99)
        means[99] = [1e6, 0, 0]
        outlier_scene = GaussianScene(
            means=means,
            scales=np.full((100, 3), 0.1),
            quaternions=np.tile([1.0, 0, 0, 0], (100, 1)),
            opacities=np.full(100, 0.5),
            sh_coeffs=np.zeros((100, 3, 16)),
        )
        assert derive_scene_spec(outlier_scene, "x").extent < 1e5

    def test_empty_scene_gets_unit_extent(self):
        assert derive_scene_spec(GaussianScene.empty(), "x").extent == 1.0

    def test_register_spec_guards(self):
        with pytest.raises(ValueError, match="built-in"):
            register_scene_spec(derive_scene_spec(GaussianScene.empty(), "train"))
        spec = derive_scene_spec(GaussianScene.empty(), "file:guard-test")
        register_scene_spec(spec)
        with pytest.raises(ValueError, match="already registered"):
            register_scene_spec(spec)
        register_scene_spec(spec, overwrite=True)
        assert scene_spec("file:guard-test") is spec

    def test_register_preset_guards(self):
        with pytest.raises(ValueError, match="built-in"):
            register_preset(EvalScenePreset(name="train", scale=1.0, image_scale=1.0))
        preset = EvalScenePreset(
            name="file:preset-test", scale=1.0, image_scale=1.0, store="file:preset-test"
        )
        register_preset(preset)
        with pytest.raises(ValueError, match="already registered"):
            register_preset(preset)
        register_preset(preset, overwrite=True)
        assert eval_preset("file:preset-test") is preset
        quick = eval_preset("file:preset-test", quick=True)
        assert quick.store == "file:preset-test"
        assert quick.image_scale == pytest.approx(0.6)

    def test_store_backed_preset_resolves_through_store(self):
        from repro.eval.runner import EvalSetup, clear_cache, load_scene_and_camera

        name = "file:runner-test"
        scene = make_scene("smoke", scale=0.5)
        register_scene_spec(derive_scene_spec(scene, name), overwrite=True)
        default_store().add_scene(name, scene, overwrite=True)
        register_preset(
            EvalScenePreset(name=name, scale=1.0, image_scale=1.0, store=name),
            overwrite=True,
        )
        clear_cache()
        loaded, camera = load_scene_and_camera(EvalSetup(name))
        assert np.array_equal(loaded.means, scene.means)
        assert camera.width > 0


class TestWarm:
    def test_warm_prepopulates_every_tier(self, store):
        sizes = store.warm("smoke", [(0, "lossless"), (1, "fp16"), (2, "compact")])
        assert set(sizes) == {(0, "lossless"), (1, "fp16"), (2, "compact")}
        assert ("smoke", 0, "lossless") in store.cache
        assert ("smoke", 1, "fp16") in store.cache
        assert ("smoke", 2, "compact") in store.cache
        # Sizes follow the LOD ladder (level k halves the keep count).
        assert sizes[(1, "fp16")] < sizes[(0, "lossless")]
        assert sizes[(2, "compact")] < sizes[(1, "fp16")]

    def test_warmed_tiers_are_cache_hits_afterwards(self, store):
        store.warm("smoke", [(1, "compact")])
        hits_before = store.cache.stats.hits
        store.get("smoke", lod=1, quant="compact")
        assert store.cache.stats.hits == hits_before + 1

    def test_warm_unknown_scene_raises(self, store):
        with pytest.raises(KeyError, match="unknown store scene"):
            store.warm("nope", [(0, "lossless")])
