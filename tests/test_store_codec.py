"""Tests for the quantized scene codec: round-trips, containers, accounting.

Property-style coverage: every (tier x edge-case scene) pair must decode to
a *valid* scene with per-attribute errors inside the bound the encoding
implies, including the 0-Gaussian scene, a single Gaussian, degenerate
(unnormalised / axis-aligned) quaternions and float32 input arrays.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.gaussians.model import GaussianScene, SceneValidationError
from repro.gaussians.sh import SH_COEFFS_PER_CHANNEL
from repro.gaussians.synthetic import make_scene
from repro.store.codec import (
    QUANT_SPECS,
    STORE_VERSION,
    QuantSpec,
    compression_ratio,
    decode_payload,
    encode_scene,
    encoded_nbytes,
    fp32_nbytes,
    is_store_file,
    load_scene_store,
    payload_nbytes,
    quant_spec,
    roundtrip_scene,
    save_scene_store,
)

TIERS = sorted(QUANT_SPECS)


def _scene_from_arrays(n: int, rng: np.random.Generator, dtype=np.float64) -> GaussianScene:
    """A small random-but-valid scene with arrays in the given dtype."""
    quats = rng.normal(size=(n, 4)).astype(dtype)
    return GaussianScene(
        means=(rng.uniform(-5, 5, size=(n, 3))).astype(dtype),
        scales=rng.uniform(0.01, 2.0, size=(n, 3)).astype(dtype),
        quaternions=quats,
        opacities=rng.uniform(1 / 255, 1.0, size=n).astype(dtype),
        sh_coeffs=rng.normal(0, 0.4, size=(n, 3, SH_COEFFS_PER_CHANNEL)).astype(dtype),
        name="random",
    )


def edge_scenes() -> dict[str, GaussianScene]:
    rng = np.random.default_rng(42)
    single = GaussianScene(
        means=np.array([[0.3, -0.2, 1.0]]),
        scales=np.array([[0.5, 0.05, 0.005]]),
        quaternions=np.array([[1.0, 0.0, 0.0, 0.0]]),
        opacities=np.array([1.0]),
        sh_coeffs=np.zeros((1, 3, SH_COEFFS_PER_CHANNEL)),
        name="single",
    )
    # Unnormalised and near-degenerate (but valid: norm >= 1e-8) rotations.
    degenerate = GaussianScene(
        means=np.zeros((3, 3)),
        scales=np.full((3, 3), 0.1),
        quaternions=np.array(
            [[200.0, 0.0, 0.0, 0.0], [1e-7, 0.0, 0.0, 0.0], [0.0, 0.0, 0.0, -1.0]]
        ),
        opacities=np.array([0.5, 1 / 255, 1.0]),
        sh_coeffs=np.zeros((3, 3, SH_COEFFS_PER_CHANNEL)),
        name="degenerate",
    )
    return {
        "empty": GaussianScene.empty("void"),
        "single": single,
        "degenerate-quats": degenerate,
        "float32-arrays": _scene_from_arrays(17, rng, dtype=np.float32),
        "smoke": make_scene("smoke", scale=0.5),
    }


EDGE_SCENES = edge_scenes()


class TestRoundtripProperties:
    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("case", sorted(EDGE_SCENES))
    def test_decode_is_valid_scene(self, tier, case):
        scene = EDGE_SCENES[case]
        restored = roundtrip_scene(scene, QUANT_SPECS[tier])
        restored.validate()  # raises SceneValidationError on any violation
        assert restored.num_gaussians == scene.num_gaussians
        assert restored.name == scene.name

    @pytest.mark.parametrize("case", sorted(EDGE_SCENES))
    def test_lossless_is_bit_identical(self, case):
        scene = EDGE_SCENES[case]
        payload = encode_scene(scene, QUANT_SPECS["lossless"])
        restored = decode_payload(payload, QUANT_SPECS["lossless"])
        for field in ("means", "scales", "quaternions", "opacities", "sh_coeffs"):
            assert np.array_equal(getattr(restored, field), getattr(scene, field)), field

    @pytest.mark.parametrize("tier", ["fp16", "compact"])
    @pytest.mark.parametrize("case", sorted(EDGE_SCENES))
    def test_lossy_error_bounds(self, tier, case):
        scene = EDGE_SCENES[case]
        if scene.num_gaussians == 0:
            return
        restored = roundtrip_scene(scene, QUANT_SPECS[tier])
        spec = QUANT_SPECS[tier]

        if spec.means == "u16":
            span = scene.means.max(axis=0) - scene.means.min(axis=0)
            bound = span / 65535 + 1e-12
        else:  # fp16: relative error of the widest-magnitude coordinate
            bound = np.maximum(np.abs(scene.means), 1.0) * 2.0 ** -10
        assert np.all(np.abs(restored.means - scene.means) <= bound.max() + 1e-9)

        # log-domain fp16 scales: absolute log error bounded by fp16 ulp of
        # the log magnitude (~0.05% relative at unit scale, growing with
        # |log scale| — still sub-percent at the 1e-9..1e2 extremes).
        log_err = np.abs(np.log(restored.scales) - np.log(scene.scales))
        assert np.all(log_err <= np.maximum(np.abs(np.log(scene.scales)), 1.0) * 2.0 ** -10)

        # Lossy tiers store the unit quaternion.
        unit = scene.normalized_quaternions()
        restored_unit = restored.normalized_quaternions()
        dot = np.abs(np.sum(unit * restored_unit, axis=1))
        assert np.all(dot > 0.9999)

        assert np.all(np.abs(restored.opacities - scene.opacities) <= 0.5 / 255 + 1e-3)

    @pytest.mark.parametrize("tier", TIERS)
    def test_encoding_is_deterministic(self, tier):
        scene = EDGE_SCENES["smoke"]
        a = encode_scene(scene, QUANT_SPECS[tier])
        b = encode_scene(scene, QUANT_SPECS[tier])
        assert sorted(a) == sorted(b)
        for key in a:
            assert np.array_equal(a[key], b[key]), key
            assert a[key].dtype == b[key].dtype, key


class TestContainer:
    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("case", sorted(EDGE_SCENES))
    def test_file_roundtrip_matches_memory_roundtrip(self, tmp_path, tier, case):
        scene = EDGE_SCENES[case]
        expected = roundtrip_scene(scene, QUANT_SPECS[tier])
        path = tmp_path / f"{tier}.npz"
        save_scene_store(scene, path, QUANT_SPECS[tier])
        restored = load_scene_store(path)
        for field in ("means", "scales", "quaternions", "opacities", "sh_coeffs"):
            assert np.array_equal(getattr(restored, field), getattr(expected, field)), field
        assert restored.name == scene.name

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "scene.npz"
        save_scene_store(EDGE_SCENES["smoke"], path, QUANT_SPECS["compact"])
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        arrays["store_version"] = np.array(STORE_VERSION + 1)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_scene_store(path)

    def test_plain_scene_npz_is_rejected_with_pointer(self, tmp_path, smoke_scene):
        from repro.gaussians.io import save_scene_npz

        path = tmp_path / "plain.npz"
        save_scene_npz(smoke_scene, path)
        with pytest.raises(ValueError, match="load_scene_npz"):
            load_scene_store(path)

    def test_is_store_file(self, tmp_path, smoke_scene):
        from repro.gaussians.io import save_scene_npz

        store_path = tmp_path / "store.npz"
        save_scene_store(smoke_scene, store_path, QUANT_SPECS["fp16"])
        plain_path = tmp_path / "plain.npz"
        save_scene_npz(smoke_scene, plain_path)
        assert is_store_file(store_path)
        assert not is_store_file(plain_path)
        assert not is_store_file(tmp_path / "absent.npz")


class TestSpecsAndAccounting:
    def test_unknown_modes_raise(self):
        with pytest.raises(ValueError, match="means"):
            QuantSpec("bad", means="u8")
        with pytest.raises(ValueError, match="sh_rest"):
            QuantSpec("bad", sh_rest="u16")

    def test_quant_spec_lookup(self):
        assert quant_spec("COMPACT") is QUANT_SPECS["compact"]
        with pytest.raises(KeyError, match="available"):
            quant_spec("int4")

    def test_lossless_flag(self):
        assert QUANT_SPECS["lossless"].is_lossless
        assert not QUANT_SPECS["fp16"].is_lossless
        assert not QUANT_SPECS["compact"].is_lossless

    def test_roundtrip_lossless_returns_same_object(self, smoke_scene):
        assert roundtrip_scene(smoke_scene, QUANT_SPECS["lossless"]) is smoke_scene

    @pytest.mark.parametrize("tier", TIERS)
    def test_payload_bytes_are_exact(self, tier):
        scene = EDGE_SCENES["smoke"]
        payload = encode_scene(scene, QUANT_SPECS[tier])
        assert payload_nbytes(payload) == sum(a.nbytes for a in payload.values())
        assert encoded_nbytes(scene, QUANT_SPECS[tier]) == payload_nbytes(payload)

    def test_nominal_bytes_per_gaussian_tracks_payload(self):
        scene = EDGE_SCENES["smoke"]
        for tier in TIERS:
            spec = QUANT_SPECS[tier]
            nominal = spec.bytes_per_gaussian() * scene.num_gaussians
            actual = encoded_nbytes(scene, spec)
            # Aux range arrays add a small constant overhead only.
            assert nominal <= actual <= nominal + 2048, tier

    def test_compression_ratio_ordering(self):
        scene = EDGE_SCENES["smoke"]
        lossless = compression_ratio(scene, QUANT_SPECS["lossless"])
        fp16 = compression_ratio(scene, QUANT_SPECS["fp16"])
        compact = compression_ratio(scene, QUANT_SPECS["compact"])
        assert lossless == 0.5  # float64 payload vs fp32 baseline
        assert fp16 == pytest.approx(2.0)
        assert compact > 3.0

    def test_empty_scene_ratio_is_one(self):
        assert compression_ratio(GaussianScene.empty(), QUANT_SPECS["compact"]) == 1.0
        assert fp32_nbytes(GaussianScene.empty()) == 0


class TestDecodeGuarantees:
    @pytest.mark.parametrize("tier", ["fp16", "compact"])
    def test_tiny_opacity_survives_narrowing_cast(self, tier):
        """An opacity below float16's subnormal range must not decode to 0."""
        scene = GaussianScene(
            means=np.zeros((1, 3)),
            scales=np.full((1, 3), 0.1),
            quaternions=np.array([[1.0, 0, 0, 0]]),
            opacities=np.array([1e-8]),
            sh_coeffs=np.zeros((1, 3, SH_COEFFS_PER_CHANNEL)),
        )
        restored = roundtrip_scene(scene, QUANT_SPECS[tier])
        restored.validate()
        assert restored.opacities[0] > 0

    @pytest.mark.parametrize("tier", ["fp16", "compact"])
    def test_extreme_attribute_values_stay_in_domain(self, tier):
        """Opacities pinned to (0, 1], scales positive, quats non-zero."""
        n = 64
        rng = np.random.default_rng(7)
        scene = GaussianScene(
            means=rng.uniform(-100, 100, size=(n, 3)),
            scales=np.exp(rng.uniform(-9, 2, size=(n, 3))),
            quaternions=rng.normal(size=(n, 4)) * 50,
            opacities=np.clip(rng.uniform(0, 1, size=n), 1e-4, 1.0),
            sh_coeffs=rng.normal(0, 2, size=(n, 3, SH_COEFFS_PER_CHANNEL)),
        )
        restored = roundtrip_scene(scene, QUANT_SPECS[tier])
        assert np.all(restored.scales > 0)
        assert np.all((restored.opacities > 0) & (restored.opacities <= 1))
        assert np.all(np.linalg.norm(restored.quaternions, axis=1) >= 1e-8)

    def test_truncated_payload_raises(self):
        scene = EDGE_SCENES["smoke"]
        payload = encode_scene(scene, QUANT_SPECS["compact"])
        del payload["opacities"]
        with pytest.raises(KeyError):
            decode_payload(payload, QUANT_SPECS["compact"])

    def test_mismatched_arrays_fail_validation(self):
        scene = EDGE_SCENES["smoke"]
        payload = encode_scene(scene, QUANT_SPECS["compact"])
        payload["opacities"] = payload["opacities"][:-1]
        with pytest.raises(SceneValidationError):
            decode_payload(payload, QUANT_SPECS["compact"])
