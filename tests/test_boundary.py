"""Tests for alpha-based boundary identification (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render.bounds import alpha_footprint_mask
from repro.render.boundary import identify_influence_blocks, identify_influence_pixels

# Strategy: well-conditioned conics (inverse covariances) and centres near a
# small image so the footprint interacts with the image boundary sometimes.
conic_strategy = st.tuples(
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=-0.05, max_value=0.05),
    st.floats(min_value=0.01, max_value=1.0),
).filter(lambda c: c[0] * c[2] - c[1] * c[1] > 1e-4)

centre_strategy = st.tuples(
    st.floats(min_value=-10.0, max_value=74.0),
    st.floats(min_value=-10.0, max_value=74.0),
)

opacity_strategy = st.floats(min_value=0.01, max_value=1.0)


class TestPixelLevelAlgorithm1:
    @given(conic=conic_strategy, centre=centre_strategy, opacity=opacity_strategy)
    @settings(max_examples=40, deadline=None)
    def test_bfs_mask_is_subset_of_brute_force_footprint(self, conic, centre, opacity):
        width = height = 64
        mask, _ = identify_influence_pixels(
            np.array(centre), np.array(conic), opacity, width, height
        )
        brute = alpha_footprint_mask(np.array(centre), np.array(conic), opacity, width, height)
        assert np.all(~mask | brute)

    @given(conic=conic_strategy, opacity=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_bfs_matches_brute_force_when_centre_is_inside_image(self, conic, opacity):
        # With the centre inside the image, the footprint is connected and
        # contains the start pixel, so BFS must recover it exactly.
        width = height = 64
        centre = np.array([31.7, 30.2])
        mask, evaluations = identify_influence_pixels(
            centre, np.array(conic), opacity, width, height
        )
        brute = alpha_footprint_mask(centre, np.array(conic), opacity, width, height)
        assert np.array_equal(mask, brute)
        # The BFS should not evaluate dramatically more pixels than the
        # footprint plus its one-pixel boundary ring.
        assert evaluations <= brute.sum() * 4 + 64

    def test_sub_threshold_opacity_gives_empty_mask(self):
        mask, evaluations = identify_influence_pixels(
            np.array([16.0, 16.0]), np.array([0.1, 0.0, 0.1]), 1.0 / 1000.0, 32, 32
        )
        assert not mask.any()
        assert evaluations == 0

    def test_degenerate_image_dimensions(self):
        mask, evaluations = identify_influence_pixels(
            np.array([0.0, 0.0]), np.array([0.1, 0.0, 0.1]), 0.9, 0, 0
        )
        assert mask.size == 0


class TestStartPixelConvention:
    def test_floor_start_finds_footprint_that_round_would_miss(self):
        # Algorithm 1 starts at the pixel *containing* the projected centre
        # (floor), not the nearest sample (round).  This footprint is a
        # single pixel at (0, 10): with floor the traversal starts there and
        # finds it; banker's rounding would start at x=11, fail the alpha
        # condition and return an empty mask.
        centre = np.array([10.7, -3.0])
        conic = np.array([0.3, 0.05, 0.3])
        opacity = 0.0153
        chi2 = 2.0 * np.log(opacity * 255.0)
        maha_floor = conic[0] * 0.7**2 + 2 * conic[1] * (-0.7) * 3.0 + conic[2] * 9.0
        maha_round = conic[0] * 0.3**2 + 2 * conic[1] * 0.3 * 3.0 + conic[2] * 9.0
        # The scenario is only meaningful if the threshold separates the two
        # candidate start pixels.
        assert maha_floor <= chi2 < maha_round

        mask, evaluations = identify_influence_pixels(centre, conic, opacity, 64, 64)
        brute = alpha_footprint_mask(centre, conic, opacity, 64, 64)
        assert mask[0, 10]
        assert np.array_equal(mask, brute)
        assert evaluations > 0

    def test_fractional_centre_starts_in_containing_block(self):
        # Centre x = 15.6 lies in pixel 15 => block 1 (block_size 8); a
        # rounded start (pixel 16 => block 2) begins one block too far right
        # but must still not change the identified block set.
        centre = np.array([15.6, 12.0])
        conic = np.array([0.3, 0.0, 0.3])
        result = identify_influence_blocks(centre, conic, 0.9, 64, 64, block_size=8)
        brute = alpha_footprint_mask(centre, conic, 0.9, 64, 64)
        covered = np.zeros_like(brute)
        for by, bx in result.blocks:
            covered[by * 8 : (by + 1) * 8, bx * 8 : (bx + 1) * 8] = True
        assert np.all(~brute | covered)
        assert (12 // 8, 15 // 8) in result.blocks


class TestBlockLevelIdentification:
    def test_blocks_cover_every_influenced_pixel(self):
        width = height = 64
        centre = np.array([30.0, 28.0])
        conic = np.array([0.05, 0.01, 0.08])
        opacity = 0.9
        result = identify_influence_blocks(centre, conic, opacity, width, height, block_size=8)
        brute = alpha_footprint_mask(centre, conic, opacity, width, height)
        covered = np.zeros_like(brute)
        for by, bx in result.blocks:
            covered[by * 8 : (by + 1) * 8, bx * 8 : (bx + 1) * 8] = True
        assert np.all(~brute | covered)

    def test_visited_blocks_bounded_by_footprint_plus_ring(self):
        width = height = 128
        centre = np.array([64.0, 64.0])
        conic = np.array([0.02, 0.0, 0.02])
        result = identify_influence_blocks(centre, conic, 1.0, width, height, block_size=8)
        assert result.blocks_visited <= len(result.blocks) * 3 + 8

    def test_low_opacity_shrinks_block_set(self):
        width = height = 128
        centre = np.array([64.0, 64.0])
        conic = np.array([0.02, 0.0, 0.02])
        high = identify_influence_blocks(centre, conic, 1.0, width, height, block_size=8)
        low = identify_influence_blocks(centre, conic, 0.02, width, height, block_size=8)
        assert len(low.blocks) < len(high.blocks)

    def test_saturated_blocks_are_skipped_but_traversal_continues(self):
        width = height = 64
        centre = np.array([32.0, 32.0])
        conic = np.array([0.01, 0.0, 0.01])
        blocks_y = blocks_x = 8
        saturated = np.zeros((blocks_y, blocks_x), dtype=bool)
        saturated[4, 4] = True  # the centre block is saturated
        result = identify_influence_blocks(
            centre, conic, 1.0, width, height, block_size=8, saturated_blocks=saturated
        )
        assert result.blocks_skipped_tmask >= 1
        assert (4, 4) not in result.blocks
        # Neighbouring blocks are still reached through the saturated one.
        assert len(result.blocks) > 0

    def test_fully_saturated_mask_returns_no_blocks(self):
        width = height = 32
        saturated = np.ones((4, 4), dtype=bool)
        result = identify_influence_blocks(
            np.array([16.0, 16.0]), np.array([0.05, 0.0, 0.05]), 0.9,
            width, height, block_size=8, saturated_blocks=saturated,
        )
        assert result.blocks == []
        assert result.blocks_skipped_tmask > 0

    def test_offscreen_centre_starts_from_nearest_block(self):
        width = height = 64
        centre = np.array([-20.0, 10.0])
        conic = np.array([0.002, 0.0, 0.002])  # very large footprint
        result = identify_influence_blocks(centre, conic, 1.0, width, height, block_size=8)
        assert len(result.blocks) > 0

    def test_sub_threshold_opacity_returns_empty(self):
        result = identify_influence_blocks(
            np.array([16.0, 16.0]), np.array([0.1, 0.0, 0.1]), 1e-4, 32, 32, block_size=8
        )
        assert result.blocks == []
        assert result.blocks_visited == 0

    @given(
        conic=conic_strategy,
        opacity=st.floats(min_value=0.05, max_value=1.0),
        block_size=st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_blocks_cover_footprint(self, conic, opacity, block_size):
        width = height = 64
        centre = np.array([33.0, 29.5])
        result = identify_influence_blocks(
            centre, np.array(conic), opacity, width, height, block_size=block_size
        )
        brute = alpha_footprint_mask(centre, np.array(conic), opacity, width, height)
        covered = np.zeros_like(brute)
        for by, bx in result.blocks:
            covered[by * block_size : (by + 1) * block_size, bx * block_size : (bx + 1) * block_size] = True
        missed = brute & ~covered
        # Convex footprints with the centre inside the image must be fully
        # covered by the identified blocks.
        assert not missed.any()
