"""Health plane: heartbeats, watchdog classification, zero intervention.

Liveness rides entirely on the replies the workers already send — no
new protocol traffic — and the watchdog only ever *reports*.  The
load-bearing test here injects a genuinely stalled worker (a sleep
before rendering, via the same env-var backdoor the crash tests use)
and checks both halves of the contract: the watchdog says ``stalled``
while the task is stuck, and the rendered output is still bitwise
identical to the sequential path once it lands.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.exec import RenderExecutor
from repro.exec.worker import STALL_ENV
from repro.obs import ObsContext
from repro.obs.health import (
    HEARTBEAT_GAUGE,
    LIVE,
    REPLIES_COUNTER,
    SLOW,
    STALLED,
    STATES,
    Watchdog,
    summarize_states,
)
from repro.serve.farm import RenderFarm
from repro.serve.trajectories import RenderJob, make_trajectory


def quick_job(num_frames=2, **kwargs) -> RenderJob:
    return RenderJob(
        "train", make_trajectory("orbit", num_frames=num_frames), quick=True, **kwargs
    )


class TestWatchdog:
    def test_classification_thresholds(self):
        watchdog = Watchdog(slow_after_s=2.0, stalled_after_s=10.0)
        assert watchdog.classify(None) == LIVE  # idle
        assert watchdog.classify(0.0) == LIVE
        assert watchdog.classify(1.999) == LIVE
        assert watchdog.classify(2.0) == SLOW
        assert watchdog.classify(9.999) == SLOW
        assert watchdog.classify(10.0) == STALLED

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            Watchdog(slow_after_s=0.0)
        with pytest.raises(ValueError):
            Watchdog(slow_after_s=5.0, stalled_after_s=1.0)
        with pytest.raises(ValueError):
            Watchdog(progress_cpu_percent=0.0)

    def test_cpu_fold_demotes_slow_to_live(self):
        # A worker in the slow band that is burning CPU is rendering a
        # big frame on a loaded machine, not sick: report it live.
        watchdog = Watchdog(slow_after_s=2.0, stalled_after_s=10.0)
        assert watchdog.classify(5.0, cpu_percent=95.0) == LIVE
        assert watchdog.classify(5.0, cpu_percent=50.0) == LIVE  # at threshold
        assert watchdog.classify(5.0, cpu_percent=10.0) == SLOW
        assert watchdog.classify(5.0, cpu_percent=0.0) == SLOW

    def test_cpu_fold_never_rescues_stalled(self):
        # High CPU past the stalled threshold is a spin loop — exactly
        # what stalled should flag, so the fold must not demote it.
        watchdog = Watchdog(slow_after_s=2.0, stalled_after_s=10.0)
        assert watchdog.classify(11.0, cpu_percent=100.0) == STALLED
        assert watchdog.classify(11.0, cpu_percent=0.0) == STALLED

    def test_unknown_cpu_keeps_time_only_classification(self):
        # None = no /proc or no baseline yet; never treated as 0%.
        watchdog = Watchdog(slow_after_s=2.0, stalled_after_s=10.0)
        assert watchdog.classify(5.0, cpu_percent=None) == SLOW
        assert watchdog.classify(1.0, cpu_percent=None) == LIVE

    def test_summarize_states_counts_every_state(self):
        workers = [{"state": LIVE}, {"state": LIVE}, {"state": STALLED}]
        assert summarize_states(workers) == {LIVE: 2, SLOW: 0, STALLED: 1}
        assert set(summarize_states([])) == set(STATES)


class TestHealthReport:
    def test_sequential_mode_shape(self):
        with RenderExecutor(num_workers=0) as executor:
            executor.submit(quick_job(1)).result()
            health = executor.health()
        assert health["mode"] == "sequential"
        assert health["workers"] == []
        assert health["states"] == {LIVE: 0, SLOW: 0, STALLED: 0}
        assert health["pending_tasks"] == 0
        assert health["workers_replaced"] == 0

    def test_pool_reports_live_workers_and_heartbeats(self):
        with RenderExecutor(num_workers=2) as executor:
            executor.submit(quick_job(2)).result(timeout=300)
            health = executor.health()
        assert health["mode"] == "pool" and health["num_workers"] == 2
        assert [w["worker"] for w in health["workers"]] == [0, 1]
        assert health["states"][LIVE] == 2
        for worker in health["workers"]:
            assert worker["state"] == LIVE
            assert worker["inflight"] is None and worker["busy_ms"] is None
            # Heartbeat stamps exist even before the first reply (spawn
            # time seeds them), so the age is always a number.
            assert worker["last_reply_age_ms"] >= 0.0
        assert sum(w["tasks_done"] for w in health["workers"]) >= 2

    def test_pool_reports_worker_resources(self):
        # The resource plane rides health() polls: per-worker RSS comes
        # straight from /proc by pid (skip where /proc is unavailable).
        from repro.obs.resources import read_proc_sample

        if read_proc_sample(os.getpid()) is None:
            pytest.skip("/proc not available on this platform")
        with RenderExecutor(num_workers=2) as executor:
            executor.submit(quick_job(2)).result(timeout=300)
            executor.health()  # baseline sample: cpu unknown on the first
            health = executor.health()
        for worker in health["workers"]:
            assert worker["rss_bytes"] > 1 << 20
            assert worker["cpu_percent"] is not None
            assert worker["cpu_percent"] >= 0.0

    def test_heartbeat_gauges_piggyback_on_replies(self):
        obs = ObsContext.create()
        with RenderExecutor(num_workers=2, obs=obs) as executor:
            executor.submit(quick_job(3)).result(timeout=300)
        replies = sum(
            value
            for _, value in obs.metrics.labeled_values(REPLIES_COUNTER)
        )
        assert replies >= 3  # one reply per frame, across the pool
        beats = obs.metrics.labeled_values(HEARTBEAT_GAUGE)
        assert beats, "no heartbeat gauges recorded"
        for labels, value in beats:
            assert set(labels) == {"worker"}
            assert value > 0.0  # unix-epoch milliseconds
        # The resource plane piggybacks on the same replies: per-worker
        # RSS gauges appear whenever /proc can be read.
        from repro.obs.resources import RSS_GAUGE, read_proc_sample

        if read_proc_sample(os.getpid()) is not None:
            rss = obs.metrics.labeled_values(RSS_GAUGE)
            assert rss, "no worker RSS gauges recorded"
            assert all(value > 0 for _, value in rss)

    def test_custom_watchdog_is_used(self):
        watchdog = Watchdog(slow_after_s=0.001, stalled_after_s=1e9)
        with RenderExecutor(num_workers=0, watchdog=watchdog) as executor:
            assert executor.watchdog is watchdog
            assert executor.health()["mode"] == "sequential"


class TestStalledWorker:
    def test_stall_classified_without_changing_output(self, monkeypatch):
        # Frame 1 sleeps 1 s *before* rendering; a watchdog with tight
        # thresholds must call its worker stalled mid-flight, and the
        # finished frames must still match the sequential render exactly
        # (report-only: the watchdog never kills or reroutes).
        monkeypatch.setenv(STALL_ENV, "train:1:1.0")
        watchdog = Watchdog(slow_after_s=0.05, stalled_after_s=0.2)
        observed = set()
        obs = ObsContext.create()
        with RenderExecutor(num_workers=2, obs=obs, watchdog=watchdog) as executor:
            handle = executor.submit(quick_job(2))
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                health = executor.health()
                for worker in health["workers"]:
                    if worker["state"] != LIVE:
                        observed.add(worker["state"])
                        assert worker["inflight"] is not None
                        assert worker["busy_ms"] > 0.0
                if STALLED in observed or handle.done():
                    break
                time.sleep(0.01)
            result = handle.result(timeout=300)
            after = executor.health()
        assert STALLED in observed, observed
        # The stall was observed, never acted on: nothing was replaced...
        assert after["workers_replaced"] == 0
        # ...and the output is the sequential render's exact bytes.
        sequential = RenderFarm(num_workers=0).run(quick_job(2))
        for seq, pooled in zip(sequential.frames, result.frames):
            assert np.array_equal(seq.image, pooled.image)
        assert sequential.aggregate_counters() == result.aggregate_counters()
