"""Cross-process determinism of the seeded ``jitter`` trajectory.

The request scheduler replays workloads by seed, and jitter requests carry
their perturbation seed across process boundaries (a spawned farm worker,
a remote replay).  That only works if ``Trajectory(kind="jitter", seed=s)``
expands to *bitwise identical* cameras in every process — i.e. NumPy's
seeded ``default_rng`` stream and the camera construction chain are fully
deterministic under ``spawn`` (fresh interpreter, re-imported modules),
not just within one process.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.eval.scenes import eval_preset
from repro.serve.trajectories import make_trajectory

SEED = 1234
NUM_FRAMES = 5


def jitter_camera_matrices(scene: str, seed: int, num_frames: int) -> np.ndarray:
    """Stacked 4x4 world-to-camera matrices of a seeded jitter trajectory.

    Module-level so ``spawn`` can import it by reference in the child
    interpreter (the test module is importable from the tests directory).
    """
    trajectory = make_trajectory(
        "jitter", num_frames=num_frames, view_index=2, seed=seed
    )
    cameras = trajectory.cameras(eval_preset(scene, quick=True))
    return np.stack([camera.world_to_camera for camera in cameras])


@pytest.mark.parametrize("scene", ["train", "drjohnson"])
def test_spawned_worker_reproduces_jitter_cameras_bitwise(scene):
    if "spawn" not in multiprocessing.get_all_start_methods():
        pytest.skip("spawn start method unavailable")
    parent = jitter_camera_matrices(scene, SEED, NUM_FRAMES)
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=1) as pool:
        child = pool.apply(jitter_camera_matrices, (scene, SEED, NUM_FRAMES))
    # Bitwise, not approx: the scheduler's replay guarantee is exact.
    assert parent.dtype == child.dtype
    assert np.array_equal(parent, child)


def test_same_seed_same_cameras_in_process():
    a = jitter_camera_matrices("train", SEED, NUM_FRAMES)
    b = jitter_camera_matrices("train", SEED, NUM_FRAMES)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = jitter_camera_matrices("train", SEED, NUM_FRAMES)
    b = jitter_camera_matrices("train", SEED + 1, NUM_FRAMES)
    assert not np.array_equal(a, b)
