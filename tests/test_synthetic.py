"""Tests for synthetic benchmark scene generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians.synthetic import (
    BENCHMARK_SCENES,
    SCENE_SPECS,
    make_camera,
    make_scene,
    make_single_gaussian_scene,
    scene_spec,
)


class TestSceneSpecs:
    def test_all_benchmark_scenes_have_specs(self):
        for name in BENCHMARK_SCENES:
            assert name in SCENE_SPECS

    def test_scene_spec_lookup_is_case_insensitive(self):
        assert scene_spec("LEGO").name == "lego"

    def test_unknown_scene_raises(self):
        with pytest.raises(KeyError):
            scene_spec("does-not-exist")

    def test_indoor_flags_match_dataset_type(self):
        assert scene_spec("playroom").indoor
        assert scene_spec("drjohnson").indoor
        assert not scene_spec("lego").indoor
        assert not scene_spec("train").indoor

    def test_paper_scale_counts_are_millions_for_real_scenes(self):
        assert scene_spec("drjohnson").base_num_gaussians > 1_000_000
        assert scene_spec("lego").base_num_gaussians < 1_000_000


class TestMakeScene:
    def test_generation_is_deterministic(self):
        scene_a = make_scene("smoke", scale=0.5)
        scene_b = make_scene("smoke", scale=0.5)
        assert np.array_equal(scene_a.means, scene_b.means)
        assert np.array_equal(scene_a.sh_coeffs, scene_b.sh_coeffs)

    def test_different_seed_changes_scene(self):
        scene_a = make_scene("smoke", scale=0.5)
        scene_b = make_scene("smoke", scale=0.5, seed=99)
        assert not np.allclose(scene_a.means, scene_b.means)

    def test_count_scales_with_scale_parameter(self):
        small = make_scene("smoke", scale=0.25)
        large = make_scene("smoke", scale=1.0)
        assert large.num_gaussians == pytest.approx(4 * small.num_gaussians, rel=0.1)

    def test_opacities_respect_minimum_threshold(self):
        scene = make_scene("smoke", scale=1.0)
        assert np.all(scene.opacities > 1.0 / 255.0)
        assert np.all(scene.opacities <= 1.0)

    def test_scene_passes_validation(self):
        # GaussianScene.__post_init__ validates; construction not raising is the check.
        scene = make_scene("train", scale=0.001)
        assert scene.num_gaussians >= 16

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            make_scene("smoke", scale=0.0)

    def test_indoor_scene_has_wall_background(self):
        scene = make_scene("playroom", scale=0.001)
        spec = scene_spec("playroom")
        # At least some Gaussians should sit on the bounding-box walls.
        on_wall = np.isclose(np.abs(scene.means), spec.extent, atol=1e-6).any(axis=1)
        assert on_wall.any()


class TestMakeCamera:
    def test_image_size_matches_spec_and_scale(self):
        camera = make_camera("lego", image_scale=0.1)
        spec = scene_spec("lego")
        assert camera.width == round(spec.image_size[0] * 0.1)
        assert camera.height == round(spec.image_size[1] * 0.1)

    def test_orbit_views_differ(self):
        cam_a = make_camera("lego", view_index=0)
        cam_b = make_camera("lego", view_index=3)
        assert not np.allclose(cam_a.position, cam_b.position)

    def test_object_camera_looks_at_origin(self):
        camera = make_camera("train", view_index=1)
        target_cam = camera.world_to_camera_points(np.zeros((1, 3)))[0]
        assert target_cam[2] > 0

    def test_rejects_zero_views(self):
        with pytest.raises(ValueError):
            make_camera("lego", num_views=0)


class TestSingleGaussianScene:
    def test_one_gaussian_with_requested_opacity(self):
        scene = make_single_gaussian_scene(opacity=0.25)
        assert scene.num_gaussians == 1
        assert scene.opacities[0] == pytest.approx(0.25)

    def test_anisotropy_from_aspect(self):
        scene = make_single_gaussian_scene(opacity=1.0, scale=0.2, aspect=4.0)
        assert scene.scales[0, 0] == pytest.approx(4.0 * scene.scales[0, 1])

    def test_invalid_opacity_raises(self):
        with pytest.raises(ValueError):
            make_single_gaussian_scene(opacity=0.0)
