"""Tests for the generic pipelined-unit model and GCC unit factories."""

from __future__ import annotations

import pytest

from repro.arch.gcc.alpha_unit import alpha_cycles, make_alpha_unit
from repro.arch.gcc.blending_unit import blending_cycles, image_buffer_traffic
from repro.arch.gcc.config import GccConfig
from repro.arch.gcc.projection_unit import projection_cycles
from repro.arch.gcc.rca import grouping_cycles
from repro.arch.gcc.sh_unit import sh_cycles
from repro.arch.gcc.sort_unit import bitonic_passes, sort_cycles
from repro.arch.units import PipelinedUnit


class TestPipelinedUnit:
    def test_throughput_dominates_for_large_batches(self):
        unit = PipelinedUnit("u", items_per_cycle=2.0, latency_cycles=10)
        cycles = unit.process(1000)
        assert cycles == pytest.approx(510.0)

    def test_zero_items_cost_nothing(self):
        unit = PipelinedUnit("u", items_per_cycle=1.0, latency_cycles=5)
        assert unit.process(0) == 0.0
        assert unit.activity.cycles == 0.0

    def test_activity_accumulates(self):
        unit = PipelinedUnit("u", items_per_cycle=1.0, ops_per_item=3.0)
        unit.process(10)
        unit.process(20)
        assert unit.activity.items == 30
        assert unit.activity.ops == pytest.approx(90.0)

    def test_reset_clears_activity(self):
        unit = PipelinedUnit("u", items_per_cycle=1.0)
        unit.process(5)
        unit.reset()
        assert unit.activity.items == 0

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            PipelinedUnit("u", items_per_cycle=0.0)
        with pytest.raises(ValueError):
            PipelinedUnit("u", items_per_cycle=1.0, latency_cycles=-1)
        with pytest.raises(ValueError):
            PipelinedUnit("u", items_per_cycle=1.0).process(-5)


class TestGccUnits:
    def test_grouping_cycles_scale_with_gaussians(self):
        config = GccConfig()
        small, _ = grouping_cycles(config, 1000, 800)
        large, _ = grouping_cycles(config, 10000, 8000)
        assert large > small

    def test_projection_parallelism_halves_cycles(self):
        one_way = projection_cycles(GccConfig(projection_units=1), 10000)[0]
        two_way = projection_cycles(GccConfig(projection_units=2), 10000)[0]
        assert two_way < one_way
        assert two_way == pytest.approx(one_way / 2, rel=0.05)

    def test_sh_cycles_match_per_gaussian_cost(self):
        config = GccConfig()
        cycles, detail = sh_cycles(config, 100)
        assert cycles == pytest.approx(100 * config.sh_cycles_per_gaussian + 8, rel=0.01)
        assert detail["sh_fma_ops"] > 0

    def test_bitonic_passes_grow_superlinearly(self):
        assert bitonic_passes(256, 16) > 2 * bitonic_passes(128, 16)

    def test_sort_cycles_zero_for_empty_group(self):
        cycles, _ = sort_cycles(GccConfig(), 0, 0)
        assert cycles == 0.0

    def test_alpha_unit_block_passes(self):
        config = GccConfig(alpha_array_size=8)
        unit = make_alpha_unit(config)
        assert unit.items_per_cycle == pytest.approx(1.0)
        # A 16x16 block on an 8x8 array needs 4 passes.
        unit_16 = make_alpha_unit(config, block_size=16)
        assert unit_16.items_per_cycle == pytest.approx(0.25)

    def test_alpha_cycles_scale_with_blocks(self):
        config = GccConfig()
        few, _ = alpha_cycles(config, 100, 10)
        many, _ = alpha_cycles(config, 1000, 10)
        assert many > few

    def test_blending_cycles_and_buffer_traffic(self):
        config = GccConfig()
        cycles, detail = blending_cycles(config, 50)
        assert cycles > 0
        assert detail["blend_fma_ops"] > 0
        assert image_buffer_traffic(50, 8, 16) == 50 * 64 * 16 * 2


class TestGccConfigValidation:
    def test_rejects_bad_array_size(self):
        with pytest.raises(ValueError):
            GccConfig(alpha_array_size=0)

    def test_rejects_bad_buffer(self):
        with pytest.raises(ValueError):
            GccConfig(image_buffer_bytes=0)

    def test_max_resident_pixels(self):
        config = GccConfig(image_buffer_bytes=128 * 1024, bytes_per_pixel=16)
        assert config.max_resident_pixels() == 8192

    def test_alpha_array_pes(self):
        assert GccConfig(alpha_array_size=8).alpha_array_pes == 64
