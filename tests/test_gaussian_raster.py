"""Tests for the GCC-dataflow (Gaussian-wise) renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians.model import GaussianScene
from repro.render.common import RenderConfig
from repro.render.gaussian_raster import render_gaussianwise
from repro.render.metrics import psnr
from repro.render.tile_raster import render_tilewise


class TestImageEquivalence:
    def test_matches_tilewise_reference(self, smoke_scene, smoke_camera):
        reference = render_tilewise(smoke_scene, smoke_camera).image
        image = render_gaussianwise(smoke_scene, smoke_camera).image
        # Table 2 of the paper: the dataflows are visually lossless relative
        # to each other (PSNR differences below 0.1 dB on real scenes).
        assert psnr(reference, image) > 40.0

    def test_cc_does_not_change_the_image(self, smoke_scene, smoke_camera):
        with_cc = render_gaussianwise(smoke_scene, smoke_camera, enable_cc=True).image
        without_cc = render_gaussianwise(smoke_scene, smoke_camera, enable_cc=False).image
        assert np.allclose(with_cc, without_cc, atol=1e-9)

    def test_boundary_mode_does_not_change_the_image(self, smoke_scene, smoke_camera):
        alpha_mode = render_gaussianwise(smoke_scene, smoke_camera, boundary_mode="alpha").image
        aabb_mode = render_gaussianwise(smoke_scene, smoke_camera, boundary_mode="aabb").image
        assert psnr(alpha_mode, aabb_mode) > 40.0

    def test_block_size_does_not_change_the_image(self, smoke_scene, smoke_camera):
        image_8 = render_gaussianwise(
            smoke_scene, smoke_camera, RenderConfig(radius_rule="omega-sigma", block_size=8)
        ).image
        image_16 = render_gaussianwise(
            smoke_scene, smoke_camera, RenderConfig(radius_rule="omega-sigma", block_size=16)
        ).image
        assert np.allclose(image_8, image_16, atol=1e-9)

    def test_empty_scene(self, front_camera):
        result = render_gaussianwise(GaussianScene.empty(), front_camera)
        assert result.stats.num_rendered == 0
        assert np.allclose(result.image, 0.0)

    def test_invalid_boundary_mode_raises(self, smoke_scene, smoke_camera):
        with pytest.raises(ValueError):
            render_gaussianwise(smoke_scene, smoke_camera, boundary_mode="obb")


class TestStatisticsConsistency:
    def test_counts_are_internally_consistent(self, smoke_scene, smoke_camera):
        stats = render_gaussianwise(smoke_scene, smoke_camera).stats
        assert stats.num_total == smoke_scene.num_gaussians
        assert stats.num_stage1_passed + stats.num_depth_culled == stats.num_total
        assert stats.num_groups_processed + stats.num_groups_skipped == stats.num_groups
        assert stats.num_projected <= stats.num_stage1_passed
        assert stats.num_screen_passed <= stats.num_projected
        assert stats.num_sh_evaluated <= stats.num_screen_passed
        assert stats.num_rendered <= stats.num_sh_evaluated
        assert stats.pixels_blended <= stats.alpha_evaluations
        assert stats.blocks_evaluated <= stats.blocks_visited

    def test_cc_reduces_or_preserves_sh_work(self, smoke_scene, smoke_camera):
        with_cc = render_gaussianwise(smoke_scene, smoke_camera, enable_cc=True).stats
        without_cc = render_gaussianwise(smoke_scene, smoke_camera, enable_cc=False).stats
        # Cross-stage conditional processing can only skip SH evaluations.
        assert with_cc.num_sh_evaluated <= without_cc.num_sh_evaluated
        assert without_cc.num_skipped_tmask == 0

    def test_without_cc_all_screen_passed_get_sh(self, smoke_scene, smoke_camera):
        stats = render_gaussianwise(smoke_scene, smoke_camera, enable_cc=False).stats
        assert stats.num_sh_evaluated == stats.num_screen_passed
        assert stats.num_groups_skipped == 0

    def test_rendered_indices_are_valid(self, smoke_scene, smoke_camera):
        stats = render_gaussianwise(smoke_scene, smoke_camera).stats
        assert stats.rendered_indices.size == stats.num_rendered
        if stats.num_rendered:
            assert np.all(stats.rendered_indices < smoke_scene.num_gaussians)

    def test_rendered_set_matches_tilewise(self, smoke_scene, smoke_camera):
        tile_stats = render_tilewise(smoke_scene, smoke_camera).stats
        gauss_stats = render_gaussianwise(smoke_scene, smoke_camera).stats
        tile_set = set(tile_stats.rendered_indices.tolist())
        gauss_set = set(gauss_stats.rendered_indices.tolist())
        # The two dataflows blend the same Gaussians up to boundary-rule
        # differences (omega-sigma vs 3-sigma), so the sets overlap heavily.
        union = max(len(tile_set | gauss_set), 1)
        assert len(tile_set & gauss_set) / union > 0.85

    def test_aabb_boundary_mode_evaluates_more_pixels(self, smoke_scene, smoke_camera):
        alpha_mode = render_gaussianwise(smoke_scene, smoke_camera, boundary_mode="alpha").stats
        aabb_mode = render_gaussianwise(smoke_scene, smoke_camera, boundary_mode="aabb").stats
        assert aabb_mode.alpha_evaluations >= alpha_mode.alpha_evaluations


class TestOcclusionBehaviour:
    def test_cc_skips_occluded_work(self, front_camera):
        # A near opaque wall in front of many distant Gaussians: the distant
        # ones should never have their SH evaluated under CC.
        near_count, far_count = 60, 100
        rng = np.random.default_rng(0)
        near_means = rng.normal(scale=0.3, size=(near_count, 3)) * [1.0, 1.0, 0.05]
        far_means = rng.normal(scale=0.3, size=(far_count, 3)) * [1.0, 1.0, 0.05] + [0, 0, 6.0]
        scene = GaussianScene.from_flat_colors(
            means=np.vstack([near_means, far_means]),
            scales=np.full((near_count + far_count, 3), 1.0),
            quaternions=np.tile([1.0, 0.0, 0.0, 0.0], (near_count + far_count, 1)),
            opacities=np.full(near_count + far_count, 0.99),
            rgb=np.tile([0.5, 0.5, 0.5], (near_count + far_count, 1)),
        )
        stats = render_gaussianwise(scene, front_camera, enable_cc=True).stats
        assert stats.num_sh_evaluated < near_count + far_count
        assert stats.num_skipped_tmask + stats.num_skipped_by_termination > 0


class TestSkipAccounting:
    def test_empty_footprint_is_not_a_tmask_skip(self, front_camera):
        # A Gaussian whose centre projects far off-screen: the clamped start
        # block fails the alpha condition, so its footprint is empty.  That
        # must be recorded as an empty footprint, not as a transmittance-mask
        # saving (nothing was ever saturated).
        scene = GaussianScene.from_flat_colors(
            means=np.array([[-2.7, 0.0, 0.0]]),
            scales=np.array([[0.3, 0.3, 0.3]]),
            quaternions=np.array([[1.0, 0.0, 0.0, 0.0]]),
            opacities=np.array([0.05]),
            rgb=np.array([[0.5, 0.5, 0.5]]),
        )
        config = RenderConfig(radius_rule="3sigma")
        stats = render_gaussianwise(scene, front_camera, config, enable_cc=True).stats
        assert stats.num_screen_passed == 1
        assert stats.num_empty_footprint == 1
        assert stats.num_skipped_tmask == 0
        assert stats.preprocessing_savings == 0.0

    def test_preprocessing_savings_excludes_empty_footprints(self, smoke_scene, smoke_camera):
        stats = render_gaussianwise(smoke_scene, smoke_camera, enable_cc=True).stats
        expected = (
            stats.num_skipped_by_termination + stats.num_skipped_tmask
        ) / max(stats.num_stage1_passed, 1)
        assert stats.preprocessing_savings == pytest.approx(expected)
        # The skip categories partition the screen-passed, non-rendered set.
        assert (
            stats.num_sh_evaluated
            + stats.num_skipped_tmask
            + stats.num_empty_footprint
            == stats.num_screen_passed
        )

    def test_without_cc_empty_footprints_still_counted(self, front_camera):
        scene = GaussianScene.from_flat_colors(
            means=np.array([[-2.7, 0.0, 0.0]]),
            scales=np.array([[0.3, 0.3, 0.3]]),
            quaternions=np.array([[1.0, 0.0, 0.0, 0.0]]),
            opacities=np.array([0.05]),
            rgb=np.array([[0.5, 0.5, 0.5]]),
        )
        config = RenderConfig(radius_rule="3sigma")
        stats = render_gaussianwise(scene, front_camera, config, enable_cc=False).stats
        # Without CC the SH colour is evaluated regardless, but the footprint
        # classification is unchanged.
        assert stats.num_skipped_tmask == 0
        assert stats.num_empty_footprint == stats.num_screen_passed == 1
        assert stats.num_sh_evaluated == 1
