"""Tests for spherical harmonics colour evaluation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.sh import (
    SH_C0,
    SH_COEFFS_PER_CHANNEL,
    count_sh_flops,
    evaluate_sh_colors,
    sh_basis,
)

unit_vectors = st.lists(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False), min_size=3, max_size=3
).filter(lambda v: np.linalg.norm(v) > 1e-3)


class TestShBasis:
    @pytest.mark.parametrize("degree,expected", [(0, 1), (1, 4), (2, 9), (3, 16)])
    def test_basis_width_matches_degree(self, degree, expected):
        basis = sh_basis(np.array([[0.0, 0.0, 1.0]]), degree=degree)
        assert basis.shape == (1, expected)

    def test_degree_zero_is_constant(self):
        directions = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, -1.0]])
        basis = sh_basis(directions, degree=0)
        assert np.allclose(basis, SH_C0)

    def test_rejects_invalid_degree(self):
        with pytest.raises(ValueError):
            sh_basis(np.array([[0.0, 0.0, 1.0]]), degree=4)

    def test_single_direction_promoted_to_batch(self):
        basis = sh_basis(np.array([0.0, 0.0, 1.0]), degree=1)
        assert basis.shape == (1, 4)

    @given(direction=unit_vectors)
    @settings(max_examples=30, deadline=None)
    def test_degree1_terms_are_linear_in_direction(self, direction):
        direction = np.asarray(direction) / np.linalg.norm(direction)
        basis = sh_basis(direction[None, :], degree=1)[0]
        doubled = sh_basis(2.0 * direction[None, :], degree=1)[0]
        # Degree-1 basis functions are linear in (x, y, z).
        assert np.allclose(doubled[1:4], 2.0 * basis[1:4], atol=1e-12)


class TestEvaluateColors:
    def test_dc_only_coefficients_reproduce_flat_color(self):
        rgb = np.array([[0.2, 0.5, 0.8]])
        sh = np.zeros((1, 3, SH_COEFFS_PER_CHANNEL))
        sh[0, :, 0] = (rgb[0] - 0.5) / SH_C0
        color = evaluate_sh_colors(sh, np.array([[0.0, 0.0, 1.0]]))
        assert np.allclose(color, rgb, atol=1e-12)

    def test_dc_only_color_is_view_independent(self, rng):
        sh = np.zeros((1, 3, SH_COEFFS_PER_CHANNEL))
        sh[0, :, 0] = rng.normal(size=3)
        color_a = evaluate_sh_colors(sh, np.array([[0.0, 0.0, 1.0]]))
        color_b = evaluate_sh_colors(sh, np.array([[1.0, 1.0, -1.0]]))
        assert np.allclose(color_a, color_b)

    def test_higher_degree_color_is_view_dependent(self, rng):
        sh = rng.normal(size=(1, 3, SH_COEFFS_PER_CHANNEL))
        color_a = evaluate_sh_colors(sh, np.array([[0.0, 0.0, 1.0]]))
        color_b = evaluate_sh_colors(sh, np.array([[1.0, 0.0, 0.0]]))
        assert not np.allclose(color_a, color_b)

    def test_clamping_prevents_negative_colors(self, rng):
        sh = -10.0 * np.abs(rng.normal(size=(4, 3, SH_COEFFS_PER_CHANNEL)))
        colors = evaluate_sh_colors(sh, rng.normal(size=(4, 3)))
        assert np.all(colors >= 0.0)

    def test_unclamped_evaluation_can_be_negative(self):
        sh = np.zeros((1, 3, SH_COEFFS_PER_CHANNEL))
        sh[0, :, 0] = -10.0
        colors = evaluate_sh_colors(sh, np.array([[0.0, 0.0, 1.0]]), clamp=False)
        assert np.all(colors < 0.0)

    def test_direction_normalisation_is_internal(self, rng):
        sh = rng.normal(size=(1, 3, SH_COEFFS_PER_CHANNEL))
        direction = np.array([[0.3, -0.4, 1.2]])
        assert np.allclose(
            evaluate_sh_colors(sh, direction), evaluate_sh_colors(sh, 5.0 * direction)
        )

    def test_lower_degree_ignores_high_order_coefficients(self, rng):
        sh = rng.normal(size=(1, 3, SH_COEFFS_PER_CHANNEL))
        truncated = sh.copy()
        truncated[:, :, 1:] = 0.0
        full_deg0 = evaluate_sh_colors(sh, np.array([[0.2, 0.3, 0.9]]), degree=0)
        trunc_deg0 = evaluate_sh_colors(truncated, np.array([[0.2, 0.3, 0.9]]), degree=0)
        assert np.allclose(full_deg0, trunc_deg0)


class TestShFlops:
    def test_flop_count_scales_linearly(self):
        assert count_sh_flops(10) == 10 * count_sh_flops(1)

    def test_higher_degree_costs_more(self):
        assert count_sh_flops(1, degree=3) > count_sh_flops(1, degree=1)

    def test_zero_gaussians_cost_nothing(self):
        assert count_sh_flops(0) == 0
