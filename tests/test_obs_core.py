"""Core observability primitives: tracer, metrics registry, exporters.

These are the layer-independent contracts everything above builds on: span
identity and nesting through the thread-local stack, cross-process metric
merge (commutative + associative, so collection order never changes
totals), exporter round-trips, and the structured event log's byte-level
compatibility with the scheduler's historic ``EventLog`` entries.
"""

from __future__ import annotations

import json
import multiprocessing as mp

import pytest

from repro.obs import (
    VIRTUAL,
    WALL,
    MetricsRegistry,
    ObsContext,
    StructuredEventLog,
    Tracer,
    TracerStageHook,
    chrome_trace,
    parse_prometheus_snapshot,
    parse_prometheus_text,
    prometheus_text,
    spans_jsonl,
    validate_chrome_trace,
)

#: Label values exercising every escape the exposition format defines
#: (backslash, double quote, newline) plus innocent-looking separators.
HOSTILE_LABELS = (
    'back\\slash',
    'quo"te',
    'new\nline',
    'all\\three"at\nonce',
    'comma,equals=brace}',
)


class TestTracer:
    def test_span_ids_are_origin_scoped_and_sequential(self):
        tracer = Tracer(origin="t")
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s["id"] for s in tracer.spans] == ["t:1", "t:2"]

    def test_nested_spans_link_parent_and_inherit_lane(self):
        tracer = Tracer(default_lane="main")
        with tracer.span("outer", lane="worker-3") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = {s["name"]: s for s in tracer.spans}
        assert spans["inner"]["parent"] == outer.span_id
        assert spans["inner"]["lane"] == "worker-3"  # inherited, not default
        assert spans["outer"]["parent"] is None
        assert inner.span_id != outer.span_id

    def test_span_times_nest_and_clock_is_wall(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sorted(tracer.spans, key=lambda s: s["name"])
        assert outer["clock"] == WALL
        assert outer["t0_ms"] <= inner["t0_ms"]
        assert inner["t0_ms"] + inner["dur_ms"] <= outer["t0_ms"] + outer["dur_ms"] + 1e-6

    def test_exception_annotates_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span["attrs"]["error"] == "ValueError"

    def test_instant_records_zero_duration_event(self):
        tracer = Tracer()
        tracer.instant("tick", t_ms=12.5, clock=VIRTUAL, attrs={"k": 1})
        (record,) = tracer.spans
        assert record["dur_ms"] is None
        assert record["clock"] == VIRTUAL
        assert record["t0_ms"] == 12.5

    def test_drain_empties_and_preserves_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        drained = tracer.drain()
        assert [s["name"] for s in drained] == ["a"]
        assert len(tracer) == 0

    def test_ingest_reparents_roots_and_overrides_lane(self):
        worker = Tracer(origin="w0", default_lane="worker-0")
        with worker.span("job"):
            with worker.span("frame"):
                pass
        parent = Tracer()
        unit = parent.record("request", lane="worker-0", t0_ms=0.0, dur_ms=5.0)
        parent.ingest(worker.drain(), parent=unit)
        spans = {s["name"]: s for s in parent.spans}
        assert spans["job"]["parent"] == unit  # root re-parented
        assert spans["frame"]["parent"] == spans["job"]["id"]  # child untouched
        assert spans["job"]["lane"] == "worker-0"

    def test_stage_hook_lands_on_enclosing_lane(self):
        tracer = Tracer(default_lane="main")
        hook = TracerStageHook(tracer)
        with tracer.span("frame", lane="worker-1"):
            with hook.stage("blend", tiles=7):
                pass
        spans = {s["name"]: s for s in tracer.spans}
        assert spans["blend"]["lane"] == "worker-1"
        assert spans["blend"]["parent"] == spans["frame"]["id"]
        assert spans["blend"]["attrs"] == {"tiles": 7}


def _count_in_subprocess(conn, amounts):
    registry = MetricsRegistry()
    for amount in amounts:
        registry.counter("work_total", {"kind": "sub"}).inc(amount)
        registry.histogram("latency_ms").observe(amount)
    conn.send(registry.snapshot())
    conn.close()


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        assert registry.value("c") == 3
        assert registry.value("g") == 1.5
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3 and hist.sum == 55.5
        assert hist.cumulative() == [1, 2, 3]

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("req", {"status": "ok"}).inc()
        registry.counter("req", {"status": "shed"}).inc(4)
        assert registry.value("req", {"status": "ok"}) == 1
        assert registry.labeled_values("req") == [
            ({"status": "ok"}, 1),
            ({"status": "shed"}, 4),
        ]

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        a.merge(b.snapshot())
        assert a.value("c") == 5
        assert a.histogram("h", buckets=(1.0,)).counts == [1, 1]

    def test_merge_bucket_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_merge_associative_across_process_snapshots(self):
        """Snapshots from real child processes merge to the same totals in
        any grouping/order — the property that makes worker collection
        order (and mid-run vs shutdown flushes) immaterial."""
        snapshots = []
        for amounts in ([1.0, 2.0], [10.0], [100.0, 0.5, 3.0]):
            recv, send = mp.Pipe(duplex=False)
            proc = mp.Process(target=_count_in_subprocess, args=(send, amounts))
            proc.start()
            send.close()  # our copy, so a dead child raises EOFError below
            assert recv.poll(30), "subprocess never produced a snapshot"
            snapshots.append(recv.recv())
            proc.join(timeout=30)
            assert proc.exitcode == 0

        def merged(order):
            registry = MetricsRegistry()
            for snap in order:
                registry.merge(snap)
            return registry.snapshot()

        s0, s1, s2 = snapshots
        left = merged([s0, s1, s2])
        right = merged([s2, s0, s1])
        assert left == right
        # (a + b) + c == a + (b + c): pre-merge b+c into one registry first.
        bc = MetricsRegistry()
        bc.merge(s1)
        bc.merge(s2)
        assert merged([s0, bc.snapshot()]) == left


class TestExporters:
    def _tracer(self):
        tracer = Tracer(default_lane="main")
        with tracer.span("request", attrs={"request": "r1"}):
            with tracer.span("job"):
                pass
        tracer.instant("dispatch", lane="scheduler", t_ms=3.0, clock=VIRTUAL)
        return tracer

    def test_chrome_trace_shape_and_validation(self):
        payload = chrome_trace(self._tracer().spans)
        assert payload["displayTimeUnit"] == "ms"
        info = validate_chrome_trace(payload, expect_lanes=["main"])
        assert info["spans"] == {"request": 1, "job": 1}
        assert "scheduler" in info["lanes"]

    def test_validation_rejects_missing_lane(self):
        payload = chrome_trace(self._tracer().spans)
        with pytest.raises(ValueError, match="worker-9"):
            validate_chrome_trace(payload, expect_lanes=["worker-9"])

    def test_spans_jsonl_round_trips(self):
        tracer = self._tracer()
        lines = spans_jsonl(tracer.spans).strip().splitlines()
        # Records append on span *exit*, so the inner job precedes request.
        assert [json.loads(line)["name"] for line in lines] == [
            "job",
            "request",
            "dispatch",
        ]

    def test_prometheus_text_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("repro_reqs_total", {"status": "ok"}).inc(7)
        registry.gauge("repro_ratio").set(0.25)
        registry.histogram("repro_lat_ms", buckets=(1.0, 10.0)).observe(5.0)
        parsed = parse_prometheus_text(prometheus_text(registry))
        assert parsed['repro_reqs_total{status="ok"}'] == 7
        assert parsed["repro_ratio"] == 0.25
        assert parsed['repro_lat_ms_bucket{le="+Inf"}'] == 1
        assert parsed["repro_lat_ms_sum"] == 5.0

    def test_prometheus_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not exposition format\n")

    def test_hostile_label_values_round_trip(self):
        # Backslashes, quotes and newlines in label values must survive
        # exposition escaping and come back verbatim through the parser.
        registry = MetricsRegistry()
        for i, value in enumerate(HOSTILE_LABELS):
            registry.counter("repro_hostile_total", {"scene": value}).inc(i + 1)
        text = prometheus_text(registry)
        assert "\n\n" not in text.strip()  # newlines escaped, not emitted
        parsed = parse_prometheus_snapshot(text)
        assert [e["labels"]["scene"] for e in parsed] == sorted(HOSTILE_LABELS)
        assert {e["labels"]["scene"]: e["value"] for e in parsed} == {
            value: i + 1 for i, value in enumerate(HOSTILE_LABELS)
        }

    def test_snapshot_round_trips_through_exposition(self):
        # parse_prometheus_snapshot is the exact inverse of
        # prometheus_text on a full registry: counters, gauges and
        # histograms, hostile labels included.
        registry = MetricsRegistry()
        registry.counter("repro_reqs_total", {"status": 'o"k\\\n'}).inc(7)
        registry.gauge("repro_ratio").set(0.25)
        hist = registry.histogram("repro_lat_ms", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snapshot = registry.snapshot()
        assert parse_prometheus_snapshot(prometheus_text(registry)) == snapshot

    def test_obs_context_bundles_fresh_collectors(self):
        a, b = ObsContext.create(), ObsContext.create()
        a.metrics.counter("c").inc()
        assert b.metrics.value("c") is None
        assert a.tracer is not b.tracer


class TestStructuredEventLog:
    def test_entry_construction_matches_legacy_bytes(self):
        """The migrated scheduler EventLog must build entries exactly as the
        hand-rolled one did — key order, rounding, field pass-through — so
        committed decision-log replays stay byte-identical."""
        log = StructuredEventLog()
        log.emit(12.3456789, "dispatch", request="r1", tier="lod0/lossless")
        log.emit(20, "shed", reason="queue_full")
        expected = [
            {"t_ms": 12.345679, "event": "dispatch", "request": "r1", "tier": "lod0/lossless"},
            {"t_ms": 20.0, "event": "shed", "reason": "queue_full"},
        ]
        assert log.events == expected
        assert json.dumps(log.events) == json.dumps(expected)

    def test_counts_and_len(self):
        log = StructuredEventLog()
        log.emit(1.0, "a")
        log.emit(2.0, "a")
        log.emit(3.0, "b")
        assert log.counts() == {"a": 2, "b": 1}
        assert len(log) == 3

    def test_sinks_tee_without_changing_entries(self):
        seen = []
        log = StructuredEventLog(sinks=(seen.append,))
        entry = log.emit(5.0, "tier_down", from_tier="x")
        assert seen == [entry]
        late = []
        log.add_sink(late.append)
        log.emit(6.0, "tier_up")
        assert len(seen) == 2 and len(late) == 1
        assert log.events[0] == {"t_ms": 5.0, "event": "tier_down", "from_tier": "x"}
