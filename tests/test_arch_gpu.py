"""Tests for the analytical GPU model (Discussion section / Figure 15)."""

from __future__ import annotations

import pytest

from repro.arch.gpu import (
    GPU_PRESETS,
    JETSON_XAVIER,
    RTX_3090,
    gcc_dataflow_breakdown,
    standard_dataflow_breakdown,
)
from repro.render.gaussian_raster import render_gaussianwise
from repro.render.tile_raster import render_tilewise


@pytest.fixture(scope="module")
def stats_pair():
    from repro.gaussians.synthetic import make_camera, make_scene

    scene = make_scene("train", scale=0.002)
    camera = make_camera("train", image_scale=0.1)
    return render_tilewise(scene, camera).stats, render_gaussianwise(scene, camera).stats


class TestPresets:
    def test_presets_registered(self):
        assert GPU_PRESETS["rtx3090"] is RTX_3090
        assert GPU_PRESETS["jetson"] is JETSON_XAVIER

    def test_desktop_gpu_is_faster_than_embedded(self):
        assert RTX_3090.flops > JETSON_XAVIER.flops
        assert RTX_3090.bandwidth > JETSON_XAVIER.bandwidth


class TestBreakdowns:
    def test_stage_times_are_positive_and_sum(self, stats_pair):
        tile_stats, _ = stats_pair
        breakdown = standard_dataflow_breakdown(tile_stats, RTX_3090)
        assert breakdown.total > 0
        shares = breakdown.normalized()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_render_dominates_on_embedded_gpu(self, stats_pair):
        # The paper's first observation: rendering dominates GPU execution
        # (most visible on the bandwidth-starved embedded platform).
        tile_stats, _ = stats_pair
        shares = standard_dataflow_breakdown(tile_stats, JETSON_XAVIER).normalized()
        assert shares["render"] == max(shares.values())

    def test_gcc_dataflow_render_is_slower_on_gpu(self, stats_pair):
        # The paper's second observation: Gaussian-parallel blending needs
        # atomics, so the GCC dataflow's render stage gets slower on a GPU.
        tile_stats, gauss_stats = stats_pair
        standard = standard_dataflow_breakdown(tile_stats, RTX_3090)
        gcc = gcc_dataflow_breakdown(gauss_stats, RTX_3090)
        assert gcc.render > standard.render

    def test_gcc_dataflow_reduces_preprocess_time(self, stats_pair):
        tile_stats, gauss_stats = stats_pair
        standard = standard_dataflow_breakdown(tile_stats, JETSON_XAVIER)
        gcc = gcc_dataflow_breakdown(gauss_stats, JETSON_XAVIER)
        assert gcc.preprocess <= standard.preprocess * 1.05

    def test_jetson_is_slower_than_rtx(self, stats_pair):
        tile_stats, _ = stats_pair
        rtx = standard_dataflow_breakdown(tile_stats, RTX_3090)
        jetson = standard_dataflow_breakdown(tile_stats, JETSON_XAVIER)
        assert jetson.total > rtx.total

    def test_normalized_against_reference_total(self, stats_pair):
        tile_stats, gauss_stats = stats_pair
        standard = standard_dataflow_breakdown(tile_stats, RTX_3090)
        gcc = gcc_dataflow_breakdown(gauss_stats, RTX_3090)
        shares = gcc.normalized(standard.total)
        assert sum(shares.values()) == pytest.approx(gcc.total / standard.total)
