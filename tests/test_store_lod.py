"""Tests for the LOD pyramid: ranking, nesting, validity and quality scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians.model import GaussianScene
from repro.gaussians.sh import SH_COEFFS_PER_CHANNEL
from repro.gaussians.synthetic import make_camera, make_scene
from repro.serve.farm import FrameSpec, render_frame
from repro.store.lod import (
    LodPyramid,
    build_lod_pyramid,
    importance_scores,
    lod_keep_count,
    pyramid_quality,
    select_lod,
)


class TestImportance:
    def test_opacity_and_footprint_both_matter(self):
        # Four Gaussians: big+opaque, big+transparent, small+opaque, small+transparent.
        scene = GaussianScene(
            means=np.zeros((4, 3)),
            scales=np.array(
                [[0.5, 0.5, 0.5], [0.5, 0.5, 0.5], [0.01, 0.01, 0.01], [0.01, 0.01, 0.01]]
            ),
            quaternions=np.tile([1.0, 0, 0, 0], (4, 1)),
            opacities=np.array([0.9, 0.01, 0.9, 0.01]),
            sh_coeffs=np.zeros((4, 3, SH_COEFFS_PER_CHANNEL)),
        )
        scores = importance_scores(scene)
        assert np.argmax(scores) == 0  # big opaque wins
        assert np.argmin(scores) == 3  # small transparent loses

    def test_footprint_uses_two_largest_axes(self):
        # A needle (one long axis) beats a sliver of the same max axis but
        # tiny second axis only if its *second* axis is larger.
        scene = GaussianScene(
            means=np.zeros((2, 3)),
            scales=np.array([[1.0, 0.5, 0.001], [1.0, 0.01, 0.001]]),
            quaternions=np.tile([1.0, 0, 0, 0], (2, 1)),
            opacities=np.array([0.5, 0.5]),
            sh_coeffs=np.zeros((2, 3, SH_COEFFS_PER_CHANNEL)),
        )
        scores = importance_scores(scene)
        assert scores[0] > scores[1]
        assert scores[0] == pytest.approx(0.5 * 1.0 * 0.5)

    def test_empty_scene(self):
        assert importance_scores(GaussianScene.empty()).shape == (0,)


class TestSelection:
    def test_level_zero_is_the_same_object(self, smoke_scene):
        assert select_lod(smoke_scene, 0) is smoke_scene

    def test_counts_follow_ratio(self):
        assert lod_keep_count(1000, 0) == 1000
        assert lod_keep_count(1000, 1) == 500
        assert lod_keep_count(1000, 2) == 250
        assert lod_keep_count(1000, 3, ratio=0.1) == 1
        assert lod_keep_count(0, 5) == 0

    def test_non_empty_scene_never_prunes_to_zero(self, smoke_scene):
        deep = select_lod(smoke_scene, 64)
        assert deep.num_gaussians == 1

    def test_invalid_arguments(self, smoke_scene):
        with pytest.raises(ValueError, match="non-negative"):
            select_lod(smoke_scene, -1)
        with pytest.raises(ValueError, match="ratio"):
            select_lod(smoke_scene, 1, ratio=1.5)

    def test_levels_are_nested_and_order_preserving(self, smoke_scene):
        previous = None
        for level in range(4):
            scene = select_lod(smoke_scene, level)
            rows = {tuple(m) for m in scene.means}
            if previous is not None:
                assert rows <= previous, f"level {level} not nested"
            previous = rows
            # Original order preserved: means appear in the same relative
            # order as in the full scene.
            full_index = {tuple(m): i for i, m in enumerate(smoke_scene.means)}
            positions = [full_index[tuple(m)] for m in scene.means]
            assert positions == sorted(positions)

    def test_each_level_is_valid(self, smoke_scene):
        for level in range(4):
            select_lod(smoke_scene, level).validate()


class TestPyramid:
    def test_build_counts(self, smoke_scene):
        pyramid = build_lod_pyramid(smoke_scene, num_levels=3)
        assert pyramid.num_levels == 3
        counts = [lvl.num_gaussians for lvl in pyramid.levels]
        assert counts[0] == smoke_scene.num_gaussians
        assert counts == sorted(counts, reverse=True)
        fractions = pyramid.keep_fractions()
        assert fractions[0] == 1.0
        assert fractions[1] == pytest.approx(0.5, abs=0.01)

    def test_level_accessor_bounds(self, smoke_scene):
        pyramid = build_lod_pyramid(smoke_scene, num_levels=2)
        assert pyramid.level(0) is smoke_scene
        with pytest.raises(IndexError):
            pyramid.level(2)

    def test_empty_scene_pyramid(self):
        pyramid = build_lod_pyramid(GaussianScene.empty(), num_levels=3)
        assert [lvl.num_gaussians for lvl in pyramid.levels] == [0, 0, 0]
        assert pyramid.keep_fractions() == [1.0, 1.0, 1.0]

    def test_at_least_one_level(self, smoke_scene):
        with pytest.raises(ValueError):
            build_lod_pyramid(smoke_scene, num_levels=0)
        with pytest.raises(ValueError):
            LodPyramid(levels=())


class TestQuality:
    def test_pyramid_quality_scores_against_level_zero(self):
        scene = make_scene("smoke", scale=0.5)
        camera = make_camera("smoke", image_scale=0.5)
        spec = FrameSpec()
        pyramid = build_lod_pyramid(scene, num_levels=3)
        report = pyramid_quality(
            pyramid, lambda s: render_frame(s, camera, spec).image
        )
        assert [entry["level"] for entry in report] == [0, 1, 2]
        assert report[0]["psnr_db"] == float("inf")
        assert report[0]["lpips_proxy"] == 0.0
        for entry in report[1:]:
            assert np.isfinite(entry["psnr_db"])
            assert 0.0 <= entry["lpips_proxy"] <= 1.5
        # Quality can only degrade (weakly) as detail halves.
        assert report[1]["psnr_db"] >= report[2]["psnr_db"]
