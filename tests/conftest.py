"""Shared fixtures for the test suite.

Tests run on deliberately tiny scenes (hundreds of Gaussians, <=128 px
images) so the whole suite stays fast; the statistical behaviour the paper
relies on is checked at those scales and the full-scale shapes are exercised
by the benchmark harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians.camera import Camera, look_at
from repro.gaussians.model import GaussianScene
from repro.gaussians.synthetic import make_camera, make_scene


@pytest.fixture(scope="session")
def smoke_scene() -> GaussianScene:
    """A small clustered scene (a few hundred Gaussians)."""
    return make_scene("smoke", scale=1.0)


@pytest.fixture(scope="session")
def smoke_camera() -> Camera:
    """The default camera for the smoke scene (128x128)."""
    return make_camera("smoke", image_scale=1.0)


@pytest.fixture(scope="session")
def small_lego_scene() -> GaussianScene:
    """A reduced Lego-like scene used by integration tests."""
    return make_scene("lego", scale=0.004)


@pytest.fixture(scope="session")
def small_lego_camera() -> Camera:
    """A reduced-resolution camera for the small Lego scene."""
    return make_camera("lego", image_scale=0.1)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic random generator for ad-hoc test data."""
    return np.random.default_rng(1234)


@pytest.fixture()
def single_gaussian_scene() -> GaussianScene:
    """One opaque Gaussian in front of the default camera."""
    return GaussianScene.from_flat_colors(
        means=np.array([[0.0, 0.0, 0.0]]),
        scales=np.array([[0.15, 0.15, 0.15]]),
        quaternions=np.array([[1.0, 0.0, 0.0, 0.0]]),
        opacities=np.array([0.9]),
        rgb=np.array([[0.2, 0.6, 0.9]]),
        name="single",
    )


@pytest.fixture()
def front_camera() -> Camera:
    """A 64x64 camera 3 units in front of the origin, looking at it."""
    return Camera.from_fov(
        width=64,
        height=64,
        fov_y_degrees=60.0,
        world_to_camera=look_at(np.array([0.0, 0.0, -3.0]), np.array([0.0, 0.0, 0.0])),
    )
