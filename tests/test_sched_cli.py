"""The ``repro-sched`` command-line front end: reports, schema, arguments."""

from __future__ import annotations

import json

import pytest

from repro.sched.__main__ import build_parser, main

#: A tiny virtual-clock run every CLI test can afford.
QUICK_ARGS = ["--rate", "6", "--duration", "3", "--clients", "2", "--seed", "0"]

#: Top-level keys of the JSON report — the schema CI's sched-smoke job pins.
REPORT_KEYS = {
    "workload",
    "policy",
    "requests",
    "offered_rps",
    "goodput_rps",
    "slo_attainment",
    "shed_rate",
    "latency_ms",
    "tier_histogram",
    "dispatch",
    "decisions",
    "num_events",
    "makespan_s",
    "executed",
    "measured",
}


class TestJsonReport:
    def test_schema_keys(self, capsys):
        assert main(QUICK_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == REPORT_KEYS

    def test_events_flag_includes_decision_log(self, capsys):
        main(QUICK_ARGS + ["--json", "--events"])
        payload = json.loads(capsys.readouterr().out)
        assert "events" in payload
        assert len(payload["events"]) == payload["num_events"]
        assert all("t_ms" in e and "event" in e for e in payload["events"])

    def test_events_implies_json(self, capsys):
        main(QUICK_ARGS + ["--events"])
        payload = json.loads(capsys.readouterr().out)  # JSON, not the text report
        assert "events" in payload

    def test_same_seed_same_json(self, capsys):
        main(QUICK_ARGS + ["--json", "--events"])
        first = capsys.readouterr().out
        main(QUICK_ARGS + ["--json", "--events"])
        assert capsys.readouterr().out == first

    def test_fixed_policy_reports_single_tier(self, capsys):
        main(QUICK_ARGS + ["--json", "--policy", "fixed", "--lod", "1", "--quant", "compact"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"]["ladder"] == ["lod1/compact"]
        assert set(payload["tier_histogram"]) <= {"lod1/compact"}

    def test_executed_quick_run_measures_frames(self, capsys):
        assert (
            main(
                QUICK_ARGS
                + [
                    "--json",
                    "--quick",
                    "--execute",
                    "--workers",
                    "0",
                    "--scenes",
                    "train",
                    "--frames-mix",
                    "1,2",
                    "--duration",
                    "1",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] is True
        assert payload["measured"]["frames"] > 0


class TestTextReport:
    def test_mentions_headline_metrics(self, capsys):
        assert main(QUICK_ARGS) == 0
        out = capsys.readouterr().out
        assert "slo attainment" in out
        assert "goodput" in out
        assert "Tier histogram" in out


class TestArgumentValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["--rate", "0"],
            ["--duration", "-1"],
            ["--clients", "0"],
            ["--arrival", "diurnal"],
            ["--scenes", "atlantis"],
            ["--frames-mix", "0,2"],
            ["--frames-mix", "abc"],
            ["--quant", "mp3"],
            ["--slo-ms", "0"],
            ["--zipf-s", "-1"],
        ],
    )
    def test_bad_arguments_exit_2(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_parser_defaults_build(self):
        args = build_parser().parse_args([])
        assert args.arrival == "poisson"
        assert args.policy == "adaptive"
        assert args.executors is None  # fleet mode is strictly opt-in


class TestFleetCli:
    def test_fleet_json_adds_exactly_two_keys(self, capsys):
        assert main(QUICK_ARGS + ["--json", "--executors", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == REPORT_KEYS | {"fleet", "tenant_usage"}
        assert payload["fleet"]["routing"] == "affinity"
        assert payload["fleet"]["executors_initial"] == 2

    def test_fleet_run_is_seed_deterministic(self, capsys):
        argv = QUICK_ARGS + ["--json", "--events", "--executors", "3", "--fair"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_text_report_shows_fleet_and_tenant_usage(self, capsys):
        assert main(QUICK_ARGS + ["--executors", "2"]) == 0
        out = capsys.readouterr().out
        assert "fleet: routing=affinity" in out
        assert "placements:" in out
        assert "Tenant usage" in out

    def test_failure_injection_round_trips(self, capsys):
        argv = QUICK_ARGS + [
            "--json",
            "--events",
            "--executors",
            "2",
            "--fail-executor",
            "1000:0",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fleet"]["failures"] == 1
        assert any(e["event"] == "executor_fail" for e in payload["events"])

    def test_autoscale_flags_round_trip(self, capsys):
        argv = QUICK_ARGS + [
            "--json",
            "--executors",
            "1",
            "--autoscale",
            "--autoscale-max",
            "3",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fleet"]["autoscale"] is True

    @pytest.mark.parametrize(
        "argv",
        [
            ["--executors", "0"],
            ["--routing", "random"],  # fleet flags require --executors
            ["--autoscale"],
            ["--fair"],
            ["--tenant-quota", "0.5"],
            ["--fail-executor", "1000:0"],
            ["--executors", "2", "--routing", "round-robin"],
            ["--executors", "2", "--tenant-quota", "0.5"],  # needs --fair
            ["--executors", "2", "--fair", "--tenant-quota", "1.5"],
            ["--executors", "2", "--fair", "--tenant-quota", "0"],
            ["--executors", "4", "--autoscale", "--autoscale-max", "2"],
            ["--executors", "2", "--fail-executor", "oops"],
            ["--executors", "2", "--fail-executor", "1000"],
        ],
    )
    def test_bad_fleet_arguments_exit_2(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(QUICK_ARGS + argv)
        assert excinfo.value.code == 2
