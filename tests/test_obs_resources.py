"""The /proc resource plane: sampling, gauges, snapshot reassembly.

Raw ``/proc`` reads only exist on Linux, so the tests that touch them
first take a real sample of this test process and skip when the
platform can't provide one; everything downstream of a sample (gauge
recording, snapshot reassembly) is platform-independent and always runs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.obs import MetricsRegistry
from repro.obs.__main__ import main as obs_main
from repro.obs.exporters import parse_prometheus_snapshot, prometheus_text
from repro.obs.resources import (
    CPU_GAUGE,
    CTX_GAUGE,
    RSS_GAUGE,
    ResourceSampler,
    diff_resources,
    read_proc_sample,
    record_resource_gauges,
    resources_from_snapshot,
)


def _require_proc() -> dict:
    sample = read_proc_sample(os.getpid())
    if sample is None:
        pytest.skip("/proc not available on this platform")
    return sample


class TestReadProcSample:
    def test_own_process_reads_sane_values(self):
        sample = _require_proc()
        assert sample["cpu_ticks"] >= 0
        # A live CPython process holds at least a few MB resident.
        assert sample["rss_bytes"] > 1 << 20
        assert sample["voluntary_ctx"] >= 0
        assert sample["involuntary_ctx"] >= 0
        assert sample["t_ns"] > 0

    def test_nonexistent_pid_returns_none(self):
        # Pid 2**22 exceeds the default pid_max on every mainstream
        # kernel config; a dead/bogus pid must degrade to None, not raise.
        assert read_proc_sample(1 << 30) is None


class TestResourceSampler:
    def test_first_sample_has_no_cpu_baseline(self):
        _require_proc()
        sampler = ResourceSampler()
        sample = sampler.sample(os.getpid())
        assert sample is not None
        assert sample["cpu_percent"] is None
        assert sample["rss_bytes"] > 0

    def test_second_sample_estimates_cpu(self):
        _require_proc()
        sampler = ResourceSampler()
        sampler.sample(os.getpid())
        # Burn a little CPU so the tick delta is visible, then resample.
        deadline = time.monotonic() + 0.05
        total = 0
        while time.monotonic() < deadline:
            total += sum(i * i for i in range(1000))
        sample = sampler.sample(os.getpid())
        assert sample["cpu_percent"] is not None
        assert sample["cpu_percent"] >= 0.0

    def test_forget_drops_the_baseline(self):
        _require_proc()
        sampler = ResourceSampler()
        sampler.sample(os.getpid())
        sampler.forget(os.getpid())
        assert sampler.sample(os.getpid())["cpu_percent"] is None

    def test_unsampleable_pid_returns_none(self):
        sampler = ResourceSampler()
        assert sampler.sample(1 << 30) is None


class TestRecordResourceGauges:
    SAMPLE = {
        "cpu_percent": 87.5,
        "rss_bytes": 123_456_789,
        "voluntary_ctx": 42,
        "involuntary_ctx": 7,
    }

    def test_all_gauges_recorded(self):
        registry = MetricsRegistry()
        labels = {"worker": "3"}
        record_resource_gauges(registry, self.SAMPLE, labels)
        assert registry.value(CPU_GAUGE, labels) == 87.5
        assert registry.value(RSS_GAUGE, labels) == 123_456_789
        assert registry.value(CTX_GAUGE, {"worker": "3", "kind": "voluntary"}) == 42
        assert registry.value(CTX_GAUGE, {"worker": "3", "kind": "involuntary"}) == 7

    def test_unknown_cpu_records_no_cpu_gauge(self):
        registry = MetricsRegistry()
        labels = {"worker": "0"}
        record_resource_gauges(registry, dict(self.SAMPLE, cpu_percent=None), labels)
        assert registry.value(CPU_GAUGE, labels) is None
        assert registry.value(RSS_GAUGE, labels) == 123_456_789


class TestResourcesFromSnapshot:
    def _registry_with_workers(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        record_resource_gauges(
            registry,
            {"cpu_percent": 50.0, "rss_bytes": 1000, "voluntary_ctx": 1, "involuntary_ctx": 2},
            {"worker": "0"},
        )
        record_resource_gauges(
            registry,
            {"cpu_percent": None, "rss_bytes": 2000, "voluntary_ctx": 3, "involuntary_ctx": 4},
            {"worker": "1"},
        )
        return registry

    def test_reassembles_per_worker_table(self):
        table = resources_from_snapshot(self._registry_with_workers().snapshot())
        assert sorted(table["workers"]) == ["0", "1"]
        w0, w1 = table["workers"]["0"], table["workers"]["1"]
        assert w0["cpu_percent"] == 50.0
        assert w0["rss_bytes"] == 1000
        assert w0["ctx_switches"] == {"voluntary": 1, "involuntary": 2}
        assert w0["sample_ms"] > 0  # every Gauge.set stamps the sample
        assert w1["cpu_percent"] is None  # first reading: unknown, not 0
        assert w1["rss_bytes"] == 2000

    def test_survives_the_prometheus_round_trip(self):
        registry = self._registry_with_workers()
        direct = resources_from_snapshot(registry.snapshot())
        parsed = resources_from_snapshot(
            parse_prometheus_snapshot(prometheus_text(registry))
        )
        assert parsed == direct

    def test_empty_snapshot(self):
        assert resources_from_snapshot([]) == {}
        registry = MetricsRegistry()
        registry.counter("repro_frames_rendered_total").inc()
        assert resources_from_snapshot(registry.snapshot()) == {}


def _table(**workers) -> dict:
    return {"workers": workers}


def _worker(cpu=None, rss=None) -> dict:
    return {"cpu_percent": cpu, "rss_bytes": rss, "ctx_switches": {}}


class TestDiffResources:
    def test_deltas_for_shared_workers(self):
        diff = diff_resources(
            _table(w0=_worker(cpu=40.0, rss=1000)),
            _table(w0=_worker(cpu=55.0, rss=1500)),
        )
        entry = diff["workers"]["w0"]
        assert entry["rss_delta_bytes"] == 500
        assert entry["cpu_delta_percent"] == 15.0

    def test_one_sided_workers_keep_reading_without_delta(self):
        diff = diff_resources(
            _table(w0=_worker(rss=1000)),
            _table(w1=_worker(rss=2000)),
        )
        assert diff["workers"]["w0"]["current"] is None
        assert diff["workers"]["w1"]["base"] is None
        assert "rss_delta_bytes" not in diff["workers"]["w0"]
        assert "rss_delta_bytes" not in diff["workers"]["w1"]

    def test_unknown_cpu_yields_no_cpu_delta(self):
        diff = diff_resources(
            _table(w0=_worker(cpu=None, rss=1000)),
            _table(w0=_worker(cpu=80.0, rss=1000)),
        )
        entry = diff["workers"]["w0"]
        assert entry["rss_delta_bytes"] == 0
        assert "cpu_delta_percent" not in entry


class TestObsCliResources:
    def _metrics_file(self, tmp_path, name, cpu, rss):
        registry = MetricsRegistry()
        record_resource_gauges(
            registry,
            {"cpu_percent": cpu, "rss_bytes": rss, "voluntary_ctx": 5, "involuntary_ctx": 6},
            {"worker": "0"},
        )
        path = tmp_path / name
        path.write_text(prometheus_text(registry), encoding="utf-8")
        return str(path)

    def test_report_surfaces_worker_resources(self, tmp_path, capsys):
        metrics = self._metrics_file(tmp_path, "m.prom", 62.5, 64 << 20)
        assert obs_main(["--metrics", metrics]) == 0
        out = capsys.readouterr().out
        assert "worker resources" in out
        assert "62.5%" in out and "64.0 MiB" in out

    def test_diff_metrics_reports_deltas(self, tmp_path, capsys):
        base = self._metrics_file(tmp_path, "base.prom", 50.0, 64 << 20)
        current = self._metrics_file(tmp_path, "cur.prom", 75.0, 96 << 20)
        assert obs_main(
            ["--metrics", current, "--diff-metrics", base, "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        entry = report["resources_diff"]["workers"]["0"]
        assert entry["rss_delta_bytes"] == 32 << 20
        assert entry["cpu_delta_percent"] == 25.0

    def test_diff_metrics_requires_metrics(self, tmp_path):
        base = self._metrics_file(tmp_path, "base.prom", 50.0, 1 << 20)
        with pytest.raises(SystemExit):
            obs_main(["--diff-metrics", base])
