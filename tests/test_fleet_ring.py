"""Consistent-hash ring: process/seed stability and bounded key movement."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.fleet.ring import ConsistentHashRing, key_string, stable_hash

#: A representative residency-key population: every scene x lod x quant
#: combination the scheduler's tier ladder can produce, plus view spread.
KEYS = [
    (scene, (lod, quant), view)
    for scene in ("train", "truck", "bicycle", "garden")
    for lod in range(4)
    for quant in ("lossless", "half", "compact")
    for view in range(8)
]


def placement(ring: ConsistentHashRing) -> dict:
    return {key: ring.lookup(key) for key in KEYS}


class TestStableHash:
    def test_is_64_bit(self):
        for key in KEYS[:32]:
            assert 0 <= stable_hash(key_string(key)) < 2**64

    def test_known_value_pins_the_function(self):
        # sha256("train")[:8] big-endian — a change to the hash function
        # would silently reshuffle every committed decision log.
        assert stable_hash("train") == 0x116F54C41D0405DB

    def test_distinct_inputs_distinct_hashes(self):
        hashes = {stable_hash(key_string(key)) for key in KEYS}
        assert len(hashes) == len(KEYS)

    def test_key_string_tuples_join_on_slash(self):
        assert key_string(("train", (0, "half"))) == "train/(0, 'half')"
        assert key_string("train") == "train"


class TestRingDeterminism:
    def test_identical_rings_across_instances(self):
        a = ConsistentHashRing(range(4))
        b = ConsistentHashRing(range(4))
        assert placement(a) == placement(b)

    def test_insertion_order_is_irrelevant(self):
        forward = ConsistentHashRing([0, 1, 2, 3])
        shuffled = ConsistentHashRing([3, 1, 0, 2])
        assert placement(forward) == placement(shuffled)

    def test_identical_ring_across_processes(self):
        """A child process with a different hash seed places keys the same."""
        probe = (
            "from repro.fleet.ring import ConsistentHashRing\n"
            "ring = ConsistentHashRing(range(4))\n"
            "keys = [(s, (l, q)) for s in ('train', 'truck')"
            " for l in range(4) for q in ('lossless', 'half', 'compact')]\n"
            "print(','.join(str(ring.lookup(k)) for k in keys))\n"
        )
        outputs = set()
        for hashseed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", probe],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hashseed},
                cwd="/root/repo",
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1

    def test_lookup_always_lands_on_a_member(self):
        ring = ConsistentHashRing(range(4))
        assert all(ring.lookup(key) in ring.members for key in KEYS)


class TestBoundedMovement:
    def test_add_moves_only_keys_onto_the_new_executor(self):
        before = ConsistentHashRing(range(4))
        old = placement(before)
        before.add(4)
        new = placement(before)
        moved = {key for key in KEYS if old[key] != new[key]}
        assert moved, "adding an executor should claim some keys"
        assert all(new[key] == 4 for key in moved)

    def test_add_movement_is_bounded(self):
        ring = ConsistentHashRing(range(4))
        old = placement(ring)
        ring.add(4)
        new = placement(ring)
        moved = sum(1 for key in KEYS if old[key] != new[key])
        # Expected share is 1/5 of the key space; 64 vnodes keeps the
        # variance small enough that double the share is a safe bound.
        assert moved / len(KEYS) < 0.4

    def test_remove_moves_only_the_lost_executors_keys(self):
        ring = ConsistentHashRing(range(5))
        old = placement(ring)
        ring.remove(2)
        new = placement(ring)
        for key in KEYS:
            if old[key] != 2:
                assert new[key] == old[key]
            else:
                assert new[key] != 2

    def test_add_then_remove_restores_placement(self):
        ring = ConsistentHashRing(range(4))
        old = placement(ring)
        ring.add(9)
        ring.remove(9)
        assert placement(ring) == old


class TestRingApi:
    def test_members_sorted(self):
        ring = ConsistentHashRing([2, 0, 1])
        assert ring.members == (0, 1, 2)
        assert len(ring) == 3
        assert 1 in ring and 7 not in ring

    def test_add_remove_idempotent(self):
        ring = ConsistentHashRing([0])
        points = len(ring._points)
        ring.add(0)
        assert len(ring._points) == points
        ring.remove(5)
        assert ring.members == (0,)
        ring.remove(0)
        ring.remove(0)
        assert ring.members == ()

    def test_empty_ring_lookup_raises(self):
        ring = ConsistentHashRing()
        with pytest.raises(LookupError):
            ring.lookup("train")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(vnodes=0)

    def test_vnode_count_scales_with_members(self):
        ring = ConsistentHashRing(range(3), vnodes=16)
        assert len(ring._points) == 3 * 16

    def test_reasonable_balance_across_executors(self):
        ring = ConsistentHashRing(range(4))
        counts = {executor: 0 for executor in ring.members}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        share = len(KEYS) / len(counts)
        assert all(0.25 * share <= count <= 2.5 * share for count in counts.values())
