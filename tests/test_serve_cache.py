"""Tests for the bounded artifact cache backing the evaluation runner."""

from __future__ import annotations

import pytest

from repro.serve.cache import LRUCache


class TestLRUBasics:
    def test_put_get_roundtrip(self):
        cache = LRUCache(maxsize=4)
        cache.put(("a",), 1)
        assert cache.get(("a",)) == 1
        assert ("a",) in cache
        assert len(cache) == 1

    def test_get_missing_returns_default(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("nope") is None
        assert cache.get("nope", default=-1) == -1

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)
        with pytest.raises(ValueError):
            LRUCache(maxsize=-3)

    def test_unbounded_mode_never_evicts(self):
        cache = LRUCache(maxsize=None)
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) == 1000
        assert cache.stats.evictions == 0

    def test_clear_drops_entries(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None


class TestEvictionOrder:
    def test_lru_entry_evicted_first(self):
        cache = LRUCache(maxsize=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.put("d", 4)  # evicts "a", the least recently used
        assert "a" not in cache
        assert cache.keys() == ["b", "c", "d"]
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(maxsize=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")  # "a" becomes most recent; "b" is now LRU
        cache.put("d", 4)
        assert "b" not in cache
        assert "a" in cache
        assert cache.keys() == ["c", "a", "d"]

    def test_overwrite_refreshes_recency(self):
        cache = LRUCache(maxsize=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.put("a", 10)  # overwrite refreshes, "b" becomes LRU
        cache.put("d", 4)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_eviction_sequence_is_exact(self):
        cache = LRUCache(maxsize=2)
        inserted: list[str] = []
        evicted = []
        for key in ("a", "b", "c", "d", "e"):
            cache.put(key, key)
            inserted.append(key)
            for old in inserted:
                if old not in cache and old not in evicted:
                    evicted.append(old)
        assert evicted == ["a", "b", "c"]
        assert cache.keys() == ["d", "e"]


class TestGetOrCreate:
    def test_factory_runs_once(self):
        cache = LRUCache(maxsize=4)
        calls = []

        def factory():
            calls.append(1)
            return "artifact"

        assert cache.get_or_create("k", factory) == "artifact"
        assert cache.get_or_create("k", factory) == "artifact"
        assert len(calls) == 1

    def test_get_or_create_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.get_or_create("a", lambda: -1)  # hit, refresh
        cache.get_or_create("c", lambda: 3)  # evicts "b"
        assert "b" not in cache
        assert cache.get("a") == 1

    def test_stats_track_hits_and_misses(self):
        cache = LRUCache(maxsize=4)
        cache.get_or_create("a", lambda: 1)  # miss
        cache.get_or_create("a", lambda: 1)  # hit
        cache.get("a")  # hit
        cache.get("missing")  # miss
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert cache.stats.requests == 4
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty_cache(self):
        assert LRUCache().stats.hit_rate == 0.0


class TestRunnerIntegration:
    def test_runner_uses_bounded_cache(self):
        from repro.eval import runner

        assert isinstance(runner.cache(), LRUCache)
        assert runner.cache().maxsize == runner.CACHE_MAXSIZE

    def test_runner_clear_cache_empties_store(self):
        from repro.eval.runner import EvalSetup, cache, clear_cache, load_scene_and_camera

        clear_cache()
        load_scene_and_camera(EvalSetup("train", quick=True))
        assert len(cache()) >= 1
        clear_cache()
        assert len(cache()) == 0


class TestPopResizeClear:
    def test_pop_removes_without_touching_stats(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        before = (cache.stats.hits, cache.stats.misses, cache.stats.evictions)
        assert cache.pop("a") == 1
        assert cache.pop("a", default="gone") == "gone"
        assert "a" not in cache
        assert (cache.stats.hits, cache.stats.misses, cache.stats.evictions) == before

    def test_resize_shrink_evicts_lru_first(self):
        cache = LRUCache(maxsize=4)
        for key in "abcd":
            cache.put(key, key)
        cache.get("a")  # refresh: "b" is now LRU
        cache.resize(2)
        assert cache.keys() == ["d", "a"]
        assert cache.stats.evictions == 2
        assert cache.maxsize == 2

    def test_resize_to_unbounded(self):
        cache = LRUCache(maxsize=1)
        cache.resize(None)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 10
        assert cache.stats.evictions == 0

    def test_resize_invalid(self):
        with pytest.raises(ValueError):
            LRUCache().resize(0)
        with pytest.raises(ValueError):
            LRUCache().resize(-3)

    def test_clear_keeps_stats_by_default(self):
        cache = LRUCache(maxsize=2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_clear_reset_stats_zeroes_counters(self):
        cache = LRUCache(maxsize=2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("a", lambda: 1)
        cache.clear(reset_stats=True)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0
        assert cache.stats.evictions == 0
        assert cache.stats.requests == 0


class TestRunnerCacheConfiguration:
    def test_capacity_from_env_default(self, monkeypatch):
        from repro.eval.runner import DEFAULT_CACHE_MAXSIZE, _capacity_from_env

        monkeypatch.delenv("REPRO_CACHE_SIZE", raising=False)
        assert _capacity_from_env() == DEFAULT_CACHE_MAXSIZE

    def test_capacity_from_env_value(self, monkeypatch):
        from repro.eval.runner import _capacity_from_env

        monkeypatch.setenv("REPRO_CACHE_SIZE", "17")
        assert _capacity_from_env() == 17

    def test_capacity_from_env_unbounded_spellings(self, monkeypatch):
        from repro.eval.runner import _capacity_from_env

        # Every zero spelling must disable eviction, not build LRUCache(0).
        for spelling in ("none", "NONE", "unbounded", "0", "+0", "00"):
            monkeypatch.setenv("REPRO_CACHE_SIZE", spelling)
            assert _capacity_from_env() is None

    def test_capacity_from_env_invalid(self, monkeypatch):
        from repro.eval.runner import _capacity_from_env

        monkeypatch.setenv("REPRO_CACHE_SIZE", "-2")
        with pytest.raises(ValueError):
            _capacity_from_env()
        monkeypatch.setenv("REPRO_CACHE_SIZE", "many")
        with pytest.raises(ValueError):
            _capacity_from_env()

    def test_cache_accessor_resizes_in_place(self):
        from repro.eval import runner

        original = runner.cache().maxsize
        try:
            resized = runner.cache(capacity=8)
            assert resized is runner.cache()
            assert runner.cache().maxsize == 8
        finally:
            runner.cache(capacity=original)
        assert runner.cache().maxsize == original

    def test_clear_cache_reset_stats(self):
        from repro.eval.runner import EvalSetup, cache, clear_cache, load_scene_and_camera

        clear_cache(reset_stats=True)
        load_scene_and_camera(EvalSetup("train", quick=True))
        assert cache().stats.requests >= 1
        clear_cache(reset_stats=True)
        assert cache().stats.requests == 0


class TestThreadSafety:
    """The cache serialises all operations behind one reentrant lock."""

    def test_get_or_create_is_single_flight(self):
        import threading

        cache = LRUCache(maxsize=None)
        built: list[int] = []  # appended under the cache lock
        barrier = threading.Barrier(8)
        keys = list(range(24))

        def hammer():
            barrier.wait()
            for key in keys:
                cache.get_or_create(key, lambda key=key: built.append(key) or key)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Every key was built exactly once no matter how many threads raced.
        assert sorted(built) == keys
        assert cache.stats.misses == len(keys)
        assert cache.stats.hits == 8 * len(keys) - len(keys)
        assert all(cache.get(key) == key for key in keys)

    def test_recursive_factory_does_not_deadlock(self):
        cache = LRUCache(maxsize=None)

        def build_outer():
            return cache.get_or_create("inner", lambda: 1) + 1

        assert cache.get_or_create("outer", build_outer) == 2
        assert cache.get("inner") == 1

    def test_concurrent_mixed_operations_preserve_invariants(self):
        import threading

        cache = LRUCache(maxsize=32)
        errors: list[BaseException] = []
        barrier = threading.Barrier(6)

        def churn(worker: int):
            try:
                barrier.wait()
                for i in range(300):
                    key = (worker * 300 + i) % 96
                    cache.put(key, i)
                    cache.get(key)
                    if i % 7 == 0:
                        cache.pop(key)
                    if i % 50 == 0:
                        cache.resize(16 if i % 100 == 0 else 32)
                    if i % 97 == 0:
                        cache.keys()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(w,)) for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        assert len(cache) <= 32
        stats = cache.stats
        assert stats.requests == stats.hits + stats.misses == 6 * 300
