"""Observability through the executor: span chains, lanes, crash flushes.

The executor is where tracing crosses a process boundary — workers record
into private tracers and piggyback drained spans on the result pipe — so
this file checks the properties that boundary could break: the span chain
(request > job > frame > shard, with kernel stages underneath) survives
re-parenting, worker spans land on the right per-worker lane, worker
metrics merge into the parent's registry, and a worker crash mid-span
still flushes a partial trace (error-annotated request span, lane-closed
marker) without hanging the dispatcher.
"""

from __future__ import annotations

import time

import pytest

from repro.exec import RenderExecutor
from repro.exec.frames import FrameRenderError
from repro.exec.worker import CRASH_ENV
from repro.obs import ObsContext, chrome_trace, validate_chrome_trace
from repro.serve.trajectories import RenderJob, make_trajectory


def quick_job(num_frames: int = 2, **kwargs) -> RenderJob:
    return RenderJob(
        "train", make_trajectory("orbit", num_frames=num_frames), quick=True, **kwargs
    )


def spans_by_name(tracer) -> dict[str, list[dict]]:
    out: dict[str, list[dict]] = {}
    for span in tracer.spans:
        out.setdefault(span["name"], []).append(span)
    return out


class TestSequentialTracing:
    def test_span_chain_and_kernel_stages(self):
        obs = ObsContext.create()
        with RenderExecutor(num_workers=0, obs=obs) as executor:
            executor.submit(quick_job(2), trace={"request": "r1"}).result()
        named = spans_by_name(obs.tracer)
        assert len(named["request"]) == 1 and len(named["job"]) == 1
        assert len(named["frame"]) == 2
        # Kernel stage spans recorded through the hook, one set per frame.
        for stage in ("project", "pair_build", "blend"):
            assert len(named[stage]) == 2, stage
        # Chain: frame -> job -> request, stages under their frame.
        request, job = named["request"][0], named["job"][0]
        assert job["parent"] == request["id"]
        assert all(f["parent"] == job["id"] for f in named["frame"])
        frame_ids = {f["id"] for f in named["frame"]}
        assert all(s["parent"] in frame_ids for s in named["blend"])
        assert request["attrs"]["request"] == "r1"
        assert all(s["lane"] == "main" for s in obs.tracer.spans)

    def test_stage_hook_restored_after_job(self):
        from repro.render.kernels import NullStageHook, stage_hook

        obs = ObsContext.create()
        with RenderExecutor(num_workers=0, obs=obs) as executor:
            executor.submit(quick_job(1)).result()
        assert isinstance(stage_hook(), NullStageHook)

    def test_decode_span_and_cache_metrics(self):
        obs = ObsContext.create()
        with RenderExecutor(num_workers=0, obs=obs) as executor:
            executor.submit(quick_job(1)).result()  # cold: decode happens
            executor.submit(quick_job(1)).result()  # warm: resident
            metrics = executor.collect_metrics()
        named = spans_by_name(obs.tracer)
        assert len(named["decode"]) == 1  # resident cache: decoded once
        assert metrics.value("repro_scene_cache_hits_total") == 1
        assert metrics.value("repro_scene_cache_misses_total") == 1
        assert metrics.value("repro_frames_rendered_total") == 2
        assert metrics.value("repro_cache_hit_ratio") == 0.5


class TestPoolTracing:
    def test_worker_lanes_and_nested_worker_spans(self):
        obs = ObsContext.create()
        with RenderExecutor(num_workers=2, obs=obs) as executor:
            executor.submit(quick_job(2, shards=2), trace={"request": "r2"}).result(
                timeout=300
            )
        named = spans_by_name(obs.tracer)
        # One dispatch-envelope request span per work unit, on worker lanes.
        units = [s for s in named["request"] if s["lane"].startswith("worker-")]
        assert len(units) == 4  # 2 frames x 2 shards
        unit_ids = {s["id"] for s in units}
        # Worker-side roots were re-parented under their dispatch envelope.
        assert all(s["parent"] in unit_ids for s in named["job"])
        assert len(named["shard"]) == 4
        # Shard spans inherit the worker lane of their enclosing tree.
        lanes = {s["lane"] for s in named["shard"]}
        assert lanes <= {"worker-0", "worker-1"}
        # The whole thing exports and validates as a Chrome trace.
        info = validate_chrome_trace(
            chrome_trace(obs.tracer.spans), expect_lanes=["worker-0", "worker-1"]
        )
        assert info["spans"]["shard"] == 4

    def test_worker_metrics_collected_into_parent(self):
        obs = ObsContext.create()
        with RenderExecutor(num_workers=2, obs=obs) as executor:
            executor.submit(quick_job(3)).result(timeout=300)
            mid_run = executor.collect_metrics()
            assert mid_run.value("repro_frames_rendered_total") == 3
        # After shutdown the snapshots were flushed into obs.metrics too.
        assert obs.metrics.value("repro_frames_rendered_total") == 3
        assert obs.metrics.value("repro_published_payloads_total") == 1

    def test_untraced_executor_records_nothing(self):
        with RenderExecutor(num_workers=2) as executor:
            executor.submit(quick_job(2)).result(timeout=300)
            assert len(executor.collect_metrics().snapshot()) == 0


class TestCrashFlush:
    def test_crash_mid_span_flushes_partial_trace(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "train:1")
        obs = ObsContext.create()
        with RenderExecutor(num_workers=2, obs=obs) as executor:
            with pytest.raises(FrameRenderError):
                executor.submit(quick_job(3)).result(timeout=300)
            # The dispatcher healed; a follow-up job traces normally.
            executor.submit(quick_job(1)).result(timeout=300)
            assert executor.stats.workers_replaced == 1
        named = spans_by_name(obs.tracer)
        # The in-flight dispatch of the killed worker became an
        # error-annotated request span, and its lane close is marked.
        errors = [
            s
            for s in named["request"]
            if "worker process died" in str(s["attrs"].get("error", ""))
        ]
        assert len(errors) == 1
        assert errors[0]["attrs"]["frame"] == 1
        (closed,) = named["lane_closed"]
        assert closed["lane"] == errors[0]["lane"]
        # Surviving-worker spans for the pre-crash and follow-up frames
        # still made it back — the crash lost only the dying worker's task.
        ok_units = [s for s in named["request"] if "error" not in s["attrs"]]
        assert len(ok_units) >= 1
        # The trace still exports and validates.
        validate_chrome_trace(chrome_trace(obs.tracer.spans))

    def test_crash_metrics_survive_via_latest_snapshot(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "train:2")
        obs = ObsContext.create()
        with RenderExecutor(num_workers=2, obs=obs) as executor:
            with pytest.raises(FrameRenderError):
                executor.submit(quick_job(3)).result(timeout=300)
            # The crash fails the job as soon as the dead pipe is seen; the
            # surviving worker's frame-1 reply may still be in flight, so
            # poll until the dispatcher has ingested it.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                metrics = executor.collect_metrics()
                if metrics.value("repro_frames_rendered_total") == 2:
                    break
                time.sleep(0.05)
        # Frames 0 and 1 replied before the frame-2 crash; the cumulative
        # snapshots those replies shipped survive the worker's death (one
        # of the two workers died without replying for frame 2).
        assert metrics.value("repro_frames_rendered_total") == 2
        assert metrics.value("repro_workers_replaced_total") == 1
