"""Tests for trajectory workloads (camera paths and render jobs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.scenes import eval_preset
from repro.gaussians.synthetic import make_camera, scene_spec
from repro.serve.trajectories import (
    TRAJECTORY_KINDS,
    RenderJob,
    Trajectory,
    make_trajectory,
)


class TestTrajectoryExpansion:
    @pytest.mark.parametrize("kind", TRAJECTORY_KINDS)
    def test_expands_to_requested_frame_count(self, kind):
        preset = eval_preset("train", quick=True)
        cameras = make_trajectory(kind, num_frames=5).cameras(preset)
        assert len(cameras) == 5

    @pytest.mark.parametrize("kind", TRAJECTORY_KINDS)
    def test_respects_preset_image_scale(self, kind):
        preset = eval_preset("lego", quick=True)
        reference = make_camera("lego", image_scale=preset.image_scale)
        for camera in make_trajectory(kind, num_frames=3).cameras(preset):
            assert (camera.width, camera.height) == (reference.width, reference.height)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trajectory kind"):
            Trajectory(kind="spline", num_frames=4)

    def test_nonpositive_frames_rejected(self):
        with pytest.raises(ValueError, match="num_frames"):
            make_trajectory("orbit", num_frames=0)


class TestOrbit:
    def test_orbit_frames_match_make_camera_exactly(self):
        """Orbit frame i IS make_camera(view_index=i, num_views=N), bitwise."""
        preset = eval_preset("train", quick=True)
        cameras = make_trajectory("orbit", num_frames=6).cameras(preset)
        for i, camera in enumerate(cameras):
            expected = make_camera(
                "train", view_index=i, num_views=6, image_scale=preset.image_scale
            )
            assert np.array_equal(camera.world_to_camera, expected.world_to_camera)
            assert camera.fx == expected.fx and camera.fy == expected.fy

    def test_orbit_frame0_matches_evaluation_camera(self):
        """Azimuth 0 of any orbit equals the runner's view_index=0 camera."""
        preset = eval_preset("train", quick=True)
        frame0 = make_trajectory("orbit", num_frames=16).cameras(preset)[0]
        eval_camera = make_camera(
            "train", view_index=preset.view_index, image_scale=preset.image_scale
        )
        assert np.array_equal(frame0.world_to_camera, eval_camera.world_to_camera)


class TestDolly:
    def test_dolly_approaches_the_scene(self):
        preset = eval_preset("lego", quick=True)
        cameras = make_trajectory("dolly", num_frames=4).cameras(preset)
        distances = [np.linalg.norm(c.position) for c in cameras]
        assert distances == sorted(distances, reverse=True)

    def test_dolly_range_parameters(self):
        preset = eval_preset("lego", quick=True)
        spec = scene_spec("lego")
        cameras = make_trajectory(
            "dolly", num_frames=3, start=2.0, end=1.0
        ).cameras(preset)
        base = spec.extent * spec.camera_radius_factor
        first = np.linalg.norm(cameras[0].position[[0, 2]])
        assert first == pytest.approx(2.0 * base)

    def test_dolly_rejects_nonpositive_radii(self):
        preset = eval_preset("lego", quick=True)
        with pytest.raises(ValueError, match="dolly radii"):
            make_trajectory("dolly", num_frames=2, start=-1.0).cameras(preset)


class TestWalkthroughAndJitter:
    def test_walkthrough_eye_moves_monotonically(self):
        preset = eval_preset("drjohnson", quick=True)
        cameras = make_trajectory("walkthrough", num_frames=5).cameras(preset)
        positions = np.stack([c.position for c in cameras])
        steps = np.diff(positions, axis=0)
        # Constant-direction chord: every step equals the first.
        assert np.allclose(steps, steps[0])
        assert np.linalg.norm(steps[0]) > 0

    def test_jitter_is_deterministic_per_seed(self):
        preset = eval_preset("train", quick=True)
        a = make_trajectory("jitter", num_frames=4, seed=9).cameras(preset)
        b = make_trajectory("jitter", num_frames=4, seed=9).cameras(preset)
        c = make_trajectory("jitter", num_frames=4, seed=10).cameras(preset)
        for ca, cb in zip(a, b):
            assert np.array_equal(ca.world_to_camera, cb.world_to_camera)
        assert not np.array_equal(a[0].world_to_camera, c[0].world_to_camera)

    def test_jitter_stays_near_base_view(self):
        preset = eval_preset("train", quick=True)
        spec = scene_spec("train")
        base = make_camera("train", image_scale=preset.image_scale)
        cameras = make_trajectory(
            "jitter", num_frames=8, jitter_sigma=0.01
        ).cameras(preset)
        for camera in cameras:
            offset = np.linalg.norm(camera.position - base.position)
            assert offset < 0.1 * spec.extent


class TestRenderJob:
    def test_job_expands_cameras(self):
        job = RenderJob("train", make_trajectory("orbit", num_frames=3), quick=True)
        assert job.num_frames == 3
        assert len(job.cameras()) == 3

    def test_job_rejects_unknown_scene(self):
        with pytest.raises(KeyError):
            RenderJob("bonsai", make_trajectory("orbit", num_frames=2))

    def test_job_rejects_bad_dataflow_and_backend(self):
        trajectory = make_trajectory("orbit", num_frames=2)
        with pytest.raises(ValueError, match="dataflow"):
            RenderJob("train", trajectory, dataflow="blockwise")
        with pytest.raises(ValueError, match="backend"):
            RenderJob("train", trajectory, backend="cuda")

    def test_with_frames_resamples(self):
        job = RenderJob("train", make_trajectory("orbit", num_frames=3), quick=True)
        bigger = job.with_frames(7)
        assert bigger.num_frames == 7
        assert bigger.scene == job.scene
        assert job.num_frames == 3  # original untouched
