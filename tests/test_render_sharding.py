"""Intra-frame tile-shard rendering: interval math, merge exactness, executor.

The sharding contract under test, at every layer it crosses:

* :func:`repro.render.kernels.shard_intervals` partitions the tile-id range
  exactly (no gap, no overlap, any shard count — empty trailing shards when
  shards exceed tiles);
* a sharded tile-wise render composed by
  :func:`repro.render.tile_raster.compose_tile_shards` is **bitwise
  identical** to the unsharded frame — the image *and* every statistics
  counter — on every quick preset, at odd shard counts and at shard counts
  exceeding the tile count, on both engines and in both dtypes;
* the exec layer's :class:`~repro.exec.frames.ShardSpec` planning and the
  executor's scatter/merge reproduce the sequential whole-frame path
  bitwise, including with concurrent mixed shard/whole-frame jobs in
  flight.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.eval.runner import EvalSetup, load_scene_and_camera
from repro.eval.scenes import EVAL_SCENES
from repro.exec import RenderExecutor
from repro.exec.frames import (
    FrameSpec,
    ShardSpec,
    _render_frame_task,
    _render_one,
    merge_shard_records,
    plan_shards,
    render_frame,
)
from repro.render.common import RenderConfig
from repro.render.kernels import shard_intervals, tile_interval_slice
from repro.render.tile_raster import (
    compose_tile_shards,
    frame_tile_count,
    render_tilewise,
)
from repro.serve.farm import RenderFarm
from repro.serve.trajectories import RenderJob, make_trajectory


def _scene_camera(scene: str):
    return load_scene_and_camera(EvalSetup(scene, quick=True))


def assert_stats_equal(expected, actual) -> None:
    """Every stats field — counters and index arrays — must match exactly."""
    for field in dataclasses.fields(expected):
        a, b = getattr(expected, field.name), getattr(actual, field.name)
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b), f"stats array {field.name} differs"
        else:
            assert a == b, f"stats counter {field.name}: {a} != {b}"


class TestShardIntervals:
    @pytest.mark.parametrize("num_tiles", [0, 1, 7, 28, 36])
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 40])
    def test_intervals_partition_exactly(self, num_tiles, num_shards):
        intervals = shard_intervals(num_tiles, num_shards)
        assert len(intervals) == num_shards
        cursor = 0
        for lo, hi in intervals:
            assert lo == cursor and hi >= lo
            cursor = hi
        assert cursor == num_tiles

    def test_more_shards_than_tiles_yields_empty_trailing_intervals(self):
        intervals = shard_intervals(3, 5)
        assert sum(hi - lo for lo, hi in intervals) == 3
        assert any(lo == hi for lo, hi in intervals)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            shard_intervals(10, 0)
        with pytest.raises(ValueError):
            shard_intervals(-1, 2)

    def test_interval_slice_matches_mask(self):
        tile_ids = np.array([0, 0, 2, 2, 2, 5, 7, 7, 9])
        for lo, hi in [(0, 3), (2, 6), (3, 5), (0, 10), (9, 9)]:
            sl = tile_interval_slice(tile_ids, lo, hi)
            mask = (tile_ids >= lo) & (tile_ids < hi)
            assert np.array_equal(tile_ids[sl], tile_ids[mask])

    def test_interval_slice_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            tile_interval_slice(np.arange(4), 3, 1)


class TestShardMergeExactness:
    """Sharded == unsharded, bitwise, images AND stats counters."""

    def _render_sharded(self, scene, camera, config, num_shards):
        num_tiles = frame_tile_count(camera.width, camera.height, config.tile_size)
        shards = [
            render_tilewise(scene, camera, config, tile_shard=interval)
            for interval in shard_intervals(num_tiles, num_shards)
        ]
        return compose_tile_shards(shards)

    @pytest.mark.parametrize("scene", sorted(EVAL_SCENES))
    @pytest.mark.parametrize("num_shards", [3, 7])
    def test_every_quick_preset_composes_bitwise(self, scene, num_shards):
        scene_obj, camera = _scene_camera(scene)
        config = RenderConfig()
        whole = render_tilewise(scene_obj, camera, config)
        merged = self._render_sharded(scene_obj, camera, config, num_shards)
        assert merged.image.dtype == whole.image.dtype
        assert np.array_equal(whole.image, merged.image)
        assert_stats_equal(whole.stats, merged.stats)

    @pytest.mark.parametrize("num_shards", [1, 2, 5, 28, 35])
    def test_train_all_shard_counts_including_beyond_tile_count(self, num_shards):
        scene_obj, camera = _scene_camera("train")
        config = RenderConfig()
        # 28 tiles on the quick train preset: 28 is one-tile shards, 35
        # exceeds the tile count (trailing shards render nothing).
        whole = render_tilewise(scene_obj, camera, config)
        merged = self._render_sharded(scene_obj, camera, config, num_shards)
        assert np.array_equal(whole.image, merged.image)
        assert_stats_equal(whole.stats, merged.stats)

    @pytest.mark.parametrize("backend", ["vectorized", "reference"])
    def test_both_backends_compose_bitwise(self, backend):
        scene_obj, camera = _scene_camera("train")
        config = RenderConfig(backend=backend)
        whole = render_tilewise(scene_obj, camera, config)
        merged = self._render_sharded(scene_obj, camera, config, 3)
        assert np.array_equal(whole.image, merged.image)
        assert_stats_equal(whole.stats, merged.stats)

    def test_float32_mode_composes_bitwise_against_itself(self):
        # float32 is PSNR-floored against the float64 oracle, but sharding
        # must still be exact *within* the mode: same bits at any count.
        scene_obj, camera = _scene_camera("train")
        config = RenderConfig(dtype="float32")
        whole = render_tilewise(scene_obj, camera, config)
        assert whole.image.dtype == np.float32
        merged = self._render_sharded(scene_obj, camera, config, 4)
        assert np.array_equal(whole.image, merged.image)
        assert_stats_equal(whole.stats, merged.stats)

    def test_shard_metadata_round_trip(self):
        scene_obj, camera = _scene_camera("train")
        config = RenderConfig()
        num_tiles = frame_tile_count(camera.width, camera.height, config.tile_size)
        (lo, hi) = shard_intervals(num_tiles, 2)[1]
        part = render_tilewise(scene_obj, camera, config, tile_shard=(lo, hi))
        assert part.tile_shard == (lo, hi)
        assert part.stats.num_occupied_tiles <= hi - lo


class TestComposeValidation:
    def _two_shards(self):
        scene_obj, camera = _scene_camera("train")
        config = RenderConfig()
        num_tiles = frame_tile_count(camera.width, camera.height, config.tile_size)
        mid = num_tiles // 2
        return (
            render_tilewise(scene_obj, camera, config, tile_shard=(0, mid)),
            render_tilewise(scene_obj, camera, config, tile_shard=(mid, num_tiles)),
            scene_obj,
            camera,
            config,
        )

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            compose_tile_shards([])

    def test_whole_frame_result_rejected(self):
        scene_obj, camera = _scene_camera("train")
        whole = render_tilewise(scene_obj, camera, RenderConfig())
        with pytest.raises(ValueError):
            compose_tile_shards([whole])

    def test_gap_in_partition_rejected(self):
        first, second, *_ = self._two_shards()
        with pytest.raises(ValueError):
            compose_tile_shards([first])  # missing the tail shard

    def test_overlap_rejected(self):
        first, second, scene_obj, camera, config = self._two_shards()
        overlap = render_tilewise(
            scene_obj, camera, config, tile_shard=(0, first.tile_shard[1] + 1)
        )
        with pytest.raises(ValueError):
            compose_tile_shards([overlap, second])

    def test_out_of_range_shard_rejected(self):
        scene_obj, camera = _scene_camera("train")
        config = RenderConfig()
        num_tiles = frame_tile_count(camera.width, camera.height, config.tile_size)
        with pytest.raises(ValueError):
            render_tilewise(
                scene_obj, camera, config, tile_shard=(0, num_tiles + 1)
            )


class TestShardSpecPlanning:
    def test_shard_spec_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(index=-1, num_shards=2, tile_lo=0, tile_hi=4)
        with pytest.raises(ValueError):
            ShardSpec(index=0, num_shards=0, tile_lo=0, tile_hi=4)
        with pytest.raises(ValueError):
            ShardSpec(index=2, num_shards=2, tile_lo=0, tile_hi=4)
        with pytest.raises(ValueError):
            ShardSpec(index=0, num_shards=1, tile_lo=4, tile_hi=2)

    def test_plan_shards_partitions_the_frame(self):
        _, camera = _scene_camera("train")
        spec = FrameSpec()
        shards = plan_shards(camera, spec, 5)
        assert [s.index for s in shards] == list(range(5))
        num_tiles = frame_tile_count(camera.width, camera.height, spec.tile_size)
        cursor = 0
        for shard in shards:
            assert shard.tile_lo == cursor
            cursor = shard.tile_hi
        assert cursor == num_tiles

    def test_gaussianwise_cannot_shard(self):
        _, camera = _scene_camera("train")
        with pytest.raises(ValueError):
            plan_shards(camera, FrameSpec(dataflow="gaussianwise"), 2)
        scene_obj, camera = _scene_camera("train")
        with pytest.raises(ValueError):
            render_frame(
                scene_obj, camera, FrameSpec(dataflow="gaussianwise"), tile_shard=(0, 1)
            )

    def test_render_job_rejects_gaussianwise_shards(self):
        with pytest.raises(ValueError):
            RenderJob(
                "train",
                make_trajectory("orbit", num_frames=1),
                quick=True,
                dataflow="gaussianwise",
                shards=2,
            )
        with pytest.raises(ValueError):
            RenderJob(
                "train", make_trajectory("orbit", num_frames=1), quick=True, shards=0
            )

    def test_sequential_task_path_matches_whole_frame(self):
        # _render_frame_task with shards > 1 runs the same compositor the
        # pool uses — its record must equal the plain whole-frame record.
        scene_obj, camera = _scene_camera("train")
        spec = FrameSpec()
        whole = _render_one(scene_obj, (0, camera), spec)
        sharded = _render_frame_task(scene_obj, (0, camera), spec, num_shards=3)
        assert np.array_equal(whole.image, sharded.image)
        assert_stats_equal(whole.stats, sharded.stats)

    def test_merge_rejects_mixed_frames(self):
        scene_obj, camera = _scene_camera("train")
        spec = FrameSpec()
        from repro.exec.frames import _render_one_shard

        shards = plan_shards(camera, spec, 2)
        a = _render_one_shard(scene_obj, (0, camera), spec, shards[0])
        b = _render_one_shard(scene_obj, (1, camera), spec, shards[1])
        with pytest.raises(ValueError):
            merge_shard_records([a, b])


class TestExecutorSharding:
    """Pool-path sharding reproduces the sequential oracle bitwise."""

    def _sequential(self, job):
        return RenderFarm(num_workers=0).run(job)

    def _assert_results_equal(self, expected, actual):
        assert expected.num_frames == actual.num_frames
        for seq, pooled in zip(expected.frames, actual.frames):
            assert np.array_equal(seq.image, pooled.image)
            assert_stats_equal(seq.stats, pooled.stats)
        assert expected.aggregate_counters() == actual.aggregate_counters()

    def test_single_frame_sharded_across_pool(self):
        job = RenderJob(
            "train", make_trajectory("orbit", num_frames=1), quick=True, shards=3
        )
        whole = self._sequential(
            RenderJob("train", make_trajectory("orbit", num_frames=1), quick=True)
        )
        with RenderExecutor(num_workers=2) as executor:
            result = executor.submit(job).result(timeout=300)
        self._assert_results_equal(whole, result)
        assert result.summary()["shards"] == 3

    def test_concurrent_mixed_shard_and_whole_frame_jobs(self):
        sharded = RenderJob(
            "train", make_trajectory("orbit", num_frames=2), quick=True, shards=2
        )
        whole = RenderJob(
            "train",
            make_trajectory("orbit", num_frames=2),
            quick=True,
            lod=1,
            quant="compact",
        )
        with RenderExecutor(num_workers=2) as executor:
            handles = [executor.submit(sharded), executor.submit(whole)]
            results = [handle.result(timeout=300) for handle in handles]
        self._assert_results_equal(
            self._sequential(
                RenderJob("train", make_trajectory("orbit", num_frames=2), quick=True)
            ),
            results[0],
        )
        self._assert_results_equal(self._sequential(whole), results[1])

    def test_sequential_executor_accepts_sharded_jobs(self):
        job = RenderJob(
            "train", make_trajectory("orbit", num_frames=2), quick=True, shards=4
        )
        plain = self._sequential(
            RenderJob("train", make_trajectory("orbit", num_frames=2), quick=True)
        )
        self._assert_results_equal(plain, self._sequential(job))

    def test_farm_pools_single_frame_sharded_jobs(self):
        # A one-frame job historically fell back to in-process rendering;
        # with shards > 1 it has multiple work units and earns a pool.
        job = RenderJob(
            "train", make_trajectory("orbit", num_frames=1), quick=True, shards=2
        )
        result = RenderFarm(num_workers=2).run(job)
        assert result.num_workers == 2
        whole = self._sequential(
            RenderJob("train", make_trajectory("orbit", num_frames=1), quick=True)
        )
        self._assert_results_equal(whole, result)
