"""Tests for the standard (tile-wise) renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians.model import GaussianScene
from repro.render.common import RenderConfig
from repro.render.tile_raster import render_tilewise


class TestBasicRendering:
    def test_empty_scene_renders_background(self, front_camera):
        config = RenderConfig(background=(0.25, 0.5, 0.75))
        result = render_tilewise(GaussianScene.empty(), front_camera, config)
        assert result.image.shape == (front_camera.height, front_camera.width, 3)
        assert np.allclose(result.image, [0.25, 0.5, 0.75])
        assert result.stats.num_rendered == 0

    def test_single_gaussian_colours_the_centre(self, single_gaussian_scene, front_camera):
        result = render_tilewise(single_gaussian_scene, front_camera)
        centre = result.image[front_camera.height // 2, front_camera.width // 2]
        corner = result.image[0, 0]
        # Centre picks up the Gaussian's colour (0.2, 0.6, 0.9); the corner
        # stays at the background.
        assert centre[2] > 0.5
        assert np.allclose(corner, 0.0, atol=1e-6)
        assert result.stats.num_rendered == 1

    def test_image_values_are_finite_and_nonnegative(self, smoke_scene, smoke_camera):
        result = render_tilewise(smoke_scene, smoke_camera)
        assert np.all(np.isfinite(result.image))
        assert np.all(result.image >= 0.0)

    def test_subtile_skip_does_not_change_the_image(self, smoke_scene, smoke_camera):
        with_skip = render_tilewise(smoke_scene, smoke_camera, obb_subtile_skip=True)
        without_skip = render_tilewise(smoke_scene, smoke_camera, obb_subtile_skip=False)
        assert np.allclose(with_skip.image, without_skip.image)
        # But it must not *increase* the number of alpha evaluations.
        assert with_skip.stats.alpha_evaluations <= without_skip.stats.alpha_evaluations


class TestStatisticsConsistency:
    def test_counts_are_internally_consistent(self, smoke_scene, smoke_camera):
        stats = render_tilewise(smoke_scene, smoke_camera).stats
        assert stats.num_total == smoke_scene.num_gaussians
        assert stats.num_preprocessed <= stats.num_depth_passed <= stats.num_total
        assert stats.num_rendered <= stats.num_assigned <= stats.num_preprocessed
        assert stats.num_pairs_processed <= stats.num_tile_pairs
        assert stats.pixels_blended <= stats.alpha_evaluations

    def test_rendered_indices_refer_to_original_scene(self, smoke_scene, smoke_camera):
        stats = render_tilewise(smoke_scene, smoke_camera).stats
        assert stats.rendered_indices.size == stats.num_rendered
        assert np.all(stats.rendered_indices < smoke_scene.num_gaussians)
        assert np.all(stats.rendered_indices >= 0)

    def test_average_loads_at_least_one(self, smoke_scene, smoke_camera):
        stats = render_tilewise(smoke_scene, smoke_camera).stats
        assert stats.avg_loads_per_gaussian >= 1.0 or stats.num_assigned == 0

    def test_distinct_processed_bounds(self, smoke_scene, smoke_camera):
        stats = render_tilewise(smoke_scene, smoke_camera).stats
        assert stats.num_distinct_processed <= stats.num_assigned
        assert stats.num_distinct_processed <= stats.num_pairs_processed
        assert stats.num_rendered <= stats.num_distinct_processed

    def test_average_loads_uses_distinct_processed_denominator(self):
        from repro.render.tile_raster import TileWiseStats

        # 30 processed pairs from 10 distinct Gaussians, while 15 Gaussians
        # were assigned overall: the Figure 2b re-load factor divides by the
        # Gaussians actually loaded by the rendering loop, not by everyone
        # who was assigned a (possibly skipped) pair.
        stats = TileWiseStats(
            num_assigned=15, num_pairs_processed=30, num_distinct_processed=10
        )
        assert stats.avg_loads_per_gaussian == 3.0

    def test_rendered_fraction_between_zero_and_one(self, smoke_scene, smoke_camera):
        stats = render_tilewise(smoke_scene, smoke_camera).stats
        assert 0.0 <= stats.rendered_fraction <= 1.0

    def test_smaller_tiles_create_more_pairs(self, smoke_scene, smoke_camera):
        small = render_tilewise(smoke_scene, smoke_camera, RenderConfig(tile_size=8)).stats
        large = render_tilewise(smoke_scene, smoke_camera, RenderConfig(tile_size=32)).stats
        assert small.num_tile_pairs >= large.num_tile_pairs

    def test_tile_size_barely_changes_image(self, smoke_scene, smoke_camera):
        # Coarser tiles admit a few extra fringe pixels (between 3 sigma and
        # the alpha threshold) for near-opaque Gaussians; the images must stay
        # visually identical.
        from repro.render.metrics import psnr

        image_a = render_tilewise(smoke_scene, smoke_camera, RenderConfig(tile_size=8)).image
        image_b = render_tilewise(smoke_scene, smoke_camera, RenderConfig(tile_size=32)).image
        assert psnr(image_a, image_b) > 45.0


class TestEarlyTermination:
    def test_opaque_wall_terminates_processing(self, front_camera):
        # Many co-located opaque Gaussians: only the nearest few should blend.
        count = 50
        means = np.zeros((count, 3))
        means[:, 2] = np.linspace(0.0, 1.0, count)  # increasing depth
        scene = GaussianScene.from_flat_colors(
            means=means,
            scales=np.full((count, 3), 5.0),
            quaternions=np.tile([1.0, 0.0, 0.0, 0.0], (count, 1)),
            opacities=np.full(count, 0.99),
            rgb=np.tile([0.5, 0.5, 0.5], (count, 1)),
        )
        stats = render_tilewise(scene, front_camera).stats
        assert stats.num_rendered < count
        assert stats.num_pairs_processed < stats.num_tile_pairs
