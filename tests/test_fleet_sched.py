"""Fleet-mode scheduling: single-executor identity, routing, autoscale,
failure recovery, fairness/quota, and aggregate health."""

from __future__ import annotations

import json

import pytest

from repro.fleet import AutoscalePolicy, FleetPolicy
from repro.sched.qos import SLOController
from repro.sched.scheduler import (
    OUTCOME_STATUSES,
    RequestScheduler,
    SchedulerPolicy,
    run_workload,
)
from repro.sched.workload import WorkloadSpec

#: A workload hot enough that placement quality matters: few scenes, a
#: bursty arrival process, and more offered work than one lane drains.
SPEC = WorkloadSpec(
    arrival="bursty",
    rate_rps=12.0,
    duration_s=8.0,
    num_clients=4,
    seed=0,
)


def fleet_report(spec=SPEC, fleet=None, **kwargs):
    kwargs.setdefault("policy", SchedulerPolicy(num_workers=4))
    kwargs.setdefault("qos", SLOController())
    return run_workload(spec, RequestScheduler(fleet=fleet, **kwargs))


def events_json(report, strip=()):
    events = [
        {key: value for key, value in event.items() if key not in strip}
        for event in report.log.events
    ]
    return json.dumps(events, sort_keys=True)


class TestSingleExecutorIdentity:
    """fleet=None and fleet@N=1 must make byte-identical decisions."""

    def test_fleet_of_one_matches_legacy_decisions(self):
        legacy = fleet_report(fleet=None)
        fleet = fleet_report(fleet=FleetPolicy(num_executors=1))
        assert events_json(fleet, strip=("executor",)) == events_json(legacy)

    def test_fleet_of_one_matches_legacy_outcomes(self):
        legacy = fleet_report(fleet=None)
        fleet = fleet_report(fleet=FleetPolicy(num_executors=1))
        for a, b in zip(legacy.outcomes, fleet.outcomes):
            assert (a.request.request_id, a.status, a.e2e_ms, a.tier, a.slo_met) == (
                b.request.request_id,
                b.status,
                b.e2e_ms,
                b.tier,
                b.slo_met,
            )

    def test_default_summary_has_no_fleet_keys(self):
        legacy = fleet_report(fleet=None)
        summary = legacy.summary()
        assert "fleet" not in summary
        assert "tenant_usage" not in summary

    def test_fleet_summary_adds_exactly_two_keys(self):
        legacy = set(fleet_report(fleet=None).summary())
        fleet = set(fleet_report(fleet=FleetPolicy(num_executors=1)).summary())
        assert fleet - legacy == {"fleet", "tenant_usage"}

    def test_fleet_executor_arg_conflict_rejected(self):
        with pytest.raises(ValueError):
            RequestScheduler(fleet=FleetPolicy(), executor=object())


class TestFleetRoutingRuns:
    def test_events_carry_executor_lanes(self):
        report = fleet_report(fleet=FleetPolicy(num_executors=4))
        dispatches = [e for e in report.log.events if e["event"] == "dispatch"]
        assert dispatches
        executors = {e["executor"] for e in dispatches}
        assert executors <= {f"executor-{i}" for i in range(4)}
        assert len(executors) > 1  # work actually spreads over the fleet
        completes = [e for e in report.log.events if e["event"] == "complete"]
        assert all("executor" in e for e in completes)

    def test_replay_is_byte_identical(self):
        first = fleet_report(fleet=FleetPolicy(num_executors=4))
        second = fleet_report(fleet=FleetPolicy(num_executors=4))
        assert events_json(first) == events_json(second)
        assert first.summary() == second.summary()

    def test_affinity_ships_fewer_bytes_than_random_at_equal_size(self):
        affinity = fleet_report(fleet=FleetPolicy(num_executors=4, routing="affinity"))
        random = fleet_report(fleet=FleetPolicy(num_executors=4, routing="random"))
        assert affinity.fleet["ship_bytes"] < random.fleet["ship_bytes"]
        assert affinity.goodput_rps >= random.goodput_rps

    def test_least_loaded_runs_and_balances(self):
        report = fleet_report(fleet=FleetPolicy(num_executors=3, routing="least-loaded"))
        assert report.fleet["routing"] == "least-loaded"
        assert sum(report.fleet["placements"].values()) > 0

    def test_fleet_summary_schema(self):
        report = fleet_report(fleet=FleetPolicy(num_executors=2))
        assert set(report.fleet) == {
            "routing",
            "executors_initial",
            "executors_final",
            "executors_peak",
            "autoscale",
            "fair",
            "scale_ups",
            "scale_downs",
            "failures",
            "requeues",
            "ship_bytes",
            "placements",
        }
        assert report.fleet["executors_initial"] == 2
        assert report.fleet["executors_final"] == 2
        assert report.fleet["failures"] == 0


class TestAutoscaling:
    FLEET = FleetPolicy(
        num_executors=1,
        autoscale=AutoscalePolicy(min_executors=1, max_executors=4),
    )

    def test_scales_up_under_pressure_and_back_down(self):
        spec = WorkloadSpec(arrival="bursty", rate_rps=20.0, duration_s=8.0, seed=0)
        report = fleet_report(spec, fleet=self.FLEET)
        assert report.fleet["scale_ups"] > 0
        assert report.fleet["executors_peak"] > 1
        assert report.fleet["scale_downs"] > 0
        ups = [e for e in report.log.events if e["event"] == "scale_up"]
        assert all("reason" in e and "available_at_ms" in e for e in ups)

    def test_autoscale_replay_is_byte_identical(self):
        spec = WorkloadSpec(arrival="bursty", rate_rps=20.0, duration_s=8.0, seed=0)
        first = fleet_report(spec, fleet=self.FLEET)
        second = fleet_report(spec, fleet=self.FLEET)
        assert events_json(first) == events_json(second)

    def test_cold_started_lane_eventually_serves(self):
        spec = WorkloadSpec(arrival="bursty", rate_rps=20.0, duration_s=8.0, seed=0)
        report = fleet_report(spec, fleet=self.FLEET)
        served = {
            e["executor"]
            for e in report.log.events
            if e["event"] == "dispatch"
        }
        assert "executor-1" in served  # a scaled-up lane took work


class TestExecutorFailure:
    FLEET = FleetPolicy(num_executors=2, failures=((2000.0, 0),))

    def test_failure_requeues_in_flight_work(self):
        report = fleet_report(fleet=self.FLEET)
        fails = [e for e in report.log.events if e["event"] == "executor_fail"]
        assert len(fails) == 1
        assert fails[0]["executor"] == "executor-0"
        assert report.fleet["failures"] == 1
        if fails[0]["in_flight"]:
            requeues = [e for e in report.log.events if e["event"] == "requeue"]
            assert len(requeues) == report.fleet["requeues"] > 0

    def test_every_request_still_terminates(self):
        report = fleet_report(fleet=self.FLEET)
        assert all(o.status in OUTCOME_STATUSES for o in report.outcomes)
        from repro.sched.workload import generate_workload

        assert len(report.outcomes) == len(generate_workload(SPEC))

    def test_no_dispatch_to_dead_executor_after_failure(self):
        report = fleet_report(fleet=self.FLEET)
        fail_ms = next(
            e["t_ms"] for e in report.log.events if e["event"] == "executor_fail"
        )
        late = [
            e
            for e in report.log.events
            if e["event"] == "dispatch" and e["t_ms"] > fail_ms
        ]
        assert late  # the survivor keeps serving
        assert all(e["executor"] != "executor-0" for e in late)

    def test_failure_replay_is_byte_identical(self):
        first = fleet_report(fleet=self.FLEET)
        second = fleet_report(fleet=self.FLEET)
        assert events_json(first) == events_json(second)

    def test_unknown_executor_failure_is_a_logged_noop(self):
        report = fleet_report(fleet=FleetPolicy(num_executors=2, failures=((2000.0, 9),)))
        fails = [e for e in report.log.events if e["event"] == "executor_fail"]
        assert fails and fails[0]["known"] is False
        assert report.fleet["failures"] == 0

    def test_autoscaler_replaces_failed_executor(self):
        fleet = FleetPolicy(
            num_executors=2,
            failures=((2000.0, 0),),
            autoscale=AutoscalePolicy(min_executors=2, max_executors=4),
        )
        report = fleet_report(fleet=fleet)
        ups = [
            e
            for e in report.log.events
            if e["event"] == "scale_up" and e["reason"] == "below_min"
        ]
        assert ups
        assert report.fleet["executors_final"] >= 2


class TestFairnessAndQuota:
    def test_fair_dispatch_meters_every_tenant(self):
        report = fleet_report(fleet=FleetPolicy(num_executors=2, fair=True))
        usage = report.tenant_usage
        assert usage
        for tenant in usage.values():
            assert set(tenant) == {"requests", "frames", "ship_bytes", "worker_seconds"}
        dispatched = sum(t["requests"] for t in usage.values())
        dispatches = [e for e in report.log.events if e["event"] == "dispatch"]
        assert dispatched == len(dispatches)

    def test_weights_skew_service_toward_heavy_tenants(self):
        spec = WorkloadSpec(
            arrival="bursty", rate_rps=24.0, duration_s=8.0, num_clients=2, seed=0
        )

        def share(report):
            usage = report.tenant_usage
            total = sum(t["worker_seconds"] for t in usage.values())
            return usage["0"]["worker_seconds"] / total

        flat = fleet_report(spec, fleet=FleetPolicy(num_executors=1, fair=True))
        weighted = fleet_report(
            spec,
            fleet=FleetPolicy(
                num_executors=1, fair=True, tenant_weights={0: 8.0, 1: 0.25}
            ),
        )
        # Weighting tenant 0 up must grow its share of served worker-time
        # relative to the equal-weights run of the same workload.
        assert share(weighted) > share(flat)

    def test_quota_sheds_over_limit_tenants(self):
        spec = WorkloadSpec(
            arrival="bursty", rate_rps=24.0, duration_s=8.0, num_clients=2, seed=0
        )
        report = fleet_report(
            spec, fleet=FleetPolicy(num_executors=1, fair=True, tenant_quota=0.55)
        )
        quota_sheds = [
            e
            for e in report.log.events
            if e["event"] == "shed" and e.get("reason") == "quota_exceeded"
        ]
        assert quota_sheds
        # No tenant's consumed share may exceed the quota.
        total = sum(t["worker_seconds"] for t in report.tenant_usage.values())
        for tenant in report.tenant_usage.values():
            assert tenant["worker_seconds"] <= 0.55 * total + 1e-9

    def test_fair_replay_is_byte_identical(self):
        fleet = FleetPolicy(num_executors=2, fair=True, tenant_quota=0.8)
        first = fleet_report(fleet=fleet)
        second = fleet_report(fleet=fleet)
        assert events_json(first) == events_json(second)


class TestFleetDataPlane:
    """execute=True spins up one real RenderExecutor per lane."""

    SPEC = WorkloadSpec(rate_rps=6.0, duration_s=2.0, num_clients=2, seed=0)

    def scheduler(self, **kwargs):
        from repro.obs import ObsContext

        kwargs.setdefault("obs", ObsContext.create())
        return RequestScheduler(
            policy=SchedulerPolicy(num_workers=0),
            qos=SLOController(),
            execute=True,
            quick=True,
            fleet=FleetPolicy(num_executors=2),
            **kwargs,
        )

    def test_health_aggregates_across_executors(self):
        scheduler = self.scheduler()
        try:
            report = run_workload(self.SPEC, scheduler)
            assert len(report.measured_frame_ms) > 0
            health = scheduler.health()
            assert health["mode"] == "fleet"
            assert health["num_executors"] == 2
            assert set(health["executors"]) <= {"executor-0", "executor-1"}
            for name, sub in health["executors"].items():
                assert sub["executor"] == name
        finally:
            scheduler.close()

    def test_live_metrics_aggregate_without_double_counting(self):
        scheduler = self.scheduler()
        try:
            report = run_workload(self.SPEC, scheduler)
            metrics = scheduler.live_metrics()
            frames = metrics.value("repro_frames_rendered_total")
            assert frames == len(report.measured_frame_ms)
        finally:
            scheduler.close()
