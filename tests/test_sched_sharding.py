"""Shard- and dtype-aware scheduling: tiers, service model, dispatch plans.

The scheduler's side of the intra-frame sharding tentpole: the quality
ladder learns an optional third tier element (the engine dtype), the
deterministic :class:`~repro.sched.scheduler.ServiceModel` learns shard and
float32 service-time terms, and the dispatcher may split a
latency-critical request's frames into tile-range shards — at zero quality
cost — before demoting it down the ladder.  All of it is strictly opt-in:
with the default ``max_shards=1`` policy and float64 ladders, every
decision log replays byte-identical to the pre-sharding scheduler.
"""

from __future__ import annotations

import math

import pytest

from repro.sched.qos import (
    DEFAULT_LADDER,
    FAST_LADDER,
    EventLog,
    QoSPolicy,
    SLOController,
    tier_dtype,
    tier_lod,
    tier_name,
    tier_quant,
)
from repro.sched.scheduler import (
    RequestScheduler,
    SchedulerPolicy,
    ServiceModel,
    run_workload,
)
from repro.sched.workload import Request, WorkloadSpec

SPEC = WorkloadSpec(duration_s=10.0)


def request(
    request_id: int,
    arrival_ms: float = 0.0,
    slo_ms: float = 500.0,
    num_frames: int = 2,
) -> Request:
    return Request(
        request_id=request_id,
        client_id=0,
        priority=1,
        arrival_ms=arrival_ms,
        scene="train",
        trajectory_kind="orbit",
        num_frames=num_frames,
        view_index=0,
        traj_seed=0,
        slo_ms=slo_ms,
    )


class TestTierForms:
    def test_accessors_on_both_forms(self):
        assert tier_lod((1, "fp16")) == 1
        assert tier_quant((1, "fp16")) == "fp16"
        assert tier_dtype((1, "fp16")) == "float64"
        assert tier_dtype((1, "fp16", "float32")) == "float32"

    def test_names_unchanged_for_float64(self):
        assert tier_name((0, "lossless")) == "lod0/lossless"
        assert tier_name((2, "compact", "float32")) == "lod2/compact/float32"

    def test_controller_normalises_redundant_float64(self):
        controller = SLOController(
            ladder=((0, "lossless", "float64"), (1, "compact", "float32"))
        )
        assert controller.ladder == ((0, "lossless"), (1, "compact", "float32"))

    def test_fast_ladder_tiers_are_valid(self):
        controller = SLOController(ladder=FAST_LADDER)
        assert controller.ladder == FAST_LADDER
        assert tier_dtype(FAST_LADDER[0]) == "float64"
        assert all(tier_dtype(t) == "float32" for t in FAST_LADDER[1:])

    @pytest.mark.parametrize(
        "ladder",
        [
            ((0,),),
            ((0, "lossless", "float32", "extra"),),
            ((0, "lossless", "float16"),),
            ((0, "nope", "float32"),),
        ],
    )
    def test_malformed_tiers_rejected(self, ladder):
        with pytest.raises(ValueError):
            SLOController(ladder=ladder)

    def test_float32_ladder_requires_tilewise_scheduler(self):
        with pytest.raises(ValueError):
            RequestScheduler(
                policy=SchedulerPolicy(dataflow="gaussianwise"),
                qos=SLOController(ladder=FAST_LADDER),
            )


class TestPolicyKnobs:
    def test_max_shards_validation(self):
        assert SchedulerPolicy().max_shards == 1
        assert SchedulerPolicy(max_shards=4).max_shards == 4
        with pytest.raises(ValueError):
            SchedulerPolicy(max_shards=0)
        with pytest.raises(ValueError):
            SchedulerPolicy(max_shards=2, dataflow="gaussianwise")


class TestServiceModelShards:
    def test_defaults_reproduce_unsharded_float64_cost(self):
        model = ServiceModel()
        legacy = (
            model.frame_base_ms
            + model.ms_per_kgaussian * model.num_gaussians("train", False, 0) / 1000.0
            + model.ms_per_kpixel * model.num_pixels("train", False) / 1000.0
        )
        assert model.frame_ms("train", False, 0) == pytest.approx(legacy)
        assert model.frame_ms("train", False, 0, dtype="float64", shards=1) == (
            model.frame_ms("train", False, 0)
        )

    def test_shard_unit_cost_formula(self):
        model = ServiceModel()
        whole = model.frame_ms("train", False, 0)
        work = whole - model.frame_base_ms
        for shards in (2, 3, 4):
            unit = model.frame_ms("train", False, 0, shards=shards)
            assert unit == pytest.approx(
                model.frame_base_ms
                + model.shard_overhead_ms * (shards - 1)
                + work / shards
            )

    def test_float32_scales_work_not_base(self):
        model = ServiceModel()
        f64 = model.frame_ms("train", False, 0)
        f32 = model.frame_ms("train", False, 0, dtype="float32")
        work = f64 - model.frame_base_ms
        assert f32 == pytest.approx(
            model.frame_base_ms + work * model.float32_work_factor
        )
        assert f32 < f64

    def test_job_ms_sharding_spreads_over_idle_lanes(self):
        model = ServiceModel()
        req = request(0, num_frames=2)
        tier = (0, "lossless")
        unsharded = model.job_ms(req, tier, workers=4, quick=False, warm=True)
        sharded = model.job_ms(req, tier, workers=4, quick=False, warm=True, shards=2)
        # 2 frames on 4 lanes leaves 2 idle; 2x2 shards fill them and halve
        # the blending work on the critical path.
        assert sharded < unsharded
        # Shards multiply work units: waves = ceil(frames*shards/workers).
        waves = math.ceil(2 * 4 / 4)
        unit = model.frame_ms("train", False, 0, shards=4)
        assert model.job_ms(
            req, tier, workers=4, quick=False, warm=True, shards=4
        ) == pytest.approx(model.dispatch_warm_ms + waves * unit)

    def test_float32_tier_threads_into_job_cost(self):
        model = ServiceModel()
        req = request(0)
        f64 = model.job_ms(req, (0, "lossless"), workers=1, quick=False, warm=True)
        f32 = model.job_ms(
            req, (0, "lossless", "float32"), workers=1, quick=False, warm=True
        )
        assert f32 < f64


class TestDispatchPlans:
    def _scheduler(self, **policy_kwargs) -> RequestScheduler:
        return RequestScheduler(
            policy=SchedulerPolicy(num_workers=4, **policy_kwargs),
            qos=SLOController(log=EventLog()),
        )

    def test_shard_rescue_keeps_full_quality(self):
        # First request warms the tier; the second has slack that fits the
        # top rung only when sharded — the dispatcher shards instead of
        # demoting, at the controller's full-quality rung.
        scheduler = self._scheduler(max_shards=4)
        requests = [request(0), request(1, arrival_ms=200.0, slo_ms=10.0)]
        report = scheduler.run(requests, SPEC)
        outcome = report.outcomes[1]
        assert outcome.status == "completed"
        assert outcome.tier == (0, "lossless")
        assert outcome.shards > 1
        assert outcome.slo_met
        event = [e for e in report.log.events if e["event"] == "dispatch"][1]
        assert event["shards"] == outcome.shards
        assert "demoted_from" not in event

    def test_default_policy_never_shards(self):
        scheduler = self._scheduler()  # max_shards=1
        requests = [request(0), request(1, arrival_ms=200.0, slo_ms=10.0)]
        report = scheduler.run(requests, SPEC)
        assert all(o.shards == 1 for o in report.outcomes)
        assert all(
            "shards" not in e
            for e in report.log.events
            if e["event"] == "dispatch"
        )

    def test_fixed_policy_never_shards(self):
        scheduler = RequestScheduler(
            policy=SchedulerPolicy(num_workers=4, max_shards=4),
            qos=SLOController(policy=QoSPolicy(adaptive=False), log=EventLog()),
        )
        requests = [request(0), request(1, arrival_ms=200.0, slo_ms=10.0)]
        report = scheduler.run(requests, SPEC)
        assert all(o.shards == 1 for o in report.outcomes)

    def test_sharded_run_replays_identically(self):
        spec = WorkloadSpec(
            arrival="bursty", rate_rps=12.0, duration_s=15.0, slo_ms=60.0, seed=7
        )

        def run_once():
            return run_workload(
                spec,
                RequestScheduler(
                    policy=SchedulerPolicy(num_workers=4, max_shards=4),
                    qos=SLOController(log=EventLog()),
                ),
            )

        first, second = run_once(), run_once()
        assert first.log.events == second.log.events
        assert first.summary(include_events=True) == second.summary(
            include_events=True
        )

    def test_default_decision_log_matches_pre_sharding_scheduler(self):
        # The backward-compatibility pin: at default knobs the shard-aware
        # dispatcher must emit exactly the events the historical
        # rung-demotion walk did — no extra fields, no changed decisions.
        spec = WorkloadSpec(arrival="bursty", rate_rps=12.0, duration_s=15.0, seed=9)
        report = run_workload(spec, RequestScheduler(qos=SLOController(log=EventLog())))
        for event in report.log.events:
            assert "shards" not in event
        histogram = report.tier_histogram()
        assert all("/float" not in name for name in histogram)

    def test_fast_ladder_serves_float32_under_pressure(self):
        spec = WorkloadSpec(
            arrival="bursty", rate_rps=14.0, duration_s=30.0, slo_ms=120.0, seed=0
        )
        qos = SLOController(
            policy=QoSPolicy(
                window=8, min_samples=4, cooldown=2, degrade_at=0.9, upgrade_at=0.45
            ),
            ladder=FAST_LADDER,
            log=EventLog(),
        )
        report = run_workload(
            spec, RequestScheduler(policy=SchedulerPolicy(num_workers=1), qos=qos)
        )
        served_float32 = [
            o for o in report.completed if tier_dtype(o.tier) == "float32"
        ]
        assert served_float32, "overload on the fast ladder should reach float32 rungs"
        assert any("/float32" in name for name in report.tier_histogram())

    def test_build_job_carries_plan_into_data_plane(self):
        scheduler = self._scheduler(max_shards=4)
        job = scheduler.build_job(request(0), (1, "fp16", "float32"), shards=3)
        assert job.lod == 1
        assert job.quant == "fp16"
        assert job.dtype == "float32"
        assert job.shards == 3

    def test_summary_reports_max_shards(self):
        scheduler = self._scheduler(max_shards=4)
        report = scheduler.run([request(0)], SPEC)
        assert report.summary()["policy"]["max_shards"] == 4
