"""Synthetic traffic generation: determinism, arrival processes, mixes."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.sched.workload import (
    ARRIVAL_KINDS,
    WorkloadSpec,
    client_profiles,
    generate_workload,
)
from repro.serve.trajectories import TRAJECTORY_KINDS


class TestSpecValidation:
    def test_defaults_are_valid(self):
        WorkloadSpec()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("arrival", "diurnal"),
            ("rate_rps", 0.0),
            ("duration_s", -1.0),
            ("num_clients", 0),
            ("scenes", ()),
            ("zipf_s", -0.5),
            ("frame_choices", (4, 0)),
            ("slo_ms", 0.0),
            ("premium_clients", 99),
            ("burst_factor", 1.0),
            ("burst_fraction", 1.5),
            ("mean_dwell_s", 0.0),
        ],
    )
    def test_invalid_field_rejected(self, field, value):
        with pytest.raises(ValueError):
            dataclasses.replace(WorkloadSpec(), **{field: value})

    def test_burst_mean_rate_must_be_achievable(self):
        # factor * fraction >= 1 would need a negative quiet rate.
        with pytest.raises(ValueError, match="quiet-state rate"):
            WorkloadSpec(arrival="bursty", burst_factor=5.0, burst_fraction=0.25)

    def test_quiet_rate_keeps_long_run_mean(self):
        spec = WorkloadSpec(arrival="bursty", rate_rps=8.0)
        mean = (
            spec.burst_fraction * spec.burst_rate_rps
            + (1 - spec.burst_fraction) * spec.quiet_rate_rps
        )
        assert mean == pytest.approx(spec.rate_rps)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        spec = WorkloadSpec(rate_rps=10.0, duration_s=10.0, seed=7)
        assert generate_workload(spec) == generate_workload(spec)

    def test_same_seed_same_bursty_stream(self):
        spec = WorkloadSpec(arrival="bursty", rate_rps=10.0, duration_s=10.0, seed=7)
        assert generate_workload(spec) == generate_workload(spec)

    def test_different_seeds_differ(self):
        base = WorkloadSpec(rate_rps=10.0, duration_s=10.0, seed=0)
        other = dataclasses.replace(base, seed=1)
        assert generate_workload(base) != generate_workload(other)


class TestArrivalProcesses:
    @pytest.mark.parametrize("arrival", ARRIVAL_KINDS)
    def test_arrivals_sorted_within_window(self, arrival):
        spec = WorkloadSpec(arrival=arrival, rate_rps=20.0, duration_s=10.0, seed=3)
        requests = generate_workload(spec)
        times = [r.arrival_ms for r in requests]
        assert times == sorted(times)
        assert all(0 <= t < spec.duration_s * 1000.0 for t in times)

    @pytest.mark.parametrize("arrival", ARRIVAL_KINDS)
    def test_mean_rate_close_to_offered(self, arrival):
        # Long window so the realised rate concentrates around the mean
        # (the MMPP's count variance is much larger than Poisson's, hence
        # the long horizon rather than a loose tolerance).
        spec = WorkloadSpec(arrival=arrival, rate_rps=10.0, duration_s=2000.0, seed=5)
        requests = generate_workload(spec)
        realised = len(requests) / spec.duration_s
        assert realised == pytest.approx(spec.rate_rps, rel=0.1)

    def test_bursty_is_burstier_than_poisson(self):
        # Index of dispersion of per-second arrival counts: 1 for Poisson,
        # substantially above 1 for the 2-state MMPP at the same mean rate.
        def dispersion(arrival: str) -> float:
            spec = WorkloadSpec(
                arrival=arrival, rate_rps=10.0, duration_s=300.0, seed=11
            )
            times_s = np.array([r.arrival_ms for r in generate_workload(spec)]) / 1000
            counts = np.bincount(
                times_s.astype(int), minlength=int(spec.duration_s)
            )
            return counts.var() / counts.mean()

        assert dispersion("bursty") > 1.5 * dispersion("poisson")

    def test_request_ids_are_sequential(self):
        requests = generate_workload(WorkloadSpec(duration_s=5.0))
        assert [r.request_id for r in requests] == list(range(len(requests)))


class TestMixes:
    @pytest.fixture(scope="class")
    def stream(self):
        spec = WorkloadSpec(rate_rps=20.0, duration_s=100.0, num_clients=6, seed=2)
        return spec, generate_workload(spec)

    def test_fields_within_domains(self, stream):
        spec, requests = stream
        for r in requests:
            assert r.scene in spec.scenes
            assert r.trajectory_kind in TRAJECTORY_KINDS
            assert r.num_frames in spec.frame_choices
            assert 0 <= r.client_id < spec.num_clients
            assert 0 <= r.view_index < 8
            assert r.slo_ms == spec.slo_ms
            assert r.deadline_ms == r.arrival_ms + r.slo_ms

    def test_zipf_rank1_scene_is_most_popular(self, stream):
        spec, requests = stream
        counts = {scene: 0 for scene in spec.scenes}
        for r in requests:
            counts[r.scene] += 1
        assert counts[spec.scenes[0]] == max(counts.values())
        # And the skew is real: rank 1 clearly beats the last rank.
        assert counts[spec.scenes[0]] > 1.5 * counts[spec.scenes[-1]]

    def test_clients_favour_their_own_trajectory(self, stream):
        spec, requests = stream
        for client_id in range(min(4, spec.num_clients)):
            favourite = TRAJECTORY_KINDS[client_id % len(TRAJECTORY_KINDS)]
            mine = [r for r in requests if r.client_id == client_id]
            favoured = sum(1 for r in mine if r.trajectory_kind == favourite)
            assert favoured > len(mine) / len(TRAJECTORY_KINDS)

    def test_priority_classes_follow_premium_count(self, stream):
        spec, requests = stream
        for r in requests:
            expected = 0 if r.client_id < spec.premium_clients else 1
            assert r.priority == expected


class TestClientProfiles:
    def test_profiles_are_deterministic_and_normalised(self):
        spec = WorkloadSpec(num_clients=5)
        profiles = client_profiles(spec)
        assert profiles == client_profiles(spec)
        for profile in profiles:
            assert sum(profile.trajectory_weights) == pytest.approx(1.0)
            assert sum(profile.frame_weights) == pytest.approx(1.0)

    def test_every_trajectory_kind_is_someones_favourite(self):
        profiles = client_profiles(WorkloadSpec(num_clients=4))
        favourites = {
            TRAJECTORY_KINDS[int(np.argmax(p.trajectory_weights))] for p in profiles
        }
        assert favourites == set(TRAJECTORY_KINDS)
