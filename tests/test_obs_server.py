"""The live telemetry HTTP plane: endpoints, cursors, concurrency.

Every test binds an ephemeral port on loopback (``port 0``) and talks to
the server with stdlib ``urllib`` — the same way the CI smoke job and
any external Prometheus scraper would.  The server only ever *reads*
observability state, so tests freely hammer it while work executes.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.exec import RenderExecutor
from repro.exec.worker import STALL_ENV
from repro.obs import (
    MetricsRegistry,
    ObsContext,
    SpanStackTracker,
    StackSampler,
    TelemetryServer,
    parse_listen,
)
from repro.obs.exporters import parse_prometheus_snapshot
from repro.obs.health import LIVE, STALLED, Watchdog
from repro.sched.scheduler import RequestScheduler, SchedulerPolicy, run_workload
from repro.sched.workload import WorkloadSpec
from repro.serve.trajectories import RenderJob, make_trajectory


def _get(url: str):
    """GET ``url`` → (status, headers, body) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        body = exc.read()
        return exc.code, dict(exc.headers), body


class TestParseListen:
    def test_host_and_port(self):
        assert parse_listen("0.0.0.0:8377") == ("0.0.0.0", 8377)

    def test_empty_host_means_loopback(self):
        assert parse_listen(":9000") == ("127.0.0.1", 9000)

    def test_port_zero_is_allowed(self):
        assert parse_listen("127.0.0.1:0") == ("127.0.0.1", 0)

    @pytest.mark.parametrize("bad", ["8377", "host:port", "h:99999", "h:-1"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_listen(bad)


class TestEndpoints:
    def _server(self, **kwargs) -> TelemetryServer:
        kwargs.setdefault("tracer", ObsContext.create().tracer)
        return TelemetryServer("127.0.0.1", 0, **kwargs)

    def test_metrics_parses_and_counts_requests(self):
        live = MetricsRegistry()
        live.counter("repro_frames_rendered_total").inc(5)
        with self._server(metrics_fn=lambda: live) as server:
            base = f"http://{server.address}"
            _get(base + "/metrics")
            status, headers, body = _get(base + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        entries = parse_prometheus_snapshot(body.decode())
        by_key = {(e["name"], tuple(sorted(e["labels"].items()))): e for e in entries}
        assert by_key[("repro_frames_rendered_total", ())]["value"] == 5
        # The second scrape sees the first one's request counter.
        counted = by_key[
            (
                "repro_http_requests_total",
                (("code", "200"), ("endpoint", "/metrics")),
            )
        ]
        assert counted["value"] >= 1
        # The serving process's own RSS rides every scrape.
        assert ("repro_process_rss_bytes", ()) in by_key

    def test_health_wraps_the_snapshot(self):
        with self._server(health_fn=lambda: {"mode": "pool", "workers": []}) as server:
            status, _, body = _get(f"http://{server.address}/health")
        assert status == 200
        payload = json.loads(body)
        assert payload["health"] == {"mode": "pool", "workers": []}
        assert payload["listen"] == server.address
        assert payload["profiler_running"] is False

    def test_trace_cursor_resumption(self):
        obs = ObsContext.create()
        for i in range(3):
            obs.tracer.instant(f"e{i}", t_ms=float(i))
        with self._server(tracer=obs.tracer) as server:
            base = f"http://{server.address}/trace.jsonl"
            status, headers, body = _get(base)
            assert status == 200
            assert len(body.splitlines()) == 3
            cursor = int(headers["X-Trace-Cursor"])
            # Nothing new yet: the tail from the cursor is empty.
            _, headers2, body2 = _get(f"{base}?cursor={cursor}")
            assert body2 == b""
            assert int(headers2["X-Trace-Cursor"]) == cursor
            # New spans appear exactly once on the next resumed fetch.
            obs.tracer.instant("late", t_ms=9.0)
            _, headers3, body3 = _get(f"{base}?cursor={cursor}")
            lines = body3.splitlines()
            assert [json.loads(l)["name"] for l in lines] == ["late"]
            assert int(headers3["X-Trace-Cursor"]) == cursor + 1

    def test_timeline_html(self):
        obs = ObsContext.create()
        obs.tracer.record("request", t0_ms=0.0, dur_ms=5.0)
        with self._server(tracer=obs.tracer) as server:
            status, headers, body = _get(f"http://{server.address}/")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert b"<html" in body or b"<!DOCTYPE" in body

    def test_profile_text_and_json(self):
        with self._server() as server:
            base = f"http://{server.address}/profile"
            status, headers, _ = _get(f"{base}?seconds=0.05")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            status, _, body = _get(f"{base}?seconds=0.05&format=json")
        assert status == 200
        payload = json.loads(body)
        assert set(payload) >= {"attribution", "collapsed", "seconds"}
        assert set(payload["attribution"]) == {
            "total",
            "idle",
            "active",
            "stages",
            "attributed_fraction",
        }

    def test_not_found_and_bad_request(self):
        with self._server() as server:
            base = f"http://{server.address}"
            assert _get(base + "/nope")[0] == 404
            assert _get(base + "/trace.jsonl?cursor=abc")[0] == 400
            assert _get(base + "/trace.jsonl?cursor=-1")[0] == 400
            assert _get(base + "/profile?seconds=abc")[0] == 400
            assert _get(base + "/profile?seconds=0")[0] == 400
            assert _get(base + "/profile?seconds=1e9")[0] == 400
            # Errors are machine-readable JSON.
            _, _, body = _get(base + "/nope")
            assert "error" in json.loads(body)

    def test_concurrent_scrapes(self):
        live = MetricsRegistry()
        live.counter("repro_frames_rendered_total").inc()
        with self._server(metrics_fn=lambda: live) as server:
            base = f"http://{server.address}"
            results = []
            errors = []

            def scrape():
                try:
                    for path in ("/metrics", "/health", "/trace.jsonl"):
                        results.append(_get(base + path)[0])
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(exc)

            threads = [threading.Thread(target=scrape) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert len(results) == 24 and set(results) == {200}

    def test_ephemeral_port_resolves(self):
        server = self._server()
        assert server.port == 0
        with server:
            assert server.port != 0


class TestLiveSchedRun:
    """Scrape an actually-executing scheduler run, tailing the trace."""

    SPEC = WorkloadSpec(
        arrival="poisson", rate_rps=12, duration_s=2, num_clients=2, slo_ms=250, seed=0
    )

    def test_cursor_tail_collects_every_span_exactly_once(self):
        obs = ObsContext.create()
        tracker = SpanStackTracker()
        obs.tracer.observer = tracker
        sampler = StackSampler(interval_s=0.002, tracker=tracker)
        sampler.start()
        scheduler = RequestScheduler(
            policy=SchedulerPolicy(num_workers=0),
            quick=True,
            execute=True,
            obs=obs,
        )
        collected: list[dict] = []
        statuses: list[int] = []
        try:
            with scheduler, TelemetryServer(
                "127.0.0.1",
                0,
                tracer=obs.tracer,
                metrics_fn=scheduler.live_metrics,
                health_fn=scheduler.health,
                sampler=sampler,
            ) as server:
                base = f"http://{server.address}"
                done = threading.Event()

                def tail():
                    cursor = 0
                    while True:
                        status, headers, body = _get(
                            f"{base}/trace.jsonl?cursor={cursor}"
                        )
                        statuses.append(status)
                        for line in body.splitlines():
                            collected.append(json.loads(line))
                        cursor = int(headers["X-Trace-Cursor"])
                        if done.is_set():
                            return
                        statuses.append(_get(base + "/metrics")[0])

                tailer = threading.Thread(target=tail)
                tailer.start()
                report = run_workload(self.SPEC, scheduler)
                done.set()
                tailer.join()
        finally:
            sampler.stop()
        assert report.summary()["requests"]["completed"] > 0
        assert set(statuses) == {200}
        # The incremental tail saw every span exactly once: same ids as
        # the tracer's final record list, no duplicates.
        final_ids = [span["id"] for span in obs.tracer.spans]
        tailed_ids = [span["id"] for span in collected]
        assert len(tailed_ids) == len(set(tailed_ids))
        assert tailed_ids == final_ids

    def test_health_endpoint_classifies_injected_stalled_worker(self, monkeypatch):
        # The acceptance path: an external scraper watching /health sees
        # the watchdog call an injected stall "stalled" while the task is
        # stuck — the same classification health() reports in-process.
        import time

        monkeypatch.setenv(STALL_ENV, "train:1:1.0")
        watchdog = Watchdog(slow_after_s=0.05, stalled_after_s=0.2)
        job = RenderJob(
            "train", make_trajectory("orbit", num_frames=2), quick=True
        )
        observed = set()
        with RenderExecutor(
            num_workers=2, watchdog=watchdog
        ) as executor, TelemetryServer(
            "127.0.0.1", 0, tracer=ObsContext.create().tracer,
            health_fn=executor.health,
        ) as server:
            handle = executor.submit(job)
            url = f"http://{server.address}/health"
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, _, body = _get(url)
                assert status == 200
                health = json.loads(body)["health"]
                observed.update(
                    w["state"] for w in health["workers"] if w["state"] != LIVE
                )
                if STALLED in observed or handle.done():
                    break
                time.sleep(0.01)
            handle.result(timeout=300)
        assert STALLED in observed, observed

    def test_profile_attributes_kernel_stages_during_execution(self):
        obs = ObsContext.create()
        tracker = SpanStackTracker()
        obs.tracer.observer = tracker
        sampler = StackSampler(interval_s=0.002, tracker=tracker)
        sampler.start()
        job = RenderJob(
            "train", make_trajectory("orbit", num_frames=4), quick=True
        )
        try:
            with RenderExecutor(num_workers=0, obs=obs) as executor, TelemetryServer(
                "127.0.0.1",
                0,
                tracer=obs.tracer,
                metrics_fn=executor.collect_metrics,
                health_fn=executor.health,
                sampler=sampler,
            ) as server:
                base = f"http://{server.address}"
                renders = threading.Thread(
                    target=lambda: [executor.submit(job).result() for _ in range(8)]
                )
                renders.start()
                status, _, body = _get(f"{base}/profile?seconds=1.0&format=json")
                renders.join()
        finally:
            sampler.stop()
        assert status == 200
        payload = json.loads(body)
        attribution = payload["attribution"]
        assert payload["collapsed"].strip()  # non-empty collapsed stacks
        assert attribution["active"] > 0
        # The acceptance gate: at least half the active samples land
        # inside named kernel stages while frames render.
        assert attribution["attributed_fraction"] >= 0.5
