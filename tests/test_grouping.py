"""Tests for depth grouping (Stage I)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render.grouping import group_by_depth, grouping_comparison_count

depth_arrays = st.lists(
    st.floats(min_value=0.2, max_value=100.0, allow_nan=False), min_size=0, max_size=400
)


class TestGroupByDepth:
    def test_empty_input_gives_no_groups(self):
        assert group_by_depth(np.array([])) == []

    def test_groups_partition_all_indices(self, rng):
        depths = rng.uniform(0.5, 50.0, size=300)
        groups = group_by_depth(depths, capacity=32)
        all_indices = np.concatenate([g.indices for g in groups])
        assert sorted(all_indices.tolist()) == list(range(300))

    def test_group_sizes_respect_capacity(self, rng):
        depths = rng.uniform(0.5, 50.0, size=500)
        groups = group_by_depth(depths, capacity=64)
        assert all(g.size <= 64 for g in groups)

    def test_groups_are_front_to_back_ordered(self, rng):
        depths = rng.uniform(0.5, 50.0, size=400)
        groups = group_by_depth(depths, capacity=50)
        for earlier, later in zip(groups, groups[1:]):
            assert earlier.depth_max <= later.depth_min + 1e-9 or earlier.depth_max <= later.depth_max

    def test_identical_depths_are_chunked(self):
        depths = np.full(100, 3.0)
        groups = group_by_depth(depths, capacity=30)
        assert sum(g.size for g in groups) == 100
        assert all(g.size <= 30 for g in groups)

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            group_by_depth(np.array([1.0]), capacity=0)

    def test_invalid_bin_count_raises(self):
        with pytest.raises(ValueError):
            group_by_depth(np.array([1.0]), num_coarse_bins=0)

    @given(depths=depth_arrays)
    @settings(max_examples=40, deadline=None)
    def test_property_partition_and_capacity(self, depths):
        depths = np.asarray(depths)
        groups = group_by_depth(depths, capacity=16, num_coarse_bins=8)
        all_indices = (
            np.concatenate([g.indices for g in groups]) if groups else np.array([], dtype=int)
        )
        assert sorted(all_indices.tolist()) == list(range(len(depths)))
        assert all(g.size <= 16 for g in groups)

    @given(depths=depth_arrays)
    @settings(max_examples=40, deadline=None)
    def test_property_global_front_to_back_order(self, depths):
        depths = np.asarray(depths)
        groups = group_by_depth(depths, capacity=16, num_coarse_bins=8)
        previous_max = -np.inf
        for group in groups:
            # Groups come from contiguous depth ranges (or sorted chunks), so
            # each group's minimum must not precede the previous group's
            # minimum, keeping blending order correct across groups.
            assert group.depth_min >= previous_max - 1e-9 or group.depth_min >= previous_max
            previous_max = max(previous_max, group.depth_min)


class TestGroupingComparisons:
    def test_zero_gaussians_cost_nothing(self):
        assert grouping_comparison_count(0) == 0

    def test_count_scales_with_gaussians(self):
        assert grouping_comparison_count(2000) > grouping_comparison_count(1000)
