"""SLO alerting: rule semantics, burn-rate windows, byte-stable replay.

The alert engine is a pure function of ``(timestamp, snapshot)``
timelines, so its contract mirrors the decision log's: same rules +
same seeded workload = byte-identical alert log.  These tests pin the
rule semantics on hand-built snapshots, the replay guarantee on real
seeded scheduler runs, and the histogram quantile estimator against the
scheduler's exact percentiles (reconciliation within one bucket width).
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left

import pytest

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    firing_rules,
    load_rules,
    samples_from_schedule_log,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
)
from repro.sched.scheduler import RequestScheduler, run_workload
from repro.sched.workload import WorkloadSpec

SPEC = WorkloadSpec(
    arrival="bursty", rate_rps=8, duration_s=3, num_clients=2, slo_ms=250, seed=0
)


def latency_snapshot(values, metric="repro_sched_e2e_ms"):
    registry = MetricsRegistry()
    hist = registry.histogram(metric, buckets=DEFAULT_LATENCY_BUCKETS_MS)
    for value in values:
        hist.observe(value)
    return registry.snapshot()


def burn_rule(**overrides):
    kwargs = dict(
        name="e2e-burn",
        kind="burn_rate",
        metric="repro_sched_e2e_ms",
        objective_ms=100.0,
        target=0.9,
        long_window_ms=20_000.0,
        short_window_ms=20_000.0,
        burn_threshold=1.0,
    )
    kwargs.update(overrides)
    return AlertRule(**kwargs)


class TestRuleLoading:
    def test_loads_and_normalizes_labels(self):
        (rule,) = load_rules(
            [{"name": "r", "kind": "threshold", "metric": "m",
              "labels": {"status": "ok", "tier": 1}, "op": ">=", "value": 2}]
        )
        assert rule.labels == (("status", "ok"), ("tier", "1"))

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fields"):
            load_rules([{"name": "r", "kind": "threshold", "metric": "m",
                         "objective": 1}])

    def test_rejects_duplicate_names(self):
        rule = {"name": "r", "kind": "threshold", "metric": "m"}
        with pytest.raises(ValueError, match="duplicate"):
            load_rules([rule, dict(rule)])

    def test_rejects_bad_kind_op_target_windows(self):
        with pytest.raises(ValueError, match="kind"):
            AlertRule(name="r", kind="pager", metric="m")
        with pytest.raises(ValueError, match="op"):
            AlertRule(name="r", kind="threshold", metric="m", op="~")
        with pytest.raises(ValueError, match="target"):
            burn_rule(target=1.0)
        with pytest.raises(ValueError, match="window"):
            burn_rule(short_window_ms=10.0, long_window_ms=5.0)


class TestBurnRate:
    def test_single_final_snapshot_evaluates_whole_run(self):
        # 4 of 10 requests above the 100 ms objective: bad fraction 0.4,
        # budget 0.1 -> burn 4.0 in both windows (no baseline = zero state).
        snap = latency_snapshot([10.0] * 6 + [400.0] * 4)
        log = AlertEngine([burn_rule()]).evaluate([(1000.0, snap)])
        assert [e["event"] for e in log] == ["alert_firing"]
        assert log[0]["burn_long"] == log[0]["burn_short"] == 4.0
        assert firing_rules(log) == ["e2e-burn"]

    def test_within_budget_never_fires(self):
        snap = latency_snapshot([10.0] * 19 + [400.0])  # 5% bad = burn 0.5
        assert AlertEngine([burn_rule()]).evaluate([(1000.0, snap)]) == []

    def test_short_window_recovery_resolves(self):
        # All-bad burst at t=0, then nothing new: the long window still
        # burns, but the short window's trailing delta is empty -> resolved.
        bad = latency_snapshot([400.0] * 10)
        rule = burn_rule(long_window_ms=20_000.0, short_window_ms=1_000.0)
        log = AlertEngine([rule]).evaluate([(0.0, bad), (10_000.0, bad)])
        assert [e["event"] for e in log] == ["alert_firing", "alert_resolved"]
        assert log[1]["burn_long"] > 1.0  # long window alone is not enough
        assert log[1]["burn_short"] == 0.0
        assert firing_rules(log) == []

    def test_missing_or_non_histogram_metric_burns_zero(self):
        registry = MetricsRegistry()
        registry.counter("repro_sched_e2e_ms").inc()
        engine = AlertEngine([burn_rule()])
        assert engine.evaluate([(0.0, [])]) == []
        assert engine.evaluate([(0.0, registry.snapshot())]) == []

    def test_rejects_unordered_samples(self):
        snap = latency_snapshot([1.0])
        with pytest.raises(ValueError, match="ascending"):
            AlertEngine([burn_rule()]).evaluate([(10.0, snap), (0.0, snap)])


class TestThresholdAndAbsence:
    def test_threshold_fires_and_resolves(self):
        rule = AlertRule(
            name="sheds", kind="threshold",
            metric="repro_sched_requests_total",
            labels=(("status", "shed"),), op=">", value=2.0,
        )

        def snap(n):
            registry = MetricsRegistry()
            registry.counter(
                "repro_sched_requests_total", {"status": "shed"}
            ).inc(n)
            return registry.snapshot()

        log = AlertEngine([rule]).evaluate([(0.0, snap(1)), (500.0, snap(5))])
        assert [e["event"] for e in log] == ["alert_firing"]
        assert log[0]["value"] == 5.0

    def test_threshold_missing_metric_reads_zero(self):
        rule = AlertRule(name="r", kind="threshold", metric="m", op="==", value=0.0)
        log = AlertEngine([rule]).evaluate([(0.0, [])])
        assert log[0]["event"] == "alert_firing" and log[0]["value"] == 0.0

    def test_absence_missing_then_present(self):
        rule = AlertRule(name="alive", kind="absence", metric="repro_x_total")
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc()
        log = AlertEngine([rule]).evaluate(
            [(0.0, []), (500.0, registry.snapshot())]
        )
        assert [e["event"] for e in log] == ["alert_firing", "alert_resolved"]
        assert log[0]["reason"] == "missing"

    def test_absence_staleness_window(self):
        rule = AlertRule(
            name="alive", kind="absence", metric="repro_x_total",
            window_ms=1_000.0,
        )

        def snap(n):
            registry = MetricsRegistry()
            registry.counter("repro_x_total").inc(n)
            return registry.snapshot()

        # Counter advances to t=1000 then flatlines: stale by t=3000.
        log = AlertEngine([rule]).evaluate(
            [(0.0, snap(1)), (1_000.0, snap(2)), (3_000.0, snap(2))]
        )
        assert log[-1]["event"] == "alert_firing"
        assert log[-1]["reason"] == "stale"


class TestSeededReplay:
    RULES = (
        burn_rule(name="e2e-tight", objective_ms=0.5, target=0.999,
                  long_window_ms=2_000.0, short_window_ms=500.0),
        AlertRule(name="completed-present", kind="absence",
                  metric="repro_sched_requests_total",
                  labels=(("status", "completed"),)),
    )

    def _alert_log(self):
        report = run_workload(SPEC, RequestScheduler(quick=True))
        samples = samples_from_schedule_log(report.log.events)
        return AlertEngine(self.RULES).evaluate(samples)

    def test_alert_log_replays_byte_identically(self):
        first, second = self._alert_log(), self._alert_log()
        assert json.dumps(first) == json.dumps(second)
        assert any(e["event"] == "alert_firing" for e in first)

    def test_samples_grid_is_deterministic_and_cumulative(self):
        report = run_workload(SPEC, RequestScheduler(quick=True))
        samples = samples_from_schedule_log(report.log.events, interval_ms=500.0)
        times = [t for t, _ in samples]
        assert times == sorted(times)
        assert times[-1] == float(report.log.events[-1]["t_ms"])
        # The final snapshot accounts for every completed request.
        final = {
            (e["name"], tuple(sorted(e["labels"].items()))): e
            for e in samples[-1][1]
        }
        completed = final[
            ("repro_sched_requests_total", (("status", "completed"),))
        ]["value"]
        assert completed == sum(
            1 for e in report.log.events if e["event"] == "complete"
        )


class TestQuantileReconciliation:
    def test_histogram_p95_matches_exact_within_bucket_width(self):
        # Satellite: the bucket-interpolated quantile must land within one
        # bucket width of the scheduler's exact e2e_p95.
        report = run_workload(SPEC, RequestScheduler(quick=True))
        e2e = [
            float(e["e2e_ms"])
            for e in report.log.events
            if e["event"] == "complete"
        ]
        assert e2e, "seeded workload completed no requests"
        hist = Histogram(DEFAULT_LATENCY_BUCKETS_MS)
        for value in e2e:
            hist.observe(value)
        estimate = hist.quantile(0.95)
        exact = report.summary()["latency_ms"]["e2e_p95"]
        bounds = (0.0,) + DEFAULT_LATENCY_BUCKETS_MS
        i = bisect_left(DEFAULT_LATENCY_BUCKETS_MS, exact)
        width = (
            DEFAULT_LATENCY_BUCKETS_MS[i] - bounds[i]
            if i < len(DEFAULT_LATENCY_BUCKETS_MS)
            else float("inf")
        )
        assert abs(estimate - exact) <= width, (estimate, exact, width)


class TestHistogramQuantile:
    def test_empty_is_nan_and_range_checked(self):
        hist = Histogram((1.0, 2.0))
        assert math.isnan(hist.quantile(0.5))
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_linear_interpolation_within_bucket(self):
        hist = Histogram((1.0, 2.0))
        for value in (0.5, 0.5, 1.5, 1.5):
            hist.observe(value)
        # rank 2 falls exactly at the first bucket's cumulative count:
        # interpolates to that bucket's upper bound.
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(0.25) == 0.5
        assert hist.quantile(1.0) == 2.0

    def test_extremes_and_inf_clamp(self):
        hist = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 4.0
        overflow = Histogram((1.0, 2.0, 4.0))
        overflow.observe(100.0)  # lands in +Inf bucket
        assert overflow.quantile(1.0) == 4.0  # clamps to top finite bound
