"""Scheduler-side observability: registry-backed report, CLI exporters.

The scheduler's report quantities (tier histogram, dispatch warm/cold
split) now come from a per-run :class:`MetricsRegistry` instead of
hand-rolled dicts — these tests pin that the numbers agree with the
decision log they summarize, and that the ``repro-sched`` CLI's
``--trace-out`` / ``--metrics-out`` flags write valid artifacts without
changing the report on stdout by a single byte.
"""

from __future__ import annotations

import json

from repro.obs import ObsContext, VIRTUAL, parse_prometheus_text, validate_chrome_trace
from repro.sched.__main__ import main
from repro.sched.scheduler import RequestScheduler, run_workload
from repro.sched.workload import WorkloadSpec

SPEC = WorkloadSpec(
    arrival="bursty", rate_rps=8, duration_s=3, num_clients=2, slo_ms=250, seed=0
)

CLI_ARGS = ["--rate", "6", "--duration", "3", "--clients", "2", "--seed", "0"]


class TestRegistryBackedReport:
    def test_tier_histogram_matches_decision_log(self):
        report = run_workload(SPEC, RequestScheduler(quick=True))
        assert report.metrics is not None
        served = [e for e in report.log.events if e["event"] == "complete"]
        histogram = report.tier_histogram()
        assert sum(histogram.values()) == len(served)
        for tier, count in histogram.items():
            assert count == sum(1 for e in served if e["tier"] == tier)
        # The histogram is served straight from the registry counters.
        for tier, count in histogram.items():
            assert (
                report.metrics.value("repro_sched_tier_served_total", {"tier": tier})
                == count
            )

    def test_dispatch_counts_match_decision_log(self):
        report = run_workload(SPEC, RequestScheduler(quick=True))
        dispatches = [e for e in report.log.events if e["event"] == "dispatch"]
        assert report.dispatch_counts["cold"] + report.dispatch_counts["warm"] == len(
            dispatches
        )
        assert report.dispatch_counts["warm"] == sum(
            1 for e in dispatches if e["warm"]
        )

    def test_request_status_counters_reconcile(self):
        report = run_workload(SPEC, RequestScheduler(quick=True))
        summary = report.summary()["requests"]
        value = lambda status: (
            report.metrics.value("repro_sched_requests_total", {"status": status}) or 0
        )
        assert value("completed") == summary["completed"]
        assert value("shed") == summary["shed"]
        assert value("rejected") == summary["rejected"]

    def test_client_lane_virtual_spans_cover_completions(self):
        obs = ObsContext.create()
        report = run_workload(SPEC, RequestScheduler(quick=True, obs=obs))
        requests = [s for s in obs.tracer.spans if s["name"] == "request"]
        assert len(requests) == report.summary()["requests"]["completed"]
        assert all(s["clock"] == VIRTUAL for s in requests)
        assert all(s["lane"].startswith("client-") for s in requests)
        # Each request span has queue_wait + service children.
        ids = {s["id"] for s in requests}
        children = [s for s in obs.tracer.spans if s["parent"] in ids]
        assert sorted({s["name"] for s in children}) == ["queue_wait", "service"]


class TestCliExportFlags:
    def test_stdout_identical_with_and_without_obs_flags(self, capsys, tmp_path):
        assert main(CLI_ARGS + ["--json", "--events"]) == 0
        plain = capsys.readouterr().out
        assert (
            main(
                CLI_ARGS
                + [
                    "--json",
                    "--events",
                    "--trace-out",
                    str(tmp_path / "trace.json"),
                    "--metrics-out",
                    str(tmp_path / "metrics.prom"),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == plain

    def test_trace_out_writes_valid_chrome_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        main(CLI_ARGS + ["--json", "--trace-out", str(path)])
        capsys.readouterr()
        payload = json.loads(path.read_text())
        info = validate_chrome_trace(payload)
        assert "scheduler" in info["lanes"]
        assert any(lane.startswith("client-") for lane in info["lanes"])

    def test_trace_out_jsonl_writes_span_lines(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        main(CLI_ARGS + ["--json", "--trace-out", str(path)])
        capsys.readouterr()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) > 0
        assert all({"id", "name", "lane", "clock", "t0_ms"} <= set(l) for l in lines)

    def test_metrics_out_parses_and_reconciles(self, capsys, tmp_path):
        path = tmp_path / "metrics.prom"
        main(CLI_ARGS + ["--json", "--metrics-out", str(path)])
        payload = json.loads(capsys.readouterr().out)
        parsed = parse_prometheus_text(path.read_text())
        completed = parsed.get('repro_sched_requests_total{status="completed"}', 0)
        assert completed == payload["requests"]["completed"]
        dispatches = sum(
            v for k, v in parsed.items() if k.startswith("repro_sched_dispatch_total")
        )
        assert dispatches == payload["dispatch"]["cold"] + payload["dispatch"]["warm"]
