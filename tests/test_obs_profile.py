"""The sampling profiler: span tracking, CPU sampling, memory attribution.

The profiling plane is statistical by nature, so these tests avoid
asserting on exact sample counts: synthetic workloads spin inside a
tracked span long enough that *some* samples must land there, and the
attribution math is tested separately on hand-built count dicts where
the arithmetic is exact.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import Tracer
from repro.obs.profile import (
    KERNEL_STAGES,
    TRACKED_SPANS,
    WAIT_LEAVES,
    CompositeObserver,
    MemoryAttributor,
    SpanStackTracker,
    StackSampler,
    attribute_stages,
    collapse_text,
)


class TestSpanStackTracker:
    def test_tracked_span_pushes_and_pops(self):
        tracker = SpanStackTracker()
        ident = threading.get_ident()
        token = tracker.span_enter("blend")
        assert token == "blend"
        assert tracker.innermost(ident) == "blend"
        tracker.span_exit("blend", token)
        assert tracker.innermost(ident) is None

    def test_untracked_span_is_ignored(self):
        tracker = SpanStackTracker()
        assert tracker.span_enter("frame") is None
        assert tracker.innermost(threading.get_ident()) is None
        tracker.span_exit("frame", None)  # must be a no-op

    def test_nesting_reports_innermost(self):
        tracker = SpanStackTracker()
        ident = threading.get_ident()
        outer = tracker.span_enter("decode")
        inner = tracker.span_enter("blend")
        assert tracker.innermost(ident) == "blend"
        tracker.span_exit("blend", inner)
        assert tracker.innermost(ident) == "decode"
        tracker.span_exit("decode", outer)
        assert tracker.innermost(ident) is None

    def test_stacks_are_per_thread(self):
        tracker = SpanStackTracker()
        seen = {}
        started = threading.Event()
        release = threading.Event()

        def other():
            token = tracker.span_enter("project")
            started.set()
            release.wait(timeout=30)
            tracker.span_exit("project", token)

        thread = threading.Thread(target=other)
        thread.start()
        assert started.wait(timeout=30)
        seen["other"] = tracker.innermost(thread.ident)
        seen["self"] = tracker.innermost(threading.get_ident())
        release.set()
        thread.join()
        assert seen == {"other": "project", "self": None}

    def test_kernel_stages_are_tracked(self):
        assert set(KERNEL_STAGES) <= set(TRACKED_SPANS)
        assert "decode" in TRACKED_SPANS


class TestCompositeObserver:
    def test_fans_out_in_order_with_per_observer_tokens(self):
        calls = []

        class Recorder:
            def __init__(self, tag):
                self.tag = tag

            def span_enter(self, name):
                calls.append(("enter", self.tag, name))
                return f"{self.tag}-token"

            def span_exit(self, name, token):
                calls.append(("exit", self.tag, name, token))

        composite = CompositeObserver(Recorder("a"), Recorder("b"))
        token = composite.span_enter("blend")
        composite.span_exit("blend", token)
        assert calls == [
            ("enter", "a", "blend"),
            ("enter", "b", "blend"),
            ("exit", "a", "blend", "a-token"),
            ("exit", "b", "blend", "b-token"),
        ]

    def test_works_as_tracer_observer(self):
        tracker_a, tracker_b = SpanStackTracker(), SpanStackTracker()
        tracer = Tracer()
        tracer.observer = CompositeObserver(tracker_a, tracker_b)
        ident = threading.get_ident()
        with tracer.span("blend"):
            assert tracker_a.innermost(ident) == "blend"
            assert tracker_b.innermost(ident) == "blend"
        assert tracker_a.innermost(ident) is None
        assert tracker_b.innermost(ident) is None


def _spin_in_span(tracer, name, stop):
    while not stop.is_set():
        with tracer.span(name):
            total = 0
            for i in range(20_000):
                total += i * i


class TestStackSampler:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            StackSampler(interval_s=0.0)

    def test_samples_tag_tracked_spans(self):
        tracker = SpanStackTracker()
        tracer = Tracer()
        tracer.observer = tracker
        sampler = StackSampler(interval_s=0.002, tracker=tracker)
        stop = threading.Event()
        worker = threading.Thread(target=_spin_in_span, args=(tracer, "blend", stop))
        worker.start()
        try:
            sampler.start()
            time.sleep(0.3)
        finally:
            stop.set()
            worker.join()
            sampler.stop()
        counts = sampler.counts()
        assert sum(counts.values()) > 0
        attribution = attribute_stages(counts)
        assert attribution["stages"]["blend"] > 0
        # The spinning function itself must appear in the tagged stacks.
        tagged = [f for f in counts if f and f[-1] == "span:blend"]
        assert any("_spin_in_span" in frame for stack in tagged for frame in stack)

    def test_ignored_threads_are_not_sampled(self):
        sampler = StackSampler(interval_s=0.002)
        stop = threading.Event()
        worker = threading.Thread(target=_spin_in_span, args=(Tracer(), "blend", stop))
        worker.start()
        try:
            sampler.ignored.add(worker.ident)
            sampler.start()
            time.sleep(0.1)
        finally:
            stop.set()
            worker.join()
            sampler.stop()
        assert not any(
            "_spin_in_span" in frame for stack in sampler.counts() for frame in stack
        )

    def test_capture_returns_only_the_delta(self):
        tracker = SpanStackTracker()
        tracer = Tracer()
        tracer.observer = tracker
        sampler = StackSampler(interval_s=0.002, tracker=tracker)
        stop = threading.Event()
        worker = threading.Thread(target=_spin_in_span, args=(tracer, "project", stop))
        worker.start()
        try:
            delta = sampler.capture(0.2)  # inline mode: sampler not started
        finally:
            stop.set()
            worker.join()
        assert sum(delta.values()) > 0
        assert all(count > 0 for count in delta.values())
        # A second instant capture of an idle process adds ~nothing from
        # the worker (it exited); the delta must not resurface old counts.
        quiet = sampler.capture(0.02)
        assert not any(
            "_spin_in_span" in frame for stack in quiet for frame in stack
        )

    def test_reset_clears_counts(self):
        sampler = StackSampler(interval_s=0.002)
        sampler.sample_once()
        assert sampler.counts()
        sampler.reset()
        assert sampler.counts() == {}


class TestCollapseText:
    def test_folded_format(self):
        counts = {
            ("a.py:f", "b.py:g", "span:blend"): 3,
            ("a.py:f",): 1,
        }
        text = collapse_text(counts)
        assert text == "a.py:f 1\na.py:f;b.py:g;span:blend 3\n"

    def test_empty_counts(self):
        assert collapse_text({}) == ""


class TestAttributeStages:
    def test_exact_arithmetic(self):
        counts = {
            ("main.py:render", "span:blend"): 60,
            ("main.py:render", "span:project"): 20,
            ("main.py:render", "span:pair_build"): 10,
            ("main.py:other",): 10,  # active but unattributed
            ("threading.py:wait",): 400,  # idle: out of the denominator
        }
        result = attribute_stages(counts)
        assert result["total"] == 500
        assert result["idle"] == 400
        assert result["active"] == 100
        assert result["stages"] == {"blend": 60, "project": 20, "pair_build": 10}
        assert result["attributed_fraction"] == pytest.approx(0.9)

    def test_wait_leaves_only_match_at_the_leaf(self):
        # A real stack *through* threading.py that ends in user code is
        # active, not idle.
        counts = {("threading.py:run", "main.py:work"): 5}
        result = attribute_stages(counts)
        assert result["idle"] == 0 and result["active"] == 5

    def test_empty_counts(self):
        result = attribute_stages({})
        assert result == {
            "total": 0,
            "idle": 0,
            "active": 0,
            "stages": {stage: 0 for stage in KERNEL_STAGES},
            "attributed_fraction": 0.0,
        }

    def test_wait_leaves_cover_the_obvious_parks(self):
        assert "threading.py:wait" in WAIT_LEAVES
        assert "selectors.py:select" in WAIT_LEAVES


class TestMemoryAttributor:
    def test_tracked_span_allocation_is_charged(self):
        attributor = MemoryAttributor()
        tracer = Tracer()
        tracer.observer = attributor
        attributor.start()
        try:
            with tracer.span("decode"):
                block = [bytearray(1024) for _ in range(256)]
            assert block is not None
        finally:
            attributor.stop()
        stats = attributor.stats()
        assert stats["decode"]["count"] == 1
        assert stats["decode"]["peak_bytes"] >= 256 * 1024
        assert stats["decode"]["total_increase_bytes"] >= 256 * 1024

    def test_untracked_span_is_ignored(self):
        attributor = MemoryAttributor()
        tracer = Tracer()
        tracer.observer = attributor
        attributor.start()
        try:
            with tracer.span("frame"):
                bytearray(4096)
        finally:
            attributor.stop()
        assert attributor.stats() == {}

    def test_noop_without_tracemalloc_engaged(self):
        attributor = MemoryAttributor()
        tracer = Tracer()
        tracer.observer = attributor
        import tracemalloc

        assert not tracemalloc.is_tracing()
        with tracer.span("decode"):
            bytearray(4096)
        assert attributor.stats() == {}

    def test_reset(self):
        attributor = MemoryAttributor()
        tracer = Tracer()
        tracer.observer = attributor
        attributor.start()
        try:
            with tracer.span("blend"):
                bytearray(4096)
        finally:
            attributor.stop()
        assert attributor.stats()
        attributor.reset()
        assert attributor.stats() == {}
