"""Tests for the render farm: scheduling, worker shipping and aggregation.

The heavyweight throughput claim (multi-worker >= 1.5x sequential on a
16-frame job) lives in ``benchmarks/bench_serve_throughput.py``; here we
verify correctness on tiny jobs: farm output is bitwise identical to the
sequential fallback and to single-frame evaluation-runner renders, scenes
survive the ``.npz``/text trip into spawned workers, and counters aggregate
exactly.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.eval.runner import EvalSetup, run_gaussianwise, run_tilewise
from repro.gaussians.io import scene_from_text, scene_to_text
from repro.gaussians.synthetic import make_scene
from repro.serve.farm import FrameSpec, RenderFarm, render_frame
from repro.serve.trajectories import RenderJob, make_trajectory


def _assert_stats_equal(a, b) -> None:
    """Every statistics field equal, ndarray-valued fields included."""
    assert type(a) is type(b)
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), f.name
        else:
            assert va == vb, f.name


@pytest.fixture(scope="module")
def orbit_job() -> RenderJob:
    return RenderJob("train", make_trajectory("orbit", num_frames=2), quick=True)


@pytest.fixture(scope="module")
def sequential_result(orbit_job):
    return RenderFarm(num_workers=0).run(orbit_job)


class TestSequentialFallback:
    def test_renders_every_frame_in_order(self, orbit_job, sequential_result):
        assert sequential_result.num_frames == orbit_job.num_frames
        assert [f.index for f in sequential_result.frames] == [0, 1]
        assert sequential_result.num_workers == 0

    def test_latency_accounting(self, sequential_result):
        times = sequential_result.frame_times_ms
        assert times.shape == (2,)
        assert np.all(times > 0)
        assert sequential_result.p50_ms <= sequential_result.p95_ms
        assert sequential_result.frames_per_second > 0
        assert sequential_result.wall_seconds > 0

    def test_single_worker_count_uses_sequential_path(self, orbit_job):
        result = RenderFarm(num_workers=1).run(orbit_job)
        assert result.num_workers == 0


class TestFarmEqualsSequential:
    def test_two_workers_bitwise_identical(self, orbit_job, sequential_result):
        parallel = RenderFarm(num_workers=2).run(orbit_job)
        assert parallel.num_workers == 2
        for seq_frame, par_frame in zip(sequential_result.frames, parallel.frames):
            assert seq_frame.index == par_frame.index
            assert np.array_equal(seq_frame.image, par_frame.image)
            _assert_stats_equal(seq_frame.stats, par_frame.stats)

    def test_gaussianwise_job_bitwise_identical(self):
        job = RenderJob(
            "train",
            make_trajectory("orbit", num_frames=2),
            quick=True,
            dataflow="gaussianwise",
        )
        seq = RenderFarm(num_workers=0).run(job)
        par = RenderFarm(num_workers=2).run(job)
        for a, b in zip(seq.frames, par.frames):
            assert np.array_equal(a.image, b.image)
            _assert_stats_equal(a.stats, b.stats)


class TestFarmEqualsEvalRunner:
    def test_orbit_frame0_matches_run_tilewise(self, sequential_result):
        single = run_tilewise(EvalSetup("train", quick=True))
        frame0 = sequential_result.frames[0]
        assert np.array_equal(frame0.image, single.image)
        _assert_stats_equal(frame0.stats, single.stats)

    def test_orbit_frame0_matches_run_gaussianwise(self):
        job = RenderJob(
            "train",
            make_trajectory("orbit", num_frames=2),
            quick=True,
            dataflow="gaussianwise",
        )
        result = RenderFarm(num_workers=0).run(job)
        single = run_gaussianwise(EvalSetup("train", quick=True))
        assert np.array_equal(result.frames[0].image, single.image)
        _assert_stats_equal(result.frames[0].stats, single.stats)


class TestWorkerSceneShipping:
    """Scene built in the parent, rendered identically in a spawned worker."""

    def test_npz_roundtrip_through_spawned_worker(self, orbit_job):
        scene = make_scene("smoke", scale=1.0)
        in_process = RenderFarm(num_workers=0).run(orbit_job, scene=scene)
        spawned = RenderFarm(
            num_workers=2, mp_context="spawn", scene_format="npz"
        ).run(orbit_job, scene=scene)
        assert spawned.num_workers == 2
        for a, b in zip(in_process.frames, spawned.frames):
            assert np.array_equal(a.image, b.image)
            _assert_stats_equal(a.stats, b.stats)

    def test_text_roundtrip_through_worker(self, orbit_job):
        scene = make_scene("smoke", scale=1.0)
        shipped = RenderFarm(num_workers=2, scene_format="text").run(
            orbit_job, scene=scene
        )
        # The text format rounds to 9 significant digits, so workers render
        # the round-tripped scene; the in-process reference must round-trip
        # the same way to match bitwise.
        roundtripped = scene_from_text(scene_to_text(scene))
        reference = RenderFarm(num_workers=0).run(orbit_job, scene=roundtripped)
        for a, b in zip(reference.frames, shipped.frames):
            assert np.array_equal(a.image, b.image)
            _assert_stats_equal(a.stats, b.stats)

    def test_unknown_scene_format_rejected(self):
        with pytest.raises(ValueError, match="scene_format"):
            RenderFarm(scene_format="ply")

    def test_negative_worker_count_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            RenderFarm(num_workers=-1)


class TestAggregation:
    def test_counters_are_exact_sums(self, sequential_result):
        totals = sequential_result.aggregate_counters()
        assert totals  # non-empty
        for name, total in totals.items():
            expected = sum(
                int(getattr(f.stats, name)) for f in sequential_result.frames
            )
            assert total == expected, name
        # Config fields and arrays must not leak into the counter totals.
        for excluded in ("width", "height", "tile_size", "rendered_indices"):
            assert excluded not in totals

    def test_counter_field_classification_is_exhaustive(self, sequential_result):
        """Pin the exact counter sets so a new stats field cannot silently be
        summed as work (or silently dropped): adding a field to
        TileWiseStats/GaussianWiseStats must consciously update either
        ``_NON_COUNTER_FIELDS`` in farm.py or this expectation."""
        assert set(sequential_result.aggregate_counters()) == {
            "num_total",
            "num_depth_passed",
            "num_preprocessed",
            "num_assigned",
            "num_tile_pairs",
            "num_pairs_processed",
            "num_distinct_processed",
            "num_rendered",
            "alpha_evaluations",
            "pixels_blended",
            "num_occupied_tiles",
        }
        gauss_job = RenderJob(
            "train",
            make_trajectory("orbit", num_frames=1),
            quick=True,
            dataflow="gaussianwise",
        )
        gauss = RenderFarm(num_workers=0).run(gauss_job)
        assert set(gauss.aggregate_counters()) == {
            "num_total",
            "num_depth_culled",
            "num_stage1_passed",
            "num_groups",
            "num_groups_processed",
            "num_groups_skipped",
            "num_skipped_by_termination",
            "num_projected",
            "num_screen_passed",
            "num_skipped_tmask",
            "num_empty_footprint",
            "num_sh_evaluated",
            "num_rendered",
            "alpha_evaluations",
            "pixels_blended",
            "blocks_visited",
            "blocks_evaluated",
            "blocks_skipped_tmask",
            "sort_elements",
        }

    def test_summary_is_json_serialisable(self, orbit_job, sequential_result):
        summary = sequential_result.summary()
        encoded = json.loads(json.dumps(summary))
        assert encoded["scene"] == "train"
        assert encoded["trajectory"] == "orbit"
        assert encoded["num_frames"] == orbit_job.num_frames
        assert encoded["counters"]["num_total"] > 0


class TestFrameSpec:
    def test_rejects_unknown_dataflow(self):
        with pytest.raises(ValueError, match="dataflow"):
            FrameSpec(dataflow="blockwise")

    def test_for_job_copies_job_fields(self, orbit_job):
        spec = FrameSpec.for_job(orbit_job)
        assert spec.dataflow == orbit_job.dataflow
        assert spec.backend == orbit_job.backend

    def test_render_frame_dispatches_both_dataflows(self, orbit_job):
        scene = make_scene("smoke", scale=1.0)
        camera = orbit_job.cameras()[0]
        tile = render_frame(scene, camera, FrameSpec(dataflow="tilewise"))
        gauss = render_frame(scene, camera, FrameSpec(dataflow="gaussianwise"))
        assert tile.image.shape == gauss.image.shape
        assert hasattr(tile.stats, "num_tile_pairs")
        assert hasattr(gauss.stats, "num_groups")


class TestFrameStreaming:
    """``on_frame`` fires per completed frame, before the aggregate result."""

    def test_sequential_streams_in_index_order(self, orbit_job):
        seen: list[int] = []
        result = RenderFarm(num_workers=0).run(
            orbit_job, on_frame=lambda record: seen.append(record.index)
        )
        assert seen == [record.index for record in result.frames]
        assert seen == sorted(seen)

    def test_pool_streams_every_frame_once(self, orbit_job):
        seen: list[int] = []
        result = RenderFarm(num_workers=2).run(
            orbit_job, on_frame=lambda record: seen.append(record.index)
        )
        # Completion order is nondeterministic on the pool path, but every
        # frame streams back exactly once and the aggregate stays sorted.
        assert sorted(seen) == list(range(orbit_job.num_frames))
        assert [record.index for record in result.frames] == sorted(seen)

    def test_streamed_records_match_aggregate(self, orbit_job, sequential_result):
        streamed: dict[int, np.ndarray] = {}
        RenderFarm(num_workers=0).run(
            orbit_job, on_frame=lambda record: streamed.update({record.index: record.image})
        )
        for record in sequential_result.frames:
            assert np.array_equal(streamed[record.index], record.image)

    def test_callback_exception_aborts_sequential_job(self, orbit_job):
        def boom(record):
            raise RuntimeError("observer failed")

        with pytest.raises(RuntimeError, match="observer failed"):
            RenderFarm(num_workers=0).run(orbit_job, on_frame=boom)


class TestWorkerFailureSurfacing:
    """Frame failures carry the frame index and scene name on both paths."""

    @pytest.fixture()
    def exploding_render(self, monkeypatch):
        """Make frame index 1 raise inside render_frame.

        Patches :mod:`repro.exec.frames` — the module whose global
        ``_render_one`` actually resolves — so both the sequential path and
        fork-pool workers (which inherit the patched module) see it.
        """
        import repro.exec.frames as frames_module

        real = frames_module.render_frame

        def explode(scene, camera, spec):
            if explode.countdown == 0:
                raise ValueError("synthetic kernel failure")
            explode.countdown -= 1
            return real(scene, camera, spec)

        explode.countdown = 1
        monkeypatch.setattr(frames_module, "render_frame", explode)
        return explode

    def test_sequential_failure_names_frame_and_scene(
        self, orbit_job, exploding_render
    ):
        from repro.serve.farm import FrameRenderError

        with pytest.raises(FrameRenderError) as excinfo:
            RenderFarm(num_workers=0).run(orbit_job)
        error = excinfo.value
        assert error.frame_index == 1
        assert error.scene == "train"
        assert "frame 1" in str(error)
        assert "'train'" in str(error)
        assert isinstance(error.__cause__, ValueError)

    def test_pool_failure_names_frame_and_scene(self, orbit_job, exploding_render):
        import multiprocessing

        from repro.serve.farm import FrameRenderError

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork so workers inherit the patched renderer")
        # Fork workers inherit the monkeypatched render_frame; with one
        # worker the frames render in order, so index 1 is the one that
        # explodes worker-side... but num_workers=1 is the sequential
        # fallback, so use 2 workers and accept either failing index.
        with pytest.raises(FrameRenderError) as excinfo:
            RenderFarm(num_workers=2, mp_context="fork").run(
                orbit_job.with_frames(4)
            )
        error = excinfo.value
        assert error.scene == "train"
        assert 0 <= error.frame_index < 4
        assert "worker traceback" in str(error)
        assert "synthetic kernel failure" in str(error)
