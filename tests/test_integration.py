"""End-to-end integration tests across all layers of the library."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.arch import GccAccelerator, GccConfig, GScoreAccelerator
from repro.gaussians.io import load_scene_npz, save_scene_npz
from repro.gaussians.synthetic import make_camera, make_scene
from repro.render import render_gaussianwise, render_tilewise
from repro.render.metrics import psnr, ssim


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        assert callable(repro.make_scene)
        assert callable(repro.render_gaussianwise)

    def test_quickstart_flow(self):
        # The flow documented in the package docstring and README.
        scene = repro.make_scene("lego", scale=0.003)
        camera = make_camera("lego", image_scale=0.08)
        frame = repro.render_gaussianwise(scene, camera)
        report = GccAccelerator().simulate(scene, camera, render_result=frame)
        assert frame.image.shape == (camera.height, camera.width, 3)
        assert report.fps > 0
        assert report.energy_mj_per_frame > 0


class TestEndToEndPipeline:
    def test_scene_roundtrip_then_render_then_simulate(self, tmp_path):
        scene = make_scene("smoke", scale=1.0)
        path = tmp_path / "scene.npz"
        save_scene_npz(scene, path)
        loaded = load_scene_npz(path)
        camera = make_camera("smoke")

        tile = render_tilewise(loaded, camera)
        gauss = render_gaussianwise(loaded, camera)
        assert psnr(tile.image, gauss.image) > 40.0
        assert ssim(tile.image, gauss.image) > 0.95

        gscore = GScoreAccelerator().simulate(loaded, camera, render_result=tile)
        gcc = GccAccelerator().simulate(loaded, camera, render_result=gauss)
        assert gcc.dram_traffic.total < gscore.dram_traffic.total

    def test_multiple_views_are_consistent(self):
        scene = make_scene("smoke", scale=0.5)
        fractions = []
        for view in range(3):
            camera = make_camera("smoke", view_index=view)
            stats = render_tilewise(scene, camera).stats
            if stats.num_preprocessed:
                fractions.append(stats.rendered_fraction)
        assert fractions and all(0.0 <= f <= 1.0 for f in fractions)

    def test_scene_scale_changes_work_but_not_correctness(self):
        camera = make_camera("smoke")
        small = make_scene("smoke", scale=0.3)
        large = make_scene("smoke", scale=1.0)
        small_stats = render_gaussianwise(small, camera).stats
        large_stats = render_gaussianwise(large, camera).stats
        assert large_stats.num_total > small_stats.num_total
        assert large_stats.alpha_evaluations >= small_stats.alpha_evaluations

    def test_ablation_chain_is_ordered(self):
        # DRAM traffic: GSCore (baseline) >= GCC without CC >= GCC with CC.
        scene = make_scene("train", scale=0.002)
        camera = make_camera("train", image_scale=0.08)
        gscore = GScoreAccelerator().simulate(scene, camera)
        gw_only = GccAccelerator(GccConfig(enable_cc=False)).simulate(scene, camera)
        gw_cc = GccAccelerator().simulate(scene, camera)
        assert gscore.dram_traffic.total >= gw_only.dram_traffic.total
        assert gw_only.dram_traffic.total >= gw_cc.dram_traffic.total
