"""Golden-equivalence tests between the vectorized and reference backends.

The vectorized engine must be observationally indistinguishable from the
reference loops: identical statistics counters (integer-exact) and images
within ``atol=1e-9`` for every dataflow, configuration and edge case.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.gaussians.camera import Camera, look_at
from repro.gaussians.model import GaussianScene
from repro.render.common import RenderConfig
from repro.render.gaussian_raster import render_gaussianwise
from repro.render.tile_raster import (
    _build_tile_pairs,
    _build_tile_pairs_reference,
    render_tilewise,
)
from repro.render.preprocess import project_scene


def assert_stats_equal(reference, vectorized) -> None:
    """Every statistics field must match exactly between the backends."""
    assert type(reference) is type(vectorized)
    for field in dataclasses.fields(reference):
        ref_value = getattr(reference, field.name)
        vec_value = getattr(vectorized, field.name)
        if isinstance(ref_value, np.ndarray):
            assert np.array_equal(ref_value, vec_value), field.name
        else:
            assert ref_value == vec_value, (
                f"{field.name}: reference={ref_value} vectorized={vec_value}"
            )


def offscreen_scene() -> GaussianScene:
    """Gaussians whose projected centres all fall outside the image.

    Their footprints still overlap the screen, which exercises the clamped
    start pixel/block of the boundary traversal and the empty-footprint
    accounting.
    """
    offsets = np.array(
        [[-4.0, 0.0, 0.0], [4.0, 0.0, 0.0], [0.0, -4.0, 0.0], [0.0, 4.0, 0.5]]
    )
    count = offsets.shape[0]
    return GaussianScene.from_flat_colors(
        means=offsets,
        scales=np.full((count, 3), 1.5),
        quaternions=np.tile([1.0, 0.0, 0.0, 0.0], (count, 1)),
        opacities=np.array([0.9, 0.6, 0.05, 0.99]),
        rgb=np.tile([0.4, 0.7, 0.2], (count, 1)),
        name="offscreen",
    )


@pytest.fixture()
def offscreen_camera() -> Camera:
    return Camera.from_fov(
        width=48,
        height=40,
        fov_y_degrees=60.0,
        world_to_camera=look_at(np.array([0.0, 0.0, -3.0]), np.array([0.0, 0.0, 0.0])),
    )


class TestTilewiseEquivalence:
    @pytest.mark.parametrize("tile_size", [8, 16, 24])
    @pytest.mark.parametrize("obb_subtile_skip", [True, False])
    def test_smoke_scene(self, smoke_scene, smoke_camera, tile_size, obb_subtile_skip):
        kwargs = dict(tile_size=tile_size, radius_rule="3sigma")
        ref = render_tilewise(
            smoke_scene,
            smoke_camera,
            RenderConfig(backend="reference", **kwargs),
            obb_subtile_skip=obb_subtile_skip,
        )
        vec = render_tilewise(
            smoke_scene,
            smoke_camera,
            RenderConfig(backend="vectorized", **kwargs),
            obb_subtile_skip=obb_subtile_skip,
        )
        assert np.allclose(ref.image, vec.image, atol=1e-9)
        assert_stats_equal(ref.stats, vec.stats)

    def test_empty_scene(self, front_camera):
        config = dict(background=(0.1, 0.2, 0.3))
        ref = render_tilewise(
            GaussianScene.empty(), front_camera, RenderConfig(backend="reference", **config)
        )
        vec = render_tilewise(
            GaussianScene.empty(), front_camera, RenderConfig(backend="vectorized", **config)
        )
        assert np.allclose(ref.image, vec.image, atol=1e-9)
        assert_stats_equal(ref.stats, vec.stats)

    def test_offscreen_centres(self, offscreen_camera):
        scene = offscreen_scene()
        ref = render_tilewise(scene, offscreen_camera, RenderConfig(backend="reference"))
        vec = render_tilewise(scene, offscreen_camera, RenderConfig(backend="vectorized"))
        assert np.allclose(ref.image, vec.image, atol=1e-9)
        assert_stats_equal(ref.stats, vec.stats)

    def test_early_termination_wall(self, front_camera):
        # Many co-located opaque Gaussians saturate tiles quickly, exercising
        # the mid-chunk early-exit recovery of the vectorized blend.
        count = 80
        means = np.zeros((count, 3))
        means[:, 2] = np.linspace(0.0, 1.0, count)
        scene = GaussianScene.from_flat_colors(
            means=means,
            scales=np.full((count, 3), 5.0),
            quaternions=np.tile([1.0, 0.0, 0.0, 0.0], (count, 1)),
            opacities=np.full(count, 0.99),
            rgb=np.tile([0.5, 0.5, 0.5], (count, 1)),
        )
        ref = render_tilewise(scene, front_camera, RenderConfig(backend="reference"))
        vec = render_tilewise(scene, front_camera, RenderConfig(backend="vectorized"))
        assert vec.stats.num_pairs_processed < vec.stats.num_tile_pairs
        assert np.allclose(ref.image, vec.image, atol=1e-9)
        assert_stats_equal(ref.stats, vec.stats)

    @pytest.mark.parametrize("tile_size", [8, 16, 24])
    def test_tile_pair_builder_matches_reference(self, smoke_scene, smoke_camera, tile_size):
        projected = project_scene(smoke_scene, smoke_camera, RenderConfig())
        fast = _build_tile_pairs(projected, smoke_camera.width, smoke_camera.height, tile_size)
        slow = _build_tile_pairs_reference(
            projected, smoke_camera.width, smoke_camera.height, tile_size
        )
        assert np.array_equal(fast[0], slow[0])
        assert np.array_equal(fast[1], slow[1])
        assert fast[2] == slow[2]


class TestGaussianwiseEquivalence:
    @pytest.mark.parametrize("enable_cc", [True, False])
    @pytest.mark.parametrize("boundary_mode", ["alpha", "aabb"])
    def test_smoke_scene(self, smoke_scene, smoke_camera, enable_cc, boundary_mode):
        kwargs = dict(radius_rule="omega-sigma")
        ref = render_gaussianwise(
            smoke_scene,
            smoke_camera,
            RenderConfig(backend="reference", **kwargs),
            enable_cc=enable_cc,
            boundary_mode=boundary_mode,
        )
        vec = render_gaussianwise(
            smoke_scene,
            smoke_camera,
            RenderConfig(backend="vectorized", **kwargs),
            enable_cc=enable_cc,
            boundary_mode=boundary_mode,
        )
        assert np.allclose(ref.image, vec.image, atol=1e-9)
        assert_stats_equal(ref.stats, vec.stats)

    @pytest.mark.parametrize("block_size", [4, 8, 16])
    def test_block_sizes(self, smoke_scene, smoke_camera, block_size):
        kwargs = dict(radius_rule="omega-sigma", block_size=block_size)
        ref = render_gaussianwise(
            smoke_scene, smoke_camera, RenderConfig(backend="reference", **kwargs)
        )
        vec = render_gaussianwise(
            smoke_scene, smoke_camera, RenderConfig(backend="vectorized", **kwargs)
        )
        assert np.allclose(ref.image, vec.image, atol=1e-9)
        assert_stats_equal(ref.stats, vec.stats)

    def test_3sigma_radius_rule(self, smoke_scene, smoke_camera):
        # With the 3-sigma rule the chi^2 ellipse of near-opaque Gaussians
        # can exceed the bounding radius, exercising the region-growth logic
        # of the footprint kernel.
        ref = render_gaussianwise(
            smoke_scene, smoke_camera, RenderConfig(backend="reference", radius_rule="3sigma")
        )
        vec = render_gaussianwise(
            smoke_scene, smoke_camera, RenderConfig(backend="vectorized", radius_rule="3sigma")
        )
        assert np.allclose(ref.image, vec.image, atol=1e-9)
        assert_stats_equal(ref.stats, vec.stats)

    def test_empty_scene(self, front_camera):
        ref = render_gaussianwise(
            GaussianScene.empty(), front_camera, RenderConfig(backend="reference")
        )
        vec = render_gaussianwise(
            GaussianScene.empty(), front_camera, RenderConfig(backend="vectorized")
        )
        assert np.allclose(ref.image, vec.image, atol=1e-9)
        assert_stats_equal(ref.stats, vec.stats)

    @pytest.mark.parametrize("boundary_mode", ["alpha", "aabb"])
    def test_offscreen_centres(self, offscreen_camera, boundary_mode):
        scene = offscreen_scene()
        kwargs = dict(radius_rule="omega-sigma")
        ref = render_gaussianwise(
            scene,
            offscreen_camera,
            RenderConfig(backend="reference", **kwargs),
            boundary_mode=boundary_mode,
        )
        vec = render_gaussianwise(
            scene,
            offscreen_camera,
            RenderConfig(backend="vectorized", **kwargs),
            boundary_mode=boundary_mode,
        )
        assert np.allclose(ref.image, vec.image, atol=1e-9)
        assert_stats_equal(ref.stats, vec.stats)

    def test_occlusion_wall_saturates_tmask(self, front_camera):
        # A near wall occluding distant Gaussians: the transmittance mask
        # evolves and real T_mask skips occur; the two backends must agree
        # on every counter including the skip split.
        near_count, far_count = 60, 100
        rng = np.random.default_rng(0)
        near = rng.normal(scale=0.3, size=(near_count, 3)) * [1.0, 1.0, 0.05]
        far = rng.normal(scale=0.3, size=(far_count, 3)) * [1.0, 1.0, 0.05] + [0, 0, 6.0]
        scene = GaussianScene.from_flat_colors(
            means=np.vstack([near, far]),
            scales=np.full((near_count + far_count, 3), 1.0),
            quaternions=np.tile([1.0, 0.0, 0.0, 0.0], (near_count + far_count, 1)),
            opacities=np.full(near_count + far_count, 0.99),
            rgb=np.tile([0.5, 0.5, 0.5], (near_count + far_count, 1)),
        )
        config_kwargs = dict(radius_rule="omega-sigma")
        ref = render_gaussianwise(
            scene, front_camera, RenderConfig(backend="reference", **config_kwargs)
        )
        vec = render_gaussianwise(
            scene, front_camera, RenderConfig(backend="vectorized", **config_kwargs)
        )
        assert vec.stats.num_skipped_tmask + vec.stats.num_skipped_by_termination > 0
        assert np.allclose(ref.image, vec.image, atol=1e-9)
        assert_stats_equal(ref.stats, vec.stats)


class TestBackendConfig:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            RenderConfig(backend="gpu")

    def test_default_backend_is_vectorized(self):
        assert RenderConfig().backend == "vectorized"
