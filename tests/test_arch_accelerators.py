"""Tests for the GCC and GSCore frame-level accelerator models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.gcc import GccAccelerator, GccConfig
from repro.arch.gcc.cmode import plan_cmode, subview_invocations
from repro.arch.gscore import GScoreAccelerator, GScoreConfig
from repro.render.common import RenderConfig
from repro.render.preprocess import project_scene


@pytest.fixture(scope="module")
def sim_pair(small_lego_scene, small_lego_camera):
    """GSCore and GCC reports for the same small frame (computed once)."""
    gscore = GScoreAccelerator().simulate(small_lego_scene, small_lego_camera)
    gcc = GccAccelerator().simulate(small_lego_scene, small_lego_camera)
    return gscore, gcc


# The module-scoped fixtures below need session fixtures re-exported at module
# scope for pytest to resolve them.
@pytest.fixture(scope="module")
def small_lego_scene():
    from repro.gaussians.synthetic import make_scene

    return make_scene("lego", scale=0.004)


@pytest.fixture(scope="module")
def small_lego_camera():
    from repro.gaussians.synthetic import make_camera

    return make_camera("lego", image_scale=0.1)


class TestReports:
    def test_reports_have_positive_cycles_and_energy(self, sim_pair):
        for report in sim_pair:
            assert report.total_cycles > 0
            assert report.fps > 0
            assert report.total_energy_pj > 0
            assert report.dram_traffic.total > 0

    def test_fps_per_mm2_uses_area(self, sim_pair):
        gscore, gcc = sim_pair
        assert gcc.fps_per_mm2 == pytest.approx(gcc.fps / gcc.area_mm2)
        assert gscore.area_mm2 == pytest.approx(3.95)
        assert gcc.area_mm2 == pytest.approx(2.711)

    def test_energy_units_are_consistent(self, sim_pair):
        _, gcc = sim_pair
        assert gcc.energy_mj_per_frame == pytest.approx(gcc.total_energy_pj * 1e-9)
        assert gcc.frames_per_joule == pytest.approx(1.0 / (gcc.total_energy_pj * 1e-12))

    def test_summary_contains_key_metrics(self, sim_pair):
        summary = sim_pair[1].summary()
        assert {"total_cycles", "fps", "fps_per_mm2", "dram_bytes", "energy_mj"} <= set(summary)


class TestDataflowComparison:
    def test_gcc_moves_less_dram_data_than_gscore(self, sim_pair):
        gscore, gcc = sim_pair
        assert gcc.dram_traffic.total < gscore.dram_traffic.total

    def test_gcc_has_no_key_value_traffic(self, sim_pair):
        gscore, gcc = sim_pair
        assert gcc.dram_traffic.key_value == 0
        assert gscore.dram_traffic.key_value > 0

    def test_gcc_outperforms_gscore_area_normalised(self, sim_pair):
        gscore, gcc = sim_pair
        # The headline claim of the paper (Figure 10a): GCC wins per area.
        assert gcc.fps_per_mm2 > gscore.fps_per_mm2

    def test_gcc_is_more_energy_efficient(self, sim_pair):
        gscore, gcc = sim_pair
        assert gcc.energy_mj_per_frame < gscore.energy_mj_per_frame


class TestGccConfigurations:
    def test_disabling_cc_increases_sh_loads(self, small_lego_scene, small_lego_camera):
        with_cc = GccAccelerator(GccConfig(enable_cc=True)).simulate(
            small_lego_scene, small_lego_camera
        )
        without_cc = GccAccelerator(GccConfig(enable_cc=False)).simulate(
            small_lego_scene, small_lego_camera
        )
        assert without_cc.extra["num_sh_evaluated"] >= with_cc.extra["num_sh_evaluated"]
        assert without_cc.dram_traffic.gaussian_3d >= with_cc.dram_traffic.gaussian_3d

    def test_small_image_buffer_triggers_cmode(self, small_lego_scene, small_lego_camera):
        tiny_buffer = GccAccelerator(GccConfig(image_buffer_bytes=8 * 1024, cmode_subview=16))
        report = tiny_buffer.simulate(small_lego_scene, small_lego_camera)
        assert report.extra["cmode_enabled"] == 1.0
        assert report.extra["cmode_duplication"] >= 1.0

    def test_huge_image_buffer_disables_cmode(self, small_lego_scene, small_lego_camera):
        big_buffer = GccAccelerator(GccConfig(image_buffer_bytes=8 * 1024 * 1024))
        report = big_buffer.simulate(small_lego_scene, small_lego_camera)
        assert report.extra["cmode_enabled"] == 0.0
        assert report.extra["cmode_duplication"] == pytest.approx(1.0)

    def test_non_default_configuration_changes_area(self):
        assert GccAccelerator(GccConfig(alpha_array_size=16)).effective_area_mm2() > 2.711
        assert GccAccelerator(GccConfig(image_buffer_bytes=32 * 1024)).effective_area_mm2() < 2.711

    def test_faster_dram_does_not_hurt(self, small_lego_scene, small_lego_camera):
        slow = GccAccelerator(GccConfig(dram="LPDDR4-3200")).simulate(
            small_lego_scene, small_lego_camera
        )
        fast = GccAccelerator(GccConfig(dram="LPDDR6-14400")).simulate(
            small_lego_scene, small_lego_camera
        )
        assert fast.total_cycles <= slow.total_cycles


class TestCmodePlanning:
    def test_plan_disabled_when_frame_fits(self, small_lego_scene, small_lego_camera):
        projected = project_scene(
            small_lego_scene, small_lego_camera, RenderConfig(radius_rule="omega-sigma")
        )
        plan = plan_cmode(
            projected,
            small_lego_camera.width,
            small_lego_camera.height,
            max_resident_pixels=10**7,
            subview=128,
        )
        assert not plan.enabled
        assert plan.duplication_factor == pytest.approx(1.0)

    def test_smaller_subviews_increase_duplication(self, small_lego_scene, small_lego_camera):
        projected = project_scene(
            small_lego_scene, small_lego_camera, RenderConfig(radius_rule="omega-sigma")
        )
        width, height = small_lego_camera.width, small_lego_camera.height
        big_invocations, _ = subview_invocations(projected, width, height, 64)
        small_invocations, _ = subview_invocations(projected, width, height, 8)
        assert small_invocations >= big_invocations


class TestGScoreConfiguration:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            GScoreConfig(preprocess_units=0)
        with pytest.raises(ValueError):
            GScoreConfig(vru_pes=0)

    def test_stage_cycles_reported(self, sim_pair):
        gscore, _ = sim_pair
        assert {"preprocess", "sort", "render"} <= set(gscore.stage_cycles)
        assert gscore.stage_cycles["preprocess"] > 0
