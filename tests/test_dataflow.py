"""Tests for the stage-structured dataflow API (Figure 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataflow import GccDataflow, StandardDataflow
from repro.dataflow.alphablend import FrameBuffers
from repro.dataflow.colorsort import ColorSortStage
from repro.dataflow.grouping import GroupingStage
from repro.dataflow.projection import ProjectionStage
from repro.render.common import RenderConfig
from repro.render.gaussian_raster import render_gaussianwise
from repro.render.metrics import psnr


class TestGroupingStage:
    def test_groups_cover_all_visible_gaussians(self, smoke_scene, smoke_camera):
        result = GroupingStage().run(smoke_scene, smoke_camera)
        total = sum(group.size for group in result.groups)
        assert total == result.visible_indices.size
        assert result.num_culled + result.visible_indices.size == smoke_scene.num_gaussians

    def test_group_scene_indices_are_valid(self, smoke_scene, smoke_camera):
        result = GroupingStage().run(smoke_scene, smoke_camera)
        if result.num_groups:
            indices = result.group_scene_indices(0)
            assert np.all(indices < smoke_scene.num_gaussians)


class TestProjectionAndColorStages:
    def test_projection_stage_culls_offscreen(self, smoke_scene, smoke_camera):
        grouping = GroupingStage().run(smoke_scene, smoke_camera)
        geometry = ProjectionStage().run(
            smoke_scene, smoke_camera, grouping.visible_indices
        )
        assert geometry.num_visible <= geometry.num_input

    def test_color_stage_respects_needs_color_mask(self, smoke_scene, smoke_camera):
        grouping = GroupingStage().run(smoke_scene, smoke_camera)
        geometry = ProjectionStage().run(smoke_scene, smoke_camera, grouping.visible_indices)
        needs = np.zeros(geometry.num_visible, dtype=bool)
        needs[: geometry.num_visible // 2] = True
        result = ColorSortStage().run(smoke_scene, smoke_camera, geometry, needs)
        assert result.num_evaluated == int(needs.sum())
        evaluated_rows = np.nonzero(needs)[0]
        assert np.all(np.isfinite(result.colors[evaluated_rows]))
        skipped_rows = np.nonzero(~needs)[0]
        if skipped_rows.size:
            assert np.all(np.isnan(result.colors[skipped_rows]))

    def test_color_stage_rejects_bad_mask_shape(self, smoke_scene, smoke_camera):
        grouping = GroupingStage().run(smoke_scene, smoke_camera)
        geometry = ProjectionStage().run(smoke_scene, smoke_camera, grouping.visible_indices)
        with pytest.raises(ValueError):
            ColorSortStage().run(smoke_scene, smoke_camera, geometry, np.array([True]))

    def test_sort_order_is_front_to_back(self, smoke_scene, smoke_camera):
        grouping = GroupingStage().run(smoke_scene, smoke_camera)
        geometry = ProjectionStage().run(smoke_scene, smoke_camera, grouping.visible_indices)
        result = ColorSortStage().run(smoke_scene, smoke_camera, geometry)
        sorted_depths = geometry.depths[result.order]
        assert np.all(np.diff(sorted_depths) >= 0)


class TestFrameBuffers:
    def test_initial_state(self):
        buffers = FrameBuffers(width=32, height=16, block_size=8)
        assert buffers.color.shape == (16, 32, 3)
        assert np.allclose(buffers.transmittance, 1.0)
        assert buffers.saturated_blocks.shape == (2, 4)
        assert not buffers.all_saturated

    def test_finalize_applies_background(self):
        buffers = FrameBuffers(width=4, height=4, block_size=8)
        image = buffers.finalize((0.3, 0.3, 0.3))
        assert np.allclose(image, 0.3)


class TestFullPipelines:
    def test_gcc_dataflow_matches_fused_renderer(self, smoke_scene, smoke_camera):
        config = RenderConfig(radius_rule="omega-sigma")
        staged = GccDataflow(config).run(smoke_scene, smoke_camera)
        fused = render_gaussianwise(smoke_scene, smoke_camera, config)
        assert np.allclose(staged.image, fused.image, atol=1e-9)

    def test_gcc_dataflow_counters_are_consistent(self, smoke_scene, smoke_camera):
        result = GccDataflow().run(smoke_scene, smoke_camera)
        assert result.num_groups_processed + result.num_groups_skipped == result.num_groups
        assert result.num_sh_evaluated <= result.num_screen_passed
        assert result.num_rendered <= result.num_sh_evaluated
        assert result.pixels_blended >= 0

    def test_standard_dataflow_reports_unused_preprocessing(self, smoke_scene, smoke_camera):
        result = StandardDataflow().run(smoke_scene, smoke_camera)
        assert result.preprocessed_unused == (
            result.stats.num_preprocessed - result.stats.num_rendered
        )
        assert result.image.shape == (smoke_camera.height, smoke_camera.width, 3)

    def test_standard_and_gcc_dataflow_agree_visually(self, smoke_scene, smoke_camera):
        standard = StandardDataflow().run(smoke_scene, smoke_camera)
        gcc = GccDataflow().run(smoke_scene, smoke_camera)
        assert psnr(standard.image, gcc.image) > 40.0
