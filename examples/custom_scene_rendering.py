#!/usr/bin/env python
"""Build a custom Gaussian scene by hand, render it, and inspect each stage.

This example shows the library as a general 3DGS toolkit rather than a
benchmark harness: it constructs a small scene programmatically (a coloured
"traffic light" of three blobs plus a translucent fog layer), saves and
reloads it, renders a short orbit, and then steps through the GCC dataflow
stage by stage (Figure 3) for one frame.

Run with::

    python examples/custom_scene_rendering.py [--output-dir /tmp/repro-out]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.dataflow import GccDataflow
from repro.gaussians.camera import Camera, look_at
from repro.gaussians.io import load_scene_npz, save_scene_npz
from repro.gaussians.model import GaussianScene
from repro.render import render_gaussianwise
from repro.render.common import RenderConfig


def build_scene() -> GaussianScene:
    """Three opaque coloured blobs stacked vertically, wrapped in thin fog."""
    rng = np.random.default_rng(42)

    blob_means = np.array([[0.0, 0.6, 0.0], [0.0, 0.0, 0.0], [0.0, -0.6, 0.0]])
    blob_colors = np.array([[0.9, 0.1, 0.1], [0.9, 0.8, 0.1], [0.1, 0.8, 0.2]])
    blobs = GaussianScene.from_flat_colors(
        means=blob_means,
        scales=np.full((3, 3), 0.18),
        quaternions=np.tile([1.0, 0.0, 0.0, 0.0], (3, 1)),
        opacities=np.array([0.95, 0.95, 0.95]),
        rgb=blob_colors,
        name="traffic-light",
    )

    fog_count = 200
    fog = GaussianScene.from_flat_colors(
        means=rng.normal(scale=0.8, size=(fog_count, 3)),
        scales=np.full((fog_count, 3), 0.25),
        quaternions=rng.normal(size=(fog_count, 4)),
        opacities=np.full(fog_count, 0.03),
        rgb=np.full((fog_count, 3), 0.7),
        name="traffic-light",
    )
    return blobs.concatenated_with(fog)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output-dir", default="/tmp/repro-custom-scene")
    parser.add_argument("--views", type=int, default=4)
    args = parser.parse_args()
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    scene = build_scene()
    scene_path = output_dir / "traffic_light.npz"
    save_scene_npz(scene, scene_path)
    scene = load_scene_npz(scene_path)
    print(f"Built and reloaded scene with {scene.num_gaussians} Gaussians -> {scene_path}")

    print("\nRendering an orbit:")
    for view in range(args.views):
        angle = 2.0 * np.pi * view / args.views
        eye = np.array([3.0 * np.cos(angle), 0.5, 3.0 * np.sin(angle)])
        camera = Camera.from_fov(
            width=160, height=160, fov_y_degrees=45.0, world_to_camera=look_at(eye, np.zeros(3))
        )
        result = render_gaussianwise(scene, camera)
        image_path = output_dir / f"view_{view}.npy"
        np.save(image_path, result.image)
        print(
            f"  view {view}: rendered {result.stats.num_rendered:4d} Gaussians, "
            f"{result.stats.pixels_blended:7d} blended pixels -> {image_path}"
        )

    print("\nStage-by-stage execution of one frame (Figure 3):")
    camera = Camera.from_fov(
        width=160, height=160, fov_y_degrees=45.0,
        world_to_camera=look_at(np.array([0.0, 0.3, 3.0]), np.zeros(3)),
    )
    dataflow = GccDataflow(RenderConfig(radius_rule="omega-sigma"))
    result = dataflow.run(scene, camera)
    print(f"  Stage I   : {result.num_groups} depth groups "
          f"({result.num_groups_processed} processed, {result.num_groups_skipped} skipped)")
    print(f"  Stage II  : {result.num_projected} Gaussians projected, "
          f"{result.num_screen_passed} survived screen culling")
    print(f"  Stage III : {result.num_sh_evaluated} SH colour evaluations")
    print(f"  Stage IV  : {result.num_rendered} Gaussians blended, "
          f"{result.pixels_blended} pixel contributions")


if __name__ == "__main__":
    main()
