#!/usr/bin/env python
"""SLO-aware serving demo: adaptive quality tiering under bursty traffic.

This walks the request-scheduling subsystem end to end:

1. generate a seeded bursty (Markov-modulated Poisson) workload — multiple
   tenants, Zipf scene popularity, per-client trajectory mixes,
2. serve it with serving pinned to the lossless tier (the naive baseline),
3. serve the *same* request stream under the adaptive SLO controller
   (quality-ladder walking, per-request demotion, feasibility shedding),
4. compare SLO attainment, p95 latency, goodput, shed rate and the tier
   histogram, and show a slice of the structured decision log,
5. re-run the adaptive schedule to demonstrate the decision log replays
   byte-identically under the same seed.

Both runs use the deterministic virtual-clock decision plane, so this demo
is fast and produces the same numbers on any machine.  Add ``--execute``
to also render every dispatched job for real through the render farm
(slower; use ``--quick``).

Run with::

    python examples/slo_serving.py [--rate 12] [--duration 30] [--slo-ms 250]
        [--seed 0] [--execute] [--quick]

The same workload is available from the command line as
``python -m repro.sched`` (installed as ``repro-sched``).
"""

from __future__ import annotations

import argparse

from repro.sched import (
    EventLog,
    QoSPolicy,
    RequestScheduler,
    SchedulerPolicy,
    SLOController,
    WorkloadSpec,
    run_workload,
)


def serve(spec: WorkloadSpec, adaptive: bool, execute: bool, quick: bool):
    if adaptive:
        qos = SLOController(
            policy=QoSPolicy(
                window=8, min_samples=4, cooldown=2, degrade_at=0.9, upgrade_at=0.45
            ),
            log=EventLog(),
        )
    else:
        qos = SLOController(
            policy=QoSPolicy(adaptive=False),
            ladder=((0, "lossless"),),
            log=EventLog(),
        )
    scheduler = RequestScheduler(
        policy=SchedulerPolicy(num_workers=0 if execute else 1),
        qos=qos,
        quick=quick,
        execute=execute,
    )
    return run_workload(spec, scheduler)


def describe(name: str, report) -> None:
    summary = report.summary()
    latency = summary["latency_ms"]
    print(f"{name}:")
    print(
        f"  attainment {summary['slo_attainment']:6.1%}   "
        f"e2e p95 {latency['e2e_p95']:7.1f} ms   "
        f"goodput {summary['goodput_rps']:5.2f} rps   "
        f"shed {summary['shed_rate']:5.1%}"
    )
    tiers = "  ".join(f"{k}={v}" for k, v in summary["tier_histogram"].items())
    print(f"  tiers: {tiers}")
    if summary["executed"]:
        measured = summary["measured"]
        print(
            f"  data plane: {measured['frames']} frames really rendered, "
            f"measured frame p95 {measured['frame_p95_ms']:.1f} ms"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=12.0, help="mean offered rps")
    parser.add_argument("--duration", type=float, default=30.0, help="seconds")
    parser.add_argument("--slo-ms", type=float, default=250.0, help="per-request SLO")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--execute", action="store_true", help="really render dispatched jobs"
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced quick presets (with --execute)"
    )
    args = parser.parse_args()

    spec = WorkloadSpec(
        arrival="bursty",
        rate_rps=args.rate,
        duration_s=args.duration,
        slo_ms=args.slo_ms,
        seed=args.seed,
    )
    print(
        f"bursty workload: {args.rate:.0f} rps mean over {args.duration:.0f} s, "
        f"slo {args.slo_ms:.0f} ms, seed {args.seed}\n"
    )

    fixed = serve(spec, adaptive=False, execute=args.execute, quick=args.quick)
    describe("fixed lossless", fixed)
    print()
    adaptive = serve(spec, adaptive=True, execute=args.execute, quick=args.quick)
    describe("adaptive ladder", adaptive)

    moves = [
        e for e in adaptive.log.events if e["event"] in ("tier_down", "tier_up")
    ]
    print(f"\nfirst tier decisions ({len(moves)} total):")
    for event in moves[:6]:
        print(
            f"  t={event['t_ms']:9.1f} ms  {event['event']:<9} "
            f"{event['from_tier']} -> {event['to_tier']}  "
            f"(window p95 {event['p95_ms']:.0f} ms vs slo {event['slo_ms']:.0f} ms)"
        )

    # The decision plane ignores the data plane, so even an --execute run's
    # log must match a pure virtual replay of the same seed.
    replay = serve(spec, adaptive=True, execute=False, quick=args.quick)
    identical = replay.log.events == adaptive.log.events
    print(f"\nsame seed replays the decision log identically: {identical}")


if __name__ == "__main__":
    main()
