#!/usr/bin/env python
"""Quickstart: render a scene with both dataflows and simulate both accelerators.

This walks through the whole stack on a small Lego-like scene:

1. generate a synthetic 3DGS scene and an evaluation camera,
2. render it with the standard (tile-wise) dataflow and with the GCC
   (Gaussian-wise, cross-stage conditional) dataflow,
3. check that the two images agree (Table 2 of the paper),
4. feed the collected work statistics into the GSCore and GCC accelerator
   models and compare cycles, DRAM traffic and energy (Figure 10 / 12).

Run with::

    python examples/quickstart.py [--scale 0.02] [--image-scale 0.15]

Both renders use the vectorized engine by default; pass
``--backend reference`` to run the original per-Gaussian/per-block loops
(same statistics, same image to 1e-9).
"""

from __future__ import annotations

import argparse

from repro.arch import GccAccelerator, GScoreAccelerator
from repro.gaussians.synthetic import make_camera, make_scene
from repro.render import RenderConfig, render_gaussianwise, render_tilewise
from repro.render.metrics import psnr, ssim


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scene", default="lego", help="benchmark scene name")
    parser.add_argument("--scale", type=float, default=0.02, help="scene scale factor")
    parser.add_argument("--image-scale", type=float, default=0.15, help="image scale factor")
    parser.add_argument(
        "--backend",
        default="vectorized",
        choices=("vectorized", "reference"),
        help="rasterisation engine (both produce identical statistics)",
    )
    args = parser.parse_args()

    print(f"Generating synthetic scene {args.scene!r} at scale {args.scale} ...")
    scene = make_scene(args.scene, scale=args.scale)
    camera = make_camera(args.scene, image_scale=args.image_scale)
    print(f"  {scene.num_gaussians} Gaussians, {camera.width}x{camera.height} image")

    print(f"Rendering with the standard (tile-wise) dataflow [{args.backend}] ...")
    tile = render_tilewise(
        scene, camera, RenderConfig(radius_rule="3sigma", backend=args.backend)
    )
    print(
        f"  preprocessed {tile.stats.num_preprocessed} Gaussians, "
        f"rendered {tile.stats.num_rendered} "
        f"({tile.stats.rendered_fraction:.0%}), "
        f"avg {tile.stats.avg_loads_per_gaussian:.2f} loads/Gaussian"
    )

    print(f"Rendering with the GCC (Gaussian-wise) dataflow [{args.backend}] ...")
    gauss = render_gaussianwise(
        scene, camera, RenderConfig(radius_rule="omega-sigma", backend=args.backend)
    )
    print(
        f"  projected {gauss.stats.num_projected}, "
        f"SH evaluated {gauss.stats.num_sh_evaluated}, "
        f"skipped by CC {gauss.stats.num_skipped_tmask + gauss.stats.num_skipped_by_termination} "
        f"(empty footprints {gauss.stats.num_empty_footprint})"
    )

    print("Image agreement (Table 2):")
    print(f"  PSNR = {psnr(tile.image, gauss.image):.2f} dB, SSIM = {ssim(tile.image, gauss.image):.4f}")

    print("Simulating the accelerators (LPDDR4-3200, 1 GHz) ...")
    gscore = GScoreAccelerator().simulate(scene, camera, render_result=tile)
    gcc = GccAccelerator().simulate(scene, camera, render_result=gauss)
    for report in (gscore, gcc):
        print(
            f"  {report.accelerator:7s}: {report.total_cycles:12,.0f} cycles "
            f"({report.fps:8.1f} FPS, {report.fps_per_mm2:8.1f} FPS/mm^2), "
            f"DRAM {report.dram_traffic.total / 1e6:6.2f} MB, "
            f"energy {report.energy_mj_per_frame:6.3f} mJ/frame"
        )

    speedup = gcc.fps_per_mm2 / gscore.fps_per_mm2
    energy_gain = (gscore.energy_mj_per_frame * gscore.area_mm2) / (
        gcc.energy_mj_per_frame * gcc.area_mm2
    )
    print(f"Area-normalised speedup GCC vs GSCore: {speedup:.2f}x")
    print(f"Area-normalised energy efficiency:      {energy_gain:.2f}x")


if __name__ == "__main__":
    main()
