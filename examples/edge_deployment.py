#!/usr/bin/env python
"""Edge deployment study: Compatibility Mode, buffer sizing and DRAM choice.

The motivating use-case of the paper is 3DGS inference on wearable/edge
devices (90 FPS AR targets under ~1 W).  This example explores the three
knobs an edge integrator would turn:

* the on-chip Image Buffer capacity (which decides when Compatibility Mode
  must partition the frame into sub-views),
* the Compatibility-Mode sub-view size,
* the off-chip memory generation (LPDDR4 ... LPDDR6).

Run with::

    python examples/edge_deployment.py [--scene train]
"""

from __future__ import annotations

import argparse

from repro.arch import GccAccelerator, GccConfig
from repro.arch.gcc.cmode import subview_invocations
from repro.arch.params import DRAM_PRESETS
from repro.gaussians.synthetic import make_camera, make_scene
from repro.render import render_gaussianwise
from repro.render.common import RenderConfig
from repro.render.preprocess import project_scene


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scene", default="train")
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--image-scale", type=float, default=0.18)
    args = parser.parse_args()

    scene = make_scene(args.scene, scale=args.scale)
    camera = make_camera(args.scene, image_scale=args.image_scale)
    print(f"Scene {args.scene}: {scene.num_gaussians} Gaussians, {camera.width}x{camera.height}")

    # Render once; every configuration below reuses the same functional work.
    render = render_gaussianwise(scene, camera)

    print("\n--- Sub-view duplication (Figure 6) ---")
    projected = project_scene(scene, camera, RenderConfig(radius_rule="omega-sigma"))
    for subview in (256, 128, 64, 32, 16):
        invocations, unique = subview_invocations(projected, camera.width, camera.height, subview)
        duplication = invocations / max(unique, 1)
        print(f"  sub-view {subview:4d}px: {invocations:7d} invocations for {unique:6d} Gaussians "
              f"(duplication {duplication:.2f}x)")

    print("\n--- Image buffer sizing (Figure 13a) ---")
    for size_kb in (32, 64, 128, 512, 2048):
        config = GccConfig(image_buffer_bytes=size_kb * 1024)
        report = GccAccelerator(config).simulate(scene, camera, render_result=render)
        mode = "Cmode" if report.extra["cmode_enabled"] else "full-frame"
        print(
            f"  {size_kb:5d} KB buffer ({mode:10s}): {report.fps:8.1f} FPS, "
            f"{report.fps_per_mm2:7.1f} FPS/mm^2, {report.energy_mj_per_frame:6.3f} mJ/frame"
        )

    print("\n--- DRAM generation (Figure 14) ---")
    for name in DRAM_PRESETS:
        report = GccAccelerator(GccConfig(dram=name)).simulate(scene, camera, render_result=render)
        bound = "memory-bound" if report.stage_cycles["dram_stream"] >= report.stage_cycles["pipeline"] * 0.99 else "compute-bound"
        print(
            f"  {name:13s} ({DRAM_PRESETS[name].bandwidth_gbps:6.1f} GB/s): "
            f"{report.fps:8.1f} FPS  [{bound}]"
        )

    print("\nA 128 KB buffer with LPDDR4-3200 already sustains the edge target at this scale;")
    print("larger buffers trade silicon area for little extra throughput, matching the paper.")


if __name__ == "__main__":
    main()
