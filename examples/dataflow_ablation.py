#!/usr/bin/env python
"""Dataflow ablation: baseline vs Gaussian-wise vs Gaussian-wise + CC.

Reproduces the structure of Figure 11 on one scene, stepping through the
three designs and reporting where the cycles, DRAM bytes and alpha
computations go.  Useful as a template for studying new dataflow variants.

Run with::

    python examples/dataflow_ablation.py [--scene drjohnson]
"""

from __future__ import annotations

import argparse

from repro.arch import GccAccelerator, GccConfig, GScoreAccelerator
from repro.gaussians.synthetic import make_camera, make_scene


def describe(report, baseline=None) -> str:
    """One-line summary of a simulation report, optionally vs a baseline."""
    line = (
        f"{report.total_cycles:12,.0f} cycles | "
        f"DRAM {report.dram_traffic.total / 1e6:7.2f} MB "
        f"(3D {report.dram_traffic.gaussian_3d / 1e6:6.2f}, "
        f"2D {report.dram_traffic.gaussian_2d / 1e6:6.2f}, "
        f"KV {report.dram_traffic.key_value / 1e6:6.2f}) | "
        f"{report.energy_mj_per_frame:6.3f} mJ"
    )
    if baseline is not None:
        line += f" | {baseline.fps_per_mm2 and report.fps_per_mm2 / baseline.fps_per_mm2:5.2f}x area-norm speedup"
    return line


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scene", default="drjohnson")
    parser.add_argument("--scale", type=float, default=0.004)
    parser.add_argument("--image-scale", type=float, default=0.12)
    args = parser.parse_args()

    scene = make_scene(args.scene, scale=args.scale)
    camera = make_camera(args.scene, image_scale=args.image_scale)
    print(f"Scene {args.scene}: {scene.num_gaussians} Gaussians, {camera.width}x{camera.height}\n")

    print("Baseline (GSCore: two-stage, tile-wise):")
    baseline = GScoreAccelerator().simulate(scene, camera)
    print("  " + describe(baseline))
    print(f"  stage split: { {k: round(v) for k, v in baseline.stage_cycles.items() if k in ('preprocess', 'sort', 'render')} }")

    print("\nGW only (Gaussian-wise rendering, no cross-stage conditions):")
    gw_only = GccAccelerator(GccConfig(enable_cc=False)).simulate(scene, camera)
    print("  " + describe(gw_only, baseline))

    print("\nGW + CC (full GCC):")
    gcc = GccAccelerator().simulate(scene, camera)
    print("  " + describe(gcc, baseline))
    print(f"  stage split: { {k: round(v) for k, v in gcc.stage_cycles.items() if k not in ('pipeline', 'dram_stream')} }")

    print("\nRendering computations (alpha evaluations):")
    print(f"  baseline : {baseline.extra['alpha_evaluations']:12,.0f}")
    print(f"  GCC      : {gcc.extra['alpha_evaluations']:12,.0f}")

    print("\nCross-stage conditional processing skipped "
          f"{gcc.extra['num_projected'] - gcc.extra['num_sh_evaluated']:.0f} SH evaluations "
          "that the baseline performs unconditionally.")


if __name__ == "__main__":
    main()
