#!/usr/bin/env python
"""Render service demo: stream a camera trajectory through the render farm.

This walks the serving subsystem end to end:

1. build a trajectory job (an orbit around the Train scene by default),
2. render it with the in-process sequential fallback,
3. render it again on a multiprocessing worker pool (workers deserialise the
   scene once, then stream frames),
4. verify the two runs are bitwise identical — images and statistics
   counters — and compare throughput and per-frame latency,
5. submit the job three times to a persistent ``RenderExecutor`` (cold
   first touch, then warm repeats on resident worker scenes),
6. print the aggregate work counters of the whole trajectory.

Run with::

    python examples/render_service.py [--scene train] [--trajectory orbit]
        [--frames 8] [--workers 2] [--dataflow tilewise] [--quick]

The same workload is available from the command line as
``python -m repro.serve`` (installed as ``repro-serve``).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.exec import RenderExecutor
from repro.serve import RenderFarm, RenderJob, make_trajectory
from repro.serve.__main__ import format_report
from repro.serve.trajectories import TRAJECTORY_KINDS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scene", default="train", help="evaluation scene name")
    parser.add_argument(
        "--trajectory", default="orbit", choices=TRAJECTORY_KINDS, help="camera path"
    )
    parser.add_argument("--frames", type=int, default=8, help="frames in the job")
    parser.add_argument("--workers", type=int, default=2, help="pool size")
    parser.add_argument(
        "--dataflow",
        default="tilewise",
        choices=("tilewise", "gaussianwise"),
        help="rendering dataflow",
    )
    parser.add_argument(
        "--quick", action="store_true", help="use the reduced quick preset"
    )
    args = parser.parse_args()

    job = RenderJob(
        scene=args.scene,
        trajectory=make_trajectory(args.trajectory, num_frames=args.frames),
        quick=args.quick,
        dataflow=args.dataflow,
    )
    print(
        f"Job: {args.frames}-frame {args.trajectory!r} over scene "
        f"{args.scene!r} ({args.dataflow} dataflow)\n"
    )

    print("Sequential fallback (in-process) ...")
    sequential = RenderFarm(num_workers=0).run(job)
    print(
        f"  {sequential.wall_seconds:.2f} s, "
        f"{sequential.frames_per_second:.2f} frames/s, "
        f"p50 {sequential.p50_ms:.0f} ms, p95 {sequential.p95_ms:.0f} ms"
    )

    print(f"Render farm ({args.workers} workers) ...")
    farm = RenderFarm(num_workers=args.workers).run(job)
    print(
        f"  {farm.wall_seconds:.2f} s, {farm.frames_per_second:.2f} frames/s, "
        f"p50 {farm.p50_ms:.0f} ms, p95 {farm.p95_ms:.0f} ms"
    )

    identical = all(
        np.array_equal(a.image, b.image)
        for a, b in zip(sequential.frames, farm.frames)
    ) and sequential.aggregate_counters() == farm.aggregate_counters()
    print(f"\nFarm output bitwise identical to sequential: {identical}")
    if farm.wall_seconds > 0:
        print(f"Speedup: {sequential.wall_seconds / farm.wall_seconds:.2f}x")

    # A long-lived service keeps one executor: workers persist across jobs
    # and hold each scene tier resident, so only the first submission pays
    # pool start-up and scene shipping.
    print(f"\nPersistent executor ({args.workers} workers), 3 submissions ...")
    with RenderExecutor(num_workers=args.workers) as executor:
        runs = [executor.submit(job).result() for _ in range(3)]
        stats = executor.stats
    for i, run in enumerate(runs):
        tag = "cold" if i == 0 else "warm"
        print(
            f"  run {i} ({tag}): {run.frames_per_second:.2f} frames/s, "
            f"shipped {run.ship_bytes} B"
        )
    print(
        f"  scene-cache: {stats.cache_hits} hits / {stats.cache_misses} misses "
        f"({stats.loaded_bytes} B decoded by workers, at most once each)"
    )

    print()
    print(format_report(farm))


if __name__ == "__main__":
    main()
