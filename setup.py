"""Setuptools configuration (also the legacy path for offline ``pip install -e .``).

Declares the ``src/`` package layout and the console scripts fronting the
serving stack: ``repro-serve`` (render farm, ``python -m repro.serve``),
``repro-sched`` (multi-tenant request scheduler, ``python -m repro.sched``)
and ``repro-obs`` (trace/metrics analysis + SLO alerting,
``python -m repro.obs``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-gcc",
    version="1.0.0",
    description=(
        "Reproduction of GCC: a 3DGS inference architecture with Gaussian-wise "
        "and cross-stage conditional processing"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-serve = repro.serve.__main__:main",
            "repro-sched = repro.sched.__main__:main",
            "repro-obs = repro.obs.__main__:main",
        ]
    },
)
