"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` uses this legacy path when PEP 660 editable builds are
unavailable offline.
"""

from setuptools import setup

setup()
