"""Figure 14 — throughput under different DRAM bandwidth levels (Train).

Paper shape: both accelerators benefit from more bandwidth at the low end;
beyond ~220 GB/s GCC is compute-bound and flat while GSCore keeps improving,
because GCC moves far less data per frame.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments, reporting


def test_figure14_dram_bandwidth(benchmark, save_report):
    rows = run_once(benchmark, experiments.figure14)
    report = reporting.report_figure14(rows)
    save_report("figure14_bandwidth", report)

    rows = sorted(rows, key=lambda r: r["bandwidth_gbps"])
    gcc_fps = [r["gcc_fps"] for r in rows]
    gscore_fps = [r["gscore_fps"] for r in rows]

    # Monotone non-decreasing with bandwidth for both designs.
    assert all(b >= a * 0.999 for a, b in zip(gcc_fps, gcc_fps[1:]))
    assert all(b >= a * 0.999 for a, b in zip(gscore_fps, gscore_fps[1:]))
    # GCC always ahead, and GCC saturates earlier (smaller relative gain from
    # LPDDR4 to LPDDR6 than GSCore).
    assert all(g > s for g, s in zip(gcc_fps, gscore_fps))
    assert gcc_fps[-1] / gcc_fps[0] <= gscore_fps[-1] / gscore_fps[0] + 1e-9
