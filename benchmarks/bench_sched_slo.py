"""Scheduler SLO guard — adaptive quality tiering vs fixed-lossless serving.

Not a paper figure: this benchmark guards the request-scheduling
subsystem's central claim on a bursty overload workload (2-state MMPP at a
mean offered load the lossless tier cannot sustain):

1. *Fixed-lossless misses.*  Serving every request at ``(lod0, lossless)``
   violates the 250 ms p95 SLO at this load — windowed e2e p95 lands well
   above the SLO and attainment below the 95% bar.
2. *Adaptive meets.*  The same workload (same seed, byte-identical request
   stream) under the adaptive SLO controller — ladder walking, per-request
   demotion, feasibility shedding — reaches >= 95% SLO attainment with
   e2e p95 at or under the SLO, and higher goodput than the fixed baseline.
3. *Replayability.*  Re-running the adaptive schedule with the same seed
   reproduces the admission/degradation decision log exactly (list
   equality over every structured event).

Both runs use the deterministic virtual-clock decision plane, so the
numbers — goodput, attainment, shed rate, tier histogram — are
machine-independent and tracked in ``benchmarks/results/sched_slo.json``.

Headline numbers (recalibrated for the executor-aware service model whose
dispatch overhead splits into cold first-touch ship+decode vs warm
resident dispatch — warm serving raised both policies' capacity at this
operating point): fixed-lossless p95 380 ms at 84.1% attainment; adaptive
100% attainment at p95 237 ms, goodput 9.30 vs 7.64 SLO-met rps, shed
rate 14.4% vs 16.5%, six tiers served.

Run with::

    pytest benchmarks/bench_sched_slo.py --benchmark-only
"""

from __future__ import annotations

from conftest import run_once

from repro.sched.qos import EventLog, QoSPolicy, SLOController
from repro.sched.scheduler import RequestScheduler, run_workload
from repro.sched.workload import WorkloadSpec

SLO_MS = 250.0
RATE_RPS = 12.0
DURATION_S = 40.0
SEED = 0
MIN_ADAPTIVE_ATTAINMENT = 0.95

WORKLOAD = WorkloadSpec(
    arrival="bursty",
    rate_rps=RATE_RPS,
    duration_s=DURATION_S,
    num_clients=4,
    slo_ms=SLO_MS,
    seed=SEED,
)

ADAPTIVE_QOS = QoSPolicy(
    window=8, min_samples=4, cooldown=2, degrade_at=0.9, upgrade_at=0.45
)


def run_adaptive() -> tuple[dict, list[dict]]:
    controller = SLOController(policy=ADAPTIVE_QOS, log=EventLog())
    report = run_workload(WORKLOAD, RequestScheduler(qos=controller))
    return report.summary(), list(report.log.events)


def run_fixed_lossless() -> dict:
    controller = SLOController(
        policy=QoSPolicy(adaptive=False), ladder=((0, "lossless"),), log=EventLog()
    )
    report = run_workload(WORKLOAD, RequestScheduler(qos=controller))
    return report.summary()


def measure_sched_slo() -> dict:
    adaptive, adaptive_events = run_adaptive()
    replay, replay_events = run_adaptive()
    fixed = run_fixed_lossless()
    return {
        "workload": adaptive["workload"],
        "slo_ms": SLO_MS,
        "adaptive": adaptive,
        "fixed_lossless": fixed,
        "decision_log_replays_identically": adaptive_events == replay_events
        and adaptive == replay,
        "num_decisions": len(adaptive_events),
    }


def _format_report(result: dict) -> str:
    adaptive, fixed = result["adaptive"], result["fixed_lossless"]

    def row(name: str, summary: dict) -> str:
        latency = summary["latency_ms"]
        return (
            f"{name:<16}{summary['slo_attainment']:>11.1%}"
            f"{latency['e2e_p95']:>11.1f}{summary['goodput_rps']:>10.2f}"
            f"{summary['shed_rate']:>9.1%}"
        )

    lines = [
        "Scheduler SLO attainment: adaptive quality ladder vs fixed lossless",
        f"bursty workload: {RATE_RPS:.0f} rps mean over {DURATION_S:.0f} s, "
        f"slo {SLO_MS:.0f} ms, seed {SEED} "
        f"({adaptive['requests']['offered']} requests offered)",
        "",
        f"{'policy':<16}{'attainment':>11}{'e2e p95':>11}{'goodput':>10}{'shed':>9}",
        row("adaptive", adaptive),
        row("fixed lossless", fixed),
        "",
        "adaptive tier histogram: "
        + "  ".join(f"{k}={v}" for k, v in adaptive["tier_histogram"].items()),
        "adaptive decisions: "
        + "  ".join(f"{k}={v}" for k, v in adaptive["decisions"].items()),
        f"decision log replays identically: {result['decision_log_replays_identically']}",
    ]
    return "\n".join(lines)


def test_adaptive_tiering_meets_slo_fixed_lossless_misses(
    benchmark, save_report, save_json
):
    result = run_once(benchmark, measure_sched_slo)
    save_report("sched_slo", _format_report(result))
    save_json("sched_slo", result)

    adaptive, fixed = result["adaptive"], result["fixed_lossless"]

    # The operating point is a real overload for lossless serving: its p95
    # violates the SLO and attainment sits under the bar.
    assert fixed["latency_ms"]["e2e_p95"] > SLO_MS
    assert fixed["slo_attainment"] < MIN_ADAPTIVE_ATTAINMENT

    # The adaptive controller turns the same workload into an SLO pass ...
    assert adaptive["slo_attainment"] >= MIN_ADAPTIVE_ATTAINMENT
    assert adaptive["latency_ms"]["e2e_p95"] <= SLO_MS * 1.05
    # ... by actually using the ladder (several tiers served), and it
    # out-serves the baseline, not just out-drops it.
    assert len(adaptive["tier_histogram"]) >= 3
    assert adaptive["decisions"].get("tier_down", 0) > 0
    assert adaptive["goodput_rps"] > fixed["goodput_rps"]
    assert adaptive["shed_rate"] < fixed["shed_rate"]

    # Identical seeds reproduce identical admission/degradation decisions.
    assert result["decision_log_replays_identically"]
