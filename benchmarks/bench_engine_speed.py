"""Engine speed — vectorized vs reference rasterisation backends.

Not a paper figure: this benchmark guards the vectorized engine's two
contracts at the default evaluation scale (the ``train`` preset rendered by
every experiment):

1. *Equivalence* — identical statistics counters and images within
   ``atol=1e-9`` against the reference per-Gaussian/per-block loops, for
   both dataflows.
2. *Speed* — an end-to-end frame (one tile-wise render for the GSCore
   baseline plus one Gaussian-wise render for the GCC dataflow) is at least
   5x faster than the reference backend.

Run with::

    pytest benchmarks/bench_engine_speed.py --benchmark-only
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np
from conftest import run_once

from repro.eval.runner import EvalSetup, load_scene_and_camera
from repro.render.common import RenderConfig
from repro.render.gaussian_raster import render_gaussianwise
from repro.render.tile_raster import render_tilewise


def _best_time(func, repeats: int):
    """Best-of-N wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _stats_identical(reference, vectorized) -> list[str]:
    mismatches = []
    for field in dataclasses.fields(reference):
        ref_value = getattr(reference, field.name)
        vec_value = getattr(vectorized, field.name)
        equal = (
            np.array_equal(ref_value, vec_value)
            if isinstance(ref_value, np.ndarray)
            else ref_value == vec_value
        )
        if not equal:
            mismatches.append(field.name)
    return mismatches


def measure_engine_speed(scene_name: str = "train") -> dict:
    """Time both backends on both dataflows at the default evaluation scale."""
    setup = EvalSetup(scene_name, quick=False)
    scene, camera = load_scene_and_camera(setup)

    tile_cfg = lambda backend: RenderConfig(radius_rule="3sigma", backend=backend)
    gauss_cfg = lambda backend: RenderConfig(radius_rule="omega-sigma", backend=backend)

    tile_ref_s, tile_ref = _best_time(
        lambda: render_tilewise(scene, camera, tile_cfg("reference")), repeats=1
    )
    tile_vec_s, tile_vec = _best_time(
        lambda: render_tilewise(scene, camera, tile_cfg("vectorized")), repeats=2
    )
    gauss_ref_s, gauss_ref = _best_time(
        lambda: render_gaussianwise(scene, camera, gauss_cfg("reference")), repeats=1
    )
    gauss_vec_s, gauss_vec = _best_time(
        lambda: render_gaussianwise(scene, camera, gauss_cfg("vectorized")), repeats=2
    )

    return {
        "scene": scene_name,
        "num_gaussians": scene.num_gaussians,
        "image": (camera.width, camera.height),
        "tile_reference_s": tile_ref_s,
        "tile_vectorized_s": tile_vec_s,
        "tile_speedup": tile_ref_s / tile_vec_s,
        "gauss_reference_s": gauss_ref_s,
        "gauss_vectorized_s": gauss_vec_s,
        "gauss_speedup": gauss_ref_s / gauss_vec_s,
        "frame_reference_s": tile_ref_s + gauss_ref_s,
        "frame_vectorized_s": tile_vec_s + gauss_vec_s,
        "frame_speedup": (tile_ref_s + gauss_ref_s) / (tile_vec_s + gauss_vec_s),
        "tile_image_max_diff": float(np.abs(tile_ref.image - tile_vec.image).max()),
        "gauss_image_max_diff": float(np.abs(gauss_ref.image - gauss_vec.image).max()),
        "tile_stats_mismatches": _stats_identical(tile_ref.stats, tile_vec.stats),
        "gauss_stats_mismatches": _stats_identical(gauss_ref.stats, gauss_vec.stats),
    }


def _format_report(result: dict) -> str:
    lines = [
        "Engine speed: vectorized vs reference backends",
        f"scene={result['scene']} gaussians={result['num_gaussians']} "
        f"image={result['image'][0]}x{result['image'][1]}",
        "",
        f"{'dataflow':<14}{'reference':>12}{'vectorized':>12}{'speedup':>10}",
        f"{'tile-wise':<14}{result['tile_reference_s']:>11.3f}s"
        f"{result['tile_vectorized_s']:>11.3f}s{result['tile_speedup']:>9.2f}x",
        f"{'gaussian-wise':<14}{result['gauss_reference_s']:>11.3f}s"
        f"{result['gauss_vectorized_s']:>11.3f}s{result['gauss_speedup']:>9.2f}x",
        f"{'frame (both)':<14}{result['frame_reference_s']:>11.3f}s"
        f"{result['frame_vectorized_s']:>11.3f}s{result['frame_speedup']:>9.2f}x",
        "",
        f"tile image max |diff|:  {result['tile_image_max_diff']:.3e}",
        f"gauss image max |diff|: {result['gauss_image_max_diff']:.3e}",
    ]
    return "\n".join(lines)


def test_engine_speed_and_equivalence(benchmark, save_report, save_json):
    result = run_once(benchmark, measure_engine_speed)
    save_report("engine_speed", _format_report(result))
    save_json("engine_speed", result)

    # Equivalence: exact statistics, images within 1e-9.
    assert result["tile_stats_mismatches"] == []
    assert result["gauss_stats_mismatches"] == []
    assert result["tile_image_max_diff"] <= 1e-9
    assert result["gauss_image_max_diff"] <= 1e-9

    # Speed: the vectorized engine must carry the full frame at >= 5x; each
    # dataflow individually must not regress below a conservative floor.
    assert result["frame_speedup"] >= 5.0, result["frame_speedup"]
    assert result["tile_speedup"] >= 3.0, result["tile_speedup"]
    assert result["gauss_speedup"] >= 3.0, result["gauss_speedup"]
