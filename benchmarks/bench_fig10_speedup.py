"""Figure 10 — area-normalised speedup and energy efficiency over GSCore.

Paper shape: GCC wins on every scene; geomean speedup 5.24x (range
4.27-6.22x) and geomean energy efficiency 3.35x (range 3.05-3.72x).  Our
synthetic scenes reproduce the geomean-level advantage; the per-scene spread
differs because the reduced-scale scenes shift which resource saturates
first (see EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments, reporting


def test_figure10_speedup_and_energy(benchmark, save_report):
    result = run_once(benchmark, experiments.figure10)
    report = reporting.report_figure10(result)
    save_report("figure10_speedup", report)

    for row in result["rows"]:
        assert row["speedup"] > 1.0, f"GCC must win on {row['scene']}"
        assert row["energy_efficiency"] > 1.0
    assert result["geomean_speedup"] > 2.0
    assert result["geomean_energy_efficiency"] > 1.5
