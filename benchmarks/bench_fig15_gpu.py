"""Figure 15 — stage breakdown of the standard vs GCC dataflow on GPUs.

Paper shape: on GPUs, rendering dominates and the GCC dataflow's rendering
stage becomes *slower* (atomic blending), so the dataflow alone cannot reach
the 90 FPS edge target; on the accelerators, GCC removes most of the
standard dataflow's preprocessing share and finishes the frame much earlier.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments
from repro.eval.reporting import format_table


def test_figure15_gpu_breakdown(benchmark, save_report):
    rows = run_once(benchmark, experiments.figure15)
    table_rows = []
    for row in rows:
        for dataflow in ("standard", "gcc"):
            shares = row[dataflow]
            table_rows.append(
                (
                    row["scene"],
                    row["platform"],
                    dataflow,
                    shares["preprocess"],
                    shares["duplicate"],
                    shares["sort"],
                    shares["render"],
                )
            )
    report = format_table(
        ["scene", "platform", "dataflow", "preprocess", "duplicate", "sort", "render"],
        table_rows,
        title="Figure 15 — normalised per-frame stage breakdown",
    )
    save_report("figure15_gpu", report)

    for row in rows:
        if row["platform"] == "GSCore / GCC":
            # On the accelerators the GCC dataflow finishes the frame faster.
            assert row["gcc_total_s"] < row["standard_total_s"]
        else:
            # On GPUs the GCC dataflow's render stage is not faster than the
            # standard dataflow's (atomic serialisation).
            assert row["gcc"]["render"] >= row["standard"]["render"] * 0.99
