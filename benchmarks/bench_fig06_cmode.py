"""Figure 6 — Gaussian loading overhead vs Compatibility-Mode sub-view size.

Paper shape: rendering invocations stay close to the number of rendered
Gaussians for sub-views of 128x128 and larger, and grow steeply below 64x64.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments
from repro.eval.reporting import format_table


def test_figure6_cmode_subviews(benchmark, save_report):
    results = run_once(benchmark, experiments.figure6)
    lines = []
    for scene, rows in results.items():
        lines.append(
            format_table(
                ["sub-view", "invocations", "rendered Gaussians", "duplication"],
                [
                    (r["subview"], r["rendering_invocations"], r["rendered_gaussians"], r["duplication"])
                    for r in rows
                ],
                title=f"Figure 6 — {scene}",
            )
        )
    save_report("figure06_cmode", "\n\n".join(lines))

    for rows in results.values():
        by_size = {r["subview"]: r for r in rows}
        # Marginal overhead at 128 and above, steep growth at 16.
        assert by_size[1024]["duplication"] <= by_size[128]["duplication"] * 1.5
        assert by_size[16]["duplication"] > by_size[128]["duplication"]
