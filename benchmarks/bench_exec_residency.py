"""Executor residency — persistent warm pool vs the cold per-job-pool path.

Not a paper figure: this benchmark guards the execution subsystem's two
contracts on repeated jobs over one :class:`repro.exec.RenderExecutor`:

1. *Residency* — a ``(scene, lod, quant)`` tier is shipped (encoded by the
   parent, decoded by a worker) **at most once per worker**: the payload
   is published exactly once per tier, worker cache misses are bounded by
   ``workers x tiers``, and per-job ``ship_bytes`` drops to zero after the
   first touch — the cumulative shipped bytes *plateau* across repeats.
2. *Throughput* — steady-state (warm) repeats on the persistent pool run
   at least 2x faster than the cold path that builds a fresh per-job pool
   every time (the seed farm's behaviour, still exercised through the
   standalone ``RenderFarm``), because the warm path pays neither pool
   spin-up nor scene encode/ship/decode.  Pool parallelism needs real
   hardware, so the 2x assertion requires >= 2 usable CPUs; on single-CPU
   machines the residency checks still run and the speedup is reported
   without being enforced.

Also re-checks fidelity: the warm pool's frames stay bitwise identical to
the sequential path (the cheap half of the exec-smoke CI check).

Run with::

    pytest benchmarks/bench_exec_residency.py --benchmark-only
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.exec import RenderExecutor
from repro.exec.frames import usable_cpu_count
from repro.serve.farm import RenderFarm
from repro.serve.trajectories import RenderJob, make_trajectory

SCENE = "train"
#: Short jobs on the quick preset, deliberately: the executor's win is the
#: *fixed* per-job cost (pool spin-up, payload encode, worker decode) that
#: the cold path pays on every job — short jobs are the regime where that
#: overhead dominates, i.e. exactly the multi-tenant request mix of the
#: PR-4 scheduler.  Long render-bound jobs amortise the overhead on both
#: paths and converge to 1x by construction.
NUM_FRAMES = 2
NUM_WORKERS = 2
NUM_REPEATS = 5
#: Quality tiers cycled through the pool (exercises multi-tier residency).
TIERS = ((0, "lossless"), (1, "compact"))
MIN_WARM_SPEEDUP = 2.0


def _jobs() -> list[RenderJob]:
    return [
        RenderJob(
            SCENE,
            make_trajectory("orbit", num_frames=NUM_FRAMES),
            quick=True,
            lod=lod,
            quant=quant,
        )
        for lod, quant in TIERS
    ]


def measure_exec_residency() -> dict:
    jobs = _jobs()

    # Cold path: the standalone farm builds a fresh pool per job — pool
    # spin-up + payload encode + worker decode on every single job.
    cold_farm = RenderFarm(num_workers=NUM_WORKERS)
    cold_walls = [cold_farm.run(job).wall_seconds for job in jobs]

    # Warm path: one persistent executor serves every repeat.
    ship_by_iteration: list[int] = []
    warm_walls: list[float] = []
    with RenderExecutor(num_workers=NUM_WORKERS) as executor:
        iterations: list[list] = []
        for repeat in range(NUM_REPEATS):
            results = [executor.submit(job).result() for job in jobs]
            iterations.append(results)
            ship_by_iteration.append(sum(r.ship_bytes for r in results))
            if repeat > 0:  # steady state: first iteration pays the cold costs
                warm_walls.extend(r.wall_seconds for r in results)
        stats = executor.stats.as_dict()

    # Fidelity: warm frames are bitwise identical to the sequential path.
    mismatches: list[str] = []
    for job, result in zip(jobs, iterations[-1]):
        sequential = RenderFarm(num_workers=0).run(job)
        for seq, warm in zip(sequential.frames, result.frames):
            if not np.array_equal(seq.image, warm.image):
                mismatches.append(f"{job.quant}:frame{warm.index}")
        if sequential.aggregate_counters() != result.aggregate_counters():
            mismatches.append(f"{job.quant}:counters")

    cold_s = sum(cold_walls)
    warm_s = sum(warm_walls) / (NUM_REPEATS - 1)  # per-iteration steady state
    return {
        "scene": SCENE,
        "num_frames": NUM_FRAMES,
        "num_workers": NUM_WORKERS,
        "num_repeats": NUM_REPEATS,
        "tiers": [f"lod{lod}/{quant}" for lod, quant in TIERS],
        "usable_cpus": usable_cpu_count(),
        "cold_per_job_pool_s": cold_s,
        "warm_pool_iteration_s": warm_s,
        "warm_over_cold_speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        "cold_fps": NUM_FRAMES * len(TIERS) / cold_s,
        "warm_fps": NUM_FRAMES * len(TIERS) / warm_s,
        "ship_bytes_by_iteration": ship_by_iteration,
        "published_payloads": stats["published_payloads"],
        "cache_misses": stats["cache_misses"],
        "cache_hits": stats["cache_hits"],
        "loaded_bytes": stats["loaded_bytes"],
        "workers_replaced": stats["workers_replaced"],
        "frame_mismatches": mismatches,
    }


def _format_report(result: dict) -> str:
    lines = [
        "Executor residency: persistent warm pool vs cold per-job pools",
        f"scene={result['scene']} frames={result['num_frames']} "
        f"workers={result['num_workers']} tiers={','.join(result['tiers'])} "
        f"repeats={result['num_repeats']} cpus={result['usable_cpus']}",
        "",
        f"{'path':<22}{'s/iteration':>12}{'frames/s':>10}",
        f"{'cold per-job pools':<22}{result['cold_per_job_pool_s']:>11.2f}s"
        f"{result['cold_fps']:>10.2f}",
        f"{'warm persistent pool':<22}{result['warm_pool_iteration_s']:>11.2f}s"
        f"{result['warm_fps']:>10.2f}",
        "",
        f"warm-over-cold speedup: {result['warm_over_cold_speedup']:.2f}x",
        f"ship bytes by iteration: {result['ship_bytes_by_iteration']} (plateau)",
        f"published payloads: {result['published_payloads']} "
        f"(one per tier)   worker cache: {result['cache_hits']} hits / "
        f"{result['cache_misses']} misses",
        f"bitwise identical to sequential: {not result['frame_mismatches']}",
    ]
    return "\n".join(lines)


def test_exec_residency_and_warm_throughput(benchmark, save_report, save_json):
    result = run_once(benchmark, measure_exec_residency)
    save_report("exec_residency", _format_report(result))
    save_json("exec_residency", result)

    # Fidelity: the warm pool renders the sequential path's exact bits.
    assert result["frame_mismatches"] == []

    # Residency: each tier is published once and decoded at most once per
    # worker; nothing ships after the first touch of a tier.
    assert result["published_payloads"] == len(TIERS)
    assert result["cache_misses"] <= NUM_WORKERS * len(TIERS)
    assert result["ship_bytes_by_iteration"][0] > 0
    assert all(b == 0 for b in result["ship_bytes_by_iteration"][1:])
    assert result["workers_replaced"] == 0

    # Throughput: requires real hardware parallelism for the cold pool to
    # be a fair baseline; report-only on single-CPU machines.
    if result["usable_cpus"] >= 2:
        assert result["warm_over_cold_speedup"] >= MIN_WARM_SPEEDUP, result[
            "warm_over_cold_speedup"
        ]
