"""Table 1 — rendered pixels per frame under AABB / OBB / actual blending.

Paper shape: AABB > OBB by ~3x, and the pixels actually blended are another
5-10x below the bounding-box footprints.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments, reporting


def test_table1_bounding_methods(benchmark, save_report):
    rows = run_once(benchmark, experiments.table1)
    report = reporting.report_table1(rows)
    save_report("table1_bounds", report)

    for row in rows:
        assert row["aabb_pixels"] > row["obb_pixels"]
        assert row["obb_pixels"] >= row["alpha_pixels"]
        # Actual rendering touches far fewer pixels than the AABB footprint.
        assert row["rendered_pixels"] < row["aabb_pixels"] * 0.8
