"""Single-frame latency — intra-frame tile-shard rendering on a warm pool.

Not a paper figure: this benchmark guards the tentpole contract of the
intra-frame sharding work.  A request asking for *one* frame used to be
unable to use more than one worker lane no matter how many sat idle —
the frame was the indivisible work unit.  Tile-range sharding splits that
frame into ``shards`` half-open tile-id intervals, renders them on idle
lanes concurrently and composites the shard outputs back into the exact
whole-frame artefact:

1. *Fidelity* — the sharded frame is bitwise identical to the sequential
   render (image **and** every statistics counter), at every shard count
   measured.  This holds unconditionally; it is the reason the scheduler
   may shard a latency-critical request at zero quality cost.
2. *Latency* — on the largest preset (full-scale Train, 77 tiles) the
   sharded render cuts warm single-frame latency by >= 2x versus the
   unsharded render on the same pool.  Real hardware parallelism is
   required for that to be physically possible, so the 2x assertion runs
   only with >= 4 usable CPUs; on smaller machines the speedup is
   reported without being enforced (the fidelity checks still run).

Run with::

    pytest benchmarks/bench_frame_latency.py --benchmark-only
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.exec import RenderExecutor
from repro.exec.frames import usable_cpu_count
from repro.obs import ObsContext, chrome_trace, validate_chrome_trace
from repro.serve.farm import RenderFarm
from repro.serve.trajectories import RenderJob, make_trajectory

SCENE = "train"  # largest preset: 176x98 at tile_size 16 -> 77 tiles
NUM_WORKERS = 4
NUM_REPEATS = 5
SHARD_COUNTS = (2, 4)
MIN_SHARD_SPEEDUP = 2.0
MIN_CPUS_FOR_SPEEDUP = 4


def _job(shards: int = 1) -> RenderJob:
    return RenderJob(
        SCENE, make_trajectory("orbit", num_frames=1), quick=False, shards=shards
    )


def measure_frame_latency() -> dict:
    # Sequential baseline: the exact bits every sharded run must reproduce.
    sequential = RenderFarm(num_workers=0).run(_job())

    latencies: dict[int, list[float]] = {}
    mismatches: list[str] = []
    with RenderExecutor(num_workers=NUM_WORKERS) as executor:
        executor.submit(_job()).result()  # warm the pool: ship + decode once
        for shards in (1,) + SHARD_COUNTS:
            walls = []
            for _ in range(NUM_REPEATS):
                result = executor.submit(_job(shards=shards)).result()
                walls.append(result.wall_seconds)
            latencies[shards] = walls
            # Fidelity at every shard count, not just the fastest.
            for seq, sharded in zip(sequential.frames, result.frames):
                if not np.array_equal(seq.image, sharded.image):
                    mismatches.append(f"shards{shards}:image")
            if sequential.aggregate_counters() != result.aggregate_counters():
                mismatches.append(f"shards{shards}:counters")

    # One traced 2-worker sharded pass on a fresh pool: the schema-validated
    # Chrome trace behind the critical-path breakdown committed alongside the
    # BENCH snapshot.  Separate from the timed pool so tracing cannot touch
    # the latency numbers above.
    obs = ObsContext.create()
    with RenderExecutor(num_workers=2, obs=obs) as traced:
        traced.submit(_job()).result()  # warm: ship + decode once per lane
        traced.submit(_job(shards=2)).result()
    trace_payload = chrome_trace(obs.tracer.spans)
    validate_chrome_trace(trace_payload, expect_lanes=("worker-0", "worker-1"))

    # Warm steady-state latency: the minimum over repeats (scheduling noise
    # only ever adds time; the floor is the honest hardware latency).
    floor = {shards: min(walls) for shards, walls in latencies.items()}
    best_shards = min(SHARD_COUNTS, key=lambda s: floor[s])
    speedup = floor[1] / floor[best_shards] if floor[best_shards] > 0 else 0.0
    return {
        "scene": SCENE,
        "quick": False,
        "num_workers": NUM_WORKERS,
        "num_repeats": NUM_REPEATS,
        "usable_cpus": usable_cpu_count(),
        "latency_ms": {
            str(shards): [w * 1000.0 for w in walls]
            for shards, walls in latencies.items()
        },
        "floor_ms": {str(shards): value * 1000.0 for shards, value in floor.items()},
        "best_shards": best_shards,
        "shard_speedup": speedup,
        "frame_mismatches": mismatches,
        "trace_payload": trace_payload,
    }


def _format_report(result: dict) -> str:
    lines = [
        "Single-frame latency: intra-frame tile-shard rendering (warm pool)",
        f"scene={result['scene']} (full preset)   workers={result['num_workers']}   "
        f"repeats={result['num_repeats']}   cpus={result['usable_cpus']}",
        "",
        f"{'shards':<8}{'floor ms':>10}",
    ]
    for shards, floor_ms in sorted(result["floor_ms"].items(), key=lambda kv: int(kv[0])):
        lines.append(f"{shards:<8}{floor_ms:>10.1f}")
    lines += [
        "",
        f"best sharded latency: {result['shard_speedup']:.2f}x faster than "
        f"unsharded at {result['best_shards']} shards",
        f"bitwise identical to sequential: {not result['frame_mismatches']}",
    ]
    return "\n".join(lines)


def test_single_frame_shard_latency(benchmark, save_report, save_json, save_trace):
    result = run_once(benchmark, measure_frame_latency)
    payload = result.pop("trace_payload")
    save_report("frame_latency", _format_report(result))
    save_json("frame_latency", result)
    save_trace("frame_latency", payload)

    # Fidelity is unconditional: sharding must cost zero quality.
    assert result["frame_mismatches"] == []

    # Latency needs >= 4 real lanes for 2x to be physically reachable;
    # report-only below that (single-CPU CI boxes).
    if result["usable_cpus"] >= MIN_CPUS_FOR_SPEEDUP:
        assert result["shard_speedup"] >= MIN_SHARD_SPEEDUP, result["shard_speedup"]
