"""Scene store quality/compression sweep — the subsystem's two contracts.

Not a paper figure: this benchmark guards the scene store the way
``bench_serve_throughput.py`` guards the render farm.

1. *Losslessness* — the ``lossless`` store tier (encode -> container ->
   decode) is **bitwise identical** to the legacy pipeline on every quick
   evaluation preset: same image bits, same statistics counters.
2. *Quality/compression* — sweeping the LOD x quant grid on the default
   ``train`` preset, every tier stays above its stated PSNR floor, and the
   flagship ``compact`` tier compresses the scene >= 4x on disk (vs the
   lossless ``.npz`` archive the repo shipped before the store existed)
   while holding PSNR >= 35 dB.

The grid report (compression ratio, frames/s, PSNR, LPIPS proxy) is written
as text and as machine-readable JSON under ``benchmarks/results/``.

Run with::

    pytest benchmarks/bench_store_quality.py --benchmark-only
"""

from __future__ import annotations

import dataclasses
import math
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.eval.runner import EvalSetup, load_scene_and_camera, run_tilewise
from repro.eval.scenes import EVAL_SCENES
from repro.gaussians.io import save_scene_npz
from repro.render.metrics import lpips_proxy, psnr
from repro.serve.farm import FrameSpec, render_frame
from repro.store import (
    QUANT_SPECS,
    load_scene_store,
    roundtrip_scene,
    save_scene_store,
    select_lod,
)

LOD_LEVELS = (0, 1, 2)
QUANTS = ("lossless", "fp16", "compact")

#: The tier the acceptance contract names: >= 4x smaller on disk than the
#: lossless archive while >= 35 dB against the full-precision render.
FLAGSHIP = {"lod": 0, "quant": "compact"}
FLAGSHIP_MIN_RATIO = 4.0
FLAGSHIP_MIN_PSNR_DB = 35.0

#: Stated PSNR floors per (lod, quant) tier on the default ``train``
#: preset.  Quantization alone (lod 0) is visually lossless (~64 dB
#: measured); pruning dominates the loss at deeper levels (~27 dB at half
#: detail, ~23 dB at quarter detail on the synthetic stand-ins, which carry
#: far less inter-Gaussian redundancy than trained captures).  Floors sit
#: comfortably below measurement so only a real regression trips them.
PSNR_FLOORS_DB = {
    (0, "fp16"): 45.0,
    (0, "compact"): 45.0,
    (1, "lossless"): 24.0,
    (1, "fp16"): 24.0,
    (1, "compact"): 24.0,
    (2, "lossless"): 20.0,
    (2, "fp16"): 20.0,
    (2, "compact"): 20.0,
}


def _stats_mismatches(expected, actual) -> list[str]:
    mismatches = []
    for field in dataclasses.fields(expected):
        a, b = getattr(expected, field.name), getattr(actual, field.name)
        equal = np.array_equal(a, b) if isinstance(a, np.ndarray) else a == b
        if not equal:
            mismatches.append(field.name)
    return mismatches


def measure_lossless_fidelity(tmp_dir: Path) -> dict:
    """Lossless store tier vs legacy pipeline, every quick preset, bitwise."""
    mismatches: list[str] = []
    for name in EVAL_SCENES:
        setup = EvalSetup(name, quick=True)
        scene, camera = load_scene_and_camera(setup)
        baseline = run_tilewise(setup)

        path = tmp_dir / f"{name}.store.npz"
        save_scene_store(scene, path, QUANT_SPECS["lossless"])
        restored = load_scene_store(path)
        result = render_frame(restored, camera, FrameSpec())

        if not np.array_equal(baseline.image, result.image):
            mismatches.append(f"{name}:image")
        mismatches += [
            f"{name}:{f}" for f in _stats_mismatches(baseline.stats, result.stats)
        ]
    return {"scenes": sorted(EVAL_SCENES), "mismatches": mismatches}


def measure_store_grid(tmp_dir: Path, scene_name: str = "train") -> dict:
    """Sweep the LOD x quant grid on the default-scale ``scene_name`` preset."""
    setup = EvalSetup(scene_name)
    scene, camera = load_scene_and_camera(setup)
    spec = FrameSpec()
    reference = render_frame(scene, camera, spec)

    lossless_path = tmp_dir / "baseline.npz"
    save_scene_npz(scene, lossless_path)
    lossless_disk_bytes = lossless_path.stat().st_size

    rows = []
    for lod in LOD_LEVELS:
        lod_scene = select_lod(scene, lod)
        for quant in QUANTS:
            tier = QUANT_SPECS[quant]
            tier_path = tmp_dir / f"{scene_name}.lod{lod}.{quant}.npz"
            save_scene_store(lod_scene, tier_path, tier)
            disk_bytes = tier_path.stat().st_size

            render_scene = roundtrip_scene(lod_scene, tier)
            start = time.perf_counter()
            result = render_frame(render_scene, camera, spec)
            render_seconds = time.perf_counter() - start

            quality_db = psnr(reference.image, result.image)
            rows.append(
                {
                    "lod": lod,
                    "quant": quant,
                    "num_gaussians": render_scene.num_gaussians,
                    "disk_bytes": disk_bytes,
                    "disk_ratio": lossless_disk_bytes / disk_bytes,
                    "frames_per_second": 1.0 / render_seconds,
                    "psnr_db": None if math.isinf(quality_db) else quality_db,
                    "lpips_proxy": lpips_proxy(reference.image, result.image),
                    "bitwise": bool(np.array_equal(reference.image, result.image)),
                }
            )
    return {
        "scene": scene_name,
        "image_size": [reference.stats.width, reference.stats.height],
        "lossless_disk_bytes": lossless_disk_bytes,
        "grid": rows,
    }


def measure_store_quality(tmp_dir: Path) -> dict:
    report = measure_lossless_fidelity(tmp_dir)
    grid = measure_store_grid(tmp_dir)
    return {"lossless_fidelity": report, **grid}


def _format_report(result: dict) -> str:
    lines = [
        "Scene store: LOD x quant sweep on the default train preset",
        f"scene={result['scene']} image={result['image_size'][0]}x{result['image_size'][1]} "
        f"lossless archive={result['lossless_disk_bytes']} B",
        "",
        f"{'lod':>4}{'quant':>10}{'gaussians':>11}{'disk B':>10}"
        f"{'ratio':>8}{'frames/s':>10}{'PSNR dB':>9}{'LPIPS*':>8}",
    ]
    for row in result["grid"]:
        quality = "inf" if row["psnr_db"] is None else f"{row['psnr_db']:.1f}"
        lines.append(
            f"{row['lod']:>4}{row['quant']:>10}{row['num_gaussians']:>11}"
            f"{row['disk_bytes']:>10}{row['disk_ratio']:>7.1f}x"
            f"{row['frames_per_second']:>10.1f}{quality:>9}{row['lpips_proxy']:>8.3f}"
        )
    lines += [
        "",
        f"lossless tier bitwise identical on quick presets: "
        f"{not result['lossless_fidelity']['mismatches']}",
    ]
    return "\n".join(lines)


def test_store_quality_and_compression(benchmark, save_report, save_json, tmp_path):
    result = run_once(benchmark, measure_store_quality, tmp_path)
    save_report("store_quality", _format_report(result))
    save_json("store_quality", result)

    # Contract 1: the lossless store tier is bit-for-bit the legacy
    # pipeline — images and statistics counters — on every quick preset.
    assert result["lossless_fidelity"]["mismatches"] == []
    lossless_rows = [r for r in result["grid"] if r["lod"] == 0 and r["quant"] == "lossless"]
    assert all(r["bitwise"] for r in lossless_rows)

    # Contract 2: every tier stays above its stated PSNR floor...
    by_tier = {(r["lod"], r["quant"]): r for r in result["grid"]}
    for (lod, quant), floor in PSNR_FLOORS_DB.items():
        measured = by_tier[(lod, quant)]["psnr_db"]
        assert measured is not None and measured >= floor, (
            f"lod={lod} quant={quant}: PSNR {measured} dB under floor {floor} dB"
        )

    # ...and the flagship compact tier is >= 4x smaller on disk than the
    # lossless archive while holding >= 35 dB.
    flagship = by_tier[(FLAGSHIP["lod"], FLAGSHIP["quant"])]
    assert flagship["disk_ratio"] >= FLAGSHIP_MIN_RATIO, flagship["disk_ratio"]
    assert flagship["psnr_db"] >= FLAGSHIP_MIN_PSNR_DB, flagship["psnr_db"]
