"""Observability overhead — tracing/metrics must be cheap and inert.

Not a paper figure: this benchmark guards the observability subsystem's
two contracts:

1. *Overhead* — recording spans and metrics on the warm sequential render
   path costs < 5% wall time versus the same job with observability off.
   The comparison needs a quiet machine to be meaningful, so the 5% bound
   is enforced only with >= 2 usable CPUs (the single-CPU CI fallback
   reports the ratio without asserting — timer noise on a shared core
   dwarfs the effect being measured).  A third arm turns on the *whole*
   live telemetry plane — span-stack tracker, 5 ms CPU stack sampler,
   HTTP server with a scraper polling ``/metrics`` + ``/health`` mid-run
   — and must stay within 10% of the untraced baseline: the price of
   leaving live telemetry attached in production.
2. *Fidelity of the trace itself* — a concurrent 2-worker sharded run
   exported to Chrome trace_event JSON passes schema validation: every
   worker slot has a lane, spans nest request > job > frame > shard, and
   the worker-side decode/render timings appear inside the worker lanes
   (not just parent-side dispatch envelopes).

Zero-perturbation of the *rendered output* (bitwise identity with obs on
vs off) is covered by ``tests/test_obs_zero_perturbation.py``; this file
covers cost and trace shape.

Run with::

    pytest benchmarks/bench_obs_overhead.py --benchmark-only
"""

from __future__ import annotations

import threading
import time
import urllib.request

from conftest import run_once

from repro.exec import RenderExecutor
from repro.exec.frames import usable_cpu_count
from repro.obs import (
    ObsContext,
    SpanStackTracker,
    StackSampler,
    TelemetryServer,
    chrome_trace,
    validate_chrome_trace,
)
from repro.serve.trajectories import RenderJob, make_trajectory

SCENE = "train"
NUM_FRAMES = 2
#: Warm repeats timed per arm (plus one untimed warm-up iteration).
NUM_REPEATS = 5
MAX_OVERHEAD_RATIO = 1.05
#: Bound for the full live plane (tracer + stack sampler + HTTP scrapes).
MAX_LIVE_OVERHEAD_RATIO = 1.10
#: Scrape cadence of the benchmark's in-process "Prometheus" poller.
SCRAPE_INTERVAL_S = 0.05
NUM_WORKERS = 2
NUM_SHARDS = 2


def _job(shards: int = 1) -> RenderJob:
    return RenderJob(
        SCENE,
        make_trajectory("orbit", num_frames=NUM_FRAMES),
        quick=True,
        shards=shards,
    )


def _timed_warm_seconds(obs: ObsContext | None) -> float:
    """Median warm-iteration wall time of a sequential executor run."""
    job = _job()
    walls = []
    with RenderExecutor(num_workers=0, obs=obs) as executor:
        executor.submit(job).result()  # warm-up: scene build + cache fill
        for _ in range(NUM_REPEATS):
            t0 = time.perf_counter()
            executor.submit(job).result()
            walls.append(time.perf_counter() - t0)
    walls.sort()
    return walls[len(walls) // 2]


def _timed_warm_seconds_live() -> float:
    """Median warm-iteration wall time with the full live plane attached:
    span-stack tracker on the tracer, CPU stack sampler running, HTTP
    telemetry server up, and a scraper thread polling it mid-render."""
    obs = ObsContext.create()
    tracker = SpanStackTracker()
    obs.tracer.observer = tracker
    sampler = StackSampler(tracker=tracker)
    sampler.start()
    job = _job()
    walls = []
    stop = threading.Event()
    try:
        with RenderExecutor(num_workers=0, obs=obs) as executor, TelemetryServer(
            "127.0.0.1",
            0,
            tracer=obs.tracer,
            metrics_fn=executor.collect_metrics,
            health_fn=executor.health,
            sampler=sampler,
        ) as server:
            base = f"http://{server.address}"

            def scrape() -> None:
                while not stop.is_set():
                    for path in ("/metrics", "/health"):
                        with urllib.request.urlopen(base + path, timeout=30) as resp:
                            resp.read()
                    stop.wait(SCRAPE_INTERVAL_S)

            scraper = threading.Thread(target=scrape, daemon=True)
            scraper.start()
            executor.submit(job).result()  # warm-up: scene build + cache fill
            for _ in range(NUM_REPEATS):
                t0 = time.perf_counter()
                executor.submit(job).result()
                walls.append(time.perf_counter() - t0)
            stop.set()
            scraper.join()
    finally:
        stop.set()
        sampler.stop()
    walls.sort()
    return walls[len(walls) // 2]


def measure_obs_overhead() -> dict:
    baseline_s = _timed_warm_seconds(None)
    traced_s = _timed_warm_seconds(ObsContext.create())
    live_s = _timed_warm_seconds_live()

    # Concurrent sharded run whose trace the schema check validates.
    obs = ObsContext.create()
    with RenderExecutor(num_workers=NUM_WORKERS, obs=obs) as executor:
        executor.submit(
            _job(shards=NUM_SHARDS), trace={"request": "bench-obs"}
        ).result()
    payload = chrome_trace(obs.tracer.spans)
    trace_info = validate_chrome_trace(
        payload,
        expect_lanes=[f"worker-{i}" for i in range(NUM_WORKERS)],
    )

    return {
        "scene": SCENE,
        "num_frames": NUM_FRAMES,
        "num_repeats": NUM_REPEATS,
        "usable_cpus": usable_cpu_count(),
        "baseline_warm_s": baseline_s,
        "traced_warm_s": traced_s,
        "live_warm_s": live_s,
        "overhead_ratio": traced_s / baseline_s if baseline_s > 0 else 0.0,
        "live_overhead_ratio": live_s / baseline_s if baseline_s > 0 else 0.0,
        "trace_events": trace_info["events"],
        "trace_lanes": trace_info["lanes"],
        "trace_spans": trace_info["spans"],
        "trace_payload": payload,
    }


def _format_report(result: dict) -> str:
    spans = result["trace_spans"]
    lines = [
        "Observability overhead: traced vs untraced warm sequential path",
        f"scene={result['scene']} frames={result['num_frames']} "
        f"repeats={result['num_repeats']} cpus={result['usable_cpus']}",
        "",
        f"baseline warm iteration: {result['baseline_warm_s'] * 1e3:9.2f} ms",
        f"traced   warm iteration: {result['traced_warm_s'] * 1e3:9.2f} ms",
        f"live     warm iteration: {result['live_warm_s'] * 1e3:9.2f} ms "
        "(tracer + stack sampler + HTTP scrapes)",
        f"overhead ratio: {result['overhead_ratio']:.4f} "
        f"(bound {MAX_OVERHEAD_RATIO:.2f}, enforced with >= 2 cpus)",
        f"live overhead ratio: {result['live_overhead_ratio']:.4f} "
        f"(bound {MAX_LIVE_OVERHEAD_RATIO:.2f}, enforced with >= 2 cpus)",
        "",
        f"sharded trace: {result['trace_events']} events on lanes "
        f"{','.join(result['trace_lanes'])}",
        "span counts: "
        + "   ".join(f"{name}={n}" for name, n in sorted(spans.items())),
    ]
    return "\n".join(lines)


def test_obs_overhead_and_trace_shape(benchmark, save_report, save_json, save_trace):
    result = run_once(benchmark, measure_obs_overhead)
    payload = result.pop("trace_payload")
    save_report("obs_overhead", _format_report(result))
    save_json("obs_overhead", result)
    save_trace("obs_overhead", payload)

    # Trace shape: both worker lanes present, the span chain reaches the
    # worker-side shard/decode work, and kernel stages nested underneath.
    for lane in (f"worker-{i}" for i in range(NUM_WORKERS)):
        assert lane in result["trace_lanes"]
    spans = result["trace_spans"]
    assert spans.get("request", 0) >= 1
    assert spans.get("shard", 0) == NUM_FRAMES * NUM_SHARDS
    assert spans.get("decode", 0) >= 1
    assert spans.get("blend", 0) == NUM_FRAMES * NUM_SHARDS

    # Overhead: needs a quiet core to measure 5% reliably; report-only on
    # single-CPU machines (the ratio still lands in results/ for tracking).
    if result["usable_cpus"] >= 2:
        assert result["overhead_ratio"] <= MAX_OVERHEAD_RATIO, result[
            "overhead_ratio"
        ]
        assert result["live_overhead_ratio"] <= MAX_LIVE_OVERHEAD_RATIO, result[
            "live_overhead_ratio"
        ]
