"""Fleet routing guard — cache-aware placement vs a random baseline.

Not a paper figure: this benchmark guards the multi-executor fleet's
central claim at two operating points of the same seeded bursty workload
served by a 4-executor fleet:

1. *Capacity point* (24 rps mean, 4 worker lanes per executor — the fleet
   has headroom).  Consistent-hash ``affinity`` routing concentrates each
   ``(scene, lod, quant)`` residency key on one executor, so scenes ship
   cold once per tier instead of once per executor: modeled cold-dispatch
   ship bytes drop well below the seed-deterministic ``random`` baseline
   at identical goodput and SLO attainment — placement quality is free.
2. *Overload point* (64 rps mean, 2 worker lanes per executor).  Warm
   service is the scarce resource now: affinity's higher warm-hit rate
   turns into strictly higher goodput *and* strictly fewer ship bytes at
   equal fleet size.
3. *Replayability.*  Re-running either routing with the same seed
   reproduces the decision log exactly — including a run with an injected
   executor failure mid-burst, whose in-flight job is requeued and
   re-routed deterministically.

Everything runs on the deterministic virtual-clock decision plane, so
goodput, ship bytes, attainment, and placement counts are
machine-independent and tracked in ``benchmarks/results/fleet_routing.json``.

Headline numbers: at the capacity point affinity ships 44.4 MB vs
random's 114.0 MB (2.6x less) at equal 16.50 rps goodput; at the
overload point affinity wins on both axes (67.42 vs 67.12 rps goodput,
145.5 vs 151.2 MB shipped).

Run with::

    pytest benchmarks/bench_fleet_routing.py --benchmark-only
"""

from __future__ import annotations

from conftest import run_once

from repro.fleet import FleetPolicy
from repro.sched.qos import EventLog, QoSPolicy, SLOController
from repro.sched.scheduler import RequestScheduler, SchedulerPolicy, run_workload
from repro.sched.workload import WorkloadSpec

SLO_MS = 250.0
DURATION_S = 20.0
SEED = 0
NUM_EXECUTORS = 4
#: Chosen mid-service for executor-0 at the capacity point, so the drill
#: exercises the requeue path, not just ring shrinkage.
FAIL_AT_MS = 3000.0

#: (label, mean offered rps, worker lanes per executor).
OPERATING_POINTS = (
    ("capacity", 24.0, 4),
    ("overload", 64.0, 2),
)

ADAPTIVE_QOS = QoSPolicy(
    window=8, min_samples=4, cooldown=2, degrade_at=0.9, upgrade_at=0.45
)


def _workload(rate_rps: float) -> WorkloadSpec:
    return WorkloadSpec(
        arrival="bursty",
        rate_rps=rate_rps,
        duration_s=DURATION_S,
        num_clients=4,
        slo_ms=SLO_MS,
        seed=SEED,
    )


def run_fleet(
    routing: str, rate_rps: float, workers: int, failures: tuple = ()
) -> tuple[dict, list[dict]]:
    controller = SLOController(policy=ADAPTIVE_QOS, log=EventLog())
    scheduler = RequestScheduler(
        policy=SchedulerPolicy(num_workers=workers),
        qos=controller,
        fleet=FleetPolicy(
            num_executors=NUM_EXECUTORS, routing=routing, failures=failures
        ),
    )
    report = run_workload(_workload(rate_rps), scheduler)
    return report.summary(), list(report.log.events)


def _point_summary(summary: dict) -> dict:
    return {
        "goodput_rps": summary["goodput_rps"],
        "slo_attainment": summary["slo_attainment"],
        "shed_rate": summary["shed_rate"],
        "ship_bytes": summary["fleet"]["ship_bytes"],
        "placements": summary["fleet"]["placements"],
        "e2e_p95_ms": summary["latency_ms"]["e2e_p95"],
    }


def measure_fleet_routing() -> dict:
    points = {}
    for label, rate_rps, workers in OPERATING_POINTS:
        affinity, affinity_events = run_fleet("affinity", rate_rps, workers)
        replay, replay_events = run_fleet("affinity", rate_rps, workers)
        random_summary, _ = run_fleet("random", rate_rps, workers)
        points[label] = {
            "rate_rps": rate_rps,
            "workers_per_executor": workers,
            "offered": affinity["requests"]["offered"],
            "affinity": _point_summary(affinity),
            "random": _point_summary(random_summary),
            "replays_identically": affinity_events == replay_events
            and affinity == replay,
            "num_decisions": len(affinity_events),
        }
    # The failure drill: kill executor 0 mid-burst at the capacity point —
    # the in-flight job must be requeued and the whole log must replay.
    label, rate_rps, workers = OPERATING_POINTS[0]
    failures = ((FAIL_AT_MS, 0),)
    failed, failed_events = run_fleet("affinity", rate_rps, workers, failures)
    failed_replay, failed_replay_events = run_fleet(
        "affinity", rate_rps, workers, failures
    )
    return {
        "fleet_size": NUM_EXECUTORS,
        "slo_ms": SLO_MS,
        "duration_s": DURATION_S,
        "seed": SEED,
        "points": points,
        "failure_drill": {
            "fail_at_ms": FAIL_AT_MS,
            "failed_executor": "executor-0",
            "failures": failed["fleet"]["failures"],
            "requeues": failed["fleet"]["requeues"],
            "goodput_rps": failed["goodput_rps"],
            "slo_attainment": failed["slo_attainment"],
            "replays_identically": failed_events == failed_replay_events
            and failed == failed_replay,
        },
    }


def _format_report(result: dict) -> str:
    lines = [
        "Fleet routing: consistent-hash cache affinity vs random placement",
        f"{result['fleet_size']}-executor fleet, bursty workload, "
        f"slo {result['slo_ms']:.0f} ms, seed {result['seed']}",
        "",
        f"{'point':<10}{'routing':<10}{'goodput':>9}{'attain':>8}"
        f"{'ship MB':>10}{'e2e p95':>9}",
    ]
    for label, point in result["points"].items():
        for routing in ("affinity", "random"):
            summary = point[routing]
            lines.append(
                f"{label:<10}{routing:<10}{summary['goodput_rps']:>9.2f}"
                f"{summary['slo_attainment']:>8.1%}"
                f"{summary['ship_bytes'] / 1e6:>10.1f}"
                f"{summary['e2e_p95_ms']:>9.1f}"
            )
    drill = result["failure_drill"]
    lines += [
        "",
        f"failure drill: executor-0 killed at {drill['fail_at_ms']:.0f} ms — "
        f"{drill['failures']} failure, {drill['requeues']} requeued, "
        f"goodput {drill['goodput_rps']:.2f} rps at "
        f"{drill['slo_attainment']:.1%} attainment",
        "replays identically: "
        + ", ".join(
            f"{label}={point['replays_identically']}"
            for label, point in result["points"].items()
        )
        + f", failure={drill['replays_identically']}",
    ]
    return "\n".join(lines)


def test_cache_aware_routing_beats_random(benchmark, save_report, save_json):
    result = run_once(benchmark, measure_fleet_routing)
    save_report("fleet_routing", _format_report(result))
    save_json("fleet_routing", result)

    capacity = result["points"]["capacity"]
    overload = result["points"]["overload"]

    # Capacity point: affinity concentrates residency keys, so it ships a
    # fraction of random's bytes without giving up any goodput or SLO.
    assert capacity["affinity"]["ship_bytes"] < 0.5 * capacity["random"]["ship_bytes"]
    assert capacity["affinity"]["goodput_rps"] >= capacity["random"]["goodput_rps"]
    assert capacity["affinity"]["slo_attainment"] >= capacity["random"]["slo_attainment"]

    # Overload point: warm hits are capacity now — affinity strictly wins
    # goodput AND ship bytes at equal fleet size.
    assert overload["affinity"]["goodput_rps"] > overload["random"]["goodput_rps"]
    assert overload["affinity"]["ship_bytes"] < overload["random"]["ship_bytes"]

    # Placement actually uses the whole fleet at both points.
    for point in (capacity, overload):
        assert len(point["affinity"]["placements"]) == NUM_EXECUTORS

    # Identical seeds replay identical decision logs — including the run
    # with an injected executor failure and requeue.
    assert capacity["replays_identically"]
    assert overload["replays_identically"]
    drill = result["failure_drill"]
    assert drill["failures"] == 1
    assert drill["requeues"] >= 1  # the in-flight job was re-routed
    assert drill["replays_identically"]
