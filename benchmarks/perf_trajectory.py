"""Commit and diff the perf trajectory of the guard benchmarks.

Benchmark JSONs land in untracked ``benchmarks/results/`` and vanish with
the checkout; this harness snapshots each guard benchmark's payload to a
versioned ``BENCH_<name>.json`` at the repository root so re-anchors can
see the perf history.  Two classes of guard, two contracts:

* **virtual-clock** guards (deterministic simulated time or pure quality
  metrics — machine-independent) are committed *verbatim* and diffed
  exactly: any drift in the committed numbers is a behaviour change and
  fails the diff.
* **hardware** guards (wall-clock timings) are committed together with
  machine metadata and diffed *report-only*: deltas are printed for the
  trajectory record, but numbers measured on different machines are not
  comparable enough to gate on.

Usage (plain python — no pytest needed for the harness itself)::

    # refresh benchmarks/results/ first, e.g.
    #   pytest benchmarks/bench_sched_slo.py --benchmark-only
    python benchmarks/perf_trajectory.py snapshot [name ...]
    python benchmarks/perf_trajectory.py diff [name ...]

``diff`` exits non-zero only when a virtual-clock guard drifted (or a
requested result/baseline is missing).  CI runs the virtual-clock guards
and diffs them on every push; hardware baselines are refreshed manually
when a perf PR moves them.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Guard benchmarks in the trajectory and their diff contract.
#: virtual-clock = machine-independent, diffed exactly;
#: hardware = wall-clock, snapshotted with machine metadata, report-only.
GUARDS: dict[str, str] = {
    "sched_slo": "virtual-clock",
    "fleet_routing": "virtual-clock",
    "store_quality": "virtual-clock",
    "engine_speed": "hardware",
    "exec_residency": "hardware",
    "serve_throughput": "hardware",
    "frame_latency": "hardware",
    "obs_overhead": "hardware",
}

#: Keys whose leaves are wall-clock measurements embedded in an otherwise
#: machine-independent payload.  They are masked out of a virtual-clock
#: guard's exact diff (the deterministic quality/decision numbers still
#: gate) but kept verbatim in the snapshot for the trajectory record.
VOLATILE_KEYS: dict[str, tuple[str, ...]] = {
    "store_quality": ("frames_per_second",),
}


def _mask_volatile(value, volatile: tuple[str, ...]):
    """The JSON tree with every leaf under a volatile key replaced by None."""
    if isinstance(value, dict):
        return {
            key: None if key in volatile else _mask_volatile(inner, volatile)
            for key, inner in value.items()
        }
    if isinstance(value, list):
        return [_mask_volatile(inner, volatile) for inner in value]
    return value


def baseline_path(name: str) -> Path:
    return REPO_ROOT / f"BENCH_{name}.json"


def result_path(name: str) -> Path:
    return RESULTS_DIR / f"{name}.json"


def trace_path(name: str) -> Path:
    return RESULTS_DIR / f"{name}.trace.json"


def _trace_analysis(name: str):
    """(chrome payload, critical-path analysis) for the guard's trace, if any.

    Benchmarks that emit a schema-validated Chrome trace via the
    ``save_trace`` fixture get the trace and its critical-path/stage
    breakdown embedded alongside the snapshot — outside ``payload`` so the
    exact and hardware diffs are unaffected.
    """
    source = trace_path(name)
    if not source.exists():
        return None, None
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs.analysis import analyze, records_from_chrome_trace

    payload = json.loads(source.read_text())
    return payload, analyze(records_from_chrome_trace(payload))


def machine_metadata() -> dict:
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        usable = os.cpu_count() or 1
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable,
    }


def snapshot(names: list[str]) -> int:
    status = 0
    for name in names:
        source = result_path(name)
        if not source.exists():
            print(f"snapshot {name}: no result at {source} — run the benchmark first")
            status = 1
            continue
        kind = GUARDS[name]
        document = {
            "benchmark": name,
            "kind": kind,
            "payload": json.loads(source.read_text()),
        }
        if kind == "hardware":
            document["machine"] = machine_metadata()
        trace_payload, analysis = _trace_analysis(name)
        if analysis is not None:
            document["trace"] = trace_payload
            document["analysis"] = analysis
        target = baseline_path(name)
        target.write_text(
            json.dumps(document, indent=2, sort_keys=True, allow_nan=False) + "\n"
        )
        print(f"snapshot {name}: wrote {target.relative_to(REPO_ROOT)} ({kind})")
    return status


def _numeric_leaves(value, prefix: str = "") -> dict[str, float]:
    """Flatten every numeric leaf of a JSON tree to ``path -> number``."""
    leaves: dict[str, float] = {}
    if isinstance(value, dict):
        for key, inner in value.items():
            leaves.update(_numeric_leaves(inner, f"{prefix}.{key}" if prefix else key))
    elif isinstance(value, list):
        for index, inner in enumerate(value):
            leaves.update(_numeric_leaves(inner, f"{prefix}[{index}]"))
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        leaves[prefix] = float(value)
    return leaves


def _diff_virtual(name: str, baseline: dict, current) -> int:
    volatile = VOLATILE_KEYS.get(name, ())
    masked_baseline = _mask_volatile(baseline["payload"], volatile)
    masked_current = _mask_volatile(current, volatile)
    if masked_baseline == masked_current:
        note = f" (wall-clock {'/'.join(volatile)} leaves excluded)" if volatile else ""
        print(f"diff {name}: virtual-clock payload identical{note}")
        return 0
    expected = _numeric_leaves(masked_baseline)
    actual = _numeric_leaves(masked_current)
    drifted = sorted(
        path
        for path in expected.keys() | actual.keys()
        if expected.get(path) != actual.get(path)
    )
    print(f"diff {name}: VIRTUAL-CLOCK DRIFT — deterministic numbers changed:")
    for path in drifted[:20]:
        print(f"  {path}: baseline={expected.get(path)} current={actual.get(path)}")
    if len(drifted) > 20:
        print(f"  ... and {len(drifted) - 20} more")
    if not drifted:
        print("  (non-numeric fields differ — compare the JSON documents)")
    print(
        "  If intentional, refresh the baseline: "
        f"python benchmarks/perf_trajectory.py snapshot {name}"
    )
    return 1


def _diff_hardware(name: str, baseline: dict, current) -> int:
    expected = _numeric_leaves(baseline["payload"])
    actual = _numeric_leaves(current)
    machine = baseline.get("machine", {})
    print(
        f"diff {name}: hardware guard (report-only; baseline from "
        f"{machine.get('platform', 'unknown machine')}, "
        f"{machine.get('usable_cpus', '?')} usable cpus)"
    )
    deltas = []
    for path in sorted(expected.keys() & actual.keys()):
        before, after = expected[path], actual[path]
        if before == after:
            continue
        rel = (after - before) / abs(before) if before else float("inf")
        deltas.append((abs(rel), path, before, after, rel))
    if not deltas:
        print("  no numeric deltas")
        return 0
    for _, path, before, after, rel in sorted(deltas, reverse=True)[:10]:
        print(f"  {path}: {before:g} -> {after:g} ({rel:+.1%})")
    if len(deltas) > 10:
        print(f"  ... and {len(deltas) - 10} more changed leaves")
    return 0


def diff(names: list[str]) -> int:
    status = 0
    for name in names:
        base = baseline_path(name)
        source = result_path(name)
        if not base.exists():
            print(f"diff {name}: no committed baseline {base.name} — snapshot first")
            status = 1
            continue
        if not source.exists():
            print(f"diff {name}: no result at {source} — run the benchmark first")
            status = 1
            continue
        baseline = json.loads(base.read_text())
        current = json.loads(source.read_text())
        if GUARDS[name] == "virtual-clock":
            status |= _diff_virtual(name, baseline, current)
        else:
            _diff_hardware(name, baseline, current)
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_trajectory",
        description="Snapshot/diff guard-benchmark JSONs against BENCH_<name>.json baselines.",
    )
    parser.add_argument("command", choices=("snapshot", "diff"))
    parser.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="guard benchmarks to process (default: all with a result present "
        f"for snapshot, all with a committed baseline for diff) — one of: "
        f"{', '.join(sorted(GUARDS))}",
    )
    args = parser.parse_args(argv)
    unknown = [name for name in args.names if name not in GUARDS]
    if unknown:
        parser.error(f"unknown guard benchmark(s): {', '.join(unknown)}")
    names = list(args.names)
    if not names:
        if args.command == "snapshot":
            names = [name for name in GUARDS if result_path(name).exists()]
        else:
            names = [name for name in GUARDS if baseline_path(name).exists()]
        if not names:
            print(f"{args.command}: nothing to do (no results/baselines found)")
            return 1
    return snapshot(names) if args.command == "snapshot" else diff(names)


if __name__ == "__main__":
    sys.exit(main())
