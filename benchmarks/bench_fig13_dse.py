"""Figure 13 — design space exploration on the Train scene.

(a) Image-buffer capacity sweep: 128 KB is the sweet spot; very large buffers
    cost more area than they save in runtime (area-normalised throughput
    declines).
(b) Alpha/Blending PE-array size sweep: 8x8 offers the best FPS/mm^2; bigger
    arrays pay quadratic area for sub-linear cycle gains.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments
from repro.eval.reporting import format_table


def test_figure13a_image_buffer_sweep(benchmark, save_report):
    rows = run_once(benchmark, experiments.figure13a)
    report = format_table(
        ["buffer KB", "FPS", "FPS/mm2", "mJ/mm2", "area mm2", "Cmode"],
        [
            (r["buffer_kb"], r["fps"], r["fps_per_mm2"], r["mj_per_mm2"], r["area_mm2"], r["cmode"])
            for r in rows
        ],
        title="Figure 13(a) — image buffer size sweep (Train)",
    )
    save_report("figure13a_image_buffer", report)

    by_size = {r["buffer_kb"]: r for r in rows}
    # The area penalty of an 8 MB buffer outweighs its cycle savings.
    assert by_size[8192]["fps_per_mm2"] < by_size[128]["fps_per_mm2"]
    # Small buffers force Compatibility Mode, large ones do not.
    assert by_size[32]["cmode"]
    assert not by_size[8192]["cmode"]


def test_figure13b_alpha_array_sweep(benchmark, save_report):
    rows = run_once(benchmark, experiments.figure13b)
    report = format_table(
        ["array", "FPS", "FPS/mm2", "mJ/mm2", "area mm2"],
        [(r["array_size"], r["fps"], r["fps_per_mm2"], r["mj_per_mm2"], r["area_mm2"]) for r in rows],
        title="Figure 13(b) — alpha/blending array size sweep (Train)",
    )
    save_report("figure13b_alpha_array", report)

    by_size = {r["array_size"]: r for r in rows}
    # Raw FPS improves from 4x4 to 8x8, but area-normalised throughput peaks
    # at a moderate array size (the paper picks 8x8); very large arrays add
    # area and block-level redundancy without proportional cycle savings.
    assert by_size[8]["fps"] >= by_size[4]["fps"]
    best = max(rows, key=lambda r: r["fps_per_mm2"])
    assert best["array_size"] in (4, 8, 16)
    assert by_size[64]["fps_per_mm2"] < best["fps_per_mm2"]
