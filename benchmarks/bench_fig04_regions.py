"""Figure 4 — effective Gaussian regions vs opacity.

Paper shape: AABB and OBB are opacity-independent, while the alpha-governed
effective region collapses for low-opacity Gaussians (opacity 0.01) and
slightly exceeds the 3-sigma OBB for fully opaque ones.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments
from repro.eval.reporting import format_table


def test_figure4_regions(benchmark, save_report):
    rows = run_once(benchmark, experiments.figure4, opacities=(1.0, 0.5, 0.1, 0.01))
    report = format_table(
        ["opacity", "AABB px", "OBB px", "alpha px"],
        [(r["opacity"], r["aabb"], r["obb"], r["alpha"]) for r in rows],
        title="Figure 4 — single-Gaussian footprint vs opacity",
    )
    save_report("figure04_regions", report)

    by_opacity = {r["opacity"]: r for r in rows}
    assert by_opacity[1.0]["aabb"] == by_opacity[0.01]["aabb"]
    assert by_opacity[1.0]["obb"] == by_opacity[0.01]["obb"]
    assert by_opacity[0.01]["alpha"] < 0.5 * by_opacity[1.0]["alpha"]
