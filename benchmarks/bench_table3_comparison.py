"""Table 3 — comparison with other neural-rendering accelerators (Lego).

Paper shape: 3DGS accelerators (GSCore, GCC) deliver far higher
area-normalised throughput than NeRF accelerators and GPUs, and GCC more
than doubles GSCore's FPS/mm^2.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments, reporting


def test_table3_accelerator_comparison(benchmark, save_report):
    rows = run_once(benchmark, experiments.table3)
    report = reporting.report_table3(rows)
    save_report("table3_comparison", report)

    by_design = {row["design"]: row for row in rows}
    gcc = next(row for name, row in by_design.items() if "GCC" in name)
    gscore = next(row for name, row in by_design.items() if "GSCore" in name)
    metavrain = by_design["MetaVRain (ISSCC'23)"]
    a6000 = by_design["NVIDIA A6000"]

    assert gcc["fps_per_mm2"] > gscore["fps_per_mm2"] > metavrain["fps_per_mm2"]
    assert gcc["fps_per_mm2"] > a6000["fps_per_mm2"]
    assert gcc["area_mm2"] < gscore["area_mm2"]
