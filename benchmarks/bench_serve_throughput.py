"""Render-farm throughput — multiprocessing pool vs sequential fallback.

Not a paper figure: this benchmark guards the serving subsystem's two
contracts on a 16-frame orbit of the default ``train`` preset:

1. *Fidelity* — every farm-rendered frame is bitwise identical to the
   sequential in-process fallback, and the frame at the evaluation azimuth
   is bitwise identical to the single-frame :mod:`repro.eval.runner` render
   of the same camera — statistics counters included.
2. *Throughput* — the 4-worker farm completes the job at least 1.5x faster
   than the sequential path (end-to-end wall time, pool start-up and scene
   shipping included).  Frame-parallel rendering needs hardware parallelism,
   so the speedup assertion requires >= 2 usable CPUs; on single-CPU
   machines the fidelity checks still run and the speedup is reported
   without being enforced.

Run with::

    pytest benchmarks/bench_serve_throughput.py --benchmark-only
"""

from __future__ import annotations

import dataclasses

import numpy as np
from conftest import run_once

from repro.eval.runner import EvalSetup, run_tilewise
from repro.serve.farm import RenderFarm, usable_cpu_count
from repro.serve.trajectories import RenderJob, make_trajectory

NUM_FRAMES = 16
NUM_WORKERS = 4
MIN_SPEEDUP = 1.5


def _stats_mismatches(expected, actual) -> list[str]:
    mismatches = []
    for field in dataclasses.fields(expected):
        a, b = getattr(expected, field.name), getattr(actual, field.name)
        equal = np.array_equal(a, b) if isinstance(a, np.ndarray) else a == b
        if not equal:
            mismatches.append(field.name)
    return mismatches


def measure_farm_throughput(scene_name: str = "train") -> dict:
    """Run the orbit job sequentially and on the farm; compare both ways."""
    job = RenderJob(scene_name, make_trajectory("orbit", num_frames=NUM_FRAMES))

    sequential = RenderFarm(num_workers=0).run(job)
    farm = RenderFarm(num_workers=NUM_WORKERS).run(job)

    frame_mismatches: list[str] = []
    for seq_frame, farm_frame in zip(sequential.frames, farm.frames):
        if not np.array_equal(seq_frame.image, farm_frame.image):
            frame_mismatches.append(f"frame{farm_frame.index}:image")
        frame_mismatches += [
            f"frame{farm_frame.index}:{name}"
            for name in _stats_mismatches(seq_frame.stats, farm_frame.stats)
        ]

    # The orbit's frame 0 sits at the evaluation azimuth (view_index=0), so
    # it must reproduce the runner's memoised single-frame render bit-for-bit.
    single = run_tilewise(EvalSetup(scene_name))
    runner_mismatches = _stats_mismatches(single.stats, farm.frames[0].stats)
    if not np.array_equal(single.image, farm.frames[0].image):
        runner_mismatches.insert(0, "image")

    return {
        "scene": scene_name,
        "num_frames": NUM_FRAMES,
        "num_workers": farm.num_workers,
        "usable_cpus": usable_cpu_count(),
        "sequential_s": sequential.wall_seconds,
        "farm_s": farm.wall_seconds,
        "speedup": sequential.wall_seconds / farm.wall_seconds,
        "sequential_fps": sequential.frames_per_second,
        "farm_fps": farm.frames_per_second,
        "sequential_p50_ms": sequential.p50_ms,
        "sequential_p95_ms": sequential.p95_ms,
        "farm_p50_ms": farm.p50_ms,
        "farm_p95_ms": farm.p95_ms,
        "frame_mismatches": frame_mismatches,
        "runner_mismatches": runner_mismatches,
        "counters_match": sequential.aggregate_counters() == farm.aggregate_counters(),
    }


def _format_report(result: dict) -> str:
    lines = [
        "Render-farm throughput: 4-worker pool vs sequential fallback",
        f"scene={result['scene']} frames={result['num_frames']} "
        f"workers={result['num_workers']} cpus={result['usable_cpus']}",
        "",
        f"{'path':<12}{'wall':>10}{'frames/s':>10}{'p50':>10}{'p95':>10}",
        f"{'sequential':<12}{result['sequential_s']:>9.2f}s"
        f"{result['sequential_fps']:>10.2f}"
        f"{result['sequential_p50_ms']:>8.1f}ms{result['sequential_p95_ms']:>8.1f}ms",
        f"{'farm':<12}{result['farm_s']:>9.2f}s{result['farm_fps']:>10.2f}"
        f"{result['farm_p50_ms']:>8.1f}ms{result['farm_p95_ms']:>8.1f}ms",
        "",
        f"speedup: {result['speedup']:.2f}x",
        f"bitwise identical to sequential: {not result['frame_mismatches']}",
        f"bitwise identical to eval runner: {not result['runner_mismatches']}",
    ]
    return "\n".join(lines)


def test_farm_throughput_and_fidelity(benchmark, save_report, save_json):
    result = run_once(benchmark, measure_farm_throughput)
    save_report("serve_throughput", _format_report(result))
    save_json("serve_throughput", result)

    # Fidelity: farm output is bit-for-bit the sequential output, and the
    # evaluation-azimuth frame is bit-for-bit the runner's single frame.
    assert result["frame_mismatches"] == []
    assert result["runner_mismatches"] == []
    assert result["counters_match"]

    # Throughput: requires real hardware parallelism.
    if result["usable_cpus"] >= 2:
        assert result["speedup"] >= MIN_SPEEDUP, result["speedup"]
