"""Figure 2 — motivation statistics of the standard dataflow.

Regenerates (a) the number of Gaussians per processing phase and (b) the
average number of per-Gaussian loadings during tile-wise rendering, for the
four real-capture scenes.  Paper shape: only a minority of preprocessed
Gaussians are rendered, and each Gaussian is loaded 3.17-6.45 times.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments, reporting


def test_figure2_motivation(benchmark, save_report):
    rows = run_once(benchmark, experiments.figure2)
    report = reporting.report_figure2(rows)
    save_report("figure02_motivation", report)

    for row in rows:
        # The paper's motivation: most preprocessed Gaussians are never used
        # and Gaussians are re-loaded multiple times across tiles.
        assert row["rendered_fraction"] < 0.6
        assert row["avg_loads_per_gaussian"] > 1.5
