"""Table 4 — area and power breakdown of GCC (published silicon numbers).

This is a static table in the reproduction (we cannot re-synthesise the RTL
offline); the benchmark checks internal consistency and renders it.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.eval import experiments, reporting


def test_table4_area_power(benchmark, save_report):
    rows = run_once(benchmark, experiments.table4)
    report = reporting.report_table4(rows)
    save_report("table4_area", report)

    by_component = {row["component"]: row for row in rows}
    compute_total = by_component["Compute Total"]["area_mm2"]
    buffer_total = by_component["Buffer Total"]["area_mm2"]
    gcc_total = by_component["GCC Total"]["area_mm2"]
    gscore_total = by_component["GSCore Total"]["area_mm2"]

    assert compute_total + buffer_total == pytest.approx(gcc_total, abs=0.01)
    assert gcc_total < gscore_total
    assert by_component["GCC Total"]["power_mw"] < by_component["GSCore Total"]["power_mw"]
