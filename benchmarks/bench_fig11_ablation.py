"""Figure 11 — ablation: Gaussian-wise rendering vs adding cross-stage CC.

Paper shape: GW alone beats the baseline; adding CC improves it further,
with the largest CC contribution on the sparse large scene (Drjohnson);
DRAM traffic (3D / 2D / KV classes) shrinks substantially; rendering
computations drop thanks to the alpha-based identifier.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments, reporting


def test_figure11_ablation(benchmark, save_report):
    rows = run_once(benchmark, experiments.figure11)
    report = reporting.report_figure11(rows)
    save_report("figure11_ablation", report)

    for row in rows:
        # GW+CC must not be slower than GW alone, and both beat the baseline
        # on DRAM traffic.
        assert row["speedup_gw_cc"] >= row["speedup_gw"] * 0.95
        assert row["dram_gw"]["total"] <= row["dram_baseline"]["total"]
        assert row["dram_gw_cc"]["total"] <= row["dram_gw"]["total"] * 1.001
        # The baseline has key-value traffic, GCC does not.
        assert row["dram_baseline"]["key_value"] > 0
        assert row["dram_gw_cc"]["key_value"] == 0
        # Alpha-based boundary identification keeps rendering computations at
        # or below the baseline's (within block-granularity rounding: GCC
        # evaluates whole 8x8 blocks, GSCore whole 8x8 subtiles).
        assert row["render_ops_gcc"] <= row["render_ops_baseline"] * 1.15
