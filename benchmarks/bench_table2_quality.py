"""Table 2 — rendering quality of GSCore and GCC against the GPU reference.

Paper shape: PSNR differences below 0.1 dB and identical LPIPS — the GCC
dataflow is visually lossless.  In this reproduction the three pipelines
differ only through bounding-rule fringe pixels, so PSNR is far above any
visibility threshold.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments, reporting


def test_table2_rendering_quality(benchmark, save_report):
    rows = run_once(benchmark, experiments.table2)
    report = reporting.report_table2(rows)
    save_report("table2_quality", report)

    for row in rows:
        assert row["gscore_psnr"] > 35.0
        assert row["gcc_psnr"] > 35.0
        # The offline perceptual proxy is not calibrated to LPIPS values; it
        # is ~0 for identical images and grows toward 1 for unrelated ones.
        assert row["gscore_lpips"] < 0.4
        assert row["gcc_lpips"] < 0.4
