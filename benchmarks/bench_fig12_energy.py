"""Figure 12 — per-frame energy breakdown of GSCore and GCC.

Paper shape: DRAM access dominates both designs; GCC cuts DRAM traffic by
more than half, pays slightly more SRAM energy, and wins on total energy on
every scene.
"""

from __future__ import annotations

from conftest import run_once

from repro.eval import experiments, reporting


def test_figure12_energy_breakdown(benchmark, save_report):
    rows = run_once(benchmark, experiments.figure12)
    report = reporting.report_figure12(rows)
    save_report("figure12_energy", report)

    scenes = {row["scene"] for row in rows}
    for scene in scenes:
        gscore = next(r for r in rows if r["scene"] == scene and r["accelerator"] == "GSCore")
        gcc = next(r for r in rows if r["scene"] == scene and r["accelerator"] == "GCC")
        # DRAM dominates the baseline's energy.
        assert gscore["offchip_mj"] > gscore["onchip_mj"]
        assert gscore["offchip_mj"] > gscore["compute_mj"]
        # GCC cuts off-chip energy by more than half and wins in total.
        assert gcc["offchip_mj"] < 0.5 * gscore["offchip_mj"]
        assert gcc["total_mj"] < gscore["total_mj"]
