"""Shared infrastructure for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at the default
evaluation scale, times it with ``pytest-benchmark`` (single round — these
are experiment drivers, not micro-benchmarks) and writes the formatted result
to ``benchmarks/results/`` so the numbers can be compared against the paper
(see EXPERIMENTS.md).

Run with::

    pytest benchmarks/ --benchmark-only

All experiments render through the vectorized engine
(``RenderConfig(backend="vectorized")``, the default), which produces
statistics counters identical to the reference per-Gaussian/per-block loops
(``backend="reference"``) and images within ``atol=1e-9`` — so every figure
and table is backend-independent.  ``bench_engine_speed.py`` checks both the
equivalence and the >= 5x end-to-end frame speedup of the vectorized engine::

    pytest benchmarks/bench_engine_speed.py --benchmark-only
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where formatted experiment outputs are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_report(results_dir):
    """Return a helper that writes one experiment's text report to disk."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")

    return _save


def _jsonable(value):
    """Coerce a benchmark payload into strict (RFC 8259) JSON values.

    NumPy scalars become Python numbers; non-finite floats (``inf`` PSNR of
    a bitwise-identical tier, ``nan``) become ``null`` — ``json.dumps``
    would otherwise emit the ``Infinity`` literal, which strict parsers
    (``jq``, ``JSON.parse``) reject.
    """
    if isinstance(value, dict):
        return {key: _jsonable(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(inner) for inner in value]
    if isinstance(value, (bool, str, int, type(None))):
        return value
    import numpy as np

    if isinstance(value, np.integer):
        return int(value)
    number = float(value)
    return number if math.isfinite(number) else None


@pytest.fixture(scope="session")
def save_json(results_dir):
    """Return a helper that writes one experiment's machine-readable JSON.

    Written next to the text reports as ``benchmarks/results/<name>.json``
    so the perf trajectory can be tracked across runs by tooling instead of
    scraped out of formatted tables.  The payload is coerced to strict JSON
    first (NumPy scalars to numbers, non-finite floats to ``null``).
    """

    def _save(name: str, payload) -> None:
        path = results_dir / f"{name}.json"
        text = json.dumps(_jsonable(payload), indent=2, sort_keys=True, allow_nan=False)
        path.write_text(text + "\n")

    return _save


@pytest.fixture(scope="session")
def save_trace(results_dir):
    """Return a helper that writes one run's Chrome trace_event JSON.

    Written as ``benchmarks/results/<name>.trace.json`` — loadable in
    Perfetto / ``chrome://tracing`` — so the per-stage latency breakdowns
    in EXPERIMENTS.md can be regenerated from benchmark runs.
    """

    def _save(name: str, payload: dict) -> None:
        path = results_dir / f"{name}.trace.json"
        path.write_text(json.dumps(payload, indent=1) + "\n")

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
