"""GSCore baseline accelerator model (standard two-stage, tile-wise dataflow).

GSCore (Lee et al., ASPLOS 2024) is the state-of-the-art 3DGS inference
accelerator the paper compares against.  Its dataflow is the standard GPU
pipeline: preprocess every Gaussian, build Gaussian-tile key-value pairs,
sort per tile, and render tiles with a 16x16 volume-rendering array assisted
by oriented-bounding-box subtile skipping.  The model here follows the
configuration published in the GCC and GSCore papers (4-way preprocessing,
272 KB SRAM, LPDDR4-3200) so the comparison is dataflow-versus-dataflow on a
matched budget.
"""

from repro.arch.gscore.accelerator import GScoreAccelerator
from repro.arch.gscore.config import GScoreConfig

__all__ = ["GScoreAccelerator", "GScoreConfig"]
