"""Configuration of the GSCore baseline model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.params import DEFAULT_DRAM, EnergyParams, TechnologyParams


@dataclass(frozen=True)
class GScoreConfig:
    """Architectural parameters of the GSCore baseline.

    Defaults follow the published GSCore configuration: four-way culling,
    conversion and SH units (the parallelism the GCC paper says its balanced
    dataflow lets it cut to 2-way/1-way), a 16-element bitonic sorter, a
    16x16-pixel volume rendering unit with 8x8 subtile skipping, 272 KB of
    on-chip SRAM, and an LPDDR4-3200 interface.
    """

    #: Parallel culling-and-conversion lanes (projection parallelism).
    preprocess_units: int = 4
    #: Cycles one lane needs per projected Gaussian.
    projection_cycles_per_gaussian: float = 1.0
    #: Parallel SH evaluation lanes.
    sh_units: int = 4
    #: Cycles per Gaussian per SH lane (16 coefficients per channel).
    sh_cycles_per_gaussian: float = 16.0
    #: Bitonic sorting network width.
    sort_width: int = 16
    #: Tile edge length in pixels.
    tile_size: int = 16
    #: Volume Rendering Unit PE count (alpha/blend lanes).
    vru_pes: int = 256
    #: Fixed per-pair overhead in the VRU (fetch + setup), cycles.
    vru_pair_overhead: float = 2.0
    #: Bytes of the 2D (projected) Gaussian record exchanged with DRAM.
    bytes_2d_gaussian: int = 80
    #: Bytes per Gaussian-tile key-value pair.
    bytes_key_value: int = 8
    #: On-chip SRAM capacity in bytes (272 KB).
    sram_bytes: int = 272 * 1024
    #: Bytes of accumulation state per pixel in the tile buffer.
    bytes_per_pixel: int = 16
    #: DRAM preset name.
    dram: str = DEFAULT_DRAM
    #: Technology (clock) parameters.
    tech: TechnologyParams = field(default_factory=TechnologyParams)
    #: Energy constants.
    energy: EnergyParams = field(default_factory=EnergyParams)

    def __post_init__(self) -> None:
        if self.preprocess_units <= 0 or self.sh_units <= 0:
            raise ValueError("unit counts must be positive")
        if self.vru_pes <= 0:
            raise ValueError("vru_pes must be positive")
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")
