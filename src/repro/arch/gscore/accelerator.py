"""Frame-level simulation of the GSCore baseline accelerator.

The standard dataflow has three phases executed back-to-back for each frame:

1. **Preprocessing** — every 3D Gaussian (59 floats) is fetched from DRAM,
   culled against the frustum, projected to 2D and colour-evaluated; the
   resulting 2D records are written back to DRAM because the on-chip buffers
   cannot hold a whole frame's worth.
2. **Sorting** — Gaussian-tile key-value pairs are generated and depth-sorted
   per tile with a bitonic network (radix-style passes over DRAM-resident
   key-value arrays).
3. **Tile-wise rendering** — for each tile, the overlapping 2D Gaussians are
   re-fetched (once per tile they appear in — the duplicated-loading problem
   of Figure 2b) and alpha-blended by the 16x16 volume-rendering array with
   OBB subtile skipping and per-tile early termination.
"""

from __future__ import annotations

from repro.arch.area import GSCORE_TOTAL_AREA_MM2
from repro.arch.energy import compute_energy_breakdown
from repro.arch.gcc.sort_unit import bitonic_passes
from repro.arch.gscore.config import GScoreConfig
from repro.arch.memory import DramModel
from repro.arch.params import dram_preset
from repro.arch.report import SimulationReport
from repro.arch.units import PipelinedUnit
from repro.gaussians.camera import Camera
from repro.gaussians.model import BYTES_PER_GAUSSIAN, GaussianScene
from repro.gaussians.sh import count_sh_flops
from repro.render.common import RenderConfig
from repro.render.tile_raster import TileWiseResult, render_tilewise

#: Fixed per-frame overhead (configuration load, pipeline fill/drain).
FRAME_OVERHEAD_CYCLES = 2000.0

#: FMA operations per Gaussian in projection (same transform as GCC's Stage II).
PROJECTION_OPS_PER_GAUSSIAN = 120.0
PROJECTION_SFU_PER_GAUSSIAN = 8.0

#: Operations per alpha-evaluated pixel and per blended pixel.
ALPHA_FMA_PER_PIXEL = 4.0
ALPHA_SFU_PER_PIXEL = 1.0
BLEND_FMA_PER_PIXEL = 4.0


class GScoreAccelerator:
    """Analytical model of the GSCore baseline for one rendered frame."""

    def __init__(self, config: GScoreConfig | None = None) -> None:
        self.config = config or GScoreConfig()

    def _render(self, scene: GaussianScene, camera: Camera) -> TileWiseResult:
        """Run the functional tile-wise renderer with GSCore's tile size."""
        render_config = RenderConfig(tile_size=self.config.tile_size, radius_rule="3sigma")
        return render_tilewise(scene, camera, render_config, obb_subtile_skip=True)

    def simulate(
        self,
        scene: GaussianScene,
        camera: Camera,
        render_result: TileWiseResult | None = None,
    ) -> SimulationReport:
        """Simulate one frame; ``render_result`` may be passed to avoid re-rendering."""
        config = self.config
        result = render_result or self._render(scene, camera)
        stats = result.stats

        dram = DramModel(preset=dram_preset(config.dram), tech=config.tech)
        # Phase 1: every 3D Gaussian is streamed in, all 59 floats.
        dram.record("gaussian_3d", stats.num_total * BYTES_PER_GAUSSIAN)
        # Preprocessed 2D Gaussians spilled to DRAM, then re-fetched once per
        # processed Gaussian-tile pair during rendering.
        dram.record("gaussian_2d", stats.num_preprocessed * config.bytes_2d_gaussian)
        dram.record("gaussian_2d", stats.num_pairs_processed * config.bytes_2d_gaussian)
        # Key-value pairs: written after tile assignment, read for sorting and
        # again for rendering.
        dram.record("key_value", stats.num_tile_pairs * config.bytes_key_value * 3)

        # ------------------------------------------------------------------
        # Phase 1: preprocessing cycles.
        # ------------------------------------------------------------------
        cull_unit = PipelinedUnit(
            name="cull", items_per_cycle=float(config.preprocess_units), ops_per_item=6.0
        )
        projection_unit = PipelinedUnit(
            name="projection",
            items_per_cycle=config.preprocess_units / config.projection_cycles_per_gaussian,
            latency_cycles=16,
            ops_per_item=PROJECTION_OPS_PER_GAUSSIAN,
        )
        sh_unit = PipelinedUnit(
            name="sh",
            items_per_cycle=config.sh_units / config.sh_cycles_per_gaussian,
            latency_cycles=8,
            ops_per_item=float(count_sh_flops(1)),
        )
        cull_cycles = cull_unit.process(stats.num_total)
        proj_cycles = projection_unit.process(stats.num_depth_passed)
        sh_cycles = sh_unit.process(stats.num_preprocessed)
        preprocess_compute = cull_cycles + max(proj_cycles, sh_cycles)
        preprocess_dram_bytes = (
            stats.num_total * BYTES_PER_GAUSSIAN
            + stats.num_preprocessed * config.bytes_2d_gaussian
        )
        preprocess_cycles = max(
            preprocess_compute, preprocess_dram_bytes / dram.bytes_per_cycle
        )

        # ------------------------------------------------------------------
        # Phase 2: tile assignment and sorting.
        # ------------------------------------------------------------------
        sorter_cycles_per_element = bitonic_passes(256, config.sort_width) / 256.0
        sort_unit = PipelinedUnit(
            name="sort",
            items_per_cycle=1.0 / max(sorter_cycles_per_element, 1e-9),
            latency_cycles=4,
            ops_per_item=max(sorter_cycles_per_element, 1.0),
        )
        sort_compute = sort_unit.process(stats.num_tile_pairs, batches=max(stats.num_occupied_tiles, 1))
        sort_dram_bytes = stats.num_tile_pairs * config.bytes_key_value * 2
        sort_cycles = max(sort_compute, sort_dram_bytes / dram.bytes_per_cycle)

        # ------------------------------------------------------------------
        # Phase 3: tile-wise rendering.
        # ------------------------------------------------------------------
        vru_alpha = PipelinedUnit(
            name="vru-alpha",
            items_per_cycle=float(config.vru_pes),
            ops_per_item=ALPHA_FMA_PER_PIXEL,
        )
        vru_blend = PipelinedUnit(
            name="vru-blend",
            items_per_cycle=float(config.vru_pes),
            ops_per_item=BLEND_FMA_PER_PIXEL,
        )
        alpha_cycles = vru_alpha.process(stats.alpha_evaluations)
        blend_cycles = vru_blend.process(stats.pixels_blended)
        pair_overhead = stats.num_pairs_processed * config.vru_pair_overhead
        render_compute = alpha_cycles + blend_cycles + pair_overhead
        render_dram_bytes = (
            stats.num_pairs_processed * config.bytes_2d_gaussian
            + stats.num_tile_pairs * config.bytes_key_value
        )
        render_cycles = max(render_compute, render_dram_bytes / dram.bytes_per_cycle)

        total_cycles = (
            preprocess_cycles + sort_cycles + render_cycles + FRAME_OVERHEAD_CYCLES
        )

        # On-chip traffic: staged Gaussian parameters, key-value buffers and
        # the tile-buffer read-modify-write per blended pixel.
        sram_bytes = (
            2 * stats.num_preprocessed * config.bytes_2d_gaussian
            + 2 * stats.num_tile_pairs * config.bytes_key_value
            + stats.alpha_evaluations * 4
            + stats.pixels_blended * config.bytes_per_pixel * 2
        )

        compute_ops = {
            "fma": (
                projection_unit.activity.ops
                + sh_unit.activity.ops
                + vru_alpha.activity.ops
                + vru_blend.activity.ops
            ),
            "sfu": (
                stats.num_depth_passed * PROJECTION_SFU_PER_GAUSSIAN
                + stats.num_preprocessed * 3
                + stats.alpha_evaluations * ALPHA_SFU_PER_PIXEL
            ),
            "cmp": cull_unit.activity.ops + sort_unit.activity.ops,
        }

        frame_time_s = total_cycles / config.tech.clock_hz
        energy = compute_energy_breakdown(
            dram_bytes=dram.traffic.total,
            sram_bytes=sram_bytes,
            compute_ops=compute_ops,
            frame_time_s=frame_time_s,
            energy=config.energy,
            dram=dram.preset,
        )

        stage_cycles = {
            "preprocess": preprocess_cycles,
            "sort": sort_cycles,
            "render": render_cycles,
            "render_compute": render_compute,
            "render_dram": render_dram_bytes / dram.bytes_per_cycle,
        }

        return SimulationReport(
            accelerator="GSCore",
            scene=scene.name,
            clock_hz=config.tech.clock_hz,
            total_cycles=total_cycles,
            stage_cycles=stage_cycles,
            dram_traffic=dram.traffic,
            sram_bytes=sram_bytes,
            compute_ops=compute_ops,
            energy_pj=energy,
            area_mm2=GSCORE_TOTAL_AREA_MM2,
            extra={
                "num_preprocessed": float(stats.num_preprocessed),
                "num_rendered": float(stats.num_rendered),
                "num_tile_pairs": float(stats.num_tile_pairs),
                "num_pairs_processed": float(stats.num_pairs_processed),
                "avg_loads_per_gaussian": stats.avg_loads_per_gaussian,
                "alpha_evaluations": float(stats.alpha_evaluations),
                "pixels_blended": float(stats.pixels_blended),
            },
        )
