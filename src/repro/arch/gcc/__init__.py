"""GCC accelerator model (Section 4 of the paper).

The accelerator is a pipeline of dedicated modules — RCA, Projection Unit,
SH Unit, Sort Unit, Alpha Unit, Blending Unit — fed by a shared buffer
hierarchy and an LPDDR interface.  :class:`~repro.arch.gcc.accelerator.GccAccelerator`
combines the per-module cycle models in this package with the work counts
produced by the functional Gaussian-wise renderer to estimate per-frame
cycles, DRAM traffic and energy.
"""

from repro.arch.gcc.accelerator import GccAccelerator
from repro.arch.gcc.config import GccConfig

__all__ = ["GccAccelerator", "GccConfig"]
