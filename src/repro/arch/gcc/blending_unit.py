"""Blending Unit — Stage IV transmittance update and colour accumulation.

Section 4.5: once a block's alphas pass the transparency check, an ``n x n``
FMA array updates per-pixel transmittance and accumulates the RGB colour
(Equation 4), enforcing front-to-back order at block granularity and
maintaining the transmittance mask that disables saturated blocks for
subsequent Gaussians.  Results live in the Image Buffer; each blended block
costs one read-modify-write of its accumulation state.
"""

from __future__ import annotations

import math

from repro.arch.gcc.config import GccConfig
from repro.arch.units import PipelinedUnit

#: FMA operations per blended pixel: transmittance update (1) plus three
#: colour-channel accumulations (3).
BLEND_FMA_PER_PIXEL = 4.0


def make_blending_unit(config: GccConfig, block_size: int | None = None) -> PipelinedUnit:
    """The Blending Unit: one block pass per cycle at the PE-array size."""
    block = block_size or config.alpha_array_size
    passes_per_block = math.ceil((block * block) / config.alpha_array_pes)
    return PipelinedUnit(
        name="blend",
        items_per_cycle=1.0 / passes_per_block,
        latency_cycles=4,
        ops_per_item=block * block * BLEND_FMA_PER_PIXEL,
    )


def blending_cycles(
    config: GccConfig,
    blocks_blended: int,
    block_size: int | None = None,
) -> tuple[float, dict[str, float]]:
    """Cycles and ops for blending ``blocks_blended`` block passes."""
    unit = make_blending_unit(config, block_size)
    cycles = unit.process(blocks_blended)
    detail = {"blend": cycles, "blend_fma_ops": unit.activity.ops}
    return cycles, detail


def image_buffer_traffic(
    blocks_blended: int,
    block_size: int,
    bytes_per_pixel: int,
) -> int:
    """Image Buffer bytes moved: read-modify-write of each blended block."""
    return blocks_blended * block_size * block_size * bytes_per_pixel * 2
