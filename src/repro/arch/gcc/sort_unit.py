"""Sort Unit — intra-group bitonic sorting (Stage III).

GCC reuses GSCore's 16-element bitonic sorting network, but only to order
Gaussians *within* a depth group (at most 256 elements) rather than to sort
per-tile lists for every tile.  A bitonic merge network of width ``w``
consumes ``n / w`` passes per ``log^2`` stage; the constant below folds the
stage count for 256-element groups into a per-element cost.
"""

from __future__ import annotations

import math

from repro.arch.gcc.config import GccConfig
from repro.arch.units import PipelinedUnit


def bitonic_passes(group_size: int, width: int) -> float:
    """Network passes needed to sort ``group_size`` elements with a ``width`` sorter."""
    if group_size <= 1:
        return 0.0
    stages = math.ceil(math.log2(group_size))
    total_stage_passes = stages * (stages + 1) / 2
    elements_per_pass = max(width, 1)
    return total_stage_passes * group_size / elements_per_pass


def make_sort_unit(config: GccConfig) -> PipelinedUnit:
    """The bitonic sorter modelled as per-element throughput for full groups."""
    per_element_cycles = bitonic_passes(config.group_capacity, config.sort_width) / max(
        config.group_capacity, 1
    )
    return PipelinedUnit(
        name="sort",
        items_per_cycle=1.0 / max(per_element_cycles, 1e-9),
        latency_cycles=4,
        ops_per_item=max(per_element_cycles, 1.0),
    )


def sort_cycles(config: GccConfig, num_elements: int, num_groups: int) -> tuple[float, dict[str, float]]:
    """Cycles for sorting ``num_elements`` across ``num_groups`` groups."""
    unit = make_sort_unit(config)
    cycles = unit.process(num_elements, batches=max(num_groups, 1))
    detail = {"sort": cycles, "sort_cmp_ops": unit.activity.ops}
    return cycles, detail
