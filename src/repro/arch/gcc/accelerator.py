"""Frame-level simulation of the GCC accelerator.

:class:`GccAccelerator` combines the functional Gaussian-wise renderer (which
establishes *what* work a frame requires: Gaussians projected, SH colours
evaluated, blocks traversed, pixels blended) with the per-module cycle models
in this package (which establish *how long* that work takes on the Table-4
configuration) and the DRAM/energy models.

The frame latency is::

    T_frame = T_stage1 + max(T_compute_bottleneck, T_dram_stream) + overhead

Stage I (depth computation + grouping) is a standalone pass at the start of
each frame (Section 4.2); the remaining stages are pipelined Gaussian-wise,
so the slower of the compute bottleneck and the DRAM stream determines their
duration — the structure that produces the memory-bound/compute-bound
crossover of Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.area import GCC_TOTAL_AREA_MM2, scaled_alpha_blend_area, scaled_image_buffer_area
from repro.arch.energy import compute_energy_breakdown
from repro.arch.gcc.alpha_unit import ALPHA_SFU_PER_PIXEL, alpha_cycles
from repro.arch.gcc.blending_unit import blending_cycles, image_buffer_traffic
from repro.arch.gcc.cmode import CmodePlan, plan_cmode
from repro.arch.gcc.config import GccConfig
from repro.arch.gcc.projection_unit import PROJECTION_SFU_PER_GAUSSIAN, projection_cycles
from repro.arch.gcc.rca import grouping_cycles
from repro.arch.gcc.sh_unit import sh_cycles
from repro.arch.gcc.sort_unit import sort_cycles
from repro.arch.memory import DramModel, TrafficCounter
from repro.arch.params import dram_preset
from repro.arch.report import SimulationReport
from repro.gaussians.camera import Camera
from repro.gaussians.model import BYTES_GEOMETRY, BYTES_MEAN, BYTES_SH, GaussianScene
from repro.render.common import RenderConfig
from repro.render.gaussian_raster import GaussianWiseResult, render_gaussianwise
from repro.render.preprocess import project_scene

#: Fixed per-frame control/drain overhead in cycles (frame setup, pipeline
#: fill and final Image Buffer read-out).
FRAME_OVERHEAD_CYCLES = 2000.0

#: Bytes per Gaussian of grouping metadata spilled to DRAM (depth + ID).
GROUPING_RECORD_BYTES = 8


@dataclass
class GccFrameWork:
    """Work counts extracted from the functional render, after Cmode scaling."""

    num_total: int
    num_stage1_passed: int
    num_projected: int
    num_sh_evaluated: int
    num_groups: int
    sort_elements: int
    blocks_visited: int
    blocks_skipped_tmask: int
    blocks_blended: int
    pixels_blended: int
    alpha_evaluations: int
    cmode: CmodePlan


class GccAccelerator:
    """Analytical model of the GCC accelerator for one rendered frame."""

    def __init__(self, config: GccConfig | None = None) -> None:
        self.config = config or GccConfig()

    # ------------------------------------------------------------------
    # Work extraction
    # ------------------------------------------------------------------
    def _render(self, scene: GaussianScene, camera: Camera) -> GaussianWiseResult:
        """Run the functional Gaussian-wise renderer with this configuration."""
        render_config = RenderConfig(
            radius_rule="omega-sigma",
            block_size=self.config.alpha_array_size,
            group_capacity=self.config.group_capacity,
        )
        boundary = "alpha" if self.config.enable_alpha_boundary else "aabb"
        return render_gaussianwise(
            scene,
            camera,
            render_config,
            enable_cc=self.config.enable_cc,
            boundary_mode=boundary,
        )

    def _frame_work(
        self,
        scene: GaussianScene,
        camera: Camera,
        result: GaussianWiseResult,
    ) -> GccFrameWork:
        """Derive hardware work counts (including Cmode duplication) for a frame."""
        stats = result.stats
        cmode = plan_cmode(
            project_scene(scene, camera, RenderConfig(radius_rule="omega-sigma")),
            camera.width,
            camera.height,
            self.config.max_resident_pixels(),
            self.config.cmode_subview,
        )
        duplication = cmode.duplication_factor if cmode.enabled else 1.0
        return GccFrameWork(
            num_total=stats.num_total,
            num_stage1_passed=stats.num_stage1_passed,
            num_projected=int(round(stats.num_projected * duplication)),
            num_sh_evaluated=int(round(stats.num_sh_evaluated * duplication)),
            num_groups=max(stats.num_groups_processed, 1),
            sort_elements=int(round(stats.sort_elements * duplication)),
            blocks_visited=stats.blocks_visited,
            blocks_skipped_tmask=stats.blocks_skipped_tmask,
            blocks_blended=stats.blocks_evaluated,
            pixels_blended=stats.pixels_blended,
            alpha_evaluations=stats.alpha_evaluations,
            cmode=cmode,
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        scene: GaussianScene,
        camera: Camera,
        render_result: GaussianWiseResult | None = None,
    ) -> SimulationReport:
        """Simulate one frame; ``render_result`` may be passed to avoid re-rendering."""
        config = self.config
        result = render_result or self._render(scene, camera)
        work = self._frame_work(scene, camera, result)

        dram = DramModel(preset=dram_preset(config.dram), tech=config.tech)
        dram.record("gaussian_3d", work.num_total * BYTES_MEAN)
        dram.record("gaussian_3d", work.num_projected * BYTES_GEOMETRY)
        dram.record("gaussian_3d", work.num_sh_evaluated * BYTES_SH)
        dram.record("grouping", work.num_stage1_passed * GROUPING_RECORD_BYTES * 2)

        # Stage I: standalone grouping pass.
        stage1_compute, stage1_detail = grouping_cycles(
            config, work.num_total, work.num_stage1_passed
        )
        stage1_dram_bytes = work.num_total * BYTES_MEAN + (
            work.num_stage1_passed * GROUPING_RECORD_BYTES * 2
        )
        stage1_dram = stage1_dram_bytes / dram.bytes_per_cycle
        stage1_cycles = max(stage1_compute, stage1_dram)

        # Stages II-IV: pipelined Gaussian-wise processing.
        proj_cycles, proj_detail = projection_cycles(config, work.num_projected)
        sh_cy, sh_detail = sh_cycles(config, work.num_sh_evaluated)
        sort_cy, sort_detail = sort_cycles(config, work.sort_elements, work.num_groups)
        # Blocks whose transmittance mask is already saturated never enter the
        # PE array (the status map marks them pruned), so only the remaining
        # block passes are charged to the Alpha Unit.
        alpha_block_passes = max(work.blocks_visited - work.blocks_skipped_tmask, 0)
        alpha_cy, alpha_detail = alpha_cycles(
            config, alpha_block_passes, work.num_sh_evaluated, config.alpha_array_size
        )
        blend_cy, blend_detail = blending_cycles(
            config, work.blocks_blended, config.alpha_array_size
        )
        pipeline_dram_bytes = (
            work.num_projected * BYTES_GEOMETRY + work.num_sh_evaluated * BYTES_SH
        )
        pipeline_dram = pipeline_dram_bytes / dram.bytes_per_cycle
        compute_bottleneck = max(proj_cycles, sh_cy, sort_cy, alpha_cy, blend_cy)
        pipeline_cycles = max(compute_bottleneck, pipeline_dram)

        total_cycles = stage1_cycles + pipeline_cycles + FRAME_OVERHEAD_CYCLES

        # On-chip traffic.
        block_px = config.alpha_array_size * config.alpha_array_size
        sram_bytes = (
            # Shared + SH buffers: parameters staged on-chip (write + read).
            2 * (work.num_projected * BYTES_GEOMETRY + work.num_sh_evaluated * BYTES_SH)
            # Sorted buffer: depth/ID records.
            + 2 * work.sort_elements * GROUPING_RECORD_BYTES
            # Image buffer: read-modify-write per blended block.
            + image_buffer_traffic(
                work.blocks_blended, config.alpha_array_size, config.bytes_per_pixel
            )
        )

        compute_ops = {
            "fma": (
                stage1_detail["depth_mvm_ops"]
                + proj_detail["projection_fma_ops"]
                + sh_detail["sh_fma_ops"]
                + alpha_detail["alpha_fma_ops"]
                + blend_detail["blend_fma_ops"]
            ),
            "sfu": (
                proj_detail["projection_sfu_ops"]
                + sh_detail["sh_sfu_ops"]
                + work.alpha_evaluations * ALPHA_SFU_PER_PIXEL
            ),
            "cmp": stage1_detail["rca_ops"] + sort_detail["sort_cmp_ops"],
        }

        frame_time_s = total_cycles / config.tech.clock_hz
        energy = compute_energy_breakdown(
            dram_bytes=dram.traffic.total,
            sram_bytes=sram_bytes,
            compute_ops=compute_ops,
            frame_time_s=frame_time_s,
            energy=config.energy,
            dram=dram.preset,
        )

        stage_cycles = {
            "stage1_grouping": stage1_cycles,
            "projection": proj_cycles,
            "sh": sh_cy,
            "sort": sort_cy,
            "alpha": alpha_cy,
            "blend": blend_cy,
            "dram_stream": pipeline_dram,
            "pipeline": pipeline_cycles,
        }

        area = self.effective_area_mm2()
        report = SimulationReport(
            accelerator="GCC",
            scene=scene.name,
            clock_hz=config.tech.clock_hz,
            total_cycles=total_cycles,
            stage_cycles=stage_cycles,
            dram_traffic=dram.traffic,
            sram_bytes=sram_bytes,
            compute_ops=compute_ops,
            energy_pj=energy,
            area_mm2=area,
            extra={
                "cmode_enabled": float(work.cmode.enabled),
                "cmode_duplication": work.cmode.duplication_factor,
                "num_projected": float(work.num_projected),
                "num_sh_evaluated": float(work.num_sh_evaluated),
                "alpha_evaluations": float(work.alpha_evaluations),
                "pixels_blended": float(work.pixels_blended),
                "blocks_visited": float(work.blocks_visited),
                "num_rendered": float(result.stats.num_rendered),
            },
        )
        return report

    def effective_area_mm2(self) -> float:
        """Total area of this configuration.

        The default configuration returns the paper's 2.711 mm^2; non-default
        image-buffer or PE-array sizes scale the respective components (used
        by the Figure 13 design-space exploration).
        """
        area = GCC_TOTAL_AREA_MM2
        default = GccConfig()
        if self.config.image_buffer_bytes != default.image_buffer_bytes:
            area += scaled_image_buffer_area(self.config.image_buffer_bytes) - 0.872
        if self.config.alpha_array_size != default.alpha_array_size:
            area += scaled_alpha_blend_area(self.config.alpha_array_size) - (0.576 + 0.382)
        return area


@dataclass
class TrafficSummary:
    """Helper view of the DRAM traffic split used in Figure 11(b)."""

    gaussian_3d: int
    gaussian_2d: int
    key_value: int

    @classmethod
    def from_counter(cls, counter: TrafficCounter) -> "TrafficSummary":
        return cls(
            gaussian_3d=counter.gaussian_3d + counter.grouping,
            gaussian_2d=counter.gaussian_2d + counter.framebuffer,
            key_value=counter.key_value,
        )

    @property
    def total(self) -> int:
        return self.gaussian_3d + self.gaussian_2d + self.key_value
