"""Compatibility Mode (Cmode) — sub-view scheduling for constrained buffers.

Sections 4.1 and 4.6: when the target image's accumulation state exceeds the
Image Buffer capacity, the frame is partitioned into sub-views (128 x 128 by
default) rendered one after another.  Gaussians are additionally binned by
screen position so each sub-view only touches the Gaussians overlapping it —
but a Gaussian straddling several sub-views is then processed once per
sub-view, which is the redundancy quantified in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.render.preprocess import ProjectedGaussians, tile_range


@dataclass(frozen=True)
class CmodePlan:
    """Outcome of Cmode planning for one frame."""

    #: Whether Compatibility Mode is needed at all.
    enabled: bool
    #: Sub-view edge length in pixels.
    subview: int
    #: Number of sub-views the frame is split into.
    num_subviews: int
    #: Total Gaussian rendering invocations across sub-views (a Gaussian
    #: overlapping k sub-views is invoked k times).
    rendering_invocations: int
    #: Distinct Gaussians that overlap at least one sub-view.
    unique_gaussians: int

    @property
    def duplication_factor(self) -> float:
        """Average invocations per distinct Gaussian (1.0 when Cmode is off)."""
        if self.unique_gaussians == 0:
            return 1.0
        return self.rendering_invocations / self.unique_gaussians


def subview_invocations(
    projected: ProjectedGaussians,
    width: int,
    height: int,
    subview: int,
) -> tuple[int, int]:
    """Count (rendering invocations, unique Gaussians) for a sub-view size.

    This reuses the tile-range machinery with the sub-view as the "tile":
    the number of sub-views a Gaussian's bounding box overlaps is exactly the
    number of times Cmode will re-process it.
    """
    if projected.num_visible == 0:
        return 0, 0
    tx_min, tx_max, ty_min, ty_max = tile_range(
        projected.means2d, projected.radii, width, height, subview
    )
    counts = (tx_max - tx_min) * (ty_max - ty_min)
    invocations = int(counts.sum())
    unique = int(np.count_nonzero(counts > 0))
    return invocations, unique


def plan_cmode(
    projected: ProjectedGaussians,
    width: int,
    height: int,
    max_resident_pixels: int,
    subview: int,
) -> CmodePlan:
    """Decide whether Cmode is needed and quantify its duplication overhead."""
    if width * height <= max_resident_pixels:
        unique = projected.num_visible
        return CmodePlan(
            enabled=False,
            subview=subview,
            num_subviews=1,
            rendering_invocations=unique,
            unique_gaussians=unique,
        )
    invocations, unique = subview_invocations(projected, width, height, subview)
    tiles_x = (width + subview - 1) // subview
    tiles_y = (height + subview - 1) // subview
    return CmodePlan(
        enabled=True,
        subview=subview,
        num_subviews=tiles_x * tiles_y,
        rendering_invocations=invocations,
        unique_gaussians=unique,
    )
