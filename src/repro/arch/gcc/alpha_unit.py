"""Alpha Unit — Stage IV alpha computation with runtime boundary identification.

Section 4.4: the screen is divided into ``n x n`` pixel blocks and an
``n x n`` PE array evaluates one block's alphas per pass, using a 16-segment
piecewise-linear EXP lookup table in fixed point.  The runtime identifier
controller walks blocks outward from the Gaussian's centre block, prunes
directions whose boundary alphas all fall below 1/255, and consults the
transmittance mask to skip blocks that have already saturated.  Status maps
and traversal queues for up to 16 Gaussians are preloaded so the 14-cycle
per-Gaussian latency overlaps with useful work.
"""

from __future__ import annotations

import math

from repro.arch.gcc.config import GccConfig
from repro.arch.units import PipelinedUnit

#: Operations per pixel for one alpha evaluation: Mahalanobis quadratic form
#: (3 multiplies + 2 adds folded into FMAs) plus the EXP LUT interpolation.
ALPHA_FMA_PER_PIXEL = 4.0
ALPHA_SFU_PER_PIXEL = 1.0


def make_alpha_unit(config: GccConfig, block_size: int | None = None) -> PipelinedUnit:
    """The Alpha Unit: throughput is one block pass per cycle.

    When the renderer's block size differs from the PE-array size (design
    space exploration), a block needs ``ceil(block_px / array_pes)`` passes.
    """
    block = block_size or config.alpha_array_size
    passes_per_block = math.ceil((block * block) / config.alpha_array_pes)
    return PipelinedUnit(
        name="alpha",
        items_per_cycle=1.0 / passes_per_block,
        latency_cycles=config.alpha_gaussian_latency,
        ops_per_item=block * block * ALPHA_FMA_PER_PIXEL,
    )


def alpha_cycles(
    config: GccConfig,
    blocks_visited: int,
    num_gaussians: int,
    block_size: int | None = None,
) -> tuple[float, dict[str, float]]:
    """Cycles for alpha evaluation over ``blocks_visited`` block passes.

    The per-Gaussian setup latency is hidden by the 16-deep preload buffer,
    so only the fraction of Gaussians exceeding the preload depth pays it.
    """
    unit = make_alpha_unit(config, block_size)
    exposed_setups = max(num_gaussians // max(config.alpha_preload_depth, 1), 1)
    cycles = unit.process(blocks_visited, batches=exposed_setups)
    block = block_size or config.alpha_array_size
    detail = {
        "alpha": cycles,
        "alpha_fma_ops": unit.activity.ops,
        "alpha_sfu_ops": blocks_visited * block * block * ALPHA_SFU_PER_PIXEL,
    }
    return cycles, detail
