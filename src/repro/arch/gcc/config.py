"""Configuration of the GCC accelerator model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.params import DEFAULT_DRAM, EnergyParams, TechnologyParams


@dataclass(frozen=True)
class GccConfig:
    """Architectural parameters of the GCC accelerator.

    Defaults reproduce the configuration of Table 4: two projection units,
    one SH unit, a 16-element bitonic sorter, an 8x8 alpha/blending PE array,
    a 128 KB image buffer (enough for a 128x128 FP32 RGBA sub-view at half
    precision accumulation; full frames larger than that trigger
    Compatibility Mode), and an LPDDR4-3200 memory interface.
    """

    #: Depth-grouping comparator lanes (RCA instances).
    rca_units: int = 4
    #: Gaussians compared per RCA lane per cycle.
    rca_throughput_per_unit: float = 2.0
    #: Shared-MVM lanes used for Stage I depth computation.
    depth_mvm_units: int = 4
    #: Projection Unit instances (Stage II parallelism; the paper uses 2).
    projection_units: int = 2
    #: Cycles one Projection Unit needs per Gaussian (pipelined: 1/cycle).
    projection_cycles_per_gaussian: float = 1.0
    #: SH Unit instances (the paper uses 1, one SHE per colour channel).
    sh_units: int = 1
    #: Cycles the SH Unit needs per Gaussian (16 coefficients per channel).
    sh_cycles_per_gaussian: float = 16.0
    #: Width of the bitonic sorting network.
    sort_width: int = 16
    #: Edge length of the Alpha/Blending PE array (n x n PEs, paper n = 8).
    alpha_array_size: int = 8
    #: Per-Gaussian latency of the Alpha Unit front-end (cycles).
    alpha_gaussian_latency: int = 14
    #: Maximum Gaussians whose status map / queue are preloaded.
    alpha_preload_depth: int = 16
    #: Image-buffer capacity in bytes (Table 4: 4 x 32 KB banks).
    image_buffer_bytes: int = 128 * 1024
    #: Bytes of accumulation state per pixel (RGB + transmittance, FP32).
    bytes_per_pixel: int = 16
    #: Sub-view edge length used when Compatibility Mode engages.
    cmode_subview: int = 128
    #: Depth-group capacity (N = 256 in the paper).
    group_capacity: int = 256
    #: DRAM preset name (see :data:`repro.arch.params.DRAM_PRESETS`).
    dram: str = DEFAULT_DRAM
    #: Enable cross-stage conditional processing (disable for the GW-only
    #: ablation of Figure 11).
    enable_cc: bool = True
    #: Enable alpha-based boundary identification (disable to fall back to
    #: bounding-box block coverage, the Figure 11c computation ablation).
    enable_alpha_boundary: bool = True
    #: Technology (clock) parameters.
    tech: TechnologyParams = field(default_factory=TechnologyParams)
    #: Energy constants.
    energy: EnergyParams = field(default_factory=EnergyParams)

    def __post_init__(self) -> None:
        if self.alpha_array_size <= 0:
            raise ValueError("alpha_array_size must be positive")
        if self.image_buffer_bytes <= 0:
            raise ValueError("image_buffer_bytes must be positive")
        if self.projection_units <= 0 or self.sh_units <= 0:
            raise ValueError("unit counts must be positive")
        if self.cmode_subview <= 0:
            raise ValueError("cmode_subview must be positive")

    @property
    def alpha_array_pes(self) -> int:
        """Number of PEs in the Alpha (and Blending) array."""
        return self.alpha_array_size * self.alpha_array_size

    def max_resident_pixels(self) -> int:
        """Largest pixel count whose accumulation state fits the image buffer."""
        return self.image_buffer_bytes // self.bytes_per_pixel
