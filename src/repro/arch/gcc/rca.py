"""Reconfigurable Comparator Array (RCA) — Stage I grouping hardware.

Section 4.2: at the start of each frame the shared MVM lanes compute every
Gaussian's view-space depth, and the RCA bins the surviving Gaussians into
coarse depth groups with a cascaded comparator/adder tree, recursively
subdividing bins larger than ``N`` (256).  The depth values and sorted IDs
are spilled back to DRAM through the shared buffer for reuse by the
rendering pipeline.
"""

from __future__ import annotations

from repro.arch.gcc.config import GccConfig
from repro.arch.units import PipelinedUnit
from repro.render.grouping import grouping_comparison_count


def make_depth_mvm(config: GccConfig) -> PipelinedUnit:
    """The Stage-I reuse of the shared matrix-vector multipliers.

    Each lane produces one depth (a 4-wide dot product) per cycle; the paper
    instantiates four lanes for this phase.
    """
    return PipelinedUnit(
        name="depth-mvm",
        items_per_cycle=float(config.depth_mvm_units),
        latency_cycles=4,
        ops_per_item=4.0,  # one 4-element dot product per Gaussian
    )


def make_rca(config: GccConfig) -> PipelinedUnit:
    """The comparator array performing coarse binning and subdivision."""
    return PipelinedUnit(
        name="rca",
        items_per_cycle=config.rca_units * config.rca_throughput_per_unit,
        latency_cycles=8,
        ops_per_item=2.0,  # comparator + adder-tree update per Gaussian
    )


def grouping_cycles(
    config: GccConfig,
    num_total: int,
    num_passed: int,
    num_coarse_bins: int = 64,
) -> tuple[float, dict[str, float]]:
    """Cycles for the whole Stage-I pass, plus per-unit detail.

    ``num_total`` Gaussians have their depth computed; ``num_passed`` survive
    the near-plane pivot and go through binning.  The two units operate
    back-to-back within the stage, so their cycles add.
    """
    mvm = make_depth_mvm(config)
    rca = make_rca(config)
    mvm_cycles = mvm.process(num_total)
    comparisons = grouping_comparison_count(
        num_passed, num_coarse_bins=num_coarse_bins, capacity=config.group_capacity
    )
    rca_cycles = rca.process(comparisons)
    detail = {
        "depth_mvm": mvm_cycles,
        "rca": rca_cycles,
        "depth_mvm_ops": mvm.activity.ops,
        "rca_ops": rca.activity.ops,
    }
    return mvm_cycles + rca_cycles, detail
