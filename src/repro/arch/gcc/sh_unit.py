"""Spherical Harmonics Unit — Stage III colour evaluation hardware.

Section 4.1/4.3: one SH Unit containing a Spherical Harmonics Element per
colour channel evaluates the degree-3 expansion (16 coefficients per
channel).  The view-direction normalisation reuses the fused divide/sqrt
design of the PPU.  Under cross-stage conditional processing the unit is
only activated for Gaussians whose footprint still overlaps unsaturated
pixels, which is what lets GCC provision a single unit where GSCore needs
four-way parallelism.
"""

from __future__ import annotations

from repro.arch.gcc.config import GccConfig
from repro.arch.units import PipelinedUnit
from repro.gaussians.sh import count_sh_flops


def make_sh_unit(config: GccConfig) -> PipelinedUnit:
    """The SH Unit at the configured parallelism."""
    throughput = config.sh_units / config.sh_cycles_per_gaussian
    return PipelinedUnit(
        name="sh",
        items_per_cycle=throughput,
        latency_cycles=8,
        ops_per_item=float(count_sh_flops(1)),
    )


def sh_cycles(config: GccConfig, num_evaluated: int) -> tuple[float, dict[str, float]]:
    """Cycles for evaluating SH colour of ``num_evaluated`` Gaussians."""
    unit = make_sh_unit(config)
    cycles = unit.process(num_evaluated)
    detail = {
        "sh": cycles,
        "sh_fma_ops": unit.activity.ops,
        "sh_sfu_ops": float(num_evaluated * 3),  # direction normalisation
    }
    return cycles, detail
