"""Projection Unit — Stage II hardware (PPU + RU + SCU + shared MVM).

Section 4.3: the Position Projection Unit (PPU) transforms each Gaussian's
mean into screen space (three parallel MVM lanes plus a four-cycle iterative
fused divide/sqrt unit, interleaved so one Gaussian issues per cycle); the
Reconstruction Unit (RU) rebuilds the covariance from scale and quaternion
and forms the Jacobian; the shared MVM chains the matrix products of
Equation 1; and the Screen Culling Unit (SCU) applies the omega-sigma law to
prune off-screen Gaussians.
"""

from __future__ import annotations

from repro.arch.gcc.config import GccConfig
from repro.arch.units import PipelinedUnit

#: Approximate FMA operations per Gaussian for the full Stage-II transform:
#: view transform (9), perspective + NDC (8), covariance reconstruction
#: R S S^T R^T (~45), Jacobian build (6), J W Sigma W^T J^T (~40), 2x2
#: inversion + eigenvalues (~12).
PROJECTION_OPS_PER_GAUSSIAN = 120.0

#: Special-function operations per Gaussian (divide / sqrt iterations).
PROJECTION_SFU_PER_GAUSSIAN = 8.0


def make_projection_unit(config: GccConfig) -> PipelinedUnit:
    """The combined Stage-II pipeline at the configured parallelism."""
    throughput = config.projection_units / config.projection_cycles_per_gaussian
    return PipelinedUnit(
        name="projection",
        items_per_cycle=throughput,
        latency_cycles=16,
        ops_per_item=PROJECTION_OPS_PER_GAUSSIAN,
    )


def projection_cycles(config: GccConfig, num_projected: int) -> tuple[float, dict[str, float]]:
    """Cycles for projecting ``num_projected`` Gaussians, plus op counts."""
    unit = make_projection_unit(config)
    cycles = unit.process(num_projected)
    detail = {
        "projection": cycles,
        "projection_fma_ops": unit.activity.ops,
        "projection_sfu_ops": num_projected * PROJECTION_SFU_PER_GAUSSIAN,
    }
    return cycles, detail
