"""Published area and power breakdowns (Table 4 of the paper).

The paper implements GCC in SystemVerilog and synthesises it with a
commercial 28 nm library; the resulting module-level area/power are published
in Table 4, alongside GSCore's totals.  We reproduce that table verbatim here
and use the totals for area-normalised throughput/energy (Figures 10 and 13
and Table 3), because those silicon numbers cannot be regenerated without the
proprietary toolchain — see DESIGN.md for the substitution note.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModuleArea:
    """Area/power/configuration of one hardware module."""

    name: str
    area_mm2: float
    power_mw: float
    configuration: str


#: GCC compute-unit breakdown (Table 4, upper half).
GCC_COMPUTE_MODULES: tuple[ModuleArea, ...] = (
    ModuleArea("RCA", 0.010, 2.0, "4 units"),
    ModuleArea("Projection Unit", 0.358, 147.0, "2 units"),
    ModuleArea("SH Unit", 0.339, 141.0, "1 units"),
    ModuleArea("Sorting Unit", 0.010, 11.0, "1 units"),
    ModuleArea("Alpha Unit", 0.576, 266.0, "64 PEs"),
    ModuleArea("Blending Unit", 0.382, 172.0, "64 PEs"),
)

#: GCC on-chip buffer breakdown (Table 4, lower half).
GCC_BUFFER_MODULES: tuple[ModuleArea, ...] = (
    ModuleArea("Shared Buffer", 0.019, 3.0, "2 x 1 x 6 KB"),
    ModuleArea("SH Buffer", 0.116, 10.0, "2 x 3 x 8 KB"),
    ModuleArea("Sorted Buffer", 0.029, 1.0, "2 x 1 x 1 KB"),
    ModuleArea("Image Buffer", 0.872, 37.0, "1 x 4 x 32 KB"),
)

#: GCC totals (Table 4).
GCC_TOTAL_AREA_MM2 = 2.711
GCC_TOTAL_POWER_MW = 790.0
GCC_COMPUTE_AREA_MM2 = 1.675
GCC_COMPUTE_POWER_MW = 739.0
GCC_BUFFER_AREA_MM2 = 1.036
GCC_BUFFER_POWER_MW = 51.0
GCC_SRAM_KB = 190

#: GSCore totals (Table 4 / Table 3).
GSCORE_TOTAL_AREA_MM2 = 3.95
GSCORE_TOTAL_POWER_MW = 870.0
GSCORE_COMPUTE_AREA_MM2 = 2.70
GSCORE_COMPUTE_POWER_MW = 830.0
GSCORE_BUFFER_AREA_MM2 = 1.25
GSCORE_BUFFER_POWER_MW = 40.0
GSCORE_SRAM_KB = 272


def gcc_area_table() -> list[dict[str, object]]:
    """Return Table 4 (GCC breakdown + GSCore totals) as a list of rows."""
    rows: list[dict[str, object]] = []
    for module in GCC_COMPUTE_MODULES:
        rows.append(
            {
                "component": module.name,
                "area_mm2": module.area_mm2,
                "power_mw": module.power_mw,
                "configuration": module.configuration,
                "kind": "compute",
            }
        )
    rows.append(
        {
            "component": "Compute Total",
            "area_mm2": GCC_COMPUTE_AREA_MM2,
            "power_mw": GCC_COMPUTE_POWER_MW,
            "configuration": "-",
            "kind": "compute",
        }
    )
    for module in GCC_BUFFER_MODULES:
        rows.append(
            {
                "component": module.name,
                "area_mm2": module.area_mm2,
                "power_mw": module.power_mw,
                "configuration": module.configuration,
                "kind": "buffer",
            }
        )
    rows.append(
        {
            "component": "Buffer Total",
            "area_mm2": GCC_BUFFER_AREA_MM2,
            "power_mw": GCC_BUFFER_POWER_MW,
            "configuration": f"{GCC_SRAM_KB} KB",
            "kind": "buffer",
        }
    )
    rows.append(
        {
            "component": "GCC Total",
            "area_mm2": GCC_TOTAL_AREA_MM2,
            "power_mw": GCC_TOTAL_POWER_MW,
            "configuration": "-",
            "kind": "total",
        }
    )
    rows.append(
        {
            "component": "GSCore Total",
            "area_mm2": GSCORE_TOTAL_AREA_MM2,
            "power_mw": GSCORE_TOTAL_POWER_MW,
            "configuration": f"{GSCORE_SRAM_KB} KB",
            "kind": "total",
        }
    )
    return rows


def scaled_image_buffer_area(capacity_bytes: int) -> float:
    """Estimate Image Buffer area (mm^2) for a different capacity.

    Used by the design-space exploration of Figure 13(a): SRAM area scales
    roughly linearly with capacity at fixed banking, anchored to the paper's
    128 KB / 0.872 mm^2 point.
    """
    reference_bytes = 128 * 1024
    reference_area = 0.872
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    return reference_area * capacity_bytes / reference_bytes


def scaled_alpha_blend_area(array_size: int) -> float:
    """Estimate combined Alpha+Blending Unit area for an ``n x n`` PE array.

    Anchored to the paper's 8x8 (64 PE) configuration: 0.576 + 0.382 mm^2.
    PE-array area scales with the number of PEs.
    """
    if array_size <= 0:
        raise ValueError("array_size must be positive")
    reference_pes = 64
    reference_area = 0.576 + 0.382
    return reference_area * (array_size * array_size) / reference_pes
