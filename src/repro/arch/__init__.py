"""Cycle-level hardware models of the GCC accelerator and its baselines.

The paper evaluates GCC with a Python cycle-accurate simulator layered on top
of a functionally-correct rendering pipeline (Section 5.1).  This subpackage
rebuilds that layer:

* :mod:`repro.arch.params` — technology constants, DRAM presets, energy and
  clock parameters.
* :mod:`repro.arch.memory` — DRAM bandwidth/traffic model and SRAM buffers.
* :mod:`repro.arch.energy` — energy accounting.
* :mod:`repro.arch.area` — published area/power breakdowns (Table 4).
* :mod:`repro.arch.units` — generic pipelined compute-unit cycle model.
* :mod:`repro.arch.gcc` — the GCC accelerator (RCA, Projection Unit, SH Unit,
  Sort Unit, Alpha Unit, Blending Unit, Compatibility Mode).
* :mod:`repro.arch.gscore` — the GSCore baseline (standard two-stage,
  tile-wise dataflow).
* :mod:`repro.arch.gpu` — analytical GPU timing model used by the Discussion
  section (Figure 15).
"""

from repro.arch.gcc import GccAccelerator, GccConfig
from repro.arch.gscore import GScoreAccelerator, GScoreConfig
from repro.arch.params import DRAM_PRESETS, EnergyParams, TechnologyParams
from repro.arch.report import SimulationReport

__all__ = [
    "DRAM_PRESETS",
    "EnergyParams",
    "GccAccelerator",
    "GccConfig",
    "GScoreAccelerator",
    "GScoreConfig",
    "SimulationReport",
    "TechnologyParams",
]
