"""Analytical GPU timing model for the Discussion section (Figure 15).

The paper's Section 6 asks whether the GCC dataflow helps on commodity GPUs
and finds that it does not: GPUs have large caches (so the dataflow's
data-movement savings matter little) and the Gaussian-parallel formulation of
Gaussian-wise rendering forces atomic read-modify-write blending, which
serialises and more than cancels the computation savings.

This module provides a coarse roofline-style model of the standard and GCC
dataflows on two GPU presets (a desktop RTX 3090 and an embedded Jetson AGX
Xavier).  It only aims to reproduce the *normalised per-frame stage
breakdown* reported in Figure 15, not absolute frame times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gaussians.sh import count_sh_flops
from repro.render.gaussian_raster import GaussianWiseStats
from repro.render.tile_raster import TileWiseStats


@dataclass(frozen=True)
class GpuPreset:
    """Throughput parameters of one GPU platform."""

    name: str
    #: Sustained FP32 throughput in FLOP/s actually achievable on this kernel mix.
    flops: float
    #: Sustained DRAM bandwidth in bytes/s.
    bandwidth: float
    #: Effective throughput multiplier applied to atomically-serialised work
    #: (Gaussian-parallel blending); < 1 models the atomic-contention penalty.
    atomic_efficiency: float
    #: Fixed per-kernel-launch overhead in seconds.
    launch_overhead_s: float


#: Desktop GPU used in the paper's discussion experiment.
RTX_3090 = GpuPreset(
    name="RTX 3090",
    flops=12.0e12,
    bandwidth=760.0e9,
    atomic_efficiency=0.18,
    launch_overhead_s=2.0e-6,
)

#: Mobile GPU used in the paper's discussion experiment.
JETSON_XAVIER = GpuPreset(
    name="Jetson AGX Xavier",
    flops=0.9e12,
    bandwidth=110.0e9,
    atomic_efficiency=0.25,
    launch_overhead_s=4.0e-6,
)

GPU_PRESETS: dict[str, GpuPreset] = {
    "rtx3090": RTX_3090,
    "jetson": JETSON_XAVIER,
}

#: FLOPs per Gaussian for projection and per pixel for alpha/blend.  The
#: per-pixel costs include the exponential and the shared-memory traffic a
#: GPU implementation pays per evaluated pixel, which is why they are higher
#: than the accelerator's per-PE operation counts.
PROJECTION_FLOPS = 130.0
ALPHA_FLOPS = 20.0
BLEND_FLOPS = 8.0
SORT_FLOPS_PER_KEY = 10.0
PAIR_BUILD_FLOPS = 4.0


@dataclass
class GpuStageBreakdown:
    """Per-frame stage times (seconds) of one dataflow on one GPU."""

    preprocess: float
    duplicate: float
    sort: float
    render: float

    @property
    def total(self) -> float:
        return self.preprocess + self.duplicate + self.sort + self.render

    def normalized(self, reference_total: float | None = None) -> dict[str, float]:
        """Stage shares normalised to ``reference_total`` (or own total)."""
        base = reference_total if reference_total else self.total
        if base <= 0:
            return {"preprocess": 0.0, "duplicate": 0.0, "sort": 0.0, "render": 0.0}
        return {
            "preprocess": self.preprocess / base,
            "duplicate": self.duplicate / base,
            "sort": self.sort / base,
            "render": self.render / base,
        }


def _stage_time(flops: float, num_bytes: float, gpu: GpuPreset, serial_factor: float = 1.0) -> float:
    """Roofline stage time: max of compute and memory, scaled by serialisation."""
    compute = flops / gpu.flops / max(serial_factor, 1e-9)
    memory = num_bytes / gpu.bandwidth
    return max(compute, memory) + gpu.launch_overhead_s


def standard_dataflow_breakdown(stats: TileWiseStats, gpu: GpuPreset) -> GpuStageBreakdown:
    """Stage breakdown of the standard (tile-wise) dataflow on a GPU.

    The GPU caches 2D Gaussian data well, so the "duplicate" stage only pays
    the key-value expansion, not full parameter re-reads.
    """
    sh_flops = count_sh_flops(stats.num_preprocessed)
    preprocess = _stage_time(
        stats.num_depth_passed * PROJECTION_FLOPS + sh_flops,
        stats.num_total * 236.0,
        gpu,
    )
    duplicate = _stage_time(
        stats.num_tile_pairs * PAIR_BUILD_FLOPS, stats.num_tile_pairs * 8.0, gpu
    )
    sort = _stage_time(
        stats.num_tile_pairs * SORT_FLOPS_PER_KEY, stats.num_tile_pairs * 16.0, gpu
    )
    render = _stage_time(
        stats.alpha_evaluations * ALPHA_FLOPS + stats.pixels_blended * BLEND_FLOPS,
        stats.num_pairs_processed * 80.0 * 0.25,  # mostly cache-resident
        gpu,
    )
    return GpuStageBreakdown(preprocess=preprocess, duplicate=duplicate, sort=sort, render=render)


def gcc_dataflow_breakdown(stats: GaussianWiseStats, gpu: GpuPreset) -> GpuStageBreakdown:
    """Stage breakdown of the GCC dataflow implemented Gaussian-parallel on a GPU.

    Rendering is charged the atomic-contention penalty: one thread per
    Gaussian writes many pixels, so deterministic blending requires atomics
    (the paper's "many-to-one" observation), which lowers effective
    throughput and makes rendering *slower* than the standard dataflow
    despite fewer arithmetic operations.
    """
    sh_flops = count_sh_flops(stats.num_sh_evaluated)
    preprocess = _stage_time(
        stats.num_projected * PROJECTION_FLOPS + sh_flops,
        stats.num_total * 12.0 + stats.num_projected * 44.0 + stats.num_sh_evaluated * 192.0,
        gpu,
    )
    duplicate = gpu.launch_overhead_s  # no key-value duplication stage
    sort = _stage_time(
        stats.num_stage1_passed * SORT_FLOPS_PER_KEY, stats.num_stage1_passed * 8.0, gpu
    )
    render = _stage_time(
        stats.alpha_evaluations * ALPHA_FLOPS + stats.pixels_blended * BLEND_FLOPS,
        stats.pixels_blended * 16.0,
        gpu,
        serial_factor=gpu.atomic_efficiency,
    )
    return GpuStageBreakdown(preprocess=preprocess, duplicate=duplicate, sort=sort, render=render)
