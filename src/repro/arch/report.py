"""Simulation result container shared by the GCC, GSCore and GPU models."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.memory import TrafficCounter


@dataclass
class SimulationReport:
    """Cycle, traffic and energy accounting of one simulated frame.

    All energies are in picojoules unless the field name says otherwise; the
    convenience properties convert to the units the paper's figures use
    (FPS, mJ/frame, FPS/mm^2).
    """

    #: Accelerator name ("GCC", "GSCore", ...).
    accelerator: str
    #: Scene name the frame came from.
    scene: str
    #: Clock frequency in Hz.
    clock_hz: float
    #: Total cycles for the frame.
    total_cycles: float
    #: Cycles per pipeline stage / bottleneck component.
    stage_cycles: dict[str, float] = field(default_factory=dict)
    #: Off-chip traffic breakdown.
    dram_traffic: TrafficCounter = field(default_factory=TrafficCounter)
    #: Total on-chip SRAM bytes accessed.
    sram_bytes: int = 0
    #: Arithmetic operation counts by kind ("fma", "sfu", "cmp").
    compute_ops: dict[str, float] = field(default_factory=dict)
    #: Energy breakdown in picojoules ("dram", "sram", "compute", "static").
    energy_pj: dict[str, float] = field(default_factory=dict)
    #: Total silicon area used for normalisation (mm^2).
    area_mm2: float = 1.0
    #: Free-form extra measurements (ablation counters, Cmode factors, ...).
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def frame_time_s(self) -> float:
        """Frame latency in seconds."""
        return self.total_cycles / self.clock_hz

    @property
    def fps(self) -> float:
        """Frames per second (one-frame steady-state throughput)."""
        if self.total_cycles <= 0:
            return float("inf")
        return self.clock_hz / self.total_cycles

    @property
    def fps_per_mm2(self) -> float:
        """Area-normalised throughput, the paper's primary metric (Fig. 10a)."""
        return self.fps / self.area_mm2

    @property
    def total_energy_pj(self) -> float:
        """Total per-frame energy in picojoules."""
        return float(sum(self.energy_pj.values()))

    @property
    def energy_mj_per_frame(self) -> float:
        """Per-frame energy in millijoules (the unit of Figure 12)."""
        return self.total_energy_pj * 1.0e-9

    @property
    def energy_per_area(self) -> float:
        """mJ per frame per mm^2 (used by the Figure 13 design-space plots)."""
        return self.energy_mj_per_frame / self.area_mm2

    @property
    def frames_per_joule(self) -> float:
        """Energy efficiency as frames per joule (Fig. 10b is the area-normalised ratio)."""
        energy_j = self.total_energy_pj * 1.0e-12
        if energy_j <= 0:
            return float("inf")
        return 1.0 / energy_j

    def summary(self) -> dict[str, float]:
        """Compact scalar summary used by the reporting helpers."""
        return {
            "total_cycles": self.total_cycles,
            "fps": self.fps,
            "fps_per_mm2": self.fps_per_mm2,
            "dram_bytes": float(self.dram_traffic.total),
            "sram_bytes": float(self.sram_bytes),
            "energy_mj": self.energy_mj_per_frame,
        }
