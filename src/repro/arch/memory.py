"""Off-chip DRAM and on-chip SRAM models.

The DRAM model is a bandwidth/traffic model: each traffic class (3D Gaussian
attributes, 2D projected attributes, key-value pairs, frame buffer spills)
accumulates bytes, and the time cost of the total traffic is
``bytes / peak_bandwidth``.  This matches the paper's methodology (Micron
LPDDR4-3200 with 51.2 GB/s peak) and is what produces the memory-bound to
compute-bound crossover of Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.params import DEFAULT_DRAM, DramPreset, TechnologyParams, dram_preset


@dataclass
class TrafficCounter:
    """Byte counters split by traffic class."""

    #: Full 3D Gaussian attribute loads (59 floats or subsets thereof).
    gaussian_3d: int = 0
    #: Projected 2D Gaussian attribute traffic (means, conics, colours).
    gaussian_2d: int = 0
    #: Gaussian-tile key-value pair traffic (tile-wise dataflow only).
    key_value: int = 0
    #: Grouping metadata traffic (depth/ID spills of GCC's Stage I).
    grouping: int = 0
    #: Frame/image buffer spills to DRAM (Compatibility-Mode sub-view swaps).
    framebuffer: int = 0

    @property
    def total(self) -> int:
        """Total bytes moved across all classes."""
        return (
            self.gaussian_3d
            + self.gaussian_2d
            + self.key_value
            + self.grouping
            + self.framebuffer
        )

    def as_dict(self) -> dict[str, int]:
        """Return the per-class byte counts as a plain dictionary."""
        return {
            "gaussian_3d": self.gaussian_3d,
            "gaussian_2d": self.gaussian_2d,
            "key_value": self.key_value,
            "grouping": self.grouping,
            "framebuffer": self.framebuffer,
            "total": self.total,
        }

    def __add__(self, other: "TrafficCounter") -> "TrafficCounter":
        return TrafficCounter(
            gaussian_3d=self.gaussian_3d + other.gaussian_3d,
            gaussian_2d=self.gaussian_2d + other.gaussian_2d,
            key_value=self.key_value + other.key_value,
            grouping=self.grouping + other.grouping,
            framebuffer=self.framebuffer + other.framebuffer,
        )


@dataclass
class DramModel:
    """Bandwidth-limited off-chip memory.

    Parameters
    ----------
    preset:
        One of :data:`repro.arch.params.DRAM_PRESETS` (or a custom
        :class:`DramPreset`).
    tech:
        Clock parameters used to convert transfer time into cycles.
    """

    preset: DramPreset = field(default_factory=lambda: dram_preset(DEFAULT_DRAM))
    tech: TechnologyParams = field(default_factory=TechnologyParams)
    traffic: TrafficCounter = field(default_factory=TrafficCounter)

    @property
    def bytes_per_cycle(self) -> float:
        """Peak bytes the interface can transfer per accelerator clock cycle."""
        return self.preset.bandwidth_gbps * 1.0e9 / self.tech.clock_hz

    def record(self, traffic_class: str, num_bytes: int) -> None:
        """Add ``num_bytes`` of traffic to the named class."""
        if num_bytes < 0:
            raise ValueError("traffic bytes must be non-negative")
        if not hasattr(self.traffic, traffic_class):
            raise KeyError(f"unknown traffic class {traffic_class!r}")
        setattr(
            self.traffic, traffic_class, getattr(self.traffic, traffic_class) + int(num_bytes)
        )

    def transfer_cycles(self, num_bytes: int | None = None) -> float:
        """Cycles needed to move ``num_bytes`` (defaults to all recorded traffic)."""
        total = self.traffic.total if num_bytes is None else num_bytes
        if total <= 0:
            return 0.0
        return total / self.bytes_per_cycle

    def energy_pj(self, energy_per_byte: float | None = None) -> float:
        """Energy of all recorded traffic in picojoules."""
        per_byte = self.preset.energy_pj_per_byte if energy_per_byte is None else energy_per_byte
        return self.traffic.total * per_byte


@dataclass
class SramBuffer:
    """One on-chip buffer: capacity plus access-byte accounting.

    ``capacity_bytes`` is only used for configuration checks (e.g. whether a
    full-resolution image fits the Image Buffer, which triggers Compatibility
    Mode); energy is proportional to accessed bytes.
    """

    name: str
    capacity_bytes: int
    bytes_accessed: int = 0

    def access(self, num_bytes: int) -> None:
        """Record ``num_bytes`` of read+write traffic to this buffer."""
        if num_bytes < 0:
            raise ValueError("access bytes must be non-negative")
        self.bytes_accessed += int(num_bytes)

    def fits(self, num_bytes: int) -> bool:
        """Whether a working set of ``num_bytes`` fits in this buffer."""
        return num_bytes <= self.capacity_bytes

    def energy_pj(self, pj_per_byte: float) -> float:
        """Dynamic access energy in picojoules."""
        return self.bytes_accessed * pj_per_byte


def image_buffer_bytes(width: int, height: int, bytes_per_pixel: int = 16) -> int:
    """On-chip image-buffer working set for a ``width x height`` view.

    Each pixel holds accumulated RGB plus transmittance (4 values); the GCC
    architecture stores them at FP32 (16 bytes/pixel), so a 128x128 sub-view
    needs 256 KB of accumulation state split across the banked Image Buffer.
    """
    return width * height * bytes_per_pixel
