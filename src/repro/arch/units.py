"""Generic pipelined compute-unit cycle model.

Every GCC/GSCore hardware module (Projection Unit, SH Unit, Alpha Unit, ...)
is modelled as a pipelined unit characterised by:

* ``items_per_cycle`` — steady-state throughput once the pipeline is full,
* ``latency_cycles`` — pipeline depth (paid once per batch of work),
* ``ops_per_item`` — arithmetic operations per item, used for energy.

This matches the paper's methodology: each module performs functionally
correct computation while tracking the cycle-level cost of each operation,
validated against the HDL at the cycle level.  Here the functional
computation lives in :mod:`repro.render`; the unit model turns the collected
work counts into cycles and operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class UnitActivity:
    """Accumulated activity of one hardware unit."""

    items: int = 0
    cycles: float = 0.0
    ops: float = 0.0

    def __add__(self, other: "UnitActivity") -> "UnitActivity":
        return UnitActivity(
            items=self.items + other.items,
            cycles=self.cycles + other.cycles,
            ops=self.ops + other.ops,
        )


@dataclass
class PipelinedUnit:
    """A throughput/latency model of one pipelined hardware module."""

    name: str
    #: Items retired per cycle in steady state (may be fractional, e.g. a
    #: unit needing 4 cycles per item has throughput 0.25).
    items_per_cycle: float
    #: Pipeline fill latency charged once per invocation batch.
    latency_cycles: int = 0
    #: Arithmetic operations performed per item (for energy accounting).
    ops_per_item: float = 1.0
    activity: UnitActivity = field(default_factory=UnitActivity)

    def __post_init__(self) -> None:
        if self.items_per_cycle <= 0:
            raise ValueError("items_per_cycle must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")

    def process(self, items: int, batches: int = 1) -> float:
        """Account for processing ``items`` items split over ``batches`` batches.

        Returns the cycles consumed and accumulates them in ``activity``.
        """
        if items < 0:
            raise ValueError("items must be non-negative")
        if items == 0:
            return 0.0
        cycles = items / self.items_per_cycle + self.latency_cycles * max(batches, 1)
        self.activity.items += items
        self.activity.cycles += cycles
        self.activity.ops += items * self.ops_per_item
        return cycles

    def reset(self) -> None:
        """Clear accumulated activity."""
        self.activity = UnitActivity()
