"""Energy accounting shared by the accelerator models.

The paper's Figure 12 splits per-frame energy into off-chip (DRAM) access,
on-chip (SRAM) access and computation; DRAM dominates in both designs, which
is why GCC's >50% DRAM-traffic reduction translates into the overall energy
win.  This module turns the traffic/operation counters collected by the
models into that three-way breakdown, plus a static term proportional to the
frame time.
"""

from __future__ import annotations

from repro.arch.params import DramPreset, EnergyParams


def compute_energy_breakdown(
    dram_bytes: int,
    sram_bytes: int,
    compute_ops: dict[str, float],
    frame_time_s: float,
    energy: EnergyParams,
    dram: DramPreset | None = None,
) -> dict[str, float]:
    """Return the per-frame energy breakdown in picojoules.

    Parameters
    ----------
    dram_bytes:
        Total off-chip bytes moved.
    sram_bytes:
        Total on-chip buffer bytes accessed.
    compute_ops:
        Operation counts keyed by kind: ``"fma"``, ``"sfu"`` and ``"cmp"``.
        Unknown kinds are charged at the FMA rate.
    frame_time_s:
        Frame latency, used for the static (leakage/clock) term.
    energy:
        Per-access energy constants.
    dram:
        Optional DRAM preset; when given, its per-byte energy overrides
        ``energy.dram_pj_per_byte`` (newer LPDDR generations are cheaper per
        byte, which Figure 14's bandwidth sweep indirectly assumes).
    """
    per_byte = dram.energy_pj_per_byte if dram is not None else energy.dram_pj_per_byte
    per_op = {"fma": energy.fma_pj, "sfu": energy.sfu_pj, "cmp": energy.cmp_pj}
    compute_pj = sum(
        count * per_op.get(kind, energy.fma_pj) for kind, count in compute_ops.items()
    )
    static_pj = energy.static_power_w * frame_time_s * 1.0e12
    return {
        "dram": dram_bytes * per_byte,
        "sram": sram_bytes * energy.sram_pj_per_byte,
        "compute": compute_pj,
        "static": static_pj,
    }
