"""Technology, memory and energy constants used by the hardware models.

The per-operation and per-access energies are representative published
figures for a 28 nm process (the paper's implementation node) and LPDDR
DRAM; the paper's own absolute silicon numbers (area, power) come from its
Table 4 and are kept in :mod:`repro.arch.area`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramPreset:
    """One off-chip memory configuration."""

    name: str
    #: Peak bandwidth in GB/s.
    bandwidth_gbps: float
    #: Access energy in picojoules per byte.
    energy_pj_per_byte: float


#: Off-chip memory configurations evaluated in Figure 14.  LPDDR4-3200 is the
#: default (matching GSCore's 51.2 GB/s configuration).
DRAM_PRESETS: dict[str, DramPreset] = {
    "LPDDR4-3200": DramPreset("LPDDR4-3200", 51.2, 20.0),
    "LPDDR4X-4266": DramPreset("LPDDR4X-4266", 68.3, 17.0),
    "LPDDR5-6400": DramPreset("LPDDR5-6400", 102.4, 14.0),
    "LPDDR5X-8533": DramPreset("LPDDR5X-8533", 136.5, 12.0),
    "LPDDR6-14400": DramPreset("LPDDR6-14400", 230.4, 10.0),
}

DEFAULT_DRAM = "LPDDR4-3200"


@dataclass(frozen=True)
class TechnologyParams:
    """Process and clock parameters shared by GCC and GSCore models."""

    #: Clock frequency in Hz (both designs run at 1 GHz).
    clock_hz: float = 1.0e9
    #: Process node in nanometres (for documentation only).
    process_nm: int = 28

    @property
    def cycle_time_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.clock_hz


@dataclass(frozen=True)
class EnergyParams:
    """Per-access / per-operation dynamic energy constants (picojoules).

    Values are representative 28 nm figures: an FP16/FP32 fused multiply-add
    costs on the order of 1-2 pJ, small SRAM accesses below 1 pJ/byte, and
    LPDDR4 DRAM access roughly 20 pJ/byte (the dominant term, which is why
    the paper's Figure 12 is dominated by off-chip access energy).
    """

    #: Fused multiply-add (FP) energy per operation.
    fma_pj: float = 1.5
    #: Special-function (EXP LUT, divide/sqrt iteration) energy per operation.
    sfu_pj: float = 2.0
    #: Comparator / integer op energy per operation.
    cmp_pj: float = 0.2
    #: On-chip SRAM energy per byte accessed.
    sram_pj_per_byte: float = 0.6
    #: Off-chip DRAM energy per byte (overridden by the DRAM preset if given).
    dram_pj_per_byte: float = 20.0
    #: Static (leakage + clock) power in watts charged for the frame duration.
    static_power_w: float = 0.05


def dram_preset(name: str) -> DramPreset:
    """Look up a DRAM preset by name (case-sensitive, as printed in Fig. 14)."""
    if name not in DRAM_PRESETS:
        raise KeyError(f"unknown DRAM preset {name!r}; available: {sorted(DRAM_PRESETS)}")
    return DRAM_PRESETS[name]
