"""Experiment harness: scene presets, cached runners and per-figure experiments.

Every table and figure of the paper's evaluation (Section 5) and discussion
(Section 6) has a corresponding function in :mod:`repro.eval.experiments`;
:mod:`repro.eval.reporting` renders the results as text tables in the same
shape as the paper, and the ``benchmarks/`` directory wires each experiment
into ``pytest-benchmark``.
"""

from repro.eval.runner import EvalSetup, clear_cache, load_scene_and_camera
from repro.eval.scenes import EVAL_SCENES, EvalScenePreset

__all__ = [
    "EVAL_SCENES",
    "EvalScenePreset",
    "EvalSetup",
    "clear_cache",
    "load_scene_and_camera",
]
