"""Cached execution of renders and accelerator simulations.

Several experiments need the same underlying artefacts (e.g. the tile-wise
render of Train feeds Figure 2, Table 1, Table 2, Figure 10 and Figure 12),
so this module memoises them per evaluation setup.  All functions are pure
with respect to their arguments; the cache can be cleared with
:func:`clear_cache`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.gcc import GccAccelerator, GccConfig
from repro.arch.gscore import GScoreAccelerator, GScoreConfig
from repro.arch.report import SimulationReport
from repro.eval.scenes import eval_preset
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianScene
from repro.gaussians.synthetic import make_camera, make_scene
from repro.render.common import RenderConfig
from repro.render.gaussian_raster import GaussianWiseResult, render_gaussianwise
from repro.render.tile_raster import TileWiseResult, render_tilewise

_CACHE: dict[tuple, object] = {}


@dataclass(frozen=True)
class EvalSetup:
    """Identifies one evaluation configuration of a scene."""

    scene: str
    quick: bool = False

    def preset(self):
        return eval_preset(self.scene, quick=self.quick)


def clear_cache() -> None:
    """Drop every memoised scene, render and simulation."""
    _CACHE.clear()


def _cached(key: tuple, factory):
    if key not in _CACHE:
        _CACHE[key] = factory()
    return _CACHE[key]


def load_scene_and_camera(setup: EvalSetup) -> tuple[GaussianScene, Camera]:
    """Instantiate (and cache) the synthetic scene and camera for a setup."""
    preset = setup.preset()

    def build():
        scene = make_scene(preset.name, scale=preset.scale)
        camera = make_camera(
            preset.name, view_index=preset.view_index, image_scale=preset.image_scale
        )
        return scene, camera

    return _cached(("scene", setup), build)


def run_tilewise(
    setup: EvalSetup, tile_size: int = 16, backend: str = "vectorized"
) -> TileWiseResult:
    """Standard-dataflow render of a setup (cached).

    ``backend`` selects the rasterisation engine (``"vectorized"`` or
    ``"reference"``); both yield identical statistics, so every experiment
    built on this function is backend-independent.
    """

    def build():
        scene, camera = load_scene_and_camera(setup)
        config = RenderConfig(tile_size=tile_size, radius_rule="3sigma", backend=backend)
        return render_tilewise(scene, camera, config, obb_subtile_skip=True)

    return _cached(("tilewise", setup, tile_size, backend), build)


def run_gaussianwise(
    setup: EvalSetup,
    enable_cc: bool = True,
    block_size: int = 8,
    boundary_mode: str = "alpha",
    backend: str = "vectorized",
) -> GaussianWiseResult:
    """GCC-dataflow render of a setup (cached).

    ``backend`` selects the rasterisation engine (``"vectorized"`` or
    ``"reference"``); both yield identical statistics, so every experiment
    built on this function is backend-independent.
    """

    def build():
        scene, camera = load_scene_and_camera(setup)
        config = RenderConfig(
            radius_rule="omega-sigma", block_size=block_size, backend=backend
        )
        return render_gaussianwise(
            scene, camera, config, enable_cc=enable_cc, boundary_mode=boundary_mode
        )

    return _cached(
        ("gaussianwise", setup, enable_cc, block_size, boundary_mode, backend), build
    )


def run_gscore_sim(setup: EvalSetup, config: GScoreConfig | None = None) -> SimulationReport:
    """GSCore accelerator simulation of a setup (cached for the default config)."""
    config = config or GScoreConfig()

    def build():
        scene, camera = load_scene_and_camera(setup)
        render = run_tilewise(setup, tile_size=config.tile_size)
        return GScoreAccelerator(config).simulate(scene, camera, render_result=render)

    return _cached(("gscore", setup, config), build)


def run_gcc_sim(setup: EvalSetup, config: GccConfig | None = None) -> SimulationReport:
    """GCC accelerator simulation of a setup (cached per configuration)."""
    config = config or GccConfig()

    def build():
        scene, camera = load_scene_and_camera(setup)
        render = run_gaussianwise(
            setup,
            enable_cc=config.enable_cc,
            block_size=config.alpha_array_size,
            boundary_mode="alpha" if config.enable_alpha_boundary else "aabb",
        )
        return GccAccelerator(config).simulate(scene, camera, render_result=render)

    return _cached(("gcc", setup, config), build)
