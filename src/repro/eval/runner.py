"""Cached execution of renders and accelerator simulations.

Several experiments need the same underlying artefacts (e.g. the tile-wise
render of Train feeds Figure 2, Table 1, Table 2, Figure 10 and Figure 12),
so this module memoises them per evaluation setup.  All functions are pure
with respect to their arguments; the memo store is a bounded
:class:`repro.serve.cache.LRUCache` (so a long-lived process cannot grow it
without limit) and can be cleared with :func:`clear_cache`.

Single-frame rendering is delegated to :func:`repro.exec.frames.render_frame`
— the same primitive the render-farm and executor workers run — so a frame
produced here is bitwise identical to the farm's output for the same camera.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.gcc import GccAccelerator, GccConfig
from repro.arch.gscore import GScoreAccelerator, GScoreConfig
from repro.arch.report import SimulationReport
from repro.eval.scenes import eval_preset
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianScene
from repro.gaussians.synthetic import make_camera, make_scene
from repro.render.gaussian_raster import GaussianWiseResult
from repro.render.tile_raster import TileWiseResult
from repro.exec.frames import FrameSpec, render_frame
from repro.serve.cache import LRUCache

#: Default bound on resident memoised artefacts.  A full six-scene
#: evaluation sweep keeps well under this; the bound exists so a
#: long-running serving process that touches many (setup, config)
#: combinations cannot grow without limit.
DEFAULT_CACHE_MAXSIZE = 256

#: Sentinel: "caller did not pass a capacity" (``None`` means unbounded).
_UNSET = object()


def _capacity_from_env(default: int | None = DEFAULT_CACHE_MAXSIZE) -> int | None:
    """Resolve the cache bound from ``REPRO_CACHE_SIZE``.

    Accepts a positive integer, or ``none``/``unbounded``/``0`` (any zero
    spelling) to disable eviction; unset or empty falls back to ``default``.
    Invalid values raise ``ValueError`` at import time rather than silently
    running with a surprise bound.
    """
    import os

    raw = os.environ.get("REPRO_CACHE_SIZE", "").strip()
    if not raw:
        return default
    if raw.lower() in {"none", "unbounded"}:
        return None
    value = int(raw)
    if value < 0:
        raise ValueError(f"REPRO_CACHE_SIZE must be >= 0, got {value}")
    return None if value == 0 else value


#: The bound the cache was created with (``REPRO_CACHE_SIZE`` wins over the
#: default); ``cache(capacity=...)`` can change it later at runtime.
CACHE_MAXSIZE = _capacity_from_env()

_CACHE = LRUCache(maxsize=CACHE_MAXSIZE)


@dataclass(frozen=True)
class EvalSetup:
    """Identifies one evaluation configuration of a scene."""

    scene: str
    quick: bool = False

    def preset(self):
        return eval_preset(self.scene, quick=self.quick)


def clear_cache(reset_stats: bool = False) -> None:
    """Drop every memoised scene, render and simulation.

    Hit/miss/eviction counters survive by default (lifetime telemetry);
    pass ``reset_stats=True`` to zero them too.
    """
    _CACHE.clear(reset_stats=reset_stats)


def cache(capacity: int | None | object = _UNSET) -> LRUCache:
    """The artifact cache itself (for inspection: size, hit rate, keys).

    Passing ``capacity`` resizes the bound in place (``None`` = unbounded;
    shrinking evicts least-recently-used artefacts immediately and counts
    them in ``stats.evictions``): ``cache(capacity=16)``.  The startup bound
    comes from the ``REPRO_CACHE_SIZE`` environment variable when set
    (positive integer, or ``none``/``unbounded``/``0`` for no bound),
    otherwise :data:`DEFAULT_CACHE_MAXSIZE`.
    """
    if capacity is not _UNSET:
        _CACHE.resize(capacity)  # type: ignore[arg-type]
    return _CACHE


def _cached(key: tuple, factory):
    return _CACHE.get_or_create(key, factory)


def load_scene_and_camera(setup: EvalSetup) -> tuple[GaussianScene, Camera]:
    """Instantiate (and cache) the scene and camera for a setup.

    Presets that name a scene-store entry (``preset.store``) resolve the
    scene through :func:`repro.store.store.default_store` (the store's own
    LRU cache making the base build one-time); everything else regenerates
    the synthetic scene exactly as before.
    """
    preset = setup.preset()

    def build():
        if preset.store is not None:
            from repro.store.store import default_store

            scene = default_store().get(preset.store)
        else:
            scene = make_scene(preset.name, scale=preset.scale)
        camera = make_camera(
            preset.name, view_index=preset.view_index, image_scale=preset.image_scale
        )
        return scene, camera

    return _cached(("scene", setup), build)


def run_tilewise(
    setup: EvalSetup,
    tile_size: int = 16,
    backend: str = "vectorized",
    obb_subtile_skip: bool = True,
    dtype: str = "float64",
) -> TileWiseResult:
    """Standard-dataflow render of a setup (cached).

    ``backend`` selects the rasterisation engine (``"vectorized"`` or
    ``"reference"``); both yield identical statistics, so every experiment
    built on this function is backend-independent.  ``obb_subtile_skip``
    toggles GSCore's OBB subtile test in the alpha-evaluation accounting
    (the image is unaffected) and is part of the cache key, so calls with
    different settings never alias.  ``dtype`` selects the floating-point
    engine mode (:data:`repro.render.common.DTYPES`) and is likewise part
    of the cache key — a float32 fast-path render must never alias the
    float64 artefact the accuracy experiments treat as the oracle.
    """

    def build():
        scene, camera = load_scene_and_camera(setup)
        spec = FrameSpec(
            dataflow="tilewise",
            backend=backend,
            tile_size=tile_size,
            obb_subtile_skip=obb_subtile_skip,
            dtype=dtype,
        )
        return render_frame(scene, camera, spec)

    return _cached(
        ("tilewise", setup, tile_size, backend, obb_subtile_skip, dtype), build
    )


def run_gaussianwise(
    setup: EvalSetup,
    enable_cc: bool = True,
    block_size: int = 8,
    boundary_mode: str = "alpha",
    backend: str = "vectorized",
) -> GaussianWiseResult:
    """GCC-dataflow render of a setup (cached).

    ``backend`` selects the rasterisation engine (``"vectorized"`` or
    ``"reference"``); both yield identical statistics, so every experiment
    built on this function is backend-independent.
    """

    def build():
        scene, camera = load_scene_and_camera(setup)
        spec = FrameSpec(
            dataflow="gaussianwise",
            backend=backend,
            enable_cc=enable_cc,
            block_size=block_size,
            boundary_mode=boundary_mode,
        )
        return render_frame(scene, camera, spec)

    return _cached(
        ("gaussianwise", setup, enable_cc, block_size, boundary_mode, backend), build
    )


def run_gscore_sim(setup: EvalSetup, config: GScoreConfig | None = None) -> SimulationReport:
    """GSCore accelerator simulation of a setup (cached per configuration).

    ``config`` participates in the cache key, so :class:`GScoreConfig` must
    stay hashable (it is a frozen dataclass); distinct configurations are
    memoised independently.
    """
    config = config or GScoreConfig()

    def build():
        scene, camera = load_scene_and_camera(setup)
        render = run_tilewise(setup, tile_size=config.tile_size)
        return GScoreAccelerator(config).simulate(scene, camera, render_result=render)

    return _cached(("gscore", setup, config), build)


def run_gcc_sim(setup: EvalSetup, config: GccConfig | None = None) -> SimulationReport:
    """GCC accelerator simulation of a setup (cached per configuration).

    As with :func:`run_gscore_sim`, ``config`` is part of the cache key and
    :class:`GccConfig` must stay hashable (frozen dataclass).
    """
    config = config or GccConfig()

    def build():
        scene, camera = load_scene_and_camera(setup)
        render = run_gaussianwise(
            setup,
            enable_cc=config.enable_cc,
            block_size=config.alpha_array_size,
            boundary_mode="alpha" if config.enable_alpha_boundary else "aabb",
        )
        return GccAccelerator(config).simulate(scene, camera, render_result=render)

    return _cached(("gcc", setup, config), build)
