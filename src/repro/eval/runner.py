"""Cached execution of renders and accelerator simulations.

Several experiments need the same underlying artefacts (e.g. the tile-wise
render of Train feeds Figure 2, Table 1, Table 2, Figure 10 and Figure 12),
so this module memoises them per evaluation setup.  All functions are pure
with respect to their arguments; the memo store is a bounded
:class:`repro.serve.cache.LRUCache` (so a long-lived process cannot grow it
without limit) and can be cleared with :func:`clear_cache`.

Single-frame rendering is delegated to :func:`repro.serve.farm.render_frame`
— the same primitive the render-farm workers execute — so a frame produced
here is bitwise identical to the farm's output for the same camera.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.gcc import GccAccelerator, GccConfig
from repro.arch.gscore import GScoreAccelerator, GScoreConfig
from repro.arch.report import SimulationReport
from repro.eval.scenes import eval_preset
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianScene
from repro.gaussians.synthetic import make_camera, make_scene
from repro.render.gaussian_raster import GaussianWiseResult
from repro.render.tile_raster import TileWiseResult
from repro.serve.cache import LRUCache
from repro.serve.farm import FrameSpec, render_frame

#: Bound on resident memoised artefacts.  A full six-scene evaluation sweep
#: keeps well under this; the bound exists so a long-running serving process
#: that touches many (setup, config) combinations cannot grow without limit.
CACHE_MAXSIZE = 256

_CACHE = LRUCache(maxsize=CACHE_MAXSIZE)


@dataclass(frozen=True)
class EvalSetup:
    """Identifies one evaluation configuration of a scene."""

    scene: str
    quick: bool = False

    def preset(self):
        return eval_preset(self.scene, quick=self.quick)


def clear_cache() -> None:
    """Drop every memoised scene, render and simulation."""
    _CACHE.clear()


def cache() -> LRUCache:
    """The artifact cache itself (for inspection: size, hit rate, keys)."""
    return _CACHE


def _cached(key: tuple, factory):
    return _CACHE.get_or_create(key, factory)


def load_scene_and_camera(setup: EvalSetup) -> tuple[GaussianScene, Camera]:
    """Instantiate (and cache) the synthetic scene and camera for a setup."""
    preset = setup.preset()

    def build():
        scene = make_scene(preset.name, scale=preset.scale)
        camera = make_camera(
            preset.name, view_index=preset.view_index, image_scale=preset.image_scale
        )
        return scene, camera

    return _cached(("scene", setup), build)


def run_tilewise(
    setup: EvalSetup,
    tile_size: int = 16,
    backend: str = "vectorized",
    obb_subtile_skip: bool = True,
) -> TileWiseResult:
    """Standard-dataflow render of a setup (cached).

    ``backend`` selects the rasterisation engine (``"vectorized"`` or
    ``"reference"``); both yield identical statistics, so every experiment
    built on this function is backend-independent.  ``obb_subtile_skip``
    toggles GSCore's OBB subtile test in the alpha-evaluation accounting
    (the image is unaffected) and is part of the cache key, so calls with
    different settings never alias.
    """

    def build():
        scene, camera = load_scene_and_camera(setup)
        spec = FrameSpec(
            dataflow="tilewise",
            backend=backend,
            tile_size=tile_size,
            obb_subtile_skip=obb_subtile_skip,
        )
        return render_frame(scene, camera, spec)

    return _cached(("tilewise", setup, tile_size, backend, obb_subtile_skip), build)


def run_gaussianwise(
    setup: EvalSetup,
    enable_cc: bool = True,
    block_size: int = 8,
    boundary_mode: str = "alpha",
    backend: str = "vectorized",
) -> GaussianWiseResult:
    """GCC-dataflow render of a setup (cached).

    ``backend`` selects the rasterisation engine (``"vectorized"`` or
    ``"reference"``); both yield identical statistics, so every experiment
    built on this function is backend-independent.
    """

    def build():
        scene, camera = load_scene_and_camera(setup)
        spec = FrameSpec(
            dataflow="gaussianwise",
            backend=backend,
            enable_cc=enable_cc,
            block_size=block_size,
            boundary_mode=boundary_mode,
        )
        return render_frame(scene, camera, spec)

    return _cached(
        ("gaussianwise", setup, enable_cc, block_size, boundary_mode, backend), build
    )


def run_gscore_sim(setup: EvalSetup, config: GScoreConfig | None = None) -> SimulationReport:
    """GSCore accelerator simulation of a setup (cached per configuration).

    ``config`` participates in the cache key, so :class:`GScoreConfig` must
    stay hashable (it is a frozen dataclass); distinct configurations are
    memoised independently.
    """
    config = config or GScoreConfig()

    def build():
        scene, camera = load_scene_and_camera(setup)
        render = run_tilewise(setup, tile_size=config.tile_size)
        return GScoreAccelerator(config).simulate(scene, camera, render_result=render)

    return _cached(("gscore", setup, config), build)


def run_gcc_sim(setup: EvalSetup, config: GccConfig | None = None) -> SimulationReport:
    """GCC accelerator simulation of a setup (cached per configuration).

    As with :func:`run_gscore_sim`, ``config`` is part of the cache key and
    :class:`GccConfig` must stay hashable (frozen dataclass).
    """
    config = config or GccConfig()

    def build():
        scene, camera = load_scene_and_camera(setup)
        render = run_gaussianwise(
            setup,
            enable_cc=config.enable_cc,
            block_size=config.alpha_array_size,
            boundary_mode="alpha" if config.enable_alpha_boundary else "aabb",
        )
        return GccAccelerator(config).simulate(scene, camera, render_result=render)

    return _cached(("gcc", setup, config), build)
