"""One function per table/figure of the paper's evaluation and discussion.

Each function returns plain dictionaries/lists so that tests can assert on
the *shape* of the result (who wins, by roughly what factor, where crossovers
fall) and the benchmark harness can print them next to the paper's numbers.
The expected shapes and the paper's values are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.arch.area import gcc_area_table
from repro.arch.gcc import GccConfig
from repro.arch.gcc.accelerator import TrafficSummary
from repro.arch.gcc.cmode import subview_invocations
from repro.arch.gpu import GPU_PRESETS, gcc_dataflow_breakdown, standard_dataflow_breakdown
from repro.arch.gscore import GScoreConfig
from repro.eval.runner import (
    EvalSetup,
    load_scene_and_camera,
    run_gaussianwise,
    run_gcc_sim,
    run_gscore_sim,
    run_tilewise,
)
from repro.eval.scenes import ABLATION_SCENES, MOTIVATION_SCENES, all_benchmark_scenes
from repro.gaussians.synthetic import make_single_gaussian_scene
from repro.render.bounds import count_footprint_pixels, frame_footprint_counts
from repro.render.common import RenderConfig
from repro.render.metrics import lpips_proxy, psnr
from repro.render.preprocess import project_scene


def _geomean(values: list[float]) -> float:
    """Geometric mean of positive values (0 if empty)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return float(math.exp(sum(math.log(v) for v in positives) / len(positives)))


# ----------------------------------------------------------------------
# Figure 2 — motivation: unused preprocessing and repeated Gaussian loads
# ----------------------------------------------------------------------
def figure2(scenes: tuple[str, ...] = MOTIVATION_SCENES, quick: bool = False) -> list[dict]:
    """Gaussian counts per processing phase and per-Gaussian load counts.

    Paper: 64-83% of Gaussians are in the frustum, but far fewer are actually
    rendered; the same Gaussian is loaded 3.17-6.45 times on average during
    tile-wise rendering.
    """
    rows = []
    for scene in scenes:
        setup = EvalSetup(scene, quick=quick)
        stats = run_tilewise(setup).stats
        rows.append(
            {
                "scene": scene,
                "total": stats.num_total,
                "in_frustum": stats.num_preprocessed,
                "rendered": stats.num_rendered,
                "in_frustum_fraction": stats.num_preprocessed / max(stats.num_total, 1),
                "rendered_fraction": stats.rendered_fraction,
                "avg_loads_per_gaussian": stats.avg_loads_per_gaussian,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 1 / Figure 4 — bounding-box overdraw vs the alpha-exact footprint
# ----------------------------------------------------------------------
def table1(scenes: tuple[str, ...] = MOTIVATION_SCENES, quick: bool = False) -> list[dict]:
    """Average rendered pixels per frame under AABB, OBB and actual blending."""
    rows = []
    for scene in scenes:
        setup = EvalSetup(scene, quick=quick)
        scene_obj, camera = load_scene_and_camera(setup)
        render = run_tilewise(setup)
        counts = frame_footprint_counts(render.projected, camera.width, camera.height)
        rows.append(
            {
                "scene": scene,
                "aabb_pixels": counts.aabb,
                "obb_pixels": counts.obb,
                "alpha_pixels": counts.alpha,
                "rendered_pixels": render.stats.pixels_blended,
            }
        )
    return rows


def figure4(opacities: tuple[float, ...] = (1.0, 0.01)) -> list[dict]:
    """Footprint pixel counts of a single anisotropic Gaussian vs opacity.

    Paper: with opacity 1 the effective (alpha >= 1/255) region fills most of
    the OBB; with opacity 0.01 it collapses to a small core while AABB/OBB
    stay unchanged.
    """
    from repro.gaussians.synthetic import make_camera

    rows = []
    for opacity in opacities:
        scene = make_single_gaussian_scene(opacity=opacity, scale=0.25)
        camera = make_camera("smoke", image_scale=1.0)
        projected = project_scene(scene, camera, RenderConfig(radius_rule="3sigma"))
        if projected.num_visible == 0:
            rows.append({"opacity": opacity, "aabb": 0, "obb": 0, "alpha": 0})
            continue
        counts = count_footprint_pixels(
            projected.means2d[0],
            projected.cov2d[0],
            projected.conics[0],
            float(projected.opacities[0]),
            camera.width,
            camera.height,
        )
        rows.append(
            {
                "opacity": opacity,
                "aabb": counts.aabb,
                "obb": counts.obb,
                "alpha": counts.alpha,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 6 — Compatibility-Mode sub-view size sweep
# ----------------------------------------------------------------------
def figure6(
    scenes: tuple[str, ...] = ("lego", "train"),
    subview_sizes: tuple[int, ...] = (1024, 512, 256, 128, 64, 32, 16),
    quick: bool = False,
) -> dict[str, list[dict]]:
    """Rendering invocations vs unique rendered Gaussians per sub-view size.

    Paper: above 128x128 sub-views the duplication overhead is marginal; it
    grows steeply below 64x64.
    """
    results: dict[str, list[dict]] = {}
    for scene in scenes:
        setup = EvalSetup(scene, quick=quick)
        scene_obj, camera = load_scene_and_camera(setup)
        preset = setup.preset()
        projected = run_tilewise(setup).projected
        rows = []
        for size in subview_sizes:
            # Sub-view sizes are defined at paper-scale resolution; scale them
            # with the evaluation image so the sweep covers the same ratios.
            scaled = max(int(round(size * preset.image_scale)), 4)
            invocations, unique = subview_invocations(
                projected, camera.width, camera.height, scaled
            )
            rows.append(
                {
                    "subview": size,
                    "subview_scaled": scaled,
                    "rendering_invocations": invocations,
                    "rendered_gaussians": unique,
                    "duplication": invocations / max(unique, 1),
                }
            )
        results[scene] = rows
    return results


# ----------------------------------------------------------------------
# Table 2 — rendering quality
# ----------------------------------------------------------------------
def table2(scenes: tuple[str, ...] | None = None, quick: bool = False) -> list[dict]:
    """PSNR / perceptual-proxy of GSCore and GCC against the GPU reference.

    The GPU reference is the standard dataflow rendered without subtile
    skipping (exact per-pixel evaluation); GSCore adds OBB subtile skipping;
    GCC is the Gaussian-wise pipeline.  Paper: all three are within 0.1 dB.
    """
    from repro.render.tile_raster import render_tilewise

    scenes = scenes or all_benchmark_scenes()
    rows = []
    for scene in scenes:
        setup = EvalSetup(scene, quick=quick)
        scene_obj, camera = load_scene_and_camera(setup)
        reference = render_tilewise(
            scene_obj, camera, RenderConfig(radius_rule="3sigma"), obb_subtile_skip=False
        ).image
        gscore_img = run_tilewise(setup).image
        gcc_img = run_gaussianwise(setup).image
        rows.append(
            {
                "scene": scene,
                "gscore_psnr": psnr(reference, gscore_img),
                "gscore_lpips": lpips_proxy(reference, gscore_img),
                "gcc_psnr": psnr(reference, gcc_img),
                "gcc_lpips": lpips_proxy(reference, gcc_img),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 10 — area-normalised speedup and energy efficiency
# ----------------------------------------------------------------------
def figure10(scenes: tuple[str, ...] | None = None, quick: bool = False) -> dict:
    """GCC vs GSCore area-normalised throughput and energy efficiency.

    Paper: geomean speedup 5.24x (4.27x-6.22x), geomean energy efficiency
    3.35x (3.05x-3.72x).
    """
    scenes = scenes or all_benchmark_scenes()
    rows = []
    for scene in scenes:
        setup = EvalSetup(scene, quick=quick)
        gscore = run_gscore_sim(setup)
        gcc = run_gcc_sim(setup)
        speedup = gcc.fps_per_mm2 / gscore.fps_per_mm2
        energy_eff = (gscore.energy_mj_per_frame * gscore.area_mm2) / (
            gcc.energy_mj_per_frame * gcc.area_mm2
        )
        rows.append(
            {
                "scene": scene,
                "gcc_fps": gcc.fps,
                "gscore_fps": gscore.fps,
                "gcc_fps_per_mm2": gcc.fps_per_mm2,
                "gscore_fps_per_mm2": gscore.fps_per_mm2,
                "speedup": speedup,
                "energy_efficiency": energy_eff,
            }
        )
    return {
        "rows": rows,
        "geomean_speedup": _geomean([r["speedup"] for r in rows]),
        "geomean_energy_efficiency": _geomean([r["energy_efficiency"] for r in rows]),
    }


# ----------------------------------------------------------------------
# Figure 11 — ablation: Gaussian-wise (GW) vs GW + cross-stage conditional
# ----------------------------------------------------------------------
def figure11(scenes: tuple[str, ...] = ABLATION_SCENES, quick: bool = False) -> list[dict]:
    """Breakdown of GCC's gains: performance, DRAM accesses and computation.

    Paper: GW alone already beats the baseline; adding CC gives a further
    boost, larger on sparse large scenes (Drjohnson); DRAM accesses split by
    3D / 2D / KV shrink dramatically; rendering computations drop thanks to
    the alpha-based identifier.
    """
    rows = []
    for scene in scenes:
        setup = EvalSetup(scene, quick=quick)
        baseline = run_gscore_sim(setup)
        gw_only = run_gcc_sim(setup, GccConfig(enable_cc=False))
        gw_cc = run_gcc_sim(setup)

        baseline_traffic = TrafficSummary.from_counter(baseline.dram_traffic)
        gw_traffic = TrafficSummary.from_counter(gw_only.dram_traffic)
        gcc_traffic = TrafficSummary.from_counter(gw_cc.dram_traffic)

        rows.append(
            {
                "scene": scene,
                # (a) performance, normalised to the baseline.
                "speedup_gw": (gw_only.fps_per_mm2 / baseline.fps_per_mm2),
                "speedup_gw_cc": (gw_cc.fps_per_mm2 / baseline.fps_per_mm2),
                # (b) DRAM accesses by class, normalised to the baseline total.
                "dram_baseline": baseline_traffic.__dict__ | {"total": baseline_traffic.total},
                "dram_gw": gw_traffic.__dict__ | {"total": gw_traffic.total},
                "dram_gw_cc": gcc_traffic.__dict__ | {"total": gcc_traffic.total},
                # (c) rendering computations (alpha evaluations), normalised.
                "render_ops_baseline": baseline.extra["alpha_evaluations"],
                "render_ops_gcc": gw_cc.extra["alpha_evaluations"],
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 3 — cross-accelerator comparison
# ----------------------------------------------------------------------
#: Published numbers for the accelerators we cannot re-simulate (NeRF designs
#: and GPUs); GCC and GSCore rows are filled from our simulations.
TABLE3_STATIC = [
    {"design": "MetaVRain (ISSCC'23)", "model": "NeRF", "area_mm2": 20.25, "power_w": 0.89,
     "throughput_fps": 110.0, "sram_kb": 2015},
    {"design": "Fusion-3D (MICRO'24)", "model": "NeRF", "area_mm2": 8.7, "power_w": 6.0,
     "throughput_fps": 36.0, "sram_kb": 1099},
    {"design": "NVIDIA A6000", "model": "3DGS", "area_mm2": 628.0, "power_w": 300.0,
     "throughput_fps": 300.0, "sram_kb": None},
    {"design": "Jetson AGX Xavier", "model": "3DGS", "area_mm2": 350.0, "power_w": 30.0,
     "throughput_fps": 20.0, "sram_kb": None},
]


def table3(quick: bool = False) -> list[dict]:
    """Comparison of neural-rendering accelerators on the Lego scene.

    Rows for NeRF accelerators and GPUs are the paper's quoted numbers; the
    GSCore and GCC rows carry our simulated throughput (at reduced scene
    scale) next to the paper's published silicon area/power.
    """
    setup = EvalSetup("lego", quick=quick)
    gscore = run_gscore_sim(setup)
    gcc = run_gcc_sim(setup)
    rows = [dict(row, fps_per_mm2=row["throughput_fps"] / row["area_mm2"]) for row in TABLE3_STATIC]
    for report, power_w in ((gscore, 0.87), (gcc, 0.79)):
        rows.append(
            {
                "design": f"{report.accelerator} (simulated)",
                "model": "3DGS",
                "area_mm2": report.area_mm2,
                "power_w": power_w,
                "throughput_fps": report.fps,
                "sram_kb": 272 if report.accelerator == "GSCore" else 190,
                "fps_per_mm2": report.fps_per_mm2,
            }
        )
    return rows


def table4() -> list[dict]:
    """Area and power breakdown of GCC (published Table 4)."""
    return gcc_area_table()


# ----------------------------------------------------------------------
# Figure 12 — energy breakdown
# ----------------------------------------------------------------------
def figure12(scenes: tuple[str, ...] | None = None, quick: bool = False) -> list[dict]:
    """Per-frame energy split into off-chip, on-chip and compute energy.

    Paper: DRAM dominates both designs; GCC cuts DRAM traffic by >50% while
    slightly increasing SRAM activity, for a large net energy win.
    """
    scenes = scenes or all_benchmark_scenes()
    rows = []
    for scene in scenes:
        setup = EvalSetup(scene, quick=quick)
        for report in (run_gscore_sim(setup), run_gcc_sim(setup)):
            energy = report.energy_pj
            rows.append(
                {
                    "scene": scene,
                    "accelerator": report.accelerator,
                    "offchip_mj": energy["dram"] * 1e-9,
                    "onchip_mj": energy["sram"] * 1e-9,
                    "compute_mj": (energy["compute"] + energy["static"]) * 1e-9,
                    "total_mj": report.energy_mj_per_frame,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 13 — design space exploration
# ----------------------------------------------------------------------
def figure13a(
    scene: str = "train",
    buffer_sizes_kb: tuple[int, ...] = (32, 128, 512, 2048, 8192),
    quick: bool = False,
) -> list[dict]:
    """Area-normalised throughput/energy vs Image Buffer capacity.

    Paper: 128 KB and 512 KB are comparable; very large buffers hurt
    area-normalised throughput because the extra SRAM area is not amortised.
    """
    setup = EvalSetup(scene, quick=quick)
    rows = []
    for size_kb in buffer_sizes_kb:
        config = GccConfig(image_buffer_bytes=size_kb * 1024)
        report = run_gcc_sim(setup, config)
        rows.append(
            {
                "buffer_kb": size_kb,
                "fps": report.fps,
                "fps_per_mm2": report.fps_per_mm2,
                "mj_per_mm2": report.energy_per_area,
                "area_mm2": report.area_mm2,
                "cmode": bool(report.extra["cmode_enabled"]),
            }
        )
    return rows


def figure13b(
    scene: str = "train",
    array_sizes: tuple[int, ...] = (4, 8, 16, 32, 64),
    quick: bool = False,
) -> list[dict]:
    """Area-normalised throughput/energy vs Alpha/Blending array size.

    Paper: the 8x8 array is the sweet spot; larger arrays cost area and
    become memory-limited, smaller arrays throttle throughput.
    """
    setup = EvalSetup(scene, quick=quick)
    rows = []
    for size in array_sizes:
        config = GccConfig(alpha_array_size=size)
        report = run_gcc_sim(setup, config)
        rows.append(
            {
                "array_size": size,
                "fps": report.fps,
                "fps_per_mm2": report.fps_per_mm2,
                "mj_per_mm2": report.energy_per_area,
                "area_mm2": report.area_mm2,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 14 — DRAM bandwidth sensitivity
# ----------------------------------------------------------------------
def figure14(scene: str = "train", quick: bool = False) -> list[dict]:
    """Throughput of GCC and GSCore under different DRAM generations.

    Paper: both gain from more bandwidth at the low end; beyond ~220 GB/s
    GCC is compute-bound and flattens while GSCore keeps improving slightly.
    """
    from repro.arch.params import DRAM_PRESETS

    setup = EvalSetup(scene, quick=quick)
    rows = []
    for name in DRAM_PRESETS:
        gcc = run_gcc_sim(setup, GccConfig(dram=name))
        gscore = run_gscore_sim(setup, GScoreConfig(dram=name))
        rows.append(
            {
                "dram": name,
                "bandwidth_gbps": DRAM_PRESETS[name].bandwidth_gbps,
                "gcc_fps": gcc.fps,
                "gscore_fps": gscore.fps,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 15 — GPU dataflow breakdown (Discussion)
# ----------------------------------------------------------------------
def figure15(
    scenes: tuple[str, ...] = ABLATION_SCENES,
    platforms: tuple[str, ...] = ("rtx3090", "jetson"),
    quick: bool = False,
) -> list[dict]:
    """Per-frame stage breakdown of the standard vs GCC dataflow.

    Paper: on GPUs rendering dominates and the GCC dataflow's render stage
    gets *slower* (atomics), so the dataflow alone does not solve edge 3DGS;
    on the accelerators the standard dataflow spends ~40% on preprocessing
    which GCC largely removes.
    """
    rows = []
    for scene in scenes:
        setup = EvalSetup(scene, quick=quick)
        tile_stats = run_tilewise(setup).stats
        gauss_stats = run_gaussianwise(setup).stats
        for platform in platforms:
            gpu = GPU_PRESETS[platform]
            standard = standard_dataflow_breakdown(tile_stats, gpu)
            gcc = gcc_dataflow_breakdown(gauss_stats, gpu)
            rows.append(
                {
                    "scene": scene,
                    "platform": gpu.name,
                    "standard": standard.normalized(),
                    "gcc": gcc.normalized(standard.total),
                    "standard_total_s": standard.total,
                    "gcc_total_s": gcc.total,
                }
            )
        # Accelerator column: normalised stage cycles from the simulators.
        gscore = run_gscore_sim(setup)
        gcc_sim = run_gcc_sim(setup)
        gscore_total = gscore.total_cycles
        rows.append(
            {
                "scene": scene,
                "platform": "GSCore / GCC",
                "standard": {
                    "preprocess": gscore.stage_cycles["preprocess"] / gscore_total,
                    "duplicate": 0.0,
                    "sort": gscore.stage_cycles["sort"] / gscore_total,
                    "render": gscore.stage_cycles["render"] / gscore_total,
                },
                "gcc": {
                    "preprocess": (
                        gcc_sim.stage_cycles["stage1_grouping"]
                        + gcc_sim.stage_cycles["projection"]
                        + gcc_sim.stage_cycles["sh"]
                    )
                    / gscore_total,
                    "duplicate": 0.0,
                    "sort": gcc_sim.stage_cycles["sort"] / gscore_total,
                    "render": max(
                        gcc_sim.stage_cycles["alpha"], gcc_sim.stage_cycles["blend"]
                    )
                    / gscore_total,
                },
                "standard_total_s": gscore.frame_time_s,
                "gcc_total_s": gcc_sim.frame_time_s,
            }
        )
    return rows


def run_all(quick: bool = True) -> dict[str, object]:
    """Run every experiment (quick mode by default) and return the results."""
    return {
        "figure2": figure2(quick=quick),
        "table1": table1(quick=quick),
        "figure4": figure4(),
        "figure6": figure6(quick=quick),
        "table2": table2(quick=quick),
        "figure10": figure10(quick=quick),
        "figure11": figure11(quick=quick),
        "table3": table3(quick=quick),
        "table4": table4(),
        "figure12": figure12(quick=quick),
        "figure13a": figure13a(quick=quick),
        "figure13b": figure13b(quick=quick),
        "figure14": figure14(quick=quick),
        "figure15": figure15(quick=quick),
    }
