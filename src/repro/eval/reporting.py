"""Text rendering of experiment results in the paper's table/figure shapes."""

from __future__ import annotations

from typing import Iterable


def format_table(headers: list[str], rows: Iterable[Iterable[object]], title: str = "") -> str:
    """Render a simple ASCII table."""
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.3g}"
    return str(cell)


def report_figure2(rows: list[dict]) -> str:
    """Figure 2: Gaussian counts per phase and per-Gaussian loads."""
    return format_table(
        ["scene", "total", "in-frustum", "rendered", "rendered/in-frustum", "avg loads"],
        [
            (
                r["scene"],
                r["total"],
                r["in_frustum"],
                r["rendered"],
                r["rendered_fraction"],
                r["avg_loads_per_gaussian"],
            )
            for r in rows
        ],
        title="Figure 2 — Gaussians per phase and per-Gaussian loadings (GSCore dataflow)",
    )


def report_table1(rows: list[dict]) -> str:
    """Table 1: rendered pixels per frame under each bounding method."""
    return format_table(
        ["scene", "AABB px", "OBB px", "alpha px", "rendered px"],
        [
            (r["scene"], r["aabb_pixels"], r["obb_pixels"], r["alpha_pixels"], r["rendered_pixels"])
            for r in rows
        ],
        title="Table 1 — pixels per frame by bounding method",
    )


def report_table2(rows: list[dict]) -> str:
    """Table 2: rendering quality."""
    return format_table(
        ["scene", "GSCore PSNR", "GSCore LPIPS*", "GCC PSNR", "GCC LPIPS*"],
        [
            (r["scene"], r["gscore_psnr"], r["gscore_lpips"], r["gcc_psnr"], r["gcc_lpips"])
            for r in rows
        ],
        title="Table 2 — rendering quality vs the GPU reference (LPIPS* = offline proxy)",
    )


def report_figure10(result: dict) -> str:
    """Figure 10: area-normalised speedup and energy efficiency."""
    rows = result["rows"]
    table = format_table(
        ["scene", "GCC FPS", "GSCore FPS", "speedup (area-norm)", "energy eff (area-norm)"],
        [
            (r["scene"], r["gcc_fps"], r["gscore_fps"], r["speedup"], r["energy_efficiency"])
            for r in rows
        ],
        title="Figure 10 — GCC vs GSCore, area-normalised",
    )
    return (
        table
        + f"\ngeomean speedup: {result['geomean_speedup']:.2f}x"
        + f"\ngeomean energy efficiency: {result['geomean_energy_efficiency']:.2f}x"
    )


def report_figure11(rows: list[dict]) -> str:
    """Figure 11: ablation breakdown."""
    lines = ["Figure 11 — ablation (normalised to GSCore baseline)"]
    for r in rows:
        base_total = max(r["dram_baseline"]["total"], 1)
        lines.append(
            f"  {r['scene']}: speedup GW={r['speedup_gw']:.2f}x, GW+CC={r['speedup_gw_cc']:.2f}x; "
            f"DRAM GW={r['dram_gw']['total'] / base_total:.2f}, "
            f"GW+CC={r['dram_gw_cc']['total'] / base_total:.2f}; "
            f"render ops GCC/base={r['render_ops_gcc'] / max(r['render_ops_baseline'], 1):.2f}"
        )
    return "\n".join(lines)


def report_figure12(rows: list[dict]) -> str:
    """Figure 12: energy breakdown."""
    return format_table(
        ["scene", "accelerator", "off-chip mJ", "on-chip mJ", "compute mJ", "total mJ"],
        [
            (r["scene"], r["accelerator"], r["offchip_mj"], r["onchip_mj"], r["compute_mj"], r["total_mj"])
            for r in rows
        ],
        title="Figure 12 — per-frame energy breakdown",
    )


def report_figure14(rows: list[dict]) -> str:
    """Figure 14: bandwidth sensitivity."""
    return format_table(
        ["DRAM", "GB/s", "GCC FPS", "GSCore FPS"],
        [(r["dram"], r["bandwidth_gbps"], r["gcc_fps"], r["gscore_fps"]) for r in rows],
        title="Figure 14 — throughput vs DRAM bandwidth",
    )


def report_table3(rows: list[dict]) -> str:
    """Table 3: accelerator comparison."""
    return format_table(
        ["design", "model", "area mm2", "power W", "FPS", "FPS/mm2"],
        [
            (
                r["design"],
                r["model"],
                r["area_mm2"],
                r["power_w"],
                r["throughput_fps"],
                r["fps_per_mm2"],
            )
            for r in rows
        ],
        title="Table 3 — neural rendering accelerators (Lego)",
    )


def report_table4(rows: list[dict]) -> str:
    """Table 4: area/power breakdown."""
    return format_table(
        ["component", "area mm2", "power mW", "configuration"],
        [(r["component"], r["area_mm2"], r["power_mw"], r["configuration"]) for r in rows],
        title="Table 4 — GCC area and power breakdown (published)",
    )
