"""Evaluation scene presets.

The paper evaluates six scenes at full training scale (0.1 - 3.3 million
Gaussians, ~1 megapixel frames).  The presets below render each scene's
synthetic stand-in at a reduced scale so the whole reproduction runs on a
laptop; ``scale`` multiplies the paper-scale Gaussian count and
``image_scale`` multiplies the paper's image resolution.  The ratios the
paper reports (rendered fraction, per-Gaussian loads, DRAM traffic split,
speedups) are stable under this scaling; absolute FPS numbers are not
expected to match the 28 nm silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gaussians.synthetic import BENCHMARK_SCENES


@dataclass(frozen=True)
class EvalScenePreset:
    """How one benchmark scene is instantiated for the evaluation harness."""

    name: str
    #: Fraction of the paper-scale Gaussian count to generate.
    scale: float
    #: Fraction of the paper's image resolution to render.
    image_scale: float
    #: Which evaluation camera on the orbit/indoor path to use.
    view_index: int = 0
    #: Name of a :mod:`repro.store` scene-store entry supplying the scene.
    #: When set, the harness resolves the scene through
    #: ``repro.store.store.default_store().get(store)`` instead of
    #: regenerating it with ``make_scene(name, scale=scale)`` — ``scale``
    #: then has no effect (the store entry decides the scene's size), while
    #: ``name`` still selects the :class:`~repro.gaussians.synthetic.SceneSpec`
    #: used for camera placement and trajectory expansion.
    store: str | None = None


#: Default presets: 6k-14k Gaussians and 100-180 px images per scene.
EVAL_SCENES: dict[str, EvalScenePreset] = {
    "palace": EvalScenePreset("palace", scale=0.06, image_scale=0.18),
    "lego": EvalScenePreset("lego", scale=0.06, image_scale=0.18),
    "train": EvalScenePreset("train", scale=0.010, image_scale=0.18),
    "truck": EvalScenePreset("truck", scale=0.005, image_scale=0.18),
    "playroom": EvalScenePreset("playroom", scale=0.005, image_scale=0.12),
    "drjohnson": EvalScenePreset("drjohnson", scale=0.004, image_scale=0.12),
}

def quick_preset(preset: EvalScenePreset) -> EvalScenePreset:
    """Derive the reduced smoke-run variant of ``preset``.

    Uses :func:`dataclasses.replace` so every field other than the two
    scale factors (``view_index`` today, anything added later) carries over
    unchanged.
    """
    return replace(preset, scale=preset.scale * 0.25, image_scale=preset.image_scale * 0.6)


#: Reduced presets for fast smoke runs (tests and --quick benchmarking).
QUICK_SCENES: dict[str, EvalScenePreset] = {
    name: quick_preset(preset) for name, preset in EVAL_SCENES.items()
}

#: The three scenes the paper uses for breakdown/ablation studies (Fig. 11, 15).
ABLATION_SCENES: tuple[str, ...] = ("palace", "train", "drjohnson")

#: The four real-capture scenes of Figure 2 and Table 1.
MOTIVATION_SCENES: tuple[str, ...] = ("train", "truck", "playroom", "drjohnson")

#: Presets registered at runtime (store-backed scenes, ``--scene-file`` CLI
#: loads).  Consulted by :func:`eval_preset` after the built-in tables.
_CUSTOM_PRESETS: dict[str, EvalScenePreset] = {}


def register_preset(preset: EvalScenePreset, overwrite: bool = False) -> None:
    """Register a runtime evaluation preset (e.g. for a file-backed scene).

    The preset's ``name`` must have a :class:`~repro.gaussians.synthetic.SceneSpec`
    (built-in or added via
    :func:`repro.gaussians.synthetic.register_scene_spec`) so cameras and
    trajectories can be expanded for it.  Built-in preset names cannot be
    shadowed; re-registering a custom name requires ``overwrite=True``.
    """
    key = preset.name.lower()
    if key in EVAL_SCENES:
        raise ValueError(f"cannot shadow built-in evaluation preset {preset.name!r}")
    if key in _CUSTOM_PRESETS and not overwrite:
        raise ValueError(f"preset {preset.name!r} is already registered")
    _CUSTOM_PRESETS[key] = preset


def eval_preset(name: str, quick: bool = False) -> EvalScenePreset:
    """Return the evaluation preset for ``name``.

    Runtime-registered presets (:func:`register_preset`) resolve after the
    built-in tables; their quick variant is derived with
    :func:`quick_preset` on demand (for store-backed presets only the
    ``image_scale`` reduction has an effect — the store entry fixes the
    Gaussian count).
    """
    table = QUICK_SCENES if quick else EVAL_SCENES
    key = name.lower()
    if key in table:
        return table[key]
    if key in _CUSTOM_PRESETS:
        preset = _CUSTOM_PRESETS[key]
        return quick_preset(preset) if quick else preset
    raise KeyError(
        f"unknown evaluation scene {name!r}; available: "
        f"{sorted(set(table) | set(_CUSTOM_PRESETS))}"
    )


def all_benchmark_scenes() -> tuple[str, ...]:
    """Names of the six paper benchmark scenes, in the paper's order."""
    return BENCHMARK_SCENES
