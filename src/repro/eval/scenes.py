"""Evaluation scene presets.

The paper evaluates six scenes at full training scale (0.1 - 3.3 million
Gaussians, ~1 megapixel frames).  The presets below render each scene's
synthetic stand-in at a reduced scale so the whole reproduction runs on a
laptop; ``scale`` multiplies the paper-scale Gaussian count and
``image_scale`` multiplies the paper's image resolution.  The ratios the
paper reports (rendered fraction, per-Gaussian loads, DRAM traffic split,
speedups) are stable under this scaling; absolute FPS numbers are not
expected to match the 28 nm silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gaussians.synthetic import BENCHMARK_SCENES


@dataclass(frozen=True)
class EvalScenePreset:
    """How one benchmark scene is instantiated for the evaluation harness."""

    name: str
    #: Fraction of the paper-scale Gaussian count to generate.
    scale: float
    #: Fraction of the paper's image resolution to render.
    image_scale: float
    #: Which evaluation camera on the orbit/indoor path to use.
    view_index: int = 0


#: Default presets: 6k-14k Gaussians and 100-180 px images per scene.
EVAL_SCENES: dict[str, EvalScenePreset] = {
    "palace": EvalScenePreset("palace", scale=0.06, image_scale=0.18),
    "lego": EvalScenePreset("lego", scale=0.06, image_scale=0.18),
    "train": EvalScenePreset("train", scale=0.010, image_scale=0.18),
    "truck": EvalScenePreset("truck", scale=0.005, image_scale=0.18),
    "playroom": EvalScenePreset("playroom", scale=0.005, image_scale=0.12),
    "drjohnson": EvalScenePreset("drjohnson", scale=0.004, image_scale=0.12),
}

def quick_preset(preset: EvalScenePreset) -> EvalScenePreset:
    """Derive the reduced smoke-run variant of ``preset``.

    Uses :func:`dataclasses.replace` so every field other than the two
    scale factors (``view_index`` today, anything added later) carries over
    unchanged.
    """
    return replace(preset, scale=preset.scale * 0.25, image_scale=preset.image_scale * 0.6)


#: Reduced presets for fast smoke runs (tests and --quick benchmarking).
QUICK_SCENES: dict[str, EvalScenePreset] = {
    name: quick_preset(preset) for name, preset in EVAL_SCENES.items()
}

#: The three scenes the paper uses for breakdown/ablation studies (Fig. 11, 15).
ABLATION_SCENES: tuple[str, ...] = ("palace", "train", "drjohnson")

#: The four real-capture scenes of Figure 2 and Table 1.
MOTIVATION_SCENES: tuple[str, ...] = ("train", "truck", "playroom", "drjohnson")


def eval_preset(name: str, quick: bool = False) -> EvalScenePreset:
    """Return the evaluation preset for ``name``."""
    table = QUICK_SCENES if quick else EVAL_SCENES
    key = name.lower()
    if key not in table:
        raise KeyError(f"unknown evaluation scene {name!r}; available: {sorted(table)}")
    return table[key]


def all_benchmark_scenes() -> tuple[str, ...]:
    """Names of the six paper benchmark scenes, in the paper's order."""
    return BENCHMARK_SCENES
