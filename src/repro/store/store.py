"""Scene registry: named scenes resolved lazily at a (lod, quant) tier.

A :class:`SceneStore` maps names to scene factories — the synthetic
benchmark zoo, in-memory scenes, or on-disk files — and resolves
``get(name, lod, quant)`` requests through a bounded
:class:`~repro.serve.cache.LRUCache` keyed ``(name, lod, quant)``.  The base
scene is built at most once; each requested tier is derived from it (LOD
pruning, then a codec round-trip) and cached independently, so a serving
process that mixes quality tiers pays each preparation once.

:func:`default_store` is the process-wide registry pre-populated with the
synthetic zoo (every :data:`repro.gaussians.synthetic.SCENE_SPECS` preset at
its evaluation scale).  Evaluation presets reference entries by name via
``EvalScenePreset.store``, and the ``repro-serve`` CLI registers
``--scene-file`` scenes here under a ``file:`` prefix.

:func:`load_scene_auto` autodetects the three on-disk formats (lossless
``.npz`` archive, quantized store container, text exchange format) and fails
with an actionable error for anything else; :func:`derive_scene_spec` builds
an orbit-camera :class:`~repro.gaussians.synthetic.SceneSpec` for scenes
that arrive from disk without one, so trajectory expansion works for
file-backed scenes exactly as for the synthetic zoo.
"""

from __future__ import annotations

import threading
import zipfile
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.gaussians.io import load_scene_npz, load_scene_text
from repro.gaussians.model import GaussianScene
from repro.gaussians.synthetic import SCENE_SPECS, SceneSpec, make_scene
from repro.serve.cache import LRUCache
from repro.store.codec import (
    QUANT_SPECS,
    is_store_file,
    load_scene_store,
    quant_spec,
    roundtrip_scene,
)
from repro.store.lod import DEFAULT_RATIO, select_lod

#: Default bound on resident prepared scenes per store.  Each entry is a
#: full scene at one (lod, quant) tier; 64 comfortably covers the zoo at a
#: handful of tiers while bounding a long-lived server.
DEFAULT_STORE_CAPACITY = 64


class SceneStore:
    """Named scenes, lazily built and cached per ``(name, lod, quant)``.

    Parameters
    ----------
    capacity:
        Bound on resident prepared scenes (``None`` = unbounded), passed to
        the backing :class:`LRUCache`.
    lod_ratio:
        Keep ratio of the LOD ladder served by :meth:`get` (level ``k``
        retains ``lod_ratio**k`` of the scene).
    """

    def __init__(
        self,
        capacity: int | None = DEFAULT_STORE_CAPACITY,
        lod_ratio: float = DEFAULT_RATIO,
    ) -> None:
        if not 0.0 < lod_ratio < 1.0:
            raise ValueError("lod_ratio must lie strictly between 0 and 1")
        self._factories: dict[str, Callable[[], GaussianScene]] = {}
        self._cache = LRUCache(maxsize=capacity)
        self.lod_ratio = lod_ratio

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        factory: Callable[[], GaussianScene],
        overwrite: bool = False,
    ) -> None:
        """Register ``factory`` as the builder of scene ``name`` (lazy)."""
        key = name.lower()
        if key in self._factories and not overwrite:
            raise ValueError(f"scene {name!r} is already registered")
        self._factories[key] = factory
        if overwrite:
            self.invalidate(key)

    def add_scene(self, name: str, scene: GaussianScene, overwrite: bool = False) -> None:
        """Register an already-built scene under ``name``."""
        self.register(name, lambda: scene, overwrite=overwrite)

    def register_file(self, name: str, path: str | Path, overwrite: bool = False) -> None:
        """Register the scene at ``path`` (format autodetected, loaded lazily)."""
        path = Path(path)
        self.register(name, lambda: load_scene_auto(path), overwrite=overwrite)

    def names(self) -> list[str]:
        """Sorted names of every registered scene."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._factories

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def get(self, name: str, lod: int = 0, quant: str = "lossless") -> GaussianScene:
        """The scene ``name`` prepared at detail level ``lod`` and tier ``quant``.

        The base scene (``lod=0, quant="lossless"``) is built by the
        registered factory at most once; other tiers derive from it.  Every
        tier is cached under ``(name, lod, quant)`` in the store's LRU cache.
        """
        key = name.lower()
        if key not in self._factories:
            raise KeyError(
                f"unknown store scene {name!r}; registered: {self.names()}"
            )
        if lod != int(lod):
            # A fractional lod would prune one Gaussian count but be cached
            # under the truncated integer key, poisoning later lookups.
            raise ValueError(f"lod must be an integer, got {lod!r}")
        lod = int(lod)
        if lod < 0:
            raise ValueError("lod must be non-negative")
        spec = quant_spec(quant)

        cache_key = (key, lod, spec.name)
        base_key = (key, 0, "lossless")
        if cache_key == base_key:
            return self._cache.get_or_create(base_key, self._factories[key])

        def build() -> GaussianScene:
            base = self._cache.get_or_create(base_key, self._factories[key])
            return roundtrip_scene(select_lod(base, lod, self.lod_ratio), spec)

        return self._cache.get_or_create(cache_key, build)

    def warm(
        self, name: str, tiers: "Iterable[tuple[int, str]]"
    ) -> dict[tuple[int, str], int]:
        """Pre-build and cache ``name`` at each ``(lod, quant)`` tier.

        A serving process that knows its quality ladder (e.g. the
        :mod:`repro.sched` scheduler's) can pay every tier's preparation
        cost up front instead of on the first request that lands on it —
        the difference between a predictable start-up and a latency spike
        mid-traffic.  Returns the Gaussian count per warmed tier.
        """
        return {
            (lod, quant): self.get(name, lod=lod, quant=quant).num_gaussians
            for lod, quant in tiers
        }

    def invalidate(self, name: str) -> None:
        """Drop every cached tier of ``name`` (factory stays registered)."""
        key = name.lower()
        for stale in [k for k in self._cache.keys() if k[0] == key]:
            self._cache.pop(stale)

    @property
    def cache(self) -> LRUCache:
        """The backing cache (size, hit/miss/eviction stats, keys)."""
        return self._cache


# ----------------------------------------------------------------------
# Default process-wide store
# ----------------------------------------------------------------------
_DEFAULT_STORE: SceneStore | None = None

#: Guards lazy creation of the process-wide store: the executor's
#: dispatcher thread (streaming frame callbacks), a scheduler thread and
#: the main thread may all resolve scenes concurrently, and two racing
#: first calls would otherwise build two zoos and cache into the loser.
_DEFAULT_STORE_LOCK = threading.Lock()


def _zoo_scale(name: str) -> float:
    """Generation scale of a zoo entry: the evaluation preset's scale."""
    # Lazy import: repro.eval.scenes must stay importable before this
    # module finishes loading (see the import-cycle note in repro.serve.farm).
    from repro.eval.scenes import EVAL_SCENES

    if name in EVAL_SCENES:
        return EVAL_SCENES[name].scale
    return 1.0 if name == "smoke" else 0.05


def _zoo_factory(name: str) -> Callable[[], GaussianScene]:
    def build() -> GaussianScene:
        return make_scene(name, scale=_zoo_scale(name))

    return build


def default_store() -> SceneStore:
    """The process-wide store, created on first use with the synthetic zoo.

    Thread-safe: concurrent first calls (e.g. the executor's dispatcher
    thread racing the main thread) build exactly one store.
    """
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        with _DEFAULT_STORE_LOCK:
            if _DEFAULT_STORE is None:
                store = SceneStore()
                for name in SCENE_SPECS:
                    store.register(name, _zoo_factory(name))
                _DEFAULT_STORE = store
    return _DEFAULT_STORE


def reset_default_store() -> None:
    """Forget the process-wide store (tests; next use rebuilds the zoo)."""
    global _DEFAULT_STORE
    with _DEFAULT_STORE_LOCK:
        _DEFAULT_STORE = None


# ----------------------------------------------------------------------
# On-disk format autodetection
# ----------------------------------------------------------------------
def load_scene_auto(path: str | Path) -> GaussianScene:
    """Load a scene from ``path``, autodetecting the on-disk format.

    Recognised formats: the quantized store container and the lossless
    ``.npz`` archive (both zip-based, discriminated by their keys) and the
    ``# repro-gaussian-scene`` text exchange format.  Anything else raises
    ``ValueError`` naming the formats this build understands.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"scene file not found: {path}")

    with path.open("rb") as handle:
        head = handle.read(4)
    if head[:2] == b"PK":  # zip container => one of the two .npz formats
        if is_store_file(path):
            return load_scene_store(path)
        try:
            return load_scene_npz(path)
        except (KeyError, ValueError, OSError, zipfile.BadZipFile) as exc:
            raise ValueError(
                f"{path} is an .npz archive but not a recognised scene "
                f"container ({exc}); expected keys of "
                "repro.gaussians.io.save_scene_npz or "
                "repro.store.codec.save_scene_store"
            ) from exc

    try:
        text = path.read_text()
    except UnicodeDecodeError as exc:
        raise ValueError(
            f"unknown scene file format: {path} is neither an .npz scene "
            "container nor repro text; known formats: lossless .npz "
            "(save_scene_npz), quantized store .npz (save_scene_store), "
            "text (save_scene_text)"
        ) from exc
    first = text.lstrip().splitlines()[0] if text.strip() else ""
    if first[:1] in set("#+-.0123456789"):
        from repro.gaussians.io import scene_from_text

        return scene_from_text(text)
    raise ValueError(
        f"unknown scene file format: {path}; known formats: lossless .npz "
        "(save_scene_npz), quantized store .npz (save_scene_store), "
        "text (save_scene_text)"
    )


# ----------------------------------------------------------------------
# Camera geometry for file-backed scenes
# ----------------------------------------------------------------------
def derive_scene_spec(
    scene: GaussianScene,
    name: str,
    image_size: tuple[int, int] = (256, 256),
    fov_y_degrees: float = 50.0,
) -> SceneSpec:
    """Build an orbit-camera :class:`SceneSpec` for a scene loaded from disk.

    The extent is a robust radius of the Gaussian centres (90th percentile
    of the distance to their centroid), so a few outlier background splats
    cannot push the orbit camera out to where the scene is a speck; the
    remaining parameters follow the object-scene conventions of the
    synthetic zoo.  The spec drives camera placement and trajectory
    expansion only — it is never used to regenerate the scene.
    """
    if scene.num_gaussians == 0:
        extent = 1.0
    else:
        centred = scene.means - scene.means.mean(axis=0)
        radii = np.linalg.norm(centred, axis=1)
        extent = float(max(np.percentile(radii, 90.0), 1e-3))
    return SceneSpec(
        name=name,
        base_num_gaussians=max(1, scene.num_gaussians),
        extent=extent,
        num_clusters=1,
        cluster_sigma=0.1,
        background_fraction=0.0,
        opacity_beta=(2.0, 1.0),
        scale_lognormal=(-4.0, 0.6),
        camera_radius_factor=2.4,
        camera_height_factor=0.7,
        indoor=False,
        image_size=image_size,
        fov_y_degrees=fov_y_degrees,
    )


__all__ = [
    "DEFAULT_STORE_CAPACITY",
    "QUANT_SPECS",
    "SceneStore",
    "default_store",
    "derive_scene_spec",
    "load_scene_auto",
    "reset_default_store",
]
