"""Level-of-detail pyramid: importance-ranked pruning of a Gaussian scene.

The paper reduces per-frame Gaussian traffic by skipping work the image
cannot see; a LOD pyramid reduces it by not *shipping* Gaussians a quality
tier does not need.  Each scene is ranked once by an importance proxy —

    importance_i = opacity_i * (second-largest scale_i) * (largest scale_i)

— opacity times the area of the ellipsoid's largest projected ellipse, a
camera-free stand-in for "expected contribution to any frame": a large,
opaque splat shapes every view it enters, while a tiny or near-transparent
one is the long tail the alpha-blend terminates on anyway.

Level ``k`` keeps the top ``ratio**k`` fraction of Gaussians under that
ranking (level 0 is the full scene, untouched).  Because every level is a
prefix of the same ranking, the levels are strictly **nested**: each level's
Gaussian set contains every coarser level, and each is a valid
:class:`~repro.gaussians.model.GaussianScene` preserving the original array
order (so level 0 is bit-identical to the input, and rendering a level is
deterministic).

Quality against the full scene is measured with the existing
:mod:`repro.render.metrics` (PSNR and the LPIPS proxy) via
:func:`level_quality` / :func:`pyramid_quality`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.gaussians.model import GaussianScene
from repro.render.metrics import lpips_proxy, psnr

#: Default number of pyramid levels (level 0 = full scene).
DEFAULT_NUM_LEVELS = 4

#: Default per-level keep ratio: level k retains ``ratio**k`` of the scene.
DEFAULT_RATIO = 0.5


def importance_scores(scene: GaussianScene) -> np.ndarray:
    """Per-Gaussian importance: opacity x projected-footprint area proxy.

    The footprint proxy is the product of the two largest per-axis scales —
    the area (up to a constant) of the largest ellipse the ellipsoid can
    project to, so the ranking is camera-free and can be computed once per
    scene rather than once per frame.
    """
    if scene.num_gaussians == 0:
        return np.zeros(0)
    top_two = np.sort(scene.scales, axis=1)[:, 1:]
    return scene.opacities * top_two[:, 0] * top_two[:, 1]


def lod_keep_count(num_gaussians: int, level: int, ratio: float = DEFAULT_RATIO) -> int:
    """Gaussians retained at ``level`` (at least 1 for a non-empty scene)."""
    if level < 0:
        raise ValueError("lod level must be non-negative")
    if not 0.0 < ratio < 1.0:
        raise ValueError("lod ratio must lie strictly between 0 and 1")
    if num_gaussians == 0 or level == 0:
        return num_gaussians
    return max(1, int(round(num_gaussians * ratio**level)))


def select_lod(
    scene: GaussianScene, level: int, ratio: float = DEFAULT_RATIO
) -> GaussianScene:
    """The ``level``-th detail level of ``scene``.

    Level 0 returns ``scene`` itself (same object, bit-identical arrays);
    deeper levels keep the top ``ratio**level`` fraction by
    :func:`importance_scores`, preserving the original Gaussian order so
    levels of the same scene are nested prefixes of one ranking.
    """
    count = lod_keep_count(scene.num_gaussians, level, ratio)
    if level == 0 or count == scene.num_gaussians:
        return scene
    order = np.argsort(-importance_scores(scene), kind="stable")
    keep = np.sort(order[:count])
    return scene.subset(keep)


@dataclass(frozen=True)
class LodPyramid:
    """K nested detail levels of one scene (level 0 = full detail)."""

    levels: tuple[GaussianScene, ...]
    ratio: float = field(default=DEFAULT_RATIO)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a pyramid needs at least one level")

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def name(self) -> str:
        return self.levels[0].name

    def level(self, k: int) -> GaussianScene:
        """The ``k``-th level; raises ``IndexError`` beyond the pyramid."""
        if not 0 <= k < self.num_levels:
            raise IndexError(
                f"lod level {k} out of range for a {self.num_levels}-level pyramid"
            )
        return self.levels[k]

    def keep_fractions(self) -> list[float]:
        """Retained fraction of the full scene at each level."""
        total = self.levels[0].num_gaussians
        if total == 0:
            return [1.0] * self.num_levels
        return [lvl.num_gaussians / total for lvl in self.levels]


def build_lod_pyramid(
    scene: GaussianScene,
    num_levels: int = DEFAULT_NUM_LEVELS,
    ratio: float = DEFAULT_RATIO,
) -> LodPyramid:
    """Rank ``scene`` once and cut ``num_levels`` nested detail levels."""
    if num_levels < 1:
        raise ValueError("num_levels must be at least 1")
    levels = tuple(select_lod(scene, k, ratio) for k in range(num_levels))
    return LodPyramid(levels=levels, ratio=ratio)


def level_quality(reference_image: np.ndarray, level_image: np.ndarray) -> dict:
    """PSNR/LPIPS-proxy of one level's render against the full-scene render."""
    return {
        "psnr_db": psnr(reference_image, level_image),
        "lpips_proxy": lpips_proxy(reference_image, level_image),
    }


def pyramid_quality(
    pyramid: LodPyramid, render_fn: Callable[[GaussianScene], np.ndarray]
) -> list[dict]:
    """Render every level with ``render_fn`` and score it against level 0.

    ``render_fn`` maps a scene to an image (e.g. a closure over a fixed
    camera and :func:`repro.serve.farm.render_frame`); level 0 scores PSNR
    ``inf`` / LPIPS-proxy 0 by construction.
    """
    reference = render_fn(pyramid.level(0))
    report = []
    for k in range(pyramid.num_levels):
        level_scene = pyramid.level(k)
        image = reference if k == 0 else render_fn(level_scene)
        entry = {
            "level": k,
            "num_gaussians": level_scene.num_gaussians,
            "keep_fraction": pyramid.keep_fractions()[k],
        }
        entry.update(level_quality(reference, image))
        report.append(entry)
    return report
