"""Quantized scene codec: per-attribute compression behind a :class:`QuantSpec`.

The paper's central concern is Gaussian memory traffic — every Gaussian costs
59 float32 parameters (236 bytes) each time it crosses DRAM.  This module
attacks the same axis at rest and on the wire: a scene can be *encoded* under
a named quantization tier, stored in a versioned ``.npz`` container, and
*decoded* back into a valid :class:`~repro.gaussians.model.GaussianScene`.

Per-attribute modes (the letters follow NumPy dtype characters):

``means``
    ``f8``/``f4``/``f2`` float widths, or ``u16`` — 16-bit fixed point over
    the scene's per-axis bounding box (uniform step ``(hi - lo) / 65535``),
    which beats fp16 for world-space positions because the error is absolute,
    not relative to magnitude.
``scales``
    ``f8``/``f4``, or ``logf2`` — fp16 of ``log(scale)``.  Encoding in the
    log domain preserves *relative* precision across the orders of magnitude
    spanned by foreground/background primitive sizes, and ``exp`` of any
    finite fp16 is strictly positive, so decoded scenes always pass
    validation.
``quaternions``
    ``f8``/``f4``/``f2``, or ``u8`` per component over ``[-1, 1]``.  Lossy
    modes store the *normalised* quaternion (renderers only consume the unit
    rotation, so the norm is redundant); a unit quaternion's largest
    component is at least 0.5, far above the u8 step of 2/255, so decoded
    quaternions are never the zero vector.
``opacities``
    ``f8``/``f4``/``f2``, or ``u8`` on the 255-level grid ``q / 255`` with
    ``q`` in ``1..255`` — exactly the (0, 1] range the scene model requires,
    and the same 1/255 resolution at which the alpha-blend termination
    threshold operates.
``sh_dc`` / ``sh_rest``
    The DC (degree-0) SH band carries the base colour and is kept at float
    precision (``f8``/``f4``/``f2``); the 15 higher-order coefficients per
    channel may additionally drop to ``u8`` with per-coefficient min/max
    ranges (trained models concentrate energy in the DC band, so the
    view-dependent residual tolerates coarse steps).

Byte accounting is exact: :func:`payload_nbytes` sums the actual array bytes
of an encoded payload (aux ranges included), and :func:`fp32_nbytes` is the
paper's 236-bytes-per-Gaussian baseline, so compression ratios reported by
the store benchmark are measured, not estimated.

The ``lossless`` tier stores every attribute as float64 — bit-for-bit the
in-memory representation — which is what lets the store-backed serving path
guarantee bitwise-identical images and statistics counters to the legacy
:mod:`repro.gaussians.io` pipeline.
"""

from __future__ import annotations

import dataclasses
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.gaussians.model import BYTES_PER_GAUSSIAN, GaussianScene

#: Version stamp of the quantized container layout.  Bump on any change to
#: the payload keys or their meaning; the loader refuses other versions.
STORE_VERSION = 1

#: Allowed modes per attribute (NumPy dtype characters, plus the two
#: transform-coded modes ``u16``-fixed-point means and ``logf2`` scales).
MEANS_MODES = ("f8", "f4", "f2", "u16")
SCALES_MODES = ("f8", "f4", "logf2")
QUATERNION_MODES = ("f8", "f4", "f2", "u8")
OPACITY_MODES = ("f8", "f4", "f2", "u8")
SH_DC_MODES = ("f8", "f4", "f2")
SH_REST_MODES = ("f8", "f4", "f2", "u8")


@dataclass(frozen=True)
class QuantSpec:
    """One quantization tier: an encoding mode per scene attribute.

    Hashable (frozen dataclass), so a spec — or its :attr:`name` — can key
    caches such as the :class:`~repro.store.store.SceneStore` registry.
    """

    name: str
    means: str = "f8"
    scales: str = "f8"
    quaternions: str = "f8"
    opacities: str = "f8"
    sh_dc: str = "f8"
    sh_rest: str = "f8"

    def __post_init__(self) -> None:
        for attr, allowed in (
            ("means", MEANS_MODES),
            ("scales", SCALES_MODES),
            ("quaternions", QUATERNION_MODES),
            ("opacities", OPACITY_MODES),
            ("sh_dc", SH_DC_MODES),
            ("sh_rest", SH_REST_MODES),
        ):
            mode = getattr(self, attr)
            if mode not in allowed:
                raise ValueError(
                    f"unknown {attr} mode {mode!r}; allowed: {allowed}"
                )

    @property
    def is_lossless(self) -> bool:
        """True when every attribute is stored as float64 (bit-exact)."""
        return all(
            getattr(self, f.name) == "f8"
            for f in dataclasses.fields(self)
            if f.name != "name"
        )

    def bytes_per_gaussian(self) -> float:
        """Nominal payload bytes per Gaussian under this tier (aux excluded)."""
        width = {"f8": 8, "f4": 4, "f2": 2, "logf2": 2, "u16": 2, "u8": 1}
        return (
            3 * width[self.means]
            + 3 * width[self.scales]
            + 4 * width[self.quaternions]
            + 1 * width[self.opacities]
            + 3 * width[self.sh_dc]
            + 45 * width[self.sh_rest]
        )


#: The named tiers the serving stack exposes (``--quant`` on the CLI,
#: ``RenderJob.quant`` on the farm).  ``lossless`` is bit-exact; ``fp16``
#: halves-or-better every attribute at float16 precision; ``compact`` is the
#: aggressive integer tier (~68 B/Gaussian vs the 236 B fp32 baseline).
QUANT_SPECS: dict[str, QuantSpec] = {
    "lossless": QuantSpec("lossless"),
    "fp16": QuantSpec(
        "fp16",
        means="f2",
        scales="logf2",
        quaternions="f2",
        opacities="f2",
        sh_dc="f2",
        sh_rest="f2",
    ),
    "compact": QuantSpec(
        "compact",
        means="u16",
        scales="logf2",
        quaternions="u8",
        opacities="u8",
        sh_dc="f2",
        sh_rest="u8",
    ),
}


def quant_spec(name: str) -> QuantSpec:
    """Return the named tier, raising ``KeyError`` with the available names."""
    key = name.lower()
    if key not in QUANT_SPECS:
        raise KeyError(
            f"unknown quantization tier {name!r}; available: {sorted(QUANT_SPECS)}"
        )
    return QUANT_SPECS[key]


# ----------------------------------------------------------------------
# Per-attribute encode/decode
# ----------------------------------------------------------------------
def _encode_minmax(values: np.ndarray, levels: int, dtype) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Uniform fixed-point quantization of ``values`` over per-column ranges.

    Returns ``(codes, lo, hi)`` where columns are every axis but the first
    (the Gaussian axis).  Degenerate ranges (``hi == lo``, including the
    empty scene) encode to zero codes and decode to ``lo`` exactly.
    """
    if values.shape[0] == 0:
        lo = np.zeros(values.shape[1:])
        hi = np.zeros(values.shape[1:])
        return np.zeros(values.shape, dtype=dtype), lo, hi
    lo = values.min(axis=0)
    hi = values.max(axis=0)
    span = hi - lo
    safe_span = np.where(span > 0, span, 1.0)
    codes = np.round((values - lo) / safe_span * levels)
    codes = np.clip(codes, 0, levels).astype(dtype)
    return codes, lo, hi


def _decode_minmax(codes: np.ndarray, lo: np.ndarray, hi: np.ndarray, levels: int) -> np.ndarray:
    """Invert :func:`_encode_minmax` back to float64 values."""
    span = hi - lo
    return lo + codes.astype(np.float64) / levels * span


def _unit_quaternions(scene: GaussianScene) -> np.ndarray:
    if scene.num_gaussians == 0:
        return scene.quaternions.astype(np.float64)
    return scene.normalized_quaternions()


def _positive_float_cast(values: np.ndarray, mode: str) -> np.ndarray:
    """Cast strictly-positive values to ``mode``, preserving positivity.

    A narrowing cast can round a tiny positive float64 (e.g. an opacity of
    1e-8) to 0.0, which would make the decoded scene fail validation; pin
    such underflows to the target dtype's smallest subnormal instead.
    """
    dtype = np.dtype(mode)
    cast = values.astype(dtype)
    if mode == "f8":
        return cast
    return np.maximum(cast, np.finfo(dtype).smallest_subnormal)


def encode_scene(scene: GaussianScene, spec: QuantSpec) -> dict[str, np.ndarray]:
    """Encode ``scene`` under ``spec`` into a flat payload-array mapping.

    Encoding is deterministic: the same (scene, spec) always produces
    byte-identical payload arrays, which is what makes farm workers that
    decode a shipped payload agree bitwise with a parent that decoded the
    same encoding in-process.
    """
    payload: dict[str, np.ndarray] = {}

    if spec.means == "u16":
        codes, lo, hi = _encode_minmax(scene.means, 65535, np.uint16)
        payload["means"] = codes
        payload["means_lo"] = lo
        payload["means_hi"] = hi
    else:
        payload["means"] = scene.means.astype(np.dtype(spec.means))

    if spec.scales == "logf2":
        payload["scales"] = np.log(scene.scales).astype(np.float16)
    else:
        payload["scales"] = _positive_float_cast(scene.scales, spec.scales)

    if spec.quaternions == "u8":
        unit = _unit_quaternions(scene)
        codes = np.round((unit + 1.0) / 2.0 * 255.0)
        payload["quaternions"] = np.clip(codes, 0, 255).astype(np.uint8)
    elif spec.quaternions == "f8":
        payload["quaternions"] = scene.quaternions.astype(np.float64)
    else:
        payload["quaternions"] = _unit_quaternions(scene).astype(
            np.dtype(spec.quaternions)
        )

    if spec.opacities == "u8":
        codes = np.clip(np.round(scene.opacities * 255.0), 1, 255)
        payload["opacities"] = codes.astype(np.uint8)
    else:
        payload["opacities"] = _positive_float_cast(scene.opacities, spec.opacities)

    dc = scene.sh_coeffs[:, :, 0]
    rest = scene.sh_coeffs[:, :, 1:]
    payload["sh_dc"] = dc.astype(np.dtype(spec.sh_dc))
    if spec.sh_rest == "u8":
        codes, lo, hi = _encode_minmax(rest, 255, np.uint8)
        payload["sh_rest"] = codes
        payload["sh_rest_lo"] = lo
        payload["sh_rest_hi"] = hi
    else:
        payload["sh_rest"] = rest.astype(np.dtype(spec.sh_rest))

    return payload


def decode_payload(payload: dict[str, np.ndarray], spec: QuantSpec) -> GaussianScene:
    """Decode a payload produced by :func:`encode_scene` back into a scene.

    The result is always a valid :class:`GaussianScene` (float64 arrays,
    positive scales, opacities in (0, 1], non-zero quaternions); for the
    ``lossless`` tier it is bit-for-bit the encoded scene.
    """
    if spec.means == "u16":
        means = _decode_minmax(
            payload["means"], payload["means_lo"], payload["means_hi"], 65535
        )
    else:
        means = payload["means"].astype(np.float64)

    if spec.scales == "logf2":
        # exp() of float64's most negative log still underflows to 0.0 for
        # pathological (denormal-scale) inputs; pin to the smallest positive
        # double so the decoded scene always validates.
        scales = np.maximum(
            np.exp(payload["scales"].astype(np.float64)),
            np.finfo(np.float64).smallest_subnormal,
        )
    else:
        scales = payload["scales"].astype(np.float64)

    if spec.quaternions == "u8":
        quaternions = payload["quaternions"].astype(np.float64) / 255.0 * 2.0 - 1.0
    else:
        quaternions = payload["quaternions"].astype(np.float64)

    if spec.opacities == "u8":
        opacities = payload["opacities"].astype(np.float64) / 255.0
    else:
        opacities = payload["opacities"].astype(np.float64)

    dc = payload["sh_dc"].astype(np.float64)
    if spec.sh_rest == "u8":
        rest = _decode_minmax(
            payload["sh_rest"], payload["sh_rest_lo"], payload["sh_rest_hi"], 255
        )
    else:
        rest = payload["sh_rest"].astype(np.float64)
    sh_coeffs = np.concatenate([dc[:, :, None], rest], axis=2)

    name = payload.get("name")
    return GaussianScene(
        means=means,
        scales=scales,
        quaternions=quaternions,
        opacities=opacities,
        sh_coeffs=sh_coeffs,
        name=str(name) if name is not None else "scene",
    )


def roundtrip_scene(scene: GaussianScene, spec: QuantSpec) -> GaussianScene:
    """``decode(encode(scene))`` — the scene a quality tier actually renders.

    For the ``lossless`` tier this returns ``scene`` itself (no copy), so
    lossless serving is structurally bit-identical to the legacy path.
    """
    if spec.is_lossless:
        return scene
    decoded = decode_payload(encode_scene(scene, spec), spec)
    return dataclasses.replace(decoded, name=scene.name)


# ----------------------------------------------------------------------
# Byte accounting
# ----------------------------------------------------------------------
def payload_nbytes(payload: dict[str, np.ndarray]) -> int:
    """Exact bytes of an encoded payload (all arrays, aux ranges included)."""
    return int(sum(np.asarray(a).nbytes for a in payload.values()))


def fp32_nbytes(scene: GaussianScene) -> int:
    """The paper's fp32 baseline: 59 floats = 236 bytes per Gaussian."""
    return scene.num_gaussians * BYTES_PER_GAUSSIAN


def encoded_nbytes(scene: GaussianScene, spec: QuantSpec) -> int:
    """Exact payload bytes of ``scene`` encoded under ``spec``."""
    return payload_nbytes(encode_scene(scene, spec))


def compression_ratio(scene: GaussianScene, spec: QuantSpec) -> float:
    """fp32-baseline bytes divided by exact encoded payload bytes.

    An empty scene has nothing to compress (the payload is aux overhead
    only), so its ratio is defined as 1.0.
    """
    if scene.num_gaussians == 0:
        return 1.0
    return fp32_nbytes(scene) / encoded_nbytes(scene, spec)


# ----------------------------------------------------------------------
# Versioned on-disk container
# ----------------------------------------------------------------------
def save_scene_store(scene: GaussianScene, path: str | Path, spec: QuantSpec) -> None:
    """Write ``scene`` encoded under ``spec`` to a versioned ``.npz`` container.

    The container records the store version, the scene name and every
    :class:`QuantSpec` field, so :func:`load_scene_store` needs no external
    spec to decode.  Distinct from the lossless archive of
    :func:`repro.gaussians.io.save_scene_npz` (which this format complements,
    not replaces): the discriminating key is ``store_version``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = encode_scene(scene, spec)
    spec_fields = {
        f"spec_{f.name}": np.array(getattr(spec, f.name))
        for f in dataclasses.fields(spec)
    }
    np.savez_compressed(
        path,
        store_version=np.array(STORE_VERSION),
        name=np.array(scene.name),
        **spec_fields,
        **payload,
    )


def load_scene_store(path: str | Path) -> GaussianScene:
    """Load and decode a container written by :func:`save_scene_store`.

    Raises ``ValueError`` for a non-store archive or an unsupported store
    version.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        if "store_version" not in data.files:
            raise ValueError(
                f"{path} is not a quantized scene-store container (no "
                "'store_version' key); for lossless scene archives use "
                "repro.gaussians.io.load_scene_npz"
            )
        version = int(data["store_version"])
        if version != STORE_VERSION:
            raise ValueError(
                f"unsupported scene-store version {version} in {path}; "
                f"this build reads version {STORE_VERSION}"
            )
        spec_kwargs = {
            f.name: str(data[f"spec_{f.name}"])
            for f in dataclasses.fields(QuantSpec)
        }
        spec = QuantSpec(**spec_kwargs)
        payload = {
            key: data[key]
            for key in data.files
            if key != "store_version" and not key.startswith("spec_")
        }
    scene = decode_payload(payload, spec)
    return dataclasses.replace(scene, name=str(payload.get("name", scene.name)))


def is_store_file(path: str | Path) -> bool:
    """True when ``path`` is a readable quantized scene-store container."""
    try:
        with np.load(Path(path), allow_pickle=False) as data:
            return "store_version" in data.files
    except (OSError, ValueError, zipfile.BadZipFile):
        return False
