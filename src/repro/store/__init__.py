"""Scene store subsystem: quantized codec, LOD pyramid and scene registry.

Three layers, each usable alone:

* :mod:`repro.store.codec` — per-attribute quantization behind a
  :class:`~repro.store.codec.QuantSpec` (named tiers ``lossless`` /
  ``fp16`` / ``compact``), a versioned on-disk ``.npz`` container, and exact
  byte accounting so compression ratios are measured, not estimated.
* :mod:`repro.store.lod` — an importance-ranked (opacity x projected
  footprint proxy) pruning ladder producing nested detail levels, each a
  valid scene, with PSNR/LPIPS-proxy quality scored against the full scene.
* :mod:`repro.store.store` — the :class:`~repro.store.store.SceneStore`
  registry resolving named scenes lazily at a ``(lod, quant)`` tier through
  a bounded LRU cache, plus on-disk format autodetection.

Quickstart::

    from repro.store import QUANT_SPECS, build_lod_pyramid, default_store

    scene = default_store().get("train", lod=1, quant="compact")
    pyramid = build_lod_pyramid(default_store().get("train"))

Import-order note: :mod:`~repro.store.codec` and :mod:`~repro.store.lod`
depend only on :mod:`repro.gaussians`/:mod:`repro.render` and are imported
first; :mod:`~repro.store.store` additionally pulls in
:mod:`repro.serve.cache` (whose package ``__init__`` imports the farm, which
imports the two codec/lod modules above) — keep that ordering or the cycle
bites.
"""

from repro.store.codec import (
    QUANT_SPECS,
    QuantSpec,
    STORE_VERSION,
    compression_ratio,
    decode_payload,
    encode_scene,
    encoded_nbytes,
    fp32_nbytes,
    is_store_file,
    load_scene_store,
    payload_nbytes,
    quant_spec,
    roundtrip_scene,
    save_scene_store,
)
from repro.store.lod import (
    LodPyramid,
    build_lod_pyramid,
    importance_scores,
    level_quality,
    lod_keep_count,
    pyramid_quality,
    select_lod,
)
from repro.store.store import (
    DEFAULT_STORE_CAPACITY,
    SceneStore,
    default_store,
    derive_scene_spec,
    load_scene_auto,
    reset_default_store,
)

__all__ = [
    "DEFAULT_STORE_CAPACITY",
    "LodPyramid",
    "QUANT_SPECS",
    "QuantSpec",
    "STORE_VERSION",
    "SceneStore",
    "build_lod_pyramid",
    "compression_ratio",
    "decode_payload",
    "default_store",
    "derive_scene_spec",
    "encode_scene",
    "encoded_nbytes",
    "fp32_nbytes",
    "importance_scores",
    "is_store_file",
    "level_quality",
    "load_scene_auto",
    "load_scene_store",
    "lod_keep_count",
    "payload_nbytes",
    "pyramid_quality",
    "quant_spec",
    "reset_default_store",
    "roundtrip_scene",
    "save_scene_store",
    "select_lod",
]
