"""Render-farm serving subsystem: trajectory workloads over a worker pool.

This package turns the single-frame evaluation stack into a frame-streaming
render service:

* :mod:`repro.serve.trajectories` — parameterised camera paths (orbit,
  dolly, walkthrough, random-jitter) that expand any evaluation preset into
  an N-frame :class:`~repro.serve.trajectories.RenderJob`;
* :mod:`repro.serve.farm` — the :class:`~repro.serve.farm.RenderFarm`, a
  one-job-at-a-time facade over the execution subsystem
  (:mod:`repro.exec`): a transient per-job worker pool by default, a
  shared persistent :class:`~repro.exec.executor.RenderExecutor` (warm
  workers, resident scene tiers) when one is passed, or an in-process
  sequential path — aggregating images, statistics counters and
  throughput/latency figures into a :class:`~repro.serve.farm.JobResult`;
* :mod:`repro.serve.cache` — the bounded :class:`~repro.serve.cache.LRUCache`
  backing the evaluation runner's artifact memos;
* ``python -m repro.serve`` (also installed as ``repro-serve``) — the
  command-line front end.

Quickstart::

    from repro.serve import RenderFarm, RenderJob, make_trajectory

    job = RenderJob("train", make_trajectory("orbit", num_frames=16))
    result = RenderFarm(num_workers=4).run(job)
    print(result.frames_per_second, result.p95_ms)
"""

from repro.serve.cache import CacheStats, LRUCache
from repro.serve.farm import (
    FrameCallback,
    FrameRecord,
    FrameRenderError,
    FrameSpec,
    JobResult,
    RenderFarm,
    render_frame,
)
from repro.serve.trajectories import (
    TRAJECTORY_KINDS,
    RenderJob,
    Trajectory,
    make_trajectory,
)

__all__ = [
    "CacheStats",
    "FrameCallback",
    "FrameRecord",
    "FrameRenderError",
    "FrameSpec",
    "JobResult",
    "LRUCache",
    "RenderFarm",
    "RenderJob",
    "TRAJECTORY_KINDS",
    "Trajectory",
    "make_trajectory",
    "render_frame",
]
