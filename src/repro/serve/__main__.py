"""Command-line front end of the render-farm serving subsystem.

Run a named evaluation scene along a camera trajectory, sharded across a
worker pool, and print a throughput/latency/work report::

    python -m repro.serve --scene train --trajectory orbit --frames 16 --workers 4
    python -m repro.serve --scene drjohnson --trajectory walkthrough \
        --dataflow gaussianwise --quick --json

The same entry point is installed as the ``repro-serve`` console script.
Exit status is 0 on success; bad arguments exit with ``argparse``'s usual
status 2.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.eval.reporting import format_table
from repro.eval.scenes import EVAL_SCENES
from repro.render.common import BACKENDS
from repro.serve.farm import DATAFLOWS, JobResult, RenderFarm
from repro.serve.trajectories import TRAJECTORY_KINDS, RenderJob, make_trajectory


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Render a scene trajectory on the render farm.",
    )
    parser.add_argument(
        "--scene",
        default="train",
        choices=sorted(EVAL_SCENES),
        help="evaluation scene preset to render",
    )
    parser.add_argument(
        "--trajectory",
        default="orbit",
        choices=TRAJECTORY_KINDS,
        help="camera path to expand over the scene",
    )
    parser.add_argument(
        "--frames",
        type=_positive_int,
        default=16,
        help="number of frames in the job",
    )
    parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        help="worker processes (0 or 1 = in-process sequential fallback)",
    )
    parser.add_argument(
        "--dataflow",
        default="tilewise",
        choices=DATAFLOWS,
        help="rendering dataflow (standard tile-wise or GCC Gaussian-wise)",
    )
    parser.add_argument(
        "--backend",
        default="vectorized",
        choices=BACKENDS,
        help="rasterisation engine",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced quick preset (smoke runs)",
    )
    parser.add_argument(
        "--view-index",
        type=int,
        default=0,
        help="anchor evaluation view for dolly/jitter trajectories",
    )
    parser.add_argument(
        "--seed",
        type=_nonnegative_int,
        default=0,
        help="seed of the jitter trajectory",
    )
    parser.add_argument(
        "--mp-context",
        default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method (default: platform default)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    return parser


def format_report(result: JobResult) -> str:
    """Render a :class:`JobResult` as a human-readable text report."""
    job = result.job
    mode = (
        f"{result.num_workers} workers"
        if result.num_workers
        else "sequential (in-process)"
    )
    lines = [
        f"Render-farm job: scene={job.scene} trajectory={job.trajectory.kind} "
        f"dataflow={job.dataflow} backend={result.spec.backend} "
        f"quick={job.quick}",
        f"  frames: {result.num_frames}   scheduling: {mode}",
        f"  wall time: {result.wall_seconds:.3f} s   "
        f"throughput: {result.frames_per_second:.2f} frames/s",
        f"  per-frame latency: p50 {result.p50_ms:.1f} ms   "
        f"p95 {result.p95_ms:.1f} ms",
        "",
        format_table(
            ["counter", "total over job"],
            sorted(result.aggregate_counters().items()),
            title="Aggregated work counters",
        ),
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trajectory = make_trajectory(
        args.trajectory,
        num_frames=args.frames,
        view_index=args.view_index,
        seed=args.seed,
    )
    job = RenderJob(
        scene=args.scene,
        trajectory=trajectory,
        quick=args.quick,
        dataflow=args.dataflow,
        backend=args.backend,
    )
    farm = RenderFarm(num_workers=args.workers, mp_context=args.mp_context)
    result = farm.run(job)
    if args.json:
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
    else:
        print(format_report(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
