"""Command-line front end of the render-farm serving subsystem.

Run a named evaluation scene — or any scene file on disk — along a camera
trajectory, sharded across a worker pool, and print a
throughput/latency/work report::

    python -m repro.serve --scene train --trajectory orbit --frames 16 --workers 4
    python -m repro.serve --scene drjohnson --trajectory walkthrough \
        --dataflow gaussianwise --quick --json
    python -m repro.serve --scene-file model.npz --frames 8 --lod 1 --quant compact

``--scene-file`` autodetects the on-disk format (lossless ``.npz``,
quantized store container, or the text exchange format) and fails with a
clear error otherwise; ``--lod``/``--quant`` select the scene store's
quality tier for any scene, named or file-backed.

``--repeat N`` measures steady state on a persistent
:class:`~repro.exec.executor.RenderExecutor`: iteration 1 is cold (worker
start-up, scene encode, worker-side decode), the rest land on resident
worker scenes, and the report splits warm vs cold frames/s — the executor
win, visible from the CLI::

    python -m repro.serve --scene train --frames 8 --workers 4 --repeat 5

The same entry point is installed as the ``repro-serve`` console script.
Exit status is 0 on success; 3 when ``--alerts`` rules are firing against
the run's final metrics; bad arguments (including unreadable or
unrecognised scene files) exit with ``argparse``'s usual status 2.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path

from repro.eval.reporting import format_table
from repro.eval.scenes import EVAL_SCENES, EvalScenePreset, register_preset
from repro.gaussians.synthetic import register_scene_spec
from repro.render.common import BACKENDS, DTYPES
from repro.serve.farm import DATAFLOWS, JobResult, RenderFarm
from repro.serve.trajectories import TRAJECTORY_KINDS, RenderJob, make_trajectory
from repro.store.codec import QUANT_SPECS
from repro.store.store import default_store, derive_scene_spec, load_scene_auto


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Render a scene trajectory on the render farm.",
    )
    parser.add_argument(
        "--scene",
        default="train",
        choices=sorted(EVAL_SCENES),
        help="evaluation scene preset to render",
    )
    parser.add_argument(
        "--scene-file",
        default=None,
        metavar="PATH",
        help=(
            "render a scene loaded from disk instead of a named preset "
            "(.npz scene archive, quantized store container, or text "
            "format; autodetected)"
        ),
    )
    parser.add_argument(
        "--lod",
        type=_nonnegative_int,
        default=0,
        help="LOD pyramid level (0 = full scene; level k keeps 0.5**k by importance)",
    )
    parser.add_argument(
        "--quant",
        default="lossless",
        choices=sorted(QUANT_SPECS),
        help="scene quantization tier (lossless ships/renders bit-exactly)",
    )
    parser.add_argument(
        "--trajectory",
        default="orbit",
        choices=TRAJECTORY_KINDS,
        help="camera path to expand over the scene",
    )
    parser.add_argument(
        "--frames",
        type=_positive_int,
        default=16,
        help="number of frames in the job",
    )
    parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        help="worker processes (0 or 1 = in-process sequential fallback)",
    )
    parser.add_argument(
        "--repeat",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "run the job N times on one persistent executor and report "
            "warm-vs-cold throughput (iteration 1 is cold: pool start-up, "
            "scene encode, worker decode; the rest hit resident scenes)"
        ),
    )
    parser.add_argument(
        "--dataflow",
        default="tilewise",
        choices=DATAFLOWS,
        help="rendering dataflow (standard tile-wise or GCC Gaussian-wise)",
    )
    parser.add_argument(
        "--backend",
        default="vectorized",
        choices=BACKENDS,
        help="rasterisation engine",
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help=(
            "tile-range shards per frame (1 = whole-frame work units); "
            "sharded output is bitwise identical, only single-frame "
            "latency changes (tilewise dataflow only)"
        ),
    )
    parser.add_argument(
        "--dtype",
        default="float64",
        choices=DTYPES,
        help=(
            "floating-point engine mode (float32 is the tile-wise fast "
            "path, PSNR-floored against the float64 oracle)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced quick preset (smoke runs)",
    )
    parser.add_argument(
        "--view-index",
        type=int,
        default=0,
        help="anchor evaluation view for dolly/jitter trajectories",
    )
    parser.add_argument(
        "--seed",
        type=_nonnegative_int,
        default=0,
        help="seed of the jitter trajectory",
    )
    parser.add_argument(
        "--mp-context",
        default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method (default: platform default)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "stream per-frame completion lines to stderr as frames finish "
            "(completion order on the worker pool)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help=(
            "write a trace of the run to PATH: Chrome trace_event JSON "
            "(open in Perfetto / chrome://tracing; one lane per worker, "
            "spans nest request > job > frame > shard down to kernel "
            "stages) or raw span JSON-lines when PATH ends in .jsonl"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write run metrics to PATH in Prometheus text exposition format",
    )
    parser.add_argument(
        "--analyze-out",
        metavar="PATH",
        help=(
            "write the trace analysis (critical path, stage/lane breakdowns, "
            "worker-occupancy timeline) of this run to PATH as JSON"
        ),
    )
    parser.add_argument(
        "--alerts",
        metavar="PATH",
        help=(
            "evaluate the JSON alert rules at PATH against the run's final "
            "metrics; exit 3 if any rule is firing"
        ),
    )
    parser.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help=(
            "serve live telemetry over HTTP while the job renders: "
            "/metrics (Prometheus), /health (JSON), /trace.jsonl "
            "(incremental span tail), /profile?seconds=N (collapsed-stack "
            "CPU capture), / (timeline HTML); port 0 binds an ephemeral "
            "port (printed to stderr); implies an obs context"
        ),
    )
    parser.add_argument(
        "--profile-memory",
        action="store_true",
        help=(
            "additionally attribute allocations per kernel stage / decode "
            "span via tracemalloc (adds tracing overhead; surfaces in "
            "/profile?format=json; requires --listen)"
        ),
    )
    return parser


def _register_scene_file(path: str) -> str:
    """Load ``path``, register it as a store-backed preset; return its name.

    The scene enters the default store under a ``file:`` name, a derived
    :class:`SceneSpec` provides camera geometry, and a runtime evaluation
    preset ties the two together so the farm and trajectories treat the
    file exactly like a named preset.
    """
    scene = load_scene_auto(path)
    name = f"file:{Path(path).stem.lower()}"
    register_scene_spec(derive_scene_spec(scene, name), overwrite=True)
    default_store().add_scene(name, scene, overwrite=True)
    register_preset(
        EvalScenePreset(name=name, scale=1.0, image_scale=1.0, store=name),
        overwrite=True,
    )
    return name


def run_repeated(
    job: RenderJob, args: argparse.Namespace, on_frame, obs=None, executor=None
) -> tuple[list[JobResult], dict, dict]:
    """Run ``job`` ``args.repeat`` times on one persistent executor.

    Iteration 1 is the cold pass (worker start-up on the pool path, scene
    preparation, payload encode + worker decode); every later iteration
    lands on resident scenes.  Returns the per-iteration results, the
    executor's aggregate residency stats, and its final health report
    (read while the pool is still alive).  A caller-supplied ``executor``
    (the ``--listen`` path, which needs live metrics/health views on it)
    is used as-is and stays open; otherwise a private one is created and
    torn down here.
    """
    from repro.exec import RenderExecutor

    results = []
    ctx = (
        contextlib.nullcontext(executor)
        if executor is not None
        else RenderExecutor(num_workers=args.workers, mp_context=args.mp_context, obs=obs)
    )
    with ctx as executor:
        for _ in range(args.repeat):
            results.append(executor.submit(job, on_frame=on_frame).result())
        stats = executor.stats.as_dict()
        health = executor.health()
    return results, stats, health


def repeat_summary(results: list[JobResult], stats: dict) -> dict:
    """Warm-vs-cold accounting over one ``--repeat`` series."""
    cold = results[0]
    warm = results[1:]
    warm_fps = (
        sum(r.frames_per_second for r in warm) / len(warm) if warm else 0.0
    )
    return {
        "iterations": len(results),
        "cold_fps": cold.frames_per_second,
        "warm_fps": warm_fps,
        "warm_over_cold": (
            warm_fps / cold.frames_per_second if cold.frames_per_second else 0.0
        ),
        "per_iteration_fps": [r.frames_per_second for r in results],
        "per_iteration_ship_bytes": [r.ship_bytes for r in results],
        "all_warm_after_first": all(r.warm for r in warm),
        "executor": stats,
    }


def format_repeat_report(repeat: dict) -> str:
    """Render the warm-vs-cold section of a ``--repeat`` run."""
    lines = [
        "",
        f"Steady-state measurement over {repeat['iterations']} iterations "
        "(persistent executor):",
        f"  cold (iteration 1): {repeat['cold_fps']:.2f} frames/s   "
        f"warm (rest): {repeat['warm_fps']:.2f} frames/s   "
        f"warm/cold: {repeat['warm_over_cold']:.2f}x",
        f"  ship bytes per iteration: {repeat['per_iteration_ship_bytes']} "
        "(plateaus after the first touch — scenes ship at most once per worker)",
        f"  executor: {repeat['executor']['cache_hits']} scene-cache hits   "
        f"{repeat['executor']['cache_misses']} misses   "
        f"{repeat['executor']['published_bytes']} B published   "
        f"{repeat['executor']['loaded_bytes']} B worker-loaded",
    ]
    health = repeat.get("health")
    if health is not None:
        states = health["states"]
        lines.append(
            f"  health: {health['mode']} mode   {states['live']} live   "
            f"{states['slow']} slow   {states['stalled']} stalled   "
            f"{health['workers_replaced']} replaced"
        )
    return "\n".join(lines)


def format_report(result: JobResult) -> str:
    """Render a :class:`JobResult` as a human-readable text report."""
    job = result.job
    mode = (
        f"{result.num_workers} workers"
        if result.num_workers
        else "sequential (in-process)"
    )
    shipped = (
        f"   shipped scene: {result.ship_bytes} B ({job.quant})"
        if result.ship_bytes
        else ""
    )
    lines = [
        f"Render-farm job: scene={job.scene} trajectory={job.trajectory.kind} "
        f"dataflow={job.dataflow} backend={result.spec.backend} "
        f"quick={job.quick} lod={job.lod} quant={job.quant}"
        f" dtype={result.spec.dtype} shards={getattr(job, 'shards', 1)}",
        f"  frames: {result.num_frames}   scheduling: {mode}"
        f"   gaussians: {result.num_gaussians}{shipped}",
        f"  wall time: {result.wall_seconds:.3f} s   "
        f"throughput: {result.frames_per_second:.2f} frames/s",
        f"  per-frame latency: p50 {result.p50_ms:.1f} ms   "
        f"p95 {result.p95_ms:.1f} ms",
        "",
        format_table(
            ["counter", "total over job"],
            sorted(result.aggregate_counters().items()),
            title="Aggregated work counters",
        ),
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    scene_name = args.scene
    if args.scene_file is not None:
        try:
            scene_name = _register_scene_file(args.scene_file)
        except (FileNotFoundError, ValueError) as exc:
            parser.error(f"--scene-file: {exc}")
    trajectory = make_trajectory(
        args.trajectory,
        num_frames=args.frames,
        view_index=args.view_index,
        seed=args.seed,
    )
    if args.shards > 1 and args.dataflow != "tilewise":
        parser.error("--shards > 1 requires --dataflow tilewise")
    if args.dtype != "float64" and args.dataflow != "tilewise":
        parser.error("--dtype float32 requires --dataflow tilewise")
    job = RenderJob(
        scene=scene_name,
        trajectory=trajectory,
        quick=args.quick,
        dataflow=args.dataflow,
        backend=args.backend,
        lod=args.lod,
        quant=args.quant,
        shards=args.shards,
        dtype=args.dtype,
    )
    if args.profile_memory and not args.listen:
        parser.error("--profile-memory requires --listen")
    listen_addr = None
    if args.listen:
        from repro.obs import parse_listen

        try:
            listen_addr = parse_listen(args.listen)
        except ValueError as exc:
            parser.error(str(exc))
    obs = None
    if args.trace_out or args.metrics_out or args.analyze_out or args.alerts or args.listen:
        from repro.obs import ObsContext

        obs = ObsContext.create()
    server = sampler = memory = shared_executor = None
    if listen_addr is not None:
        # Live telemetry needs views onto a *live* executor, so the
        # --listen path builds one shared executor up front (instead of
        # the farm's per-job transient) and serves scrapes off it.  The
        # profiling plane rides the tracer's observer slot — span-stack
        # tags for the CPU sampler, opt-in tracemalloc brackets — all
        # read-only by construction (zero-perturbation contract).
        from repro.exec import RenderExecutor
        from repro.obs import (
            CompositeObserver,
            MemoryAttributor,
            SpanStackTracker,
            StackSampler,
            TelemetryServer,
        )

        tracker = SpanStackTracker()
        sampler = StackSampler(tracker=tracker)
        if args.profile_memory:
            memory = MemoryAttributor()
            memory.start()
            obs.tracer.observer = CompositeObserver(tracker, memory)
        else:
            obs.tracer.observer = tracker
        sampler.start()
        shared_executor = RenderExecutor(
            num_workers=args.workers, mp_context=args.mp_context, obs=obs
        )
        server = TelemetryServer(
            *listen_addr,
            tracer=obs.tracer,
            metrics_fn=shared_executor.collect_metrics,
            health_fn=shared_executor.health,
            sampler=sampler,
            memory=memory,
        ).start()
        print(
            f"telemetry: listening on http://{server.address}/",
            file=sys.stderr,
            flush=True,
        )
    farm = RenderFarm(
        num_workers=args.workers,
        mp_context=args.mp_context,
        obs=obs,
        executor=shared_executor,
    )
    on_frame = None
    if args.progress:

        def on_frame(record):
            print(
                f"  frame {record.index:>4} done in {record.render_ms:8.1f} ms",
                file=sys.stderr,
                flush=True,
            )

    health = None
    try:
        if args.repeat > 1:
            results, stats, health = run_repeated(
                job, args, on_frame, obs=obs, executor=shared_executor
            )
            result = results[-1]
            repeat = repeat_summary(results, stats)
            repeat["health"] = health
        else:
            result = farm.run(job, on_frame=on_frame)
            if shared_executor is not None:
                health = shared_executor.health()
            repeat = None
    finally:
        if server is not None:
            server.stop()
        if sampler is not None:
            sampler.stop()
        if memory is not None:
            memory.stop()
        if shared_executor is not None:
            shared_executor.shutdown(wait=True)
    if obs is not None:
        from repro.obs import export_metrics, export_trace

        if args.trace_out:
            export_trace(args.trace_out, obs.tracer)
        if args.metrics_out:
            export_metrics(args.metrics_out, obs.metrics)
        if args.analyze_out:
            from repro.obs.analysis import analyze

            with open(args.analyze_out, "w", encoding="utf-8") as fh:
                json.dump(analyze(obs.tracer.spans), fh, indent=2, sort_keys=True)
                fh.write("\n")

    alerts = None
    if args.alerts:
        from repro.obs.alerts import AlertEngine, firing_rules, load_rules

        with open(args.alerts, "r", encoding="utf-8") as fh:
            rules = load_rules(json.load(fh))
        # One cumulative sample: the run's end state (executor shutdown
        # already folded the worker-side tallies into obs.metrics).
        log = AlertEngine(rules).evaluate([(0.0, obs.metrics.snapshot())])
        alerts = {"rules": len(rules), "log": log, "firing": firing_rules(log)}

    if args.json:
        summary = result.summary()
        if repeat is not None:
            summary["repeat"] = repeat
        if alerts is not None:
            summary["alerts"] = alerts
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        text = format_report(result)
        if repeat is not None:
            text += "\n" + format_repeat_report(repeat)
        if alerts is not None:
            firing = alerts["firing"]
            text += "\n" + (
                f"  alerts FIRING: {', '.join(firing)}" if firing else "  alerts: none firing"
            )
        print(text)
    return 3 if alerts is not None and alerts["firing"] else 0


if __name__ == "__main__":
    sys.exit(main())
