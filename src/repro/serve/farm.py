"""Render farm: frame-parallel scheduling of trajectory jobs.

A :class:`RenderFarm` takes a :class:`~repro.serve.trajectories.RenderJob`
(scene preset x camera trajectory x dataflow), shards its frames across a
``multiprocessing`` worker pool and aggregates the per-frame images,
statistics counters and latencies into a :class:`JobResult`.

Design points:

* **Workers build the scene once.**  The parent generates the synthetic
  scene, serialises it (lossless ``.npz`` by default) and every worker
  deserialises it a single time in its pool initialiser; after that only
  cameras (a 4x4 matrix plus intrinsics) and finished frames cross the
  process boundary.  This mirrors how a real 3DGS service keeps the model
  resident while viewpoints stream in.
* **Quality tiers.**  A job may request a scene-store quality tier
  (``RenderJob.lod`` prunes by importance, ``RenderJob.quant`` selects a
  :mod:`repro.store.codec` quantization tier).  The tier is applied to the
  scene *before* any frame renders; on the pool path a quantized tier ships
  the **encoded** payload (the quantized store container) so the
  bytes crossing the process boundary shrink with the tier, and the worker's
  one-time load decodes it.  Decoding is deterministic, so pool output stays
  bitwise identical to the sequential fallback at every tier.
* **Determinism.**  Rendering is a pure function of (scene, camera, spec),
  and ``.npz`` shipping is bit-exact for float64 arrays, so farm output is
  bitwise identical to the in-process sequential fallback and to
  single-frame :mod:`repro.eval.runner` renders of the same cameras —
  statistics counters included.  (The human-readable ``text`` scene format
  rounds to 9 significant digits and is intended for debugging, not for
  bit-exact serving.)
* **Sequential fallback.**  ``num_workers <= 1`` renders in-process with no
  serialisation or pool, which is both the baseline the farm speedup is
  measured against and the portable path for single-CPU environments.
* **Incremental streaming.**  ``run(job, on_frame=...)`` fires a callback in
  the parent as each frame completes (the pool path streams results through
  ``imap_unordered``), so a caller — e.g. the request scheduler in
  :mod:`repro.sched` — can observe per-frame latency mid-job rather than
  after the aggregate :class:`JobResult`.  Frame failures surface as
  :class:`FrameRenderError` (frame index + scene name + worker traceback),
  never as a raw pool traceback.

:func:`render_frame` is the shared single-frame entry point: the evaluation
runner's memoised ``run_tilewise``/``run_gaussianwise`` and the farm workers
all call it with the same :class:`FrameSpec`, which is what makes the
bitwise-equality guarantee structural rather than coincidental.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.io import (
    load_scene_npz,
    load_scene_text,
    save_scene_npz,
    save_scene_text,
)
from repro.gaussians.model import GaussianScene
from repro.gaussians.synthetic import make_scene
from repro.render.common import RenderConfig
from repro.render.gaussian_raster import GaussianWiseResult, render_gaussianwise
from repro.render.tile_raster import TileWiseResult, render_tilewise
from repro.store.codec import (
    QUANT_SPECS,
    load_scene_store,
    quant_spec,
    roundtrip_scene,
    save_scene_store,
)
from repro.store.lod import select_lod

# Import-cycle invariants (repro.eval.runner imports render_frame from this
# module): (a) this module must not import repro.serve.trajectories or
# anything under repro.eval at module level — a chain farm -> trajectories ->
# eval -> runner would re-enter farm before FrameSpec exists; (b) neither
# repro.eval.scenes nor repro.serve.trajectories may ever import
# repro.eval.runner; (c) of the scene store only repro.store.codec and
# repro.store.lod may be imported here at module level —
# repro.store.store pulls repro.serve.cache back in (resolved lazily inside
# run() via default_store()).  RenderJob appears below in annotations only,
# which PEP 563 keeps as strings.

FrameResult = Union[TileWiseResult, GaussianWiseResult]

#: The rendering dataflows a job can request (standard tile-wise pipeline or
#: the paper's Gaussian-wise pipeline).
DATAFLOWS: tuple[str, ...] = ("tilewise", "gaussianwise")

#: Per-frame stats fields that are frame-invariant configuration, not
#: accumulable work counters.  When adding a field to TileWiseStats or
#: GaussianWiseStats, classify it here if it is config-valued — the exact
#: counter sets are pinned by tests/test_serve_farm.py
#: (``test_counter_field_classification_is_exhaustive``), which fails on any
#: unclassified addition.
_NON_COUNTER_FIELDS = frozenset(
    {"width", "height", "tile_size", "block_size", "enable_cc"}
)


def usable_cpu_count() -> int:
    """CPUs this process may actually run on (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - platforms without affinity
        return os.cpu_count() or 1


@dataclass(frozen=True)
class FrameSpec:
    """Render parameters of one frame, mirroring the evaluation runner.

    ``tilewise`` frames use ``tile_size``/``obb_subtile_skip`` and the
    conventional 3-sigma radius rule; ``gaussianwise`` frames use
    ``enable_cc``/``block_size``/``boundary_mode`` and the paper's
    omega-sigma rule — exactly the configurations
    :func:`repro.eval.runner.run_tilewise` and
    :func:`repro.eval.runner.run_gaussianwise` build.
    """

    dataflow: str = "tilewise"
    backend: str = "vectorized"
    tile_size: int = 16
    obb_subtile_skip: bool = True
    enable_cc: bool = True
    block_size: int = 8
    boundary_mode: str = "alpha"
    #: Quality tier the job's scene was prepared at.  These two fields are
    #: provenance, not render parameters: the farm applies them to the scene
    #: *before* any frame is rendered (LOD pruning + codec round-trip), and
    #: :func:`render_frame` itself never consults them — a worker holding a
    #: decoded scene renders it exactly as a lossless one.
    lod: int = 0
    quant: str = "lossless"

    def __post_init__(self) -> None:
        if self.dataflow not in DATAFLOWS:
            raise ValueError(f"dataflow must be one of {DATAFLOWS}")
        if self.lod < 0:
            raise ValueError("lod must be non-negative")
        if self.quant not in QUANT_SPECS:
            raise ValueError(f"quant must be one of {sorted(QUANT_SPECS)}")

    @classmethod
    def for_job(cls, job: RenderJob, **overrides) -> "FrameSpec":
        """The spec a :class:`RenderJob` renders its frames with."""
        return cls(
            dataflow=job.dataflow,
            backend=job.backend,
            lod=job.lod,
            quant=job.quant,
            **overrides,
        )


def render_frame(scene: GaussianScene, camera: Camera, spec: FrameSpec) -> FrameResult:
    """Render one frame of ``scene`` from ``camera`` under ``spec``.

    This is the single-frame primitive shared by the evaluation runner and
    the farm workers; both dataflows construct their :class:`RenderConfig`
    here and nowhere else.
    """
    if spec.dataflow == "tilewise":
        config = RenderConfig(
            tile_size=spec.tile_size, radius_rule="3sigma", backend=spec.backend
        )
        return render_tilewise(
            scene, camera, config, obb_subtile_skip=spec.obb_subtile_skip
        )
    config = RenderConfig(
        radius_rule="omega-sigma", block_size=spec.block_size, backend=spec.backend
    )
    return render_gaussianwise(
        scene,
        camera,
        config,
        enable_cc=spec.enable_cc,
        boundary_mode=spec.boundary_mode,
    )


@dataclass
class FrameRecord:
    """One finished frame: image, statistics and render latency."""

    index: int
    image: np.ndarray
    stats: object
    render_ms: float


#: Per-frame completion callback: called in the parent process as each
#: frame finishes (index order on the sequential path, completion order on
#: the pool path), before the job's aggregate result exists — the hook the
#: request scheduler uses to observe latency mid-job.
FrameCallback = Callable[[FrameRecord], None]


class FrameRenderError(RuntimeError):
    """A frame failed to render; carries the frame index and scene name.

    Raised by :meth:`RenderFarm.run` on both scheduling paths instead of
    letting a raw worker traceback escape the pool, so callers can tell
    *which* frame of *which* scene died.  ``__cause__`` holds the original
    exception on the sequential path; pool failures embed the worker-side
    traceback in the message (the exception object itself may not survive
    pickling back across the process boundary).
    """

    def __init__(self, scene: str, frame_index: int, message: str) -> None:
        super().__init__(
            f"frame {frame_index} of scene {scene!r} failed to render: {message}"
        )
        self.scene = scene
        self.frame_index = frame_index


@dataclass
class _WorkerFailure:
    """Pickle-safe record of a worker-side frame failure."""

    index: int
    error: str
    traceback: str


@dataclass
class JobResult:
    """Aggregated output of one render-farm job."""

    job: RenderJob
    spec: FrameSpec
    frames: list[FrameRecord]
    #: Workers the job actually ran with (0 = in-process sequential path).
    num_workers: int
    #: End-to-end wall time, including pool start-up and scene shipping.
    wall_seconds: float
    #: Gaussians in the scene the frames were rendered from (after the
    #: job's LOD level was applied).
    num_gaussians: int = 0
    #: On-disk bytes of the scene payload shipped to the worker pool
    #: (0 on the sequential path — nothing crosses a process boundary).
    ship_bytes: int = 0

    # ------------------------------------------------------------------
    # Throughput / latency accounting
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def frames_per_second(self) -> float:
        """End-to-end throughput of the job."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.num_frames / self.wall_seconds

    @property
    def frame_times_ms(self) -> np.ndarray:
        """Per-frame render latencies (worker-side, excludes queueing)."""
        return np.array([f.render_ms for f in self.frames])

    @property
    def p50_ms(self) -> float:
        """Median per-frame render latency."""
        return float(np.percentile(self.frame_times_ms, 50)) if self.frames else 0.0

    @property
    def p95_ms(self) -> float:
        """95th-percentile per-frame render latency."""
        return float(np.percentile(self.frame_times_ms, 95)) if self.frames else 0.0

    def aggregate_counters(self) -> dict[str, int]:
        """Sum every integer work counter across the job's frames.

        Configuration fields (image size, tile/block size, CC flag) and
        array-valued fields are excluded; what remains are the additive
        per-frame work counters (Gaussians preprocessed, alpha evaluations,
        pixels blended, ...) totalled over the whole trajectory.
        """
        totals: dict[str, int] = {}
        for record in self.frames:
            for f in dataclasses.fields(record.stats):
                if f.name in _NON_COUNTER_FIELDS:
                    continue
                value = getattr(record.stats, f.name)
                if isinstance(value, (bool, np.ndarray)):
                    continue
                if isinstance(value, (int, np.integer)):
                    totals[f.name] = totals.get(f.name, 0) + int(value)
        return totals

    def summary(self) -> dict:
        """A JSON-serialisable report of the job."""
        preset = self.job.preset()
        return {
            "scene": self.job.scene,
            "quick": self.job.quick,
            "trajectory": self.job.trajectory.kind,
            "dataflow": self.job.dataflow,
            "backend": self.spec.backend,
            "lod": self.spec.lod,
            "quant": self.spec.quant,
            "num_gaussians": self.num_gaussians,
            "ship_bytes": self.ship_bytes,
            "num_frames": self.num_frames,
            "num_workers": self.num_workers,
            "image_size": [self.frames[0].stats.width, self.frames[0].stats.height]
            if self.frames
            else [0, 0],
            "scene_scale": preset.scale,
            "wall_seconds": self.wall_seconds,
            "frames_per_second": self.frames_per_second,
            "p50_frame_ms": self.p50_ms,
            "p95_frame_ms": self.p95_ms,
            "counters": self.aggregate_counters(),
        }


# ----------------------------------------------------------------------
# Worker-side machinery
# ----------------------------------------------------------------------
#: Per-worker state: the deserialised scene and the job's frame spec, set
#: once by :func:`_worker_init` when the pool starts.
_WORKER_STATE: dict = {}

#: Worker-side scene loaders per shipping format.  ``"store"`` is the
#: quantized codec container: the parent ships the *encoded* payload and
#: the worker's load decodes it, so quantized tiers cross the process
#: boundary at their compressed size.
_SCENE_LOADERS = {"npz": load_scene_npz, "text": load_scene_text, "store": load_scene_store}
_SCENE_SAVERS = {"npz": save_scene_npz, "text": save_scene_text}

#: Shipping formats a caller may select for lossless scenes ("store" is
#: engaged automatically whenever the job requests a quantized tier).
SCENE_FORMATS: tuple[str, ...] = ("npz", "text")


def _worker_init(scene_path: str, scene_format: str, spec: FrameSpec) -> None:
    """Pool initialiser: load the shipped scene exactly once per worker."""
    _WORKER_STATE["scene"] = _SCENE_LOADERS[scene_format](scene_path)
    _WORKER_STATE["spec"] = spec


def _worker_render(task: tuple[int, Camera]) -> Union[FrameRecord, _WorkerFailure]:
    """Render one queued frame against the worker-resident scene.

    Failures come back as a pickle-safe :class:`_WorkerFailure` (frame index
    plus the worker-side traceback) rather than propagating out of
    ``imap_unordered`` as a bare remote traceback; the parent re-raises them
    as :class:`FrameRenderError` with the scene name attached.
    """
    try:
        return _render_one(_WORKER_STATE["scene"], task, _WORKER_STATE["spec"])
    except Exception as exc:
        return _WorkerFailure(
            index=task[0], error=repr(exc), traceback=traceback.format_exc()
        )


class RenderFarm:
    """Frame-parallel scheduler for trajectory render jobs.

    Parameters
    ----------
    num_workers:
        Worker processes to shard frames across.  ``0`` or ``1`` selects the
        in-process sequential fallback; ``None`` uses the number of CPUs
        actually usable by this process (scheduler affinity / cgroup limits
        respected, not the host core count).
    mp_context:
        ``multiprocessing`` start-method name (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``None`` for the platform default.  Spawned
        workers re-import :mod:`repro`, so the package must be importable
        (installed or on ``PYTHONPATH``) when using ``"spawn"``.
    scene_format:
        Serialisation used to ship the parent-built scene to workers:
        ``"npz"`` (default, bit-exact) or ``"text"`` (9-significant-digit
        debug format; worker renders then match an in-process render of the
        round-tripped scene, not of the original).
    """

    def __init__(
        self,
        num_workers: int | None = None,
        mp_context: str | None = None,
        scene_format: str = "npz",
    ) -> None:
        if num_workers is None:
            num_workers = usable_cpu_count()
        if num_workers < 0:
            raise ValueError("num_workers must be non-negative")
        if scene_format not in SCENE_FORMATS:
            raise ValueError(f"scene_format must be one of {sorted(SCENE_FORMATS)}")
        self.num_workers = num_workers
        self.mp_context = mp_context
        self.scene_format = scene_format

    # ------------------------------------------------------------------
    def run(
        self,
        job: RenderJob,
        scene: GaussianScene | None = None,
        on_frame: Optional[FrameCallback] = None,
    ) -> JobResult:
        """Render every frame of ``job`` and aggregate the results.

        Parameters
        ----------
        job:
            The trajectory job to render.
        scene:
            Optional pre-built scene.  By default the job's evaluation
            preset is resolved through the scene store when it names a store
            entry (``preset.store``), otherwise instantiated exactly as
            :mod:`repro.eval.runner` does
            (``make_scene(preset.name, scale=preset.scale)``).
        on_frame:
            Optional per-frame completion callback, invoked in the parent
            process as each frame finishes — in index order on the
            sequential path, in completion order on the pool path (frames
            stream back through ``imap_unordered``).  This is how a caller
            observes latency mid-job instead of waiting for the aggregate
            :class:`JobResult`; exceptions it raises abort the job.

        Raises
        ------
        FrameRenderError
            When any frame fails to render, identifying the failing frame
            index and scene name (with the worker-side traceback for pool
            failures) instead of a raw pool traceback.

        The job's quality tier is applied to the base scene before any frame
        renders: LOD level ``job.lod`` prunes by importance, then tier
        ``job.quant`` round-trips the pruned scene through the quantized
        codec.  On the pool path the *encoded* payload is what ships to the
        workers (``ship_bytes`` in the result records its on-disk size);
        decoding is deterministic, so pool frames stay bitwise identical to
        the sequential fallback at every tier, and the lossless tier stays
        bitwise identical to the legacy pipeline.
        """
        preset = job.preset()
        tier = quant_spec(job.quant)
        sequential = self.num_workers <= 1 or job.num_frames <= 1
        if scene is not None:
            # Caller-supplied scene: the farm applies the tier itself.
            lod_scene = select_lod(scene, job.lod)
            render_scene = roundtrip_scene(lod_scene, tier) if sequential else None
        elif preset.store is not None:
            # Store-backed preset: let the SceneStore prepare (and cache)
            # the tier, honouring the store's own lod_ratio — repeated jobs
            # at one tier reuse the pruned/decoded scenes.
            from repro.store.store import default_store

            store = default_store()
            lod_scene = store.get(preset.store, lod=job.lod)
            render_scene = (
                store.get(preset.store, lod=job.lod, quant=job.quant)
                if sequential
                else None
            )
        else:
            lod_scene = select_lod(
                make_scene(preset.name, scale=preset.scale), job.lod
            )
            render_scene = roundtrip_scene(lod_scene, tier) if sequential else None
        cameras = job.cameras()
        spec = FrameSpec.for_job(job)
        tasks = list(enumerate(cameras))

        start = time.perf_counter()
        ship_bytes = 0
        if sequential:
            # Sequential path renders the decoded tier in-process; the pool
            # path ships the encoded payload instead and lets each worker
            # decode it once (the same deterministic decode, so both paths
            # render identical bits).
            frames = []
            for task in tasks:
                try:
                    record = _render_one(render_scene, task, spec)
                except Exception as exc:
                    raise FrameRenderError(job.scene, task[0], repr(exc)) from exc
                if on_frame is not None:
                    on_frame(record)
                frames.append(record)
            effective_workers = 0
        else:
            frames, ship_bytes = self._run_pool(
                lod_scene, tasks, spec, tier, job.scene, on_frame
            )
            effective_workers = min(self.num_workers, len(tasks))
        wall = time.perf_counter() - start

        frames.sort(key=lambda record: record.index)
        return JobResult(
            job=job,
            spec=spec,
            frames=frames,
            num_workers=effective_workers,
            wall_seconds=wall,
            num_gaussians=lod_scene.num_gaussians,
            ship_bytes=ship_bytes,
        )

    def _run_pool(
        self,
        scene: GaussianScene,
        tasks: list[tuple[int, Camera]],
        spec: FrameSpec,
        tier,
        scene_name: str,
        on_frame: Optional[FrameCallback] = None,
    ) -> tuple[list[FrameRecord], int]:
        """Ship ``scene`` (encoded when the tier is lossy) and map the tasks.

        Frames stream back in completion order (``imap_unordered``), firing
        ``on_frame`` as they land; a worker failure aborts the job with a
        :class:`FrameRenderError`.  Returns the frame records plus the
        on-disk byte size of the shipped scene payload.
        """
        import multiprocessing

        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.num_workers, len(tasks))
        if tier.is_lossless:
            ship_format = self.scene_format
            saver = _SCENE_SAVERS[self.scene_format]
        else:
            ship_format = "store"
            saver = lambda s, p: save_scene_store(s, p, tier)  # noqa: E731
        suffix = ".txt" if ship_format == "text" else ".npz"
        with tempfile.TemporaryDirectory(prefix="repro-farm-") as tmp:
            scene_path = Path(tmp) / f"scene{suffix}"
            saver(scene, scene_path)
            ship_bytes = scene_path.stat().st_size
            frames: list[FrameRecord] = []
            with context.Pool(
                processes=workers,
                initializer=_worker_init,
                initargs=(str(scene_path), ship_format, spec),
            ) as pool:
                for record in pool.imap_unordered(_worker_render, tasks, chunksize=1):
                    if isinstance(record, _WorkerFailure):
                        raise FrameRenderError(
                            scene_name,
                            record.index,
                            f"{record.error}\n--- worker traceback ---\n"
                            f"{record.traceback}",
                        )
                    if on_frame is not None:
                        on_frame(record)
                    frames.append(record)
            return frames, ship_bytes


def _render_one(
    scene: GaussianScene, task: tuple[int, Camera], spec: FrameSpec
) -> FrameRecord:
    """Render and time one frame — the unit of work on every scheduling path."""
    index, camera = task
    start = time.perf_counter()
    result = render_frame(scene, camera, spec)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return FrameRecord(
        index=index, image=result.image, stats=result.stats, render_ms=elapsed_ms
    )
