"""Render farm: the one-job-at-a-time facade over the render executor.

A :class:`RenderFarm` takes a :class:`~repro.serve.trajectories.RenderJob`
(scene preset x camera trajectory x dataflow), renders every frame and
aggregates the images, statistics counters and latencies into a
:class:`~repro.exec.frames.JobResult`.  Since the persistent-executor
refactor the farm no longer owns any execution machinery: it is a thin
facade over :class:`repro.exec.RenderExecutor`.

* **Standalone farm (default).**  ``RenderFarm(num_workers=4).run(job)``
  spins up a transient executor for that one job and tears it down after —
  the original per-job-pool behaviour, preserved for scripts and
  benchmarks that measure exactly that cold path.  ``num_workers <= 1`` (or
  a single-frame job) renders in-process with no pool at all.
* **Shared executor.**  ``RenderFarm(executor=executor)`` routes ``run``
  through a long-lived :class:`~repro.exec.executor.RenderExecutor`, so
  repeated jobs reuse warm workers and resident scenes, and several farms
  (or any other caller) can share one pool.  This is what a serving
  process wants; the ``repro-serve --repeat`` CLI and the request
  scheduler's data plane both use it.

All behavioural contracts of the pre-refactor farm hold structurally,
because both paths run the same :mod:`repro.exec` primitives: pool output
is bitwise identical to the sequential fallback (images *and* statistics
counters) at every ``(lod, quant)`` tier, quantized tiers ship the encoded
payload, frames stream through ``on_frame``, and failures surface as
:class:`~repro.exec.frames.FrameRenderError` with the frame index and
scene name.

This module re-exports the execution primitives (``FrameSpec``,
``render_frame``, ``JobResult``, ...) that historically lived here, so
``from repro.serve.farm import render_frame`` keeps working.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.exec.frames import (  # noqa: F401 - re-exported compatibility names
    DATAFLOWS,
    _NON_COUNTER_FIELDS,
    SCENE_FORMATS,
    FrameCallback,
    FrameRecord,
    FrameRenderError,
    FrameResult,
    FrameSpec,
    JobResult,
    _render_one,
    _WorkerFailure,
    render_frame,
    usable_cpu_count,
)
from repro.gaussians.model import GaussianScene

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.exec.executor import JobHandle, RenderExecutor

# Import-cycle invariant: repro.exec.executor is imported lazily (inside
# methods) because importing this module can happen *while* repro.exec is
# still initialising (repro.exec -> repro.store -> repro.serve -> here);
# repro.exec.frames is safe — it completes before anything re-enters.


class RenderFarm:
    """Frame-parallel scheduler for trajectory render jobs.

    Parameters
    ----------
    num_workers:
        Worker processes to shard frames across.  ``0`` or ``1`` selects
        the in-process sequential fallback; ``None`` uses the number of
        CPUs actually usable by this process (scheduler affinity / cgroup
        limits respected, not the host core count).  Ignored when a shared
        ``executor`` is supplied (the executor's pool serves the job).
    mp_context:
        ``multiprocessing`` start-method name (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``None`` for the platform default.  Spawned
        workers re-import :mod:`repro`, so the package must be importable
        (installed or on ``PYTHONPATH``) when using ``"spawn"``.
    scene_format:
        Serialisation used to ship the parent-built scene to workers:
        ``"npz"`` (default, bit-exact) or ``"text"`` (9-significant-digit
        debug format; worker renders then match an in-process render of the
        round-tripped scene, not of the original).
    executor:
        Optional shared :class:`~repro.exec.executor.RenderExecutor`.
        When given, every ``run`` submits to it (warm workers, resident
        scenes, concurrent with other submitters) and the farm does not
        own — and never shuts down — the pool.  When omitted, each ``run``
        uses a private transient executor (cold per-job pool).
    obs:
        Optional :class:`~repro.obs.ObsContext` handed to every transient
        executor this farm creates, so standalone-farm runs trace and
        meter like shared-executor runs.  Ignored when a shared
        ``executor`` is supplied — the executor's own context (set at its
        construction) governs.  Observability is a pure side channel:
        rendered output is bitwise identical with or without it.
    """

    def __init__(
        self,
        num_workers: int | None = None,
        mp_context: str | None = None,
        scene_format: str = "npz",
        executor: RenderExecutor | None = None,
        obs=None,
    ) -> None:
        if executor is not None:
            num_workers = executor.num_workers
            mp_context = executor.mp_context
            scene_format = executor.scene_format
        if num_workers is None:
            num_workers = usable_cpu_count()
        if num_workers < 0:
            raise ValueError("num_workers must be non-negative")
        if scene_format not in SCENE_FORMATS:
            raise ValueError(f"scene_format must be one of {sorted(SCENE_FORMATS)}")
        self.num_workers = num_workers
        self.mp_context = mp_context
        self.scene_format = scene_format
        self.executor = executor
        self.obs = obs

    # ------------------------------------------------------------------
    def run(
        self,
        job,
        scene: GaussianScene | None = None,
        on_frame: Optional[FrameCallback] = None,
    ) -> JobResult:
        """Render every frame of ``job`` and aggregate the results.

        Parameters
        ----------
        job:
            The trajectory job to render.
        scene:
            Optional pre-built scene.  By default the job's evaluation
            preset is resolved through the scene store when it names a store
            entry (``preset.store``), otherwise instantiated exactly as
            :mod:`repro.eval.runner` does
            (``make_scene(preset.name, scale=preset.scale)``).
        on_frame:
            Optional per-frame completion callback, invoked in the parent
            process as each frame finishes — in index order on the
            sequential path, in completion order on the pool path.  This is
            how a caller observes latency mid-job instead of waiting for
            the aggregate :class:`~repro.exec.frames.JobResult`; exceptions
            it raises abort the job.

        Raises
        ------
        FrameRenderError
            When any frame fails to render, identifying the failing frame
            index and scene name (with the worker-side traceback for pool
            failures) instead of a raw pool traceback.

        The job's quality tier is applied to the base scene before any
        frame renders: LOD level ``job.lod`` prunes by importance, then
        tier ``job.quant`` round-trips the pruned scene through the
        quantized codec.  On the pool path the *encoded* payload is what
        ships to the workers (``ship_bytes`` in the result records its
        on-disk size); decoding is deterministic, so pool frames stay
        bitwise identical to the sequential fallback at every tier, and
        the lossless tier stays bitwise identical to the legacy pipeline.
        """
        from repro.exec.executor import RenderExecutor

        if self.executor is not None:
            return self.executor.submit(job, scene=scene, on_frame=on_frame).result()
        # Work units, not frames, decide whether a pool pays off: a sharded
        # single-frame job still spreads its tile-range shards over workers.
        work_units = job.num_frames * max(getattr(job, "shards", 1), 1)
        if self.num_workers <= 1 or work_units <= 1:
            transient = RenderExecutor(
                num_workers=0, scene_format=self.scene_format, obs=self.obs
            )
            return transient.submit(job, scene=scene, on_frame=on_frame).result()
        with RenderExecutor(
            # A transient pool serves exactly this job, so never spawn more
            # workers than it has work units (matching the pre-executor farm).
            num_workers=min(self.num_workers, work_units),
            mp_context=self.mp_context,
            scene_format=self.scene_format,
            obs=self.obs,
        ) as transient:
            return transient.submit(job, scene=scene, on_frame=on_frame).result()

    def submit(
        self,
        job,
        scene: GaussianScene | None = None,
        on_frame: Optional[FrameCallback] = None,
    ) -> JobHandle:
        """Submit ``job`` to the shared executor without blocking.

        Only available on a farm constructed with a shared ``executor``
        (a transient per-job pool has nobody to keep it alive across a
        non-blocking call).
        """
        if self.executor is None:
            raise RuntimeError(
                "submit() needs a shared executor; construct the farm with "
                "RenderFarm(executor=...) or call run() for blocking execution"
            )
        return self.executor.submit(job, scene=scene, on_frame=on_frame)
