"""Trajectory workloads: parameterised camera paths for the render farm.

The paper frames 3DGS rasterisation as a real-time, frame-after-frame
workload — a viewer moving through a scene — but the evaluation harness
renders isolated single frames.  This module turns any evaluation preset
into an N-frame job by expanding one of four camera paths:

``orbit``
    The evaluation orbit itself, sampled at ``num_frames`` evenly spaced
    azimuths.  Frame ``i`` is exactly ``make_camera(name, view_index=i,
    num_views=num_frames)``, so an orbit frame whose azimuth coincides with
    an evaluation view is *bitwise identical* to the corresponding
    single-frame :mod:`repro.eval.runner` camera.
``dolly``
    A dolly/zoom move: the camera slides radially between two multiples of
    the preset orbit distance while keeping the evaluation azimuth, the
    classic "approach the object" stress for preprocessing (footprints grow
    every frame).
``walkthrough``
    An indoor-style path: the eye advances along a chord through the scene
    interior looking ahead, mimicking the Deep Blending capture
    trajectories.  Useful on the ``playroom``/``drjohnson`` presets where
    most content is wall-ward.
``jitter``
    A random-jitter stress around one evaluation view: each frame perturbs
    the eye by a seeded Gaussian offset, modelling head-tracked viewing.
    Deterministic per (seed, num_frames).

Every path reuses the scene geometry conventions of
:func:`repro.gaussians.synthetic.make_camera` (orbit radius, camera height
and field of view come from the :class:`~repro.gaussians.synthetic.SceneSpec`)
and respects the preset's ``image_scale``, so farm workloads render at the
same resolution as the evaluation harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.eval.scenes import EvalScenePreset, eval_preset
from repro.gaussians.camera import Camera, look_at
from repro.gaussians.synthetic import make_camera, scaled_image_size, scene_spec
from repro.render.common import BACKENDS, DTYPES
from repro.serve.farm import DATAFLOWS
from repro.store.codec import QUANT_SPECS

#: The camera-path kinds understood by :func:`make_trajectory`.
TRAJECTORY_KINDS: tuple[str, ...] = ("orbit", "dolly", "walkthrough", "jitter")


@dataclass(frozen=True)
class Trajectory:
    """A parameterised camera path, expandable against any scene preset.

    Attributes
    ----------
    kind:
        One of :data:`TRAJECTORY_KINDS`.
    num_frames:
        Number of cameras the path expands to.
    start, end:
        Path-specific range parameters.  For ``dolly`` they are multiples of
        the preset orbit radius (default 1.6 -> 0.7, an approach move); for
        ``walkthrough`` they are the chord endpoints as fractions of the
        scene extent (default -0.6 -> 0.6); orbit and jitter ignore them.
    view_index:
        The evaluation azimuth the ``dolly`` and ``jitter`` paths are
        anchored at (matching ``EvalScenePreset.view_index`` semantics,
        out of 8 evaluation views).
    jitter_sigma:
        Standard deviation of the ``jitter`` eye perturbation, as a fraction
        of the scene extent.
    seed:
        Seed of the ``jitter`` perturbation stream.
    """

    kind: str
    num_frames: int
    start: float = field(default=math.nan)
    end: float = field(default=math.nan)
    view_index: int = 0
    jitter_sigma: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in TRAJECTORY_KINDS:
            raise ValueError(
                f"unknown trajectory kind {self.kind!r}; available: {TRAJECTORY_KINDS}"
            )
        if self.num_frames <= 0:
            raise ValueError("num_frames must be positive")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def cameras(self, preset: EvalScenePreset) -> list[Camera]:
        """Expand the path into ``num_frames`` cameras for ``preset``."""
        expanders = {
            "orbit": self._orbit,
            "dolly": self._dolly,
            "walkthrough": self._walkthrough,
            "jitter": self._jitter,
        }
        assert set(expanders) == set(TRAJECTORY_KINDS)
        return expanders[self.kind](preset)

    def _orbit(self, preset: EvalScenePreset) -> list[Camera]:
        return [
            make_camera(
                preset.name,
                view_index=i,
                num_views=self.num_frames,
                image_scale=preset.image_scale,
            )
            for i in range(self.num_frames)
        ]

    def _frame_fractions(self) -> np.ndarray:
        if self.num_frames == 1:
            return np.array([0.0])
        return np.arange(self.num_frames) / (self.num_frames - 1)

    def _dolly(self, preset: EvalScenePreset) -> list[Camera]:
        spec = scene_spec(preset.name)
        start = 1.6 if math.isnan(self.start) else self.start
        end = 0.7 if math.isnan(self.end) else self.end
        if start <= 0 or end <= 0:
            raise ValueError("dolly radii must be positive")
        angle = 2.0 * math.pi * (self.view_index % 8) / 8
        base_radius = spec.extent * spec.camera_radius_factor
        height = spec.extent * spec.camera_height_factor
        width, height_px = scaled_image_size(spec, preset.image_scale)
        cameras = []
        for t in self._frame_fractions():
            radius = base_radius * (start + (end - start) * t)
            eye = np.array(
                [radius * math.cos(angle), height, radius * math.sin(angle)]
            )
            cameras.append(
                Camera.from_fov(
                    width=width,
                    height=height_px,
                    fov_y_degrees=spec.fov_y_degrees,
                    world_to_camera=look_at(eye, np.zeros(3)),
                )
            )
        return cameras

    def _walkthrough(self, preset: EvalScenePreset) -> list[Camera]:
        spec = scene_spec(preset.name)
        start = -0.6 if math.isnan(self.start) else self.start
        end = 0.6 if math.isnan(self.end) else self.end
        angle = 2.0 * math.pi * (self.view_index % 8) / 8
        direction = np.array([math.cos(angle), 0.0, math.sin(angle)])
        height = spec.extent * spec.camera_height_factor
        width, height_px = scaled_image_size(spec, preset.image_scale)
        cameras = []
        for t in self._frame_fractions():
            offset = spec.extent * (start + (end - start) * t)
            eye = direction * offset + np.array([0.0, height, 0.0])
            # Look ahead along the walking direction, at a target far enough
            # that the view direction stays stable across the whole chord.
            target = direction * (spec.extent * (abs(end) + 1.5)) + np.array(
                [0.0, height * 0.5, 0.0]
            )
            cameras.append(
                Camera.from_fov(
                    width=width,
                    height=height_px,
                    fov_y_degrees=spec.fov_y_degrees,
                    world_to_camera=look_at(eye, target),
                )
            )
        return cameras

    def _jitter(self, preset: EvalScenePreset) -> list[Camera]:
        spec = scene_spec(preset.name)
        base = make_camera(
            preset.name,
            view_index=self.view_index,
            image_scale=preset.image_scale,
        )
        eye = base.position
        rotation = base.rotation
        # The base camera's look target: a point ahead along the optical axis.
        target = eye + rotation[2] * spec.extent
        rng = np.random.default_rng(self.seed)
        offsets = rng.normal(
            0.0, self.jitter_sigma * spec.extent, size=(self.num_frames, 3)
        )
        cameras = []
        for i in range(self.num_frames):
            cameras.append(
                Camera.from_fov(
                    width=base.width,
                    height=base.height,
                    fov_y_degrees=spec.fov_y_degrees,
                    world_to_camera=look_at(eye + offsets[i], target),
                )
            )
        return cameras

def make_trajectory(kind: str, num_frames: int, **params) -> Trajectory:
    """Build a :class:`Trajectory` of ``kind`` with keyword overrides."""
    return Trajectory(kind=kind, num_frames=num_frames, **params)


@dataclass(frozen=True)
class RenderJob:
    """One render-farm job: a scene preset swept along a trajectory.

    Attributes
    ----------
    scene:
        Evaluation scene name (one of ``EVAL_SCENES``).
    trajectory:
        The camera path to expand.
    quick:
        Use the reduced quick preset (tests / smoke runs).
    dataflow:
        ``"tilewise"`` (standard dataflow) or ``"gaussianwise"`` (GCC
        dataflow).
    backend:
        Rasterisation engine, ``"vectorized"`` or ``"reference"``.
    lod:
        Detail level the job requests from the scene store's LOD pyramid
        (0 = full scene; level ``k`` keeps ``0.5**k`` of the Gaussians by
        importance).
    quant:
        Quantization tier of the scene payload, one of
        :data:`repro.store.codec.QUANT_SPECS` (``"lossless"`` ships and
        renders the scene bit-exactly; lossy tiers shrink the bytes shipped
        to farm workers).
    shards:
        Tile-range shards each frame is split into (1 = whole-frame work
        units, the historical behaviour).  Sharding is an intra-frame
        latency lever: shard outputs merge bitwise-exactly, so results are
        identical at any shard count — only the wall-clock of a single
        frame changes.  Requires the tile-wise dataflow.
    dtype:
        Floating-point engine mode (:data:`repro.render.common.DTYPES`).
        ``"float32"`` is the tile-wise fast path, validated by PSNR floor
        against the float64 oracle instead of bitwise.
    """

    scene: str
    trajectory: Trajectory
    quick: bool = False
    dataflow: str = "tilewise"
    backend: str = "vectorized"
    lod: int = 0
    quant: str = "lossless"
    shards: int = 1
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.dataflow not in DATAFLOWS:
            raise ValueError(f"dataflow must be one of {DATAFLOWS}")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.lod < 0:
            raise ValueError("lod must be non-negative")
        if self.quant not in QUANT_SPECS:
            raise ValueError(f"quant must be one of {sorted(QUANT_SPECS)}")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > 1 and self.dataflow != "tilewise":
            raise ValueError("shards > 1 requires the tilewise dataflow")
        if self.dtype not in DTYPES:
            raise ValueError(f"dtype must be one of {DTYPES}")
        if self.dtype != "float64" and self.dataflow != "tilewise":
            raise ValueError("dtype='float32' requires the tilewise dataflow")
        # Fail fast on unknown scenes so jobs cannot enter the farm queue
        # with a name no worker will resolve.
        eval_preset(self.scene, quick=self.quick)

    @property
    def num_frames(self) -> int:
        """Number of frames the job expands to."""
        return self.trajectory.num_frames

    def preset(self) -> EvalScenePreset:
        """The evaluation preset the job renders."""
        return eval_preset(self.scene, quick=self.quick)

    def cameras(self) -> list[Camera]:
        """Expand the trajectory into the job's per-frame cameras."""
        return self.trajectory.cameras(self.preset())

    def with_frames(self, num_frames: int) -> "RenderJob":
        """A copy of the job resampled to ``num_frames`` frames."""
        return replace(self, trajectory=replace(self.trajectory, num_frames=num_frames))
