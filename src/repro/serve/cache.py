"""Bounded artifact cache for renders, scenes and simulation reports.

The evaluation runner (:mod:`repro.eval.runner`) and the render farm both
memoise expensive artefacts — synthetic scenes, rendered frames, accelerator
reports — under hashable tuple keys.  The seed implementation used an
unbounded module-level ``dict``, which is fine for a one-shot experiment
sweep but not for a long-lived serving process that streams thousands of
frames: every distinct (scene, camera, config) combination would stay
resident forever.

:class:`LRUCache` keeps the same ``key -> artifact`` contract but bounds the
number of resident entries, evicting the least-recently-used artifact once
the bound is exceeded.  It is thread-safe (one reentrant lock around every
operation), so the request scheduler, the runner and the scene store can
share one cache across threads.  Hits refresh recency; overwriting an existing key
refreshes recency too.  A ``maxsize`` of ``None`` disables eviction
entirely, restoring the unbounded seed behaviour for callers that want it;
the evaluation runner itself uses a 256-entry bound
(:data:`repro.eval.runner.CACHE_MAXSIZE`), comfortably above what a full
six-scene evaluation sweep keeps live.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

#: Sentinel distinguishing "key absent" from a cached ``None``.
_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`LRUCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups served (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def reset(self) -> None:
        """Zero every counter (used by ``LRUCache.clear(reset_stats=True)``)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class LRUCache:
    """A bounded mapping from hashable keys to arbitrary artifacts.

    Parameters
    ----------
    maxsize:
        Maximum number of resident entries.  ``None`` means unbounded
        (no eviction ever happens); otherwise must be positive.

    Notes
    -----
    The cache is **thread-safe**: every operation (including the stats
    counters) runs under one internal reentrant lock, so the request
    scheduler, the evaluation runner and the scene store can share caches
    across threads.  :meth:`get_or_create` holds the lock *across the
    factory call*, which serialises builds per cache — each key's factory
    runs exactly once no matter how many threads race on it, and a factory
    that recursively fills other keys of the same cache (as the evaluation
    runner's nested memos do) still works because the lock is reentrant.
    The price is that one slow factory blocks other threads' lookups on the
    same cache; for this codebase's caches (scene preparation, memoised
    renders) exactly-once construction is worth more than lookup overlap.
    """

    def __init__(self, maxsize: int | None = 128) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive or None (unbounded)")
        self._maxsize = maxsize
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    @property
    def maxsize(self) -> int | None:
        """The eviction bound (``None`` when unbounded)."""
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate keys from least- to most-recently used (snapshot)."""
        return iter(self.keys())

    def keys(self) -> list[Hashable]:
        """All resident keys, least-recently-used first (snapshot)."""
        with self._lock:
            return list(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the artifact under ``key`` (refreshing recency) or ``default``."""
        with self._lock:
            if key not in self._entries:
                self.stats.misses += 1
                return default
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if self._maxsize is not None and len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``key``, building it on a miss.

        The lock is held across the factory call, so each key's factory
        runs exactly once even under concurrent callers (single-flight);
        a factory that recursively fills other keys of the same cache (as
        the evaluation runner's nested memos do) is fine — the lock is
        reentrant from the building thread.
        """
        with self._lock:
            value = self.get(key, default=_MISSING)
            if value is _MISSING:
                value = factory()
                self.put(key, value)
            return value

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return the artifact under ``key`` (no stats recorded).

        Explicit removal is bookkeeping, not a lookup: neither the hit/miss
        counters nor the eviction counter move (evictions count *capacity*
        pressure only).
        """
        with self._lock:
            return self._entries.pop(key, default)

    def resize(self, maxsize: int | None) -> None:
        """Change the eviction bound, evicting LRU entries if now over it.

        Shrinking below the resident count evicts oldest-first and counts
        each removal in ``stats.evictions``; ``None`` removes the bound.
        """
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive or None (unbounded)")
        with self._lock:
            self._maxsize = maxsize
            if maxsize is not None:
                while len(self._entries) > maxsize:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def clear(self, reset_stats: bool = False) -> None:
        """Drop every entry.

        Counters are **kept** by default so a serving process can clear
        artifacts without losing its lifetime hit-rate telemetry; pass
        ``reset_stats=True`` to zero them as well (the semantics benchmarks
        want between runs).
        """
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self.stats.reset()
