"""Stage III — colour mapping (spherical harmonics) and intra-group sorting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianScene
from repro.gaussians.sh import evaluate_sh_colors
from repro.render.common import RenderConfig
from repro.render.preprocess import GeometryProjection


@dataclass
class ColorSortResult:
    """Output of Stage III for one depth group."""

    #: Row order (into the group's projection arrays) sorted front-to-back.
    order: np.ndarray
    #: Evaluated RGB colours aligned with the projection rows (NaN rows were
    #: skipped by cross-stage conditional processing).
    colors: np.ndarray
    #: Boolean mask of rows whose SH colour was actually evaluated.
    evaluated: np.ndarray

    @property
    def num_evaluated(self) -> int:
        """Number of Gaussians whose SH payload was fetched and evaluated."""
        return int(np.count_nonzero(self.evaluated))


class ColorSortStage:
    """Stage III: evaluate SH colours and sort the group front-to-back.

    Under cross-stage conditional processing, the caller passes
    ``needs_color`` — the per-row result of checking the Gaussian's footprint
    against the transmittance mask — and only those rows pay the SH fetch and
    evaluation.  Rows that skip evaluation keep NaN colours; Stage IV never
    reads them because their footprint is fully saturated.
    """

    def __init__(self, config: RenderConfig | None = None) -> None:
        self.config = config or RenderConfig(radius_rule="omega-sigma")

    def run(
        self,
        scene: GaussianScene,
        camera: Camera,
        geometry: GeometryProjection,
        needs_color: np.ndarray | None = None,
    ) -> ColorSortResult:
        """Execute Stage III for one projected depth group."""
        count = geometry.num_visible
        order = np.argsort(geometry.depths, kind="stable")
        colors = np.full((count, 3), np.nan)
        if count == 0:
            return ColorSortResult(order=order, colors=colors, evaluated=np.zeros(0, dtype=bool))

        if needs_color is None:
            evaluated = np.ones(count, dtype=bool)
        else:
            evaluated = np.asarray(needs_color, dtype=bool)
            if evaluated.shape != (count,):
                raise ValueError("needs_color must have one entry per visible Gaussian")

        rows = np.nonzero(evaluated)[0]
        if rows.size:
            sources = geometry.source_indices[rows]
            directions = scene.means[sources] - camera.position[None, :]
            colors[rows] = evaluate_sh_colors(
                scene.sh_coeffs[sources], directions, degree=self.config.sh_degree
            )
        return ColorSortResult(order=order, colors=colors, evaluated=evaluated)
