"""Stage II — position and shape projection."""

from __future__ import annotations

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianScene
from repro.render.common import RenderConfig
from repro.render.preprocess import GeometryProjection, project_geometry


class ProjectionStage:
    """Stage II: project a depth group's Gaussians to screen space.

    The 3D mean is projected to pixel coordinates, the covariance is
    reconstructed from scale and quaternion and projected via the Jacobian
    (Equation 1), and the omega-sigma law (Equation 8) yields an
    opacity-aware bounding radius used for screen culling.  Only geometry is
    touched — 44 bytes per Gaussian — leaving the 192-byte SH payload for
    Stage III to fetch conditionally.
    """

    def __init__(self, config: RenderConfig | None = None) -> None:
        self.config = config or RenderConfig(radius_rule="omega-sigma")

    def run(
        self,
        scene: GaussianScene,
        camera: Camera,
        scene_indices: np.ndarray,
    ) -> GeometryProjection:
        """Project the Gaussians at ``scene_indices`` for ``camera``."""
        return project_geometry(scene, camera, scene_indices, self.config)
