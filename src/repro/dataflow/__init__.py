"""Stage-structured dataflow API mirroring Figure 3 of the paper.

While :mod:`repro.render` exposes whole-frame renderers, this subpackage
exposes the GCC pipeline stage by stage so that applications (and the
examples/tests) can inspect what each stage consumes, produces and filters:

* :class:`~repro.dataflow.grouping.GroupingStage` — Stage I, depth
  computation and grouping.
* :class:`~repro.dataflow.projection.ProjectionStage` — Stage II, position
  and shape projection with omega-sigma screen culling.
* :class:`~repro.dataflow.colorsort.ColorSortStage` — Stage III, SH colour
  mapping and intra-group sorting.
* :class:`~repro.dataflow.alphablend.AlphaBlendStage` — Stage IV, alpha
  computation and blending with the transmittance mask.
* :class:`~repro.dataflow.pipeline.GccDataflow` — the four stages chained
  with cross-stage conditional processing.
* :class:`~repro.dataflow.standard.StandardDataflow` — the conventional
  preprocess-then-render pipeline, for comparison.
"""

from repro.dataflow.alphablend import AlphaBlendStage, FrameBuffers
from repro.dataflow.colorsort import ColorSortStage
from repro.dataflow.grouping import GroupingStage
from repro.dataflow.pipeline import GccDataflow, GccDataflowResult
from repro.dataflow.projection import ProjectionStage
from repro.dataflow.standard import StandardDataflow, StandardDataflowResult

__all__ = [
    "AlphaBlendStage",
    "ColorSortStage",
    "FrameBuffers",
    "GccDataflow",
    "GccDataflowResult",
    "GroupingStage",
    "ProjectionStage",
    "StandardDataflow",
    "StandardDataflowResult",
]
