"""Stage IV — alpha computation and blending with the transmittance mask."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.camera import Camera
from repro.render.blending import blend_pixels, compute_alpha, finalize_image
from repro.render.boundary import identify_influence_blocks
from repro.render.common import RenderConfig
from repro.render.preprocess import GeometryProjection


@dataclass
class FrameBuffers:
    """Accumulation state of one frame (the hardware Image Buffer contents)."""

    width: int
    height: int
    block_size: int
    color: np.ndarray = field(init=False)
    transmittance: np.ndarray = field(init=False)
    saturated_blocks: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.color = np.zeros((self.height, self.width, 3), dtype=np.float64)
        self.transmittance = np.ones((self.height, self.width), dtype=np.float64)
        blocks_y = (self.height + self.block_size - 1) // self.block_size
        blocks_x = (self.width + self.block_size - 1) // self.block_size
        self.saturated_blocks = np.zeros((blocks_y, blocks_x), dtype=bool)

    @property
    def all_saturated(self) -> bool:
        """True when every block has terminated (triggers group skipping)."""
        return bool(np.all(self.saturated_blocks))

    def finalize(self, background: tuple[float, float, float]) -> np.ndarray:
        """Composite the accumulated colour over the background."""
        return finalize_image(self.color, self.transmittance, background)


@dataclass
class AlphaBlendGroupStats:
    """Per-group work counters reported by Stage IV."""

    gaussians_blended: int = 0
    gaussians_skipped: int = 0
    alpha_evaluations: int = 0
    pixels_blended: int = 0
    blocks_visited: int = 0
    blocks_evaluated: int = 0
    blocks_skipped_tmask: int = 0


class AlphaBlendStage:
    """Stage IV: alpha computation over identified blocks, then blending.

    The stage mutates the :class:`FrameBuffers` in place, exactly as the
    hardware updates the Image Buffer, and keeps the block-level saturation
    mask (``T_mask``) up to date so later Gaussians and groups can be skipped.
    """

    def __init__(self, config: RenderConfig | None = None) -> None:
        self.config = config or RenderConfig(radius_rule="omega-sigma")

    def footprint_blocks(
        self,
        geometry: GeometryProjection,
        row: int,
        buffers: FrameBuffers,
        respect_mask: bool = True,
    ):
        """Run boundary identification for one Gaussian of the group."""
        return identify_influence_blocks(
            geometry.means2d[row],
            geometry.conics[row],
            float(geometry.opacities[row]),
            buffers.width,
            buffers.height,
            block_size=buffers.block_size,
            alpha_min=self.config.alpha_min,
            saturated_blocks=buffers.saturated_blocks if respect_mask else None,
        )

    def blend_gaussian(
        self,
        geometry: GeometryProjection,
        row: int,
        color: np.ndarray,
        blocks: list[tuple[int, int]],
        buffers: FrameBuffers,
        stats: AlphaBlendGroupStats,
    ) -> int:
        """Blend one Gaussian over the given blocks; returns pixels blended."""
        config = self.config
        block_size = buffers.block_size
        mean2d = geometry.means2d[row]
        conic = geometry.conics[row]
        opacity = float(geometry.opacities[row])
        contributed_total = 0

        for by, bx in blocks:
            y0, x0 = by * block_size, bx * block_size
            y1 = min(y0 + block_size, buffers.height)
            x1 = min(x0 + block_size, buffers.width)
            xs = np.arange(x0, x1, dtype=np.float64)
            ys = np.arange(y0, y1, dtype=np.float64)
            grid_x, grid_y = np.meshgrid(xs, ys)
            alpha = compute_alpha(
                conic,
                opacity,
                grid_x - mean2d[0],
                grid_y - mean2d[1],
                alpha_min=config.alpha_min,
                alpha_max=config.alpha_max,
            )
            stats.alpha_evaluations += alpha.size
            stats.blocks_evaluated += 1

            block_color = buffers.color[y0:y1, x0:x1].reshape(-1, 3)
            block_trans = buffers.transmittance[y0:y1, x0:x1].reshape(-1)
            contributed = blend_pixels(
                block_color,
                block_trans,
                alpha.reshape(-1),
                color,
                config.transmittance_eps,
            )
            buffers.color[y0:y1, x0:x1] = block_color.reshape(y1 - y0, x1 - x0, 3)
            buffers.transmittance[y0:y1, x0:x1] = block_trans.reshape(y1 - y0, x1 - x0)
            stats.pixels_blended += contributed
            contributed_total += contributed

            if np.all(buffers.transmittance[y0:y1, x0:x1] <= config.transmittance_eps):
                buffers.saturated_blocks[by, bx] = True

        return contributed_total


def make_frame_buffers(camera: Camera, config: RenderConfig | None = None) -> FrameBuffers:
    """Convenience constructor for :class:`FrameBuffers` matching a camera."""
    config = config or RenderConfig(radius_rule="omega-sigma")
    return FrameBuffers(width=camera.width, height=camera.height, block_size=config.block_size)
