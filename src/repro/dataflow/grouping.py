"""Stage I — Gaussian grouping by depth."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianScene
from repro.render.common import RenderConfig
from repro.render.grouping import DepthGroup, group_by_depth
from repro.render.preprocess import frustum_cull_depths


@dataclass
class GroupingResult:
    """Output of Stage I for one frame."""

    #: Depths of every Gaussian in the scene (view-space z).
    depths: np.ndarray
    #: Indices (into the scene) of Gaussians that passed the near-plane cull.
    visible_indices: np.ndarray
    #: Front-to-back depth groups; indices are positions in ``visible_indices``.
    groups: list[DepthGroup]
    #: Number of Gaussians culled by the depth pivot.
    num_culled: int

    @property
    def num_groups(self) -> int:
        """Number of depth groups formed."""
        return len(self.groups)

    def group_scene_indices(self, group_index: int) -> np.ndarray:
        """Scene indices of the Gaussians in group ``group_index``."""
        return self.visible_indices[self.groups[group_index].indices]


class GroupingStage:
    """Stage I: compute view-space depth, cull, and bin into depth groups.

    Only the 3D mean of each Gaussian is needed, so the hardware streams 12
    bytes per Gaussian through the shared MVM lanes and the RCA, and spills
    the (depth, ID) records back to DRAM for the rendering pipeline.
    """

    def __init__(self, config: RenderConfig | None = None) -> None:
        self.config = config or RenderConfig(radius_rule="omega-sigma")

    def run(self, scene: GaussianScene, camera: Camera) -> GroupingResult:
        """Execute Stage I for one viewpoint."""
        depths, keep = frustum_cull_depths(scene, camera, self.config.depth_near)
        visible = np.nonzero(keep)[0]
        groups = group_by_depth(depths[visible], capacity=self.config.group_capacity)
        return GroupingResult(
            depths=depths,
            visible_indices=visible,
            groups=groups,
            num_culled=scene.num_gaussians - int(visible.size),
        )
