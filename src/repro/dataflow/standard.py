"""The standard dataflow: preprocess-then-render with tile-wise rendering.

This is the pipeline GSCore and the original GPU rasteriser implement.  It is
provided in stage-structured form for side-by-side comparison with
:class:`repro.dataflow.pipeline.GccDataflow` in examples and tests; the heavy
lifting is delegated to :func:`repro.render.tile_raster.render_tilewise`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianScene
from repro.render.common import RenderConfig
from repro.render.preprocess import ProjectedGaussians, project_scene
from repro.render.tile_raster import TileWiseStats, render_tilewise


@dataclass
class StandardDataflowResult:
    """Image, preprocessing output and statistics of the standard pipeline."""

    image: np.ndarray
    projected: ProjectedGaussians
    stats: TileWiseStats

    @property
    def preprocessed_unused(self) -> int:
        """Preprocessed 2D Gaussians never used in rendering (Challenge 1)."""
        return self.stats.num_preprocessed - self.stats.num_rendered


class StandardDataflow:
    """Two-stage execution: unconditional preprocessing, then tile rendering."""

    def __init__(self, config: RenderConfig | None = None) -> None:
        self.config = config or RenderConfig(radius_rule="3sigma")

    def preprocess(self, scene: GaussianScene, camera: Camera) -> ProjectedGaussians:
        """Stage 1: project and colour-evaluate every Gaussian unconditionally."""
        return project_scene(scene, camera, self.config)

    def run(self, scene: GaussianScene, camera: Camera) -> StandardDataflowResult:
        """Render one frame with the standard dataflow."""
        result = render_tilewise(scene, camera, self.config)
        return StandardDataflowResult(
            image=np.asarray(result.image),
            projected=result.projected,
            stats=result.stats,
        )
