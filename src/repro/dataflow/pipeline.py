"""The complete GCC dataflow: Stages I-IV with cross-stage conditions."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataflow.alphablend import AlphaBlendGroupStats, AlphaBlendStage, FrameBuffers
from repro.dataflow.colorsort import ColorSortStage
from repro.dataflow.grouping import GroupingStage
from repro.dataflow.projection import ProjectionStage
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianScene
from repro.render.common import RenderConfig


@dataclass
class GccDataflowResult:
    """Image plus per-stage counters produced by :class:`GccDataflow`."""

    image: np.ndarray
    #: Per-group Stage IV statistics, in processing order.
    group_stats: list[AlphaBlendGroupStats] = field(default_factory=list)
    num_groups: int = 0
    num_groups_processed: int = 0
    num_groups_skipped: int = 0
    num_projected: int = 0
    num_screen_passed: int = 0
    num_sh_evaluated: int = 0
    num_rendered: int = 0

    @property
    def pixels_blended(self) -> int:
        """Total blended pixels across all processed groups."""
        return sum(stats.pixels_blended for stats in self.group_stats)


class GccDataflow:
    """Stage-by-stage execution of the GCC pipeline (Figure 3).

    This class exists for inspection and experimentation: it exposes each
    stage object so callers can substitute configurations (e.g. a different
    group capacity, block size, or radius rule).  For plain rendering,
    :func:`repro.render.render_gaussianwise` is faster because it fuses the
    stages; the two are tested to produce identical images.
    """

    def __init__(self, config: RenderConfig | None = None, enable_cc: bool = True) -> None:
        self.config = config or RenderConfig(radius_rule="omega-sigma")
        self.enable_cc = enable_cc
        self.grouping = GroupingStage(self.config)
        self.projection = ProjectionStage(self.config)
        self.colorsort = ColorSortStage(self.config)
        self.alphablend = AlphaBlendStage(self.config)

    def run(self, scene: GaussianScene, camera: Camera) -> GccDataflowResult:
        """Render one frame, returning the image and per-stage counters."""
        buffers = FrameBuffers(
            width=camera.width, height=camera.height, block_size=self.config.block_size
        )
        result = GccDataflowResult(image=np.zeros((camera.height, camera.width, 3)))

        grouping = self.grouping.run(scene, camera)
        result.num_groups = grouping.num_groups

        terminated = False
        for group_index in range(grouping.num_groups):
            if self.enable_cc and terminated:
                result.num_groups_skipped += 1
                continue
            result.num_groups_processed += 1

            scene_indices = grouping.group_scene_indices(group_index)
            geometry = self.projection.run(scene, camera, scene_indices)
            result.num_projected += geometry.num_input
            result.num_screen_passed += geometry.num_visible
            if geometry.num_visible == 0:
                continue

            # Boundary identification first: under CC it decides which rows
            # need their SH colour at all.
            stats = AlphaBlendGroupStats()
            traversals = []
            needs_color = np.zeros(geometry.num_visible, dtype=bool)
            # Process rows in front-to-back order within the group.
            order = np.argsort(geometry.depths, kind="stable")
            for row in order:
                traversal = self.alphablend.footprint_blocks(
                    geometry, int(row), buffers, respect_mask=self.enable_cc
                )
                traversals.append((int(row), traversal))
                stats.blocks_visited += traversal.blocks_visited
                stats.blocks_skipped_tmask += traversal.blocks_skipped_tmask
                needs_color[row] = bool(traversal.blocks) or not self.enable_cc

            colorsort = self.colorsort.run(scene, camera, geometry, needs_color)
            result.num_sh_evaluated += colorsort.num_evaluated

            for row, traversal in traversals:
                if not traversal.blocks:
                    stats.gaussians_skipped += 1
                    continue
                contributed = self.alphablend.blend_gaussian(
                    geometry,
                    row,
                    colorsort.colors[row],
                    traversal.blocks,
                    buffers,
                    stats,
                )
                if contributed:
                    stats.gaussians_blended += 1
                    result.num_rendered += 1
                else:
                    stats.gaussians_skipped += 1

            result.group_stats.append(stats)
            if self.enable_cc and buffers.all_saturated:
                terminated = True

        result.image = buffers.finalize(self.config.background)
        return result
