"""Alpha-based Gaussian boundary identification (Algorithm 1 of the paper).

Starting from the pixel (or pixel block) containing the Gaussian's projected
centre, a breadth-first traversal explores outward.  A pixel/block is added to
the influence set when the elliptical alpha condition holds there; because the
footprint is convex, traversal can stop expanding past any pixel/block that
fails the condition, so only the footprint plus a one-element boundary ring is
ever evaluated.

Two granularities are provided:

* :func:`identify_influence_pixels` — the per-pixel version matching
  Algorithm 1 literally; used for correctness tests against the brute-force
  footprint mask.
* :func:`identify_influence_blocks` — the block-level version implemented by
  GCC's Alpha Unit (an ``n x n`` PE array evaluates a whole block at once and
  the identifier controller decides which neighbouring blocks to enqueue).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.gaussians.covariance import mahalanobis_sq
from repro.render.common import ALPHA_MIN


def _alpha_chi2(opacity: float, alpha_min: float) -> float | None:
    """The Mahalanobis^2 threshold for ``alpha >= alpha_min`` (None if empty)."""
    if opacity < alpha_min:
        return None
    return 2.0 * float(np.log(opacity / alpha_min))


def _clamp_to_bounds(value: float, upper: int) -> int:
    """Clamp a float coordinate to the integer range ``[0, upper - 1]``.

    Uses ``floor`` so that an in-bounds coordinate maps to the pixel (or
    block) *containing* it, matching Algorithm 1's "start from the pixel
    containing the projected centre".  Rounding instead can start the
    traversal one pixel past the containing one (e.g. x = 10.7 -> pixel 11),
    which at block granularity can begin the search in a block the footprint
    never touches and miss it entirely.
    """
    return int(min(max(np.floor(value), 0), upper - 1))


def identify_influence_pixels(
    mean2d: np.ndarray,
    conic: np.ndarray,
    opacity: float,
    width: int,
    height: int,
    alpha_min: float = ALPHA_MIN,
) -> tuple[np.ndarray, int]:
    """Pixel-level Algorithm 1.

    Returns ``(mask, evaluations)`` where ``mask`` is a boolean
    ``(height, width)`` array of influenced pixels and ``evaluations`` is the
    number of alpha-condition evaluations performed (visited pixels), which
    the paper's argument says stays close to the footprint size.

    If the projected centre itself fails the alpha condition (possible when
    the centre lies off-screen and the nearest in-bounds pixel is outside the
    ellipse) the returned mask may be empty even though some influence exists;
    this mirrors the hardware behaviour described in Section 4.4.
    """
    mask = np.zeros((height, width), dtype=bool)
    if width <= 0 or height <= 0:
        return mask, 0
    chi2 = _alpha_chi2(opacity, alpha_min)
    if chi2 is None:
        return mask, 0

    conic = np.asarray(conic, dtype=np.float64)
    start = (
        _clamp_to_bounds(float(mean2d[0]), width),
        _clamp_to_bounds(float(mean2d[1]), height),
    )
    visited = np.zeros((height, width), dtype=bool)
    queue: deque[tuple[int, int]] = deque()

    def condition(px: int, py: int) -> bool:
        dx = px - float(mean2d[0])
        dy = py - float(mean2d[1])
        return float(mahalanobis_sq(conic, dx, dy)) <= chi2

    evaluations = 1
    visited[start[1], start[0]] = True
    if condition(*start):
        mask[start[1], start[0]] = True
        queue.append(start)

    neighbours = ((1, 0), (-1, 0), (0, 1), (0, -1))
    while queue:
        px, py = queue.popleft()
        for ox, oy in neighbours:
            qx, qy = px + ox, py + oy
            if 0 <= qx < width and 0 <= qy < height and not visited[qy, qx]:
                visited[qy, qx] = True
                evaluations += 1
                if condition(qx, qy):
                    mask[qy, qx] = True
                    queue.append((qx, qy))
    return mask, evaluations


@dataclass
class BlockTraversalResult:
    """Outcome of a block-level boundary identification for one Gaussian."""

    #: Blocks (by, bx) whose pixels must be alpha-evaluated, in traversal order.
    blocks: list[tuple[int, int]]
    #: Number of blocks visited (evaluated or rejected); each visit costs one
    #: pass of the n x n PE array in hardware.
    blocks_visited: int
    #: Number of blocks skipped because the transmittance mask marked them
    #: saturated before this Gaussian was processed.
    blocks_skipped_tmask: int


def identify_influence_blocks(
    mean2d: np.ndarray,
    conic: np.ndarray,
    opacity: float,
    width: int,
    height: int,
    block_size: int = 8,
    alpha_min: float = ALPHA_MIN,
    saturated_blocks: np.ndarray | None = None,
) -> BlockTraversalResult:
    """Block-level boundary identification as performed by the Alpha Unit.

    Parameters
    ----------
    saturated_blocks:
        Optional boolean array of shape ``(blocks_y, blocks_x)``; blocks
        marked ``True`` have every pixel's transmittance below the early
        termination threshold (the paper's ``T_mask``) and are skipped without
        evaluation.

    Returns
    -------
    A :class:`BlockTraversalResult`.  A block is included when at least one of
    its pixels satisfies the alpha condition; traversal expands from any
    included block to its 4-neighbours, which (by convexity of the footprint)
    reaches every influenced block while evaluating only a one-block ring
    beyond the footprint.
    """
    blocks_x = (width + block_size - 1) // block_size
    blocks_y = (height + block_size - 1) // block_size
    result_blocks: list[tuple[int, int]] = []
    if blocks_x <= 0 or blocks_y <= 0:
        return BlockTraversalResult(result_blocks, 0, 0)

    chi2 = _alpha_chi2(opacity, alpha_min)
    if chi2 is None:
        return BlockTraversalResult(result_blocks, 0, 0)

    conic = np.asarray(conic, dtype=np.float64)
    cx = _clamp_to_bounds(float(mean2d[0]), width)
    cy = _clamp_to_bounds(float(mean2d[1]), height)
    start = (cy // block_size, cx // block_size)

    visited = np.zeros((blocks_y, blocks_x), dtype=bool)
    skipped_tmask = 0
    blocks_visited = 0

    def block_influence_mask(by: int, bx: int) -> np.ndarray:
        """Per-pixel alpha-condition mask of block (by, bx).

        In hardware this is exactly one pass of the n x n PE array; the
        identifier controller then reads the boundary rows/columns of the
        mask to decide which neighbouring blocks to enqueue, so rejected
        directions never cost an extra array pass.
        """
        x0 = bx * block_size
        y0 = by * block_size
        x1 = min(x0 + block_size, width)
        y1 = min(y0 + block_size, height)
        xs = np.arange(x0, x1, dtype=np.float64) - float(mean2d[0])
        ys = np.arange(y0, y1, dtype=np.float64) - float(mean2d[1])
        dx, dy = np.meshgrid(xs, ys)
        maha = mahalanobis_sq(conic[None, :], dx, dy)
        return maha <= chi2

    queue: deque[tuple[int, int]] = deque()
    visited[start] = True
    blocks_visited += 1
    start_mask = block_influence_mask(*start)
    start_saturated = saturated_blocks is not None and bool(saturated_blocks[start])
    if bool(np.any(start_mask)):
        queue.append(start)
        _masks = {start: start_mask}
        if start_saturated:
            skipped_tmask += 1
        else:
            result_blocks.append(start)
    else:
        _masks = {}

    # Directional expansion: a neighbour is enqueued only when the current
    # block's boundary pixels facing it contain at least one influenced pixel
    # (the paper's directional early termination, valid by convexity).
    while queue:
        by, bx = queue.popleft()
        mask = _masks.pop((by, bx))
        edges = (
            ((by, bx + 1), mask[:, -1]),  # right
            ((by, bx - 1), mask[:, 0]),   # left
            ((by + 1, bx), mask[-1, :]),  # down
            ((by - 1, bx), mask[0, :]),   # up
        )
        for (ny, nx), edge in edges:
            if not (0 <= ny < blocks_y and 0 <= nx < blocks_x):
                continue
            if visited[ny, nx] or not bool(np.any(edge)):
                continue
            visited[ny, nx] = True
            blocks_visited += 1
            neighbour_mask = block_influence_mask(ny, nx)
            if not bool(np.any(neighbour_mask)):
                continue
            queue.append((ny, nx))
            _masks[(ny, nx)] = neighbour_mask
            if saturated_blocks is not None and saturated_blocks[ny, nx]:
                skipped_tmask += 1
            else:
                result_blocks.append((ny, nx))
    return BlockTraversalResult(result_blocks, blocks_visited, skipped_tmask)
