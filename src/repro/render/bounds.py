"""Gaussian footprint analysis: AABB, OBB and alpha-exact pixel regions.

This module backs Table 1 and Figure 4 of the paper, which compare the number
of pixels processed per Gaussian under:

* the axis-aligned bounding box (AABB) of the 3-sigma ellipse,
* the oriented bounding box (OBB) used by GSCore,
* the alpha-exact elliptical footprint governed by the 1/255 threshold
  (what GCC's alpha-based boundary identification converges to).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.covariance import mahalanobis_sq
from repro.render.common import ALPHA_MIN
from repro.render.preprocess import ProjectedGaussians


@dataclass(frozen=True)
class FootprintCounts:
    """Pixel counts for one Gaussian (or summed over a frame)."""

    aabb: int
    obb: int
    alpha: int

    def __add__(self, other: "FootprintCounts") -> "FootprintCounts":
        return FootprintCounts(
            aabb=self.aabb + other.aabb,
            obb=self.obb + other.obb,
            alpha=self.alpha + other.alpha,
        )


def _clip_box(
    x_min: float, x_max: float, y_min: float, y_max: float, width: int, height: int
) -> tuple[int, int, int, int] | None:
    """Clip a float box to integer pixel bounds; return ``None`` if empty."""
    x0 = max(int(np.floor(x_min)), 0)
    x1 = min(int(np.ceil(x_max)), width - 1)
    y0 = max(int(np.floor(y_min)), 0)
    y1 = min(int(np.ceil(y_max)), height - 1)
    if x0 > x1 or y0 > y1:
        return None
    return x0, x1, y0, y1


def obb_axes(cov2d: np.ndarray) -> tuple[np.ndarray, np.ndarray, float, float]:
    """Principal axes and half-lengths of the 3-sigma oriented bounding box.

    Returns ``(axis_major, axis_minor, half_major, half_minor)`` where the
    axes are unit vectors in pixel space.
    """
    cov2d = np.asarray(cov2d, dtype=np.float64)
    eigvals, eigvecs = np.linalg.eigh(cov2d)
    # eigh returns ascending order; the major axis is the last column.
    lam_minor, lam_major = max(eigvals[0], 0.0), max(eigvals[1], 0.0)
    axis_major = eigvecs[:, 1]
    axis_minor = eigvecs[:, 0]
    return axis_major, axis_minor, 3.0 * np.sqrt(lam_major), 3.0 * np.sqrt(lam_minor)


def count_footprint_pixels(
    mean2d: np.ndarray,
    cov2d: np.ndarray,
    conic: np.ndarray,
    opacity: float,
    width: int,
    height: int,
    alpha_min: float = ALPHA_MIN,
) -> FootprintCounts:
    """Count pixels inside the AABB, OBB and alpha-exact region of one Gaussian.

    All three regions are evaluated on the same integer pixel grid clipped to
    the image, so the counts are directly comparable (Table 1 of the paper).
    """
    axis_major, axis_minor, half_major, half_minor = obb_axes(cov2d)
    if half_major <= 0.0:
        return FootprintCounts(0, 0, 0)

    # AABB of the 3-sigma ellipse (the conventional method).
    extent_x = abs(axis_major[0]) * half_major + abs(axis_minor[0]) * half_minor
    extent_y = abs(axis_major[1]) * half_major + abs(axis_minor[1]) * half_minor
    box = _clip_box(
        mean2d[0] - extent_x,
        mean2d[0] + extent_x,
        mean2d[1] - extent_y,
        mean2d[1] + extent_y,
        width,
        height,
    )
    if box is None:
        return FootprintCounts(0, 0, 0)
    x0, x1, y0, y1 = box

    xs = np.arange(x0, x1 + 1)
    ys = np.arange(y0, y1 + 1)
    grid_x, grid_y = np.meshgrid(xs, ys)
    dx = grid_x.astype(np.float64) - mean2d[0]
    dy = grid_y.astype(np.float64) - mean2d[1]
    aabb_count = int(dx.size)

    # OBB membership: |projection on each axis| within the half-lengths.
    proj_major = dx * axis_major[0] + dy * axis_major[1]
    proj_minor = dx * axis_minor[0] + dy * axis_minor[1]
    inside_obb = (np.abs(proj_major) <= half_major) & (np.abs(proj_minor) <= half_minor)
    obb_count = int(np.count_nonzero(inside_obb))

    # Alpha-exact region: alpha >= alpha_min, i.e. Mahalanobis^2 <= 2 ln(w/alpha_min).
    if opacity < alpha_min:
        alpha_count = 0
    else:
        chi2 = 2.0 * np.log(opacity / alpha_min)
        maha = mahalanobis_sq(conic[None, :], dx, dy)
        alpha_count = int(np.count_nonzero(maha <= chi2))

    return FootprintCounts(aabb=aabb_count, obb=obb_count, alpha=alpha_count)


def frame_footprint_counts(
    projected: ProjectedGaussians,
    width: int,
    height: int,
    alpha_min: float = ALPHA_MIN,
) -> FootprintCounts:
    """Sum footprint pixel counts over every visible Gaussian of a frame."""
    total = FootprintCounts(0, 0, 0)
    for i in range(projected.num_visible):
        total = total + count_footprint_pixels(
            projected.means2d[i],
            projected.cov2d[i],
            projected.conics[i],
            float(projected.opacities[i]),
            width,
            height,
            alpha_min=alpha_min,
        )
    return total


def alpha_footprint_mask(
    mean2d: np.ndarray,
    conic: np.ndarray,
    opacity: float,
    width: int,
    height: int,
    alpha_min: float = ALPHA_MIN,
) -> np.ndarray:
    """Boolean ``(height, width)`` mask of the alpha-exact footprint.

    This is the brute-force reference the BFS boundary identification
    (Algorithm 1) is property-tested against.
    """
    xs = np.arange(width, dtype=np.float64)
    ys = np.arange(height, dtype=np.float64)
    grid_x, grid_y = np.meshgrid(xs, ys)
    dx = grid_x - mean2d[0]
    dy = grid_y - mean2d[1]
    if opacity < alpha_min:
        return np.zeros((height, width), dtype=bool)
    chi2 = 2.0 * np.log(opacity / alpha_min)
    maha = mahalanobis_sq(np.asarray(conic)[None, :], dx, dy)
    return maha <= chi2
