"""Preprocessing: frustum culling, projection, and screen-space footprints.

This module implements the per-Gaussian preprocessing both dataflows share:
view transformation, EWA covariance projection (Equation 1), the conventional
3-sigma radius (Equation 6) and the paper's opacity-aware omega-sigma radius
(Equation 8), and screen culling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.covariance import (
    build_covariance_3d,
    covariance_2d_eigenvalues,
    invert_covariance_2d,
    project_covariance_2d,
)
from repro.gaussians.model import GaussianScene
from repro.gaussians.sh import evaluate_sh_colors
from repro.render.common import ALPHA_MIN, DEPTH_NEAR, RenderConfig


@dataclass
class ProjectedGaussians:
    """Screen-space representation of the visible subset of a scene.

    All arrays are aligned: entry ``i`` describes the same Gaussian.  The
    ``source_indices`` array maps back into the original scene so that
    statistics (e.g. which Gaussians were actually rendered) can be reported
    against the full model.
    """

    #: Indices into the original scene, shape ``(M,)``.
    source_indices: np.ndarray
    #: Projected 2D centres in pixel coordinates, shape ``(M, 2)``.
    means2d: np.ndarray
    #: View-space depths, shape ``(M,)``.
    depths: np.ndarray
    #: Packed inverse 2D covariances ``(A, B, C)``, shape ``(M, 3)``.
    conics: np.ndarray
    #: 2D covariance matrices, shape ``(M, 2, 2)``.
    cov2d: np.ndarray
    #: Eigenvalues of the 2D covariance (major, minor), shape ``(M, 2)``.
    eigenvalues: np.ndarray
    #: Conservative bounding radius in pixels, shape ``(M,)``.
    radii: np.ndarray
    #: Opacities, shape ``(M,)``.
    opacities: np.ndarray
    #: Evaluated RGB colours, shape ``(M, 3)``.
    colors: np.ndarray
    #: Number of Gaussians in the original scene (before any culling).
    num_total: int
    #: Number of Gaussians that passed the depth (near-plane) cull.
    num_depth_passed: int

    @property
    def num_visible(self) -> int:
        """Number of Gaussians that survived both depth and screen culling."""
        return int(self.source_indices.shape[0])

    def depth_order(self) -> np.ndarray:
        """Indices that sort the visible Gaussians front-to-back."""
        return np.argsort(self.depths, kind="stable")


def bounding_radius(
    eigenvalues: np.ndarray,
    opacities: np.ndarray,
    rule: str = "3sigma",
    alpha_min: float = ALPHA_MIN,
) -> np.ndarray:
    """Compute the per-Gaussian bounding radius in pixels.

    ``"3sigma"`` implements Equation 6 (``r = ceil(3 sqrt(lambda_max))``);
    ``"omega-sigma"`` implements the paper's opacity-aware Equation 8
    (``r = ceil(sqrt(2 ln(opacity / alpha_min) * lambda_max))``), which
    shrinks to zero for Gaussians whose peak alpha cannot reach ``alpha_min``.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    lam_max = eigenvalues[:, 0] if eigenvalues.ndim == 2 else eigenvalues
    if rule == "3sigma":
        return np.ceil(3.0 * np.sqrt(np.maximum(lam_max, 0.0)))
    if rule == "omega-sigma":
        opacities = np.asarray(opacities, dtype=np.float64)
        # 2 ln(255 * omega) in the paper's notation with alpha_min = 1/255.
        chi2 = 2.0 * np.log(np.maximum(opacities / alpha_min, 1.0e-12))
        chi2 = np.maximum(chi2, 0.0)
        return np.ceil(np.sqrt(chi2 * np.maximum(lam_max, 0.0)))
    raise ValueError(f"unknown radius rule {rule!r}")


def project_scene(
    scene: GaussianScene,
    camera: Camera,
    config: RenderConfig | None = None,
) -> ProjectedGaussians:
    """Project a scene for one camera, applying depth and screen culling.

    This is the functional equivalent of the paper's preprocessing stage
    (and of GCC's Stages I+II+III applied unconditionally): every Gaussian is
    transformed, so the caller can measure how many of the preprocessed
    Gaussians end up being used (Figure 2a).
    """
    config = config or RenderConfig()
    num_total = scene.num_gaussians
    if num_total == 0:
        empty = np.zeros((0,))
        return ProjectedGaussians(
            source_indices=np.zeros((0,), dtype=np.int64),
            means2d=np.zeros((0, 2)),
            depths=empty,
            conics=np.zeros((0, 3)),
            cov2d=np.zeros((0, 2, 2)),
            eigenvalues=np.zeros((0, 2)),
            radii=empty,
            opacities=empty,
            colors=np.zeros((0, 3)),
            num_total=0,
            num_depth_passed=0,
        )

    cam_points = camera.world_to_camera_points(scene.means)
    depths = cam_points[:, 2]
    depth_near = max(config.depth_near, camera.znear)
    depth_mask = (depths > depth_near) & (depths < camera.zfar)
    num_depth_passed = int(np.count_nonzero(depth_mask))

    indices = np.nonzero(depth_mask)[0]
    cam_points = cam_points[indices]
    depths = depths[indices]

    means2d = camera.camera_to_pixel(cam_points)
    cov3d = build_covariance_3d(scene.scales[indices], scene.quaternions[indices])
    cov2d = project_covariance_2d(
        cov3d,
        cam_points,
        camera.rotation,
        camera.fx,
        camera.fy,
        camera.tan_half_fov_x,
        camera.tan_half_fov_y,
    )
    conics, conic_valid = invert_covariance_2d(cov2d)
    lam1, lam2 = covariance_2d_eigenvalues(cov2d)
    eigenvalues = np.stack([lam1, lam2], axis=1)
    opacities = scene.opacities[indices]
    radii = bounding_radius(
        eigenvalues, opacities, rule=config.radius_rule, alpha_min=config.alpha_min
    )

    # Screen culling: keep Gaussians whose bounding square overlaps the image
    # and whose covariance is invertible and whose radius is non-zero.
    x, y = means2d[:, 0], means2d[:, 1]
    on_screen = (
        (x + radii >= 0)
        & (x - radii <= camera.width - 1)
        & (y + radii >= 0)
        & (y - radii <= camera.height - 1)
    )
    visible = conic_valid & on_screen & (radii > 0)

    keep = np.nonzero(visible)[0]
    indices = indices[keep]

    directions = camera.view_directions(scene.means[indices])
    colors = evaluate_sh_colors(
        scene.sh_coeffs[indices], directions, degree=config.sh_degree
    )

    return ProjectedGaussians(
        source_indices=indices,
        means2d=means2d[keep],
        depths=depths[keep],
        conics=conics[keep],
        cov2d=cov2d[keep],
        eigenvalues=eigenvalues[keep],
        radii=radii[keep],
        opacities=opacities[keep],
        colors=colors,
        num_total=num_total,
        num_depth_passed=num_depth_passed,
    )


@dataclass
class GeometryProjection:
    """Stage II output for a subset of Gaussians: geometry only, no colour.

    This is what GCC's cross-stage conditional processing relies on: the
    projected position and shape (44 bytes of input per Gaussian) are enough
    to decide whether the 192 bytes of SH coefficients need to be fetched at
    all.
    """

    #: Indices into the original scene, shape ``(K,)``.
    source_indices: np.ndarray
    #: Projected 2D centres, shape ``(K, 2)``.
    means2d: np.ndarray
    #: View-space depths, shape ``(K,)``.
    depths: np.ndarray
    #: Packed inverse 2D covariances, shape ``(K, 3)``.
    conics: np.ndarray
    #: 2D covariances, shape ``(K, 2, 2)``.
    cov2d: np.ndarray
    #: Eigenvalues (major, minor), shape ``(K, 2)``.
    eigenvalues: np.ndarray
    #: Bounding radii in pixels, shape ``(K,)``.
    radii: np.ndarray
    #: Opacities, shape ``(K,)``.
    opacities: np.ndarray
    #: Number of Gaussians given to this projection call.
    num_input: int

    @property
    def num_visible(self) -> int:
        """Number of Gaussians that survived screen culling."""
        return int(self.source_indices.shape[0])


def project_geometry(
    scene: GaussianScene,
    camera: Camera,
    indices: np.ndarray,
    config: RenderConfig | None = None,
) -> GeometryProjection:
    """Project only the position/shape of the Gaussians at ``indices``.

    This is Stage II of the GCC dataflow: position projection, covariance
    reconstruction and projection, the omega-sigma (or 3-sigma) radius, and
    screen culling.  Spherical-harmonics colour is *not* evaluated here; the
    caller decides per Gaussian whether that work (and the associated SH data
    load) is necessary.
    """
    config = config or RenderConfig()
    indices = np.asarray(indices, dtype=np.int64)
    num_input = int(indices.size)
    if num_input == 0:
        empty = np.zeros((0,))
        return GeometryProjection(
            source_indices=indices,
            means2d=np.zeros((0, 2)),
            depths=empty,
            conics=np.zeros((0, 3)),
            cov2d=np.zeros((0, 2, 2)),
            eigenvalues=np.zeros((0, 2)),
            radii=empty,
            opacities=empty,
            num_input=0,
        )

    cam_points = camera.world_to_camera_points(scene.means[indices])
    depths = cam_points[:, 2]
    means2d = camera.camera_to_pixel(cam_points)
    cov3d = build_covariance_3d(scene.scales[indices], scene.quaternions[indices])
    cov2d = project_covariance_2d(
        cov3d,
        cam_points,
        camera.rotation,
        camera.fx,
        camera.fy,
        camera.tan_half_fov_x,
        camera.tan_half_fov_y,
    )
    conics, conic_valid = invert_covariance_2d(cov2d)
    lam1, lam2 = covariance_2d_eigenvalues(cov2d)
    eigenvalues = np.stack([lam1, lam2], axis=1)
    opacities = scene.opacities[indices]
    radii = bounding_radius(
        eigenvalues, opacities, rule=config.radius_rule, alpha_min=config.alpha_min
    )

    x, y = means2d[:, 0], means2d[:, 1]
    on_screen = (
        (x + radii >= 0)
        & (x - radii <= camera.width - 1)
        & (y + radii >= 0)
        & (y - radii <= camera.height - 1)
    )
    visible = conic_valid & on_screen & (radii > 0)
    keep = np.nonzero(visible)[0]

    return GeometryProjection(
        source_indices=indices[keep],
        means2d=means2d[keep],
        depths=depths[keep],
        conics=conics[keep],
        cov2d=cov2d[keep],
        eigenvalues=eigenvalues[keep],
        radii=radii[keep],
        opacities=opacities[keep],
        num_input=num_input,
    )


def frustum_cull_depths(
    scene: GaussianScene, camera: Camera, depth_near: float = DEPTH_NEAR
) -> tuple[np.ndarray, np.ndarray]:
    """Stage I depth computation: return ``(depths, keep_mask)``.

    Only the mean positions are needed, which is why GCC's Stage I streams
    just 12 bytes per Gaussian from DRAM.
    """
    cam_points = camera.world_to_camera_points(scene.means)
    depths = cam_points[:, 2]
    keep = (depths > max(depth_near, camera.znear)) & (depths < camera.zfar)
    return depths, keep


def tile_range(
    means2d: np.ndarray,
    radii: np.ndarray,
    width: int,
    height: int,
    tile_size: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Inclusive-exclusive tile index ranges covered by each Gaussian's AABB.

    Returns ``(tx_min, tx_max, ty_min, ty_max)`` where a Gaussian covers tiles
    ``tx_min <= tx < tx_max`` horizontally (and similarly vertically).  A
    Gaussian entirely off-screen gets an empty range.
    """
    means2d = np.asarray(means2d, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    num_tiles_x = (width + tile_size - 1) // tile_size
    num_tiles_y = (height + tile_size - 1) // tile_size

    tx_min = np.clip(np.floor((means2d[:, 0] - radii) / tile_size), 0, num_tiles_x).astype(int)
    tx_max = np.clip(np.floor((means2d[:, 0] + radii) / tile_size) + 1, 0, num_tiles_x).astype(int)
    ty_min = np.clip(np.floor((means2d[:, 1] - radii) / tile_size), 0, num_tiles_y).astype(int)
    ty_max = np.clip(np.floor((means2d[:, 1] + radii) / tile_size) + 1, 0, num_tiles_y).astype(int)

    empty = (tx_max <= tx_min) | (ty_max <= ty_min)
    tx_max = np.where(empty, tx_min, tx_max)
    ty_max = np.where(empty, ty_min, ty_max)
    return tx_min, tx_max, ty_min, ty_max
