"""Standard-dataflow renderer: preprocess-then-render with tile-wise rendering.

This is the pipeline used by the original 3DGS GPU rasteriser and by the
GSCore baseline accelerator (Section 2.2 of the paper):

1. *Preprocessing*: every Gaussian is projected to 2D and its colour is
   evaluated from spherical harmonics, regardless of whether it will be used.
2. *Tile assignment*: each 2D Gaussian is mapped to the fixed-size tiles its
   bounding box overlaps, producing Gaussian-tile key-value pairs.
3. *Tile-wise rendering*: tiles are processed in scanline order; each tile
   sorts its Gaussians by depth and alpha-blends them front-to-back with
   per-pixel early termination.

Besides the image, the renderer reports the statistics the paper's
motivation figures are built from: how many preprocessed Gaussians are never
used (Figure 2a), how many times each Gaussian is re-loaded across tiles
(Figure 2b), and how many pixels are alpha-evaluated versus actually blended
(Table 1).

Two execution backends are provided, selected by ``RenderConfig.backend``:

* ``"vectorized"`` (default) — each tile's depth-ordered Gaussian list is
  processed in batched chunks via :mod:`repro.render.kernels`, with the
  early-termination point recovered exactly from a cumulative transmittance
  product.
* ``"reference"`` — the original per-pair Python loop, kept as the oracle
  the vectorized backend is validated against.

Both backends produce identical statistics counters; images agree to
``atol=1e-9`` (the vectorized backend accumulates colour with a batched sum
instead of a left fold).

Two orthogonal execution modes extend the pipeline without changing it:

* **Tile-range sharding** — ``render_tilewise(..., tile_shard=(lo, hi))``
  renders only the tiles whose row-major id falls in the half-open
  interval.  Tiles are independent until Stage IV blending is applied
  per-tile, so a frame sharded over any partition of the tile range and
  merged by :func:`compose_tile_shards` is *bitwise identical* — image and
  statistics counters — to the unsharded render.  Projection and pair
  building run identically in every shard (they are cheap relative to
  blending and keep the frame-global counters exact); only the per-tile
  rendering loop is restricted.
* **float32 engine mode** — ``RenderConfig(dtype="float32")`` runs alpha
  evaluation and blending in single precision.  Projection, depth sorting
  and tile assignment stay float64, so the pair stream and every counter
  are identical to the float64 mode; images are validated against the
  float64 reference oracle by PSNR floor instead of bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.covariance import mahalanobis_sq
from repro.gaussians.model import GaussianScene
from repro.render.blending import (
    alpha_from_maha,
    blend_pixels,
    compute_alpha,
    finalize_image,
)
from repro.render.common import RenderConfig
from repro.render.kernels import (
    TILE_CHUNK,
    batched_tile_alpha,
    sequential_blend,
    stage_hook,
    subtile_evaluation_count,
    tile_interval_slice,
)
from repro.render.preprocess import ProjectedGaussians, project_scene, tile_range


@dataclass
class TileWiseStats:
    """Work and data-movement statistics of one tile-wise rendered frame."""

    width: int = 0
    height: int = 0
    tile_size: int = 16
    #: Gaussians in the model.
    num_total: int = 0
    #: Gaussians passing the near/far depth cull.
    num_depth_passed: int = 0
    #: Gaussians preprocessed into on-screen 2D splats ("In Frustum" in Fig 2a).
    num_preprocessed: int = 0
    #: Gaussians assigned to at least one tile.
    num_assigned: int = 0
    #: Gaussian-tile key-value pairs created (sorting keys).
    num_tile_pairs: int = 0
    #: Gaussian-tile pairs actually processed by the rendering loop (pairs
    #: remaining after a tile saturates are skipped, but their Gaussian data
    #: was still preprocessed and stored).
    num_pairs_processed: int = 0
    #: Distinct Gaussians appearing in at least one processed pair.  Differs
    #: from ``num_assigned`` when every pair of a Gaussian fell behind a
    #: saturated tile's early exit.
    num_distinct_processed: int = 0
    #: Gaussians that contributed at least one blended pixel ("Rendered").
    num_rendered: int = 0
    #: Per-pixel alpha evaluations performed.
    alpha_evaluations: int = 0
    #: Pixels that actually received a blending contribution.
    pixels_blended: int = 0
    #: Number of tiles containing at least one Gaussian.
    num_occupied_tiles: int = 0
    #: Gaussian indices (into the original scene) that were rendered.
    rendered_indices: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    #: Gaussian indices (into the original scene) with at least one processed
    #: pair.  Kept as a sorted array (not just the ``num_distinct_processed``
    #: count) so shard compositing can take the exact union across shards.
    processed_indices: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def avg_loads_per_gaussian(self) -> float:
        """Average number of times a Gaussian is loaded during rendering.

        In the standard dataflow a Gaussian's parameters are re-fetched for
        every tile it is processed in, so this is processed pairs divided by
        the number of distinct Gaussians processed (Figure 2b).  Gaussians
        whose every pair was skipped by tile saturation never load their
        parameters in the rendering loop and are excluded from the
        denominator.
        """
        if self.num_distinct_processed == 0:
            return 0.0
        return self.num_pairs_processed / self.num_distinct_processed

    @property
    def rendered_fraction(self) -> float:
        """Fraction of preprocessed Gaussians that were actually rendered."""
        if self.num_preprocessed == 0:
            return 0.0
        return self.num_rendered / self.num_preprocessed


@dataclass
class TileWiseResult:
    """Image plus statistics returned by :func:`render_tilewise`.

    ``tile_shard`` is the half-open tile-id interval this result rendered,
    or ``None`` for a whole frame.  A shard's image holds the background
    colour outside its owned tiles; :func:`compose_tile_shards` merges a
    partition of shards back into a whole frame.
    """

    image: np.ndarray
    stats: TileWiseStats
    projected: ProjectedGaussians
    tile_shard: tuple[int, int] | None = None


def _build_tile_pairs(
    projected: ProjectedGaussians,
    width: int,
    height: int,
    tile_size: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Create (tile_id, gaussian_index) pairs sorted by (tile, depth).

    Returns ``(tile_ids, gaussian_rows, num_tiles_x)`` where ``gaussian_rows``
    indexes into the projected arrays.  Pairs are built with a repeat/offset
    construction instead of a per-Gaussian Python loop; the output (order
    included) is identical to :func:`_build_tile_pairs_reference`.
    """
    tx_min, tx_max, ty_min, ty_max = tile_range(
        projected.means2d, projected.radii, width, height, tile_size
    )
    nx = (tx_max - tx_min).astype(np.int64)
    ny = (ty_max - ty_min).astype(np.int64)
    counts = nx * ny
    total_pairs = int(counts.sum())
    num_tiles_x = (width + tile_size - 1) // tile_size

    gaussian_rows = np.repeat(np.arange(projected.num_visible, dtype=np.int64), counts)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    local = np.arange(total_pairs, dtype=np.int64) - np.repeat(starts, counts)
    # Row-major (y outer, x inner) within each Gaussian, as the reference
    # loop's ravel() of the (ty, tx) meshgrid produces.
    nx_rep = np.repeat(nx, counts)
    iy, ix = np.divmod(local, np.maximum(nx_rep, 1))
    tile_ids = (np.repeat(ty_min, counts) + iy) * num_tiles_x + np.repeat(tx_min, counts) + ix

    # Sort by (tile, depth) — the radix sort of the standard pipeline.
    depths = projected.depths[gaussian_rows]
    order = np.lexsort((depths, tile_ids))
    return tile_ids[order], gaussian_rows[order], num_tiles_x


def _build_tile_pairs_reference(
    projected: ProjectedGaussians,
    width: int,
    height: int,
    tile_size: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Per-Gaussian loop version of :func:`_build_tile_pairs` (oracle)."""
    tx_min, tx_max, ty_min, ty_max = tile_range(
        projected.means2d, projected.radii, width, height, tile_size
    )
    counts = (tx_max - tx_min) * (ty_max - ty_min)
    total_pairs = int(counts.sum())
    num_tiles_x = (width + tile_size - 1) // tile_size

    tile_ids = np.empty(total_pairs, dtype=np.int64)
    gaussian_rows = np.empty(total_pairs, dtype=np.int64)
    cursor = 0
    for row in range(projected.num_visible):
        nx = tx_max[row] - tx_min[row]
        ny = ty_max[row] - ty_min[row]
        if nx <= 0 or ny <= 0:
            continue
        txs = np.arange(tx_min[row], tx_max[row])
        tys = np.arange(ty_min[row], ty_max[row])
        ids = (tys[:, None] * num_tiles_x + txs[None, :]).ravel()
        n = ids.size
        tile_ids[cursor : cursor + n] = ids
        gaussian_rows[cursor : cursor + n] = row
        cursor += n
    tile_ids = tile_ids[:cursor]
    gaussian_rows = gaussian_rows[:cursor]

    depths = projected.depths[gaussian_rows]
    order = np.lexsort((depths, tile_ids))
    return tile_ids[order], gaussian_rows[order], num_tiles_x


def _render_tile_reference(
    rows: np.ndarray,
    projected: ProjectedGaussians,
    grid_x: np.ndarray,
    grid_y: np.ndarray,
    tile_color: np.ndarray,
    tile_trans: np.ndarray,
    config: RenderConfig,
    obb_subtile_skip: bool,
    subtile: int,
    stats: TileWiseStats,
    processed_rows: np.ndarray,
    rendered_rows: np.ndarray,
) -> None:
    """Original per-pair loop over one tile's depth-ordered Gaussians."""
    for row in rows:
        if np.all(tile_trans <= config.transmittance_eps):
            break
        stats.num_pairs_processed += 1
        processed_rows[row] = True

        mean = projected.means2d[row]
        conic = projected.conics[row]
        dx = grid_x - mean[0]
        dy = grid_y - mean[1]

        if obb_subtile_skip:
            maha = mahalanobis_sq(conic[None, :], dx, dy)
            evaluated = 0
            for sy in range(0, dx.shape[0], subtile):
                for sx in range(0, dx.shape[1], subtile):
                    block = maha[sy : sy + subtile, sx : sx + subtile]
                    if np.min(block) <= 9.0:  # 3-sigma footprint test
                        evaluated += block.size
            stats.alpha_evaluations += evaluated
            alpha = alpha_from_maha(
                maha,
                projected.opacities[row],
                alpha_min=config.alpha_min,
                alpha_max=config.alpha_max,
            )
        else:
            stats.alpha_evaluations += dx.size
            alpha = compute_alpha(
                conic,
                float(projected.opacities[row]),
                dx,
                dy,
                alpha_min=config.alpha_min,
                alpha_max=config.alpha_max,
            )

        contributed = blend_pixels(
            tile_color,
            tile_trans,
            alpha.reshape(-1),
            projected.colors[row],
            config.transmittance_eps,
        )
        stats.pixels_blended += contributed
        if contributed:
            rendered_rows[row] = True


def _render_tile_vectorized(
    rows: np.ndarray,
    projected: ProjectedGaussians,
    x0: int,
    y0: int,
    x1: int,
    y1: int,
    tile_color: np.ndarray,
    tile_trans: np.ndarray,
    config: RenderConfig,
    obb_subtile_skip: bool,
    subtile: int,
    stats: TileWiseStats,
    processed_rows: np.ndarray,
    rendered_rows: np.ndarray,
) -> None:
    """Chunked, batched processing of one tile's depth-ordered Gaussians."""
    num_pixels = (y1 - y0) * (x1 - x0)
    pos = 0
    while pos < rows.size:
        # Saturation can land exactly on a chunk boundary (n_proc == chunk
        # size); re-check before paying for another chunk of alpha work.
        if pos and np.all(tile_trans <= config.transmittance_eps):
            break
        chunk = rows[pos : pos + TILE_CHUNK]
        alpha, maha = batched_tile_alpha(
            projected.means2d[chunk],
            projected.conics[chunk],
            projected.opacities[chunk],
            x0,
            y0,
            x1,
            y1,
            config.alpha_min,
            config.alpha_max,
        )
        n_proc, counts = sequential_blend(
            tile_color,
            tile_trans,
            alpha.reshape(chunk.size, num_pixels),
            projected.colors[chunk],
            config.transmittance_eps,
        )
        stats.num_pairs_processed += n_proc
        if obb_subtile_skip:
            stats.alpha_evaluations += subtile_evaluation_count(maha[:n_proc], subtile)
        else:
            stats.alpha_evaluations += n_proc * num_pixels
        stats.pixels_blended += int(counts[:n_proc].sum())
        processed_rows[chunk[:n_proc]] = True
        rendered_rows[chunk[:n_proc][counts[:n_proc] > 0]] = True
        if n_proc < chunk.size:
            break
        pos += chunk.size


def frame_tile_count(width: int, height: int, tile_size: int) -> int:
    """Number of tiles in a frame's row-major tile grid."""
    num_tiles_x = (width + tile_size - 1) // tile_size
    num_tiles_y = (height + tile_size - 1) // tile_size
    return num_tiles_x * num_tiles_y


def _render_view(projected: ProjectedGaussians, dtype: np.dtype) -> ProjectedGaussians:
    """The projected arrays the rendering loop reads, in the engine dtype.

    Projection and pair building always run float64; for the float32 mode
    only the fields the per-pixel stage touches are down-cast, leaving
    depths (sorting) and radii (tile assignment) untouched.
    """
    if dtype == np.float64:
        return projected
    return replace(
        projected,
        means2d=projected.means2d.astype(dtype),
        conics=projected.conics.astype(dtype),
        opacities=projected.opacities.astype(dtype),
        colors=projected.colors.astype(dtype),
    )


def render_tilewise(
    scene: GaussianScene,
    camera: Camera,
    config: RenderConfig | None = None,
    obb_subtile_skip: bool = True,
    tile_shard: tuple[int, int] | None = None,
) -> TileWiseResult:
    """Render ``scene`` with the standard preprocess-then-render dataflow.

    Parameters
    ----------
    obb_subtile_skip:
        When true (GSCore's behaviour), alpha evaluations are only counted
        for the 8x8 subtiles of each tile that intersect the Gaussian's
        3-sigma oriented footprint; the rendered image is unaffected.
    tile_shard:
        Optional half-open ``(lo, hi)`` interval of row-major tile ids.
        When given, only tiles with ``lo <= id < hi`` are rendered: pixels
        outside the interval hold the background colour and the per-tile
        statistics counters (pairs processed, alpha evaluations, pixels
        blended, occupied tiles, processed/rendered index sets) cover only
        the owned tiles, while the frame-global counters (totals, depth
        cull, preprocessed, assigned, tile pairs) are those of the whole
        frame.  :func:`compose_tile_shards` merges a partition of shards
        bitwise-exactly back into the unsharded result.

    Returns
    -------
    :class:`TileWiseResult` with the ``(H, W, 3)`` image in [0, 1+] and the
    collected statistics.
    """
    config = config or RenderConfig()
    width, height = camera.width, camera.height
    tile_size = config.tile_size
    dtype = np.dtype(config.dtype)
    if tile_shard is not None:
        lo, hi = int(tile_shard[0]), int(tile_shard[1])
        num_tiles = frame_tile_count(width, height, tile_size)
        if not 0 <= lo <= hi <= num_tiles:
            raise ValueError(
                f"tile_shard {tile_shard!r} out of range for {num_tiles} tiles"
            )
        tile_shard = (lo, hi)

    with stage_hook().stage("project"):
        projected = project_scene(scene, camera, config)
    stats = TileWiseStats(
        width=width,
        height=height,
        tile_size=tile_size,
        num_total=projected.num_total,
        num_depth_passed=projected.num_depth_passed,
        num_preprocessed=projected.num_visible,
    )

    color_accum = np.zeros((height, width, 3), dtype=dtype)
    transmittance = np.ones((height, width), dtype=dtype)

    if projected.num_visible == 0:
        image = finalize_image(color_accum, transmittance, config.background)
        return TileWiseResult(
            image=image, stats=stats, projected=projected, tile_shard=tile_shard
        )

    with stage_hook().stage("pair_build"):
        tile_ids, gaussian_rows, num_tiles_x = _build_tile_pairs(
            projected, width, height, tile_size
        )
    stats.num_tile_pairs = int(tile_ids.size)
    stats.num_assigned = int(np.unique(gaussian_rows).size) if tile_ids.size else 0

    view = _render_view(projected, dtype)
    processed_rows = np.zeros(projected.num_visible, dtype=bool)
    rendered_rows = np.zeros(projected.num_visible, dtype=bool)
    subtile = max(tile_size // 2, 1)

    unique_tiles, tile_starts = np.unique(tile_ids, return_index=True)
    tile_bounds = np.append(tile_starts, tile_ids.size)
    if tile_shard is None:
        t_lo, t_hi = 0, int(unique_tiles.size)
    else:
        owned = tile_interval_slice(unique_tiles, *tile_shard)
        t_lo, t_hi = owned.start, owned.stop
    stats.num_occupied_tiles = t_hi - t_lo

    with stage_hook().stage("blend", tiles=t_hi - t_lo):
        for t_index in range(t_lo, t_hi):
            tile_id = unique_tiles[t_index]
            start, stop = tile_bounds[t_index], tile_bounds[t_index + 1]
            rows = gaussian_rows[start:stop]

            ty, tx = divmod(int(tile_id), num_tiles_x)
            x0, y0 = tx * tile_size, ty * tile_size
            x1, y1 = min(x0 + tile_size, width), min(y0 + tile_size, height)

            tile_color = color_accum[y0:y1, x0:x1].reshape(-1, 3)
            tile_trans = transmittance[y0:y1, x0:x1].reshape(-1)

            if config.backend == "reference":
                xs = np.arange(x0, x1, dtype=dtype)
                ys = np.arange(y0, y1, dtype=dtype)
                grid_x, grid_y = np.meshgrid(xs, ys)
                _render_tile_reference(
                    rows,
                    view,
                    grid_x,
                    grid_y,
                    tile_color,
                    tile_trans,
                    config,
                    obb_subtile_skip,
                    subtile,
                    stats,
                    processed_rows,
                    rendered_rows,
                )
            else:
                _render_tile_vectorized(
                    rows,
                    view,
                    x0,
                    y0,
                    x1,
                    y1,
                    tile_color,
                    tile_trans,
                    config,
                    obb_subtile_skip,
                    subtile,
                    stats,
                    processed_rows,
                    rendered_rows,
                )

            color_accum[y0:y1, x0:x1] = tile_color.reshape(y1 - y0, x1 - x0, 3)
            transmittance[y0:y1, x0:x1] = tile_trans.reshape(y1 - y0, x1 - x0)

    stats.num_distinct_processed = int(np.count_nonzero(processed_rows))
    stats.num_rendered = int(np.count_nonzero(rendered_rows))
    if stats.num_distinct_processed:
        stats.processed_indices = projected.source_indices[
            np.nonzero(processed_rows)[0]
        ]
    if stats.num_rendered:
        stats.rendered_indices = projected.source_indices[np.nonzero(rendered_rows)[0]]

    image = finalize_image(color_accum, transmittance, config.background)
    return TileWiseResult(
        image=image, stats=stats, projected=projected, tile_shard=tile_shard
    )


def _copy_tile_interval(
    dst: np.ndarray,
    src: np.ndarray,
    interval: tuple[int, int],
    num_tiles_x: int,
    tile_size: int,
) -> None:
    """Copy the pixels of the tiles in ``interval`` from ``src`` to ``dst``.

    A contiguous row-major tile-id interval is a stack of full tile rows
    with at most one partial row at each end, so the copy is a handful of
    rectangular slice assignments, not a per-tile loop.
    """
    lo, hi = interval
    if lo >= hi:
        return
    height, width = dst.shape[:2]
    for ty in range(lo // num_tiles_x, (hi - 1) // num_tiles_x + 1):
        tx_lo = max(lo - ty * num_tiles_x, 0)
        tx_hi = min(hi - ty * num_tiles_x, num_tiles_x)
        y0, y1 = ty * tile_size, min((ty + 1) * tile_size, height)
        x0, x1 = tx_lo * tile_size, min(tx_hi * tile_size, width)
        dst[y0:y1, x0:x1] = src[y0:y1, x0:x1]


def _union_indices(arrays: list[np.ndarray]) -> np.ndarray:
    """Sorted union of per-shard source-index arrays.

    Each input is sorted-unique (a subset of the ascending
    ``source_indices``), so the union reproduces the unsharded array
    bitwise.
    """
    nonempty = [a for a in arrays if a.size]
    if not nonempty:
        return np.zeros(0, dtype=np.int64)
    out = nonempty[0]
    for arr in nonempty[1:]:
        out = np.union1d(out, arr)
    return out


def compose_tile_shards(shards: list[TileWiseResult]) -> TileWiseResult:
    """Merge tile-range shards of one frame into the whole-frame result.

    ``shards`` must be the renders of a partition of the frame's tile-id
    range (any order, empty intervals allowed).  The composition is *pure*
    and *exact*: because Stage IV blending is per-tile, the merged image
    and every statistics counter are bitwise identical to an unsharded
    :func:`render_tilewise` call with the same scene/camera/config.

    Per-tile counters are summed across shards; frame-global counters are
    taken from any shard (each shard runs the identical projection and
    pair-building stages); the distinct-processed and rendered Gaussian
    sets are recovered exactly as the union of the per-shard index arrays.
    """
    if not shards:
        raise ValueError("compose_tile_shards needs at least one shard")
    for shard in shards:
        if shard.tile_shard is None:
            raise ValueError("compose_tile_shards got a whole-frame result")
    base = shards[0].stats
    width, height, tile_size = base.width, base.height, base.tile_size
    num_tiles_x = (width + tile_size - 1) // tile_size
    num_tiles = frame_tile_count(width, height, tile_size)

    ordered = sorted(shards, key=lambda s: s.tile_shard)
    cursor = 0
    for shard in ordered:
        st = shard.stats
        if (st.width, st.height, st.tile_size) != (width, height, tile_size):
            raise ValueError("shards disagree on frame geometry")
        lo, hi = shard.tile_shard
        if lo != cursor:
            raise ValueError(
                f"shard intervals do not partition [0, {num_tiles}): "
                f"gap or overlap at tile {cursor}"
            )
        cursor = hi
    if cursor != num_tiles:
        raise ValueError(
            f"shard intervals cover [0, {cursor}) but the frame has {num_tiles} tiles"
        )

    image = np.empty_like(ordered[0].image)
    for shard in ordered:
        _copy_tile_interval(image, shard.image, shard.tile_shard, num_tiles_x, tile_size)

    processed = _union_indices([s.stats.processed_indices for s in ordered])
    rendered = _union_indices([s.stats.rendered_indices for s in ordered])
    stats = TileWiseStats(
        width=width,
        height=height,
        tile_size=tile_size,
        num_total=base.num_total,
        num_depth_passed=base.num_depth_passed,
        num_preprocessed=base.num_preprocessed,
        num_assigned=base.num_assigned,
        num_tile_pairs=base.num_tile_pairs,
        num_pairs_processed=sum(s.stats.num_pairs_processed for s in ordered),
        num_distinct_processed=int(processed.size),
        num_rendered=int(rendered.size),
        alpha_evaluations=sum(s.stats.alpha_evaluations for s in ordered),
        pixels_blended=sum(s.stats.pixels_blended for s in ordered),
        num_occupied_tiles=sum(s.stats.num_occupied_tiles for s in ordered),
        rendered_indices=rendered,
        processed_indices=processed,
    )
    return TileWiseResult(
        image=image, stats=stats, projected=ordered[0].projected, tile_shard=None
    )
