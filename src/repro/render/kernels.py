"""Batched rasterisation kernels shared by the vectorized render backends.

The reference renderers in :mod:`repro.render.tile_raster` and
:mod:`repro.render.gaussian_raster` are deliberate per-Gaussian/per-block
Python loops that mirror the hardware pipelines one operation at a time.
This module provides the batched equivalents used by
``RenderConfig(backend="vectorized")``:

* :func:`batched_tile_alpha` — alpha/Mahalanobis evaluation of a whole chunk
  of depth-ordered Gaussians over a full tile at once.
* :func:`sequential_blend` — front-to-back blending of a depth-ordered chunk
  with the exact freeze-after-saturation semantics of
  :func:`repro.render.blending.blend_pixels`, implemented with a cumulative
  product over the Gaussian axis.
* :func:`subtile_evaluation_count` — the GSCore OBB subtile-skip statistic
  computed for a chunk of Gaussians in one reduction.
* :func:`compute_footprint_region` / :func:`traverse_region_blocks` — the
  Gaussian-wise footprint evaluated once per Gaussian over a pixel region,
  with Algorithm 1's block traversal replayed over precomputed block/edge
  occupancy bits instead of one PE-array pass per visited block.
* :func:`blend_region_blocks` — Stage IV alpha computation and blending for
  all influence blocks of one Gaussian in a single gather/scatter.

Every kernel is *observationally equivalent* to the reference loops: the
per-pixel arithmetic uses identical elementwise operations in the same
order, so all statistics counters (pairs processed, alpha evaluations,
pixels blended, blocks visited/skipped, ...) are integer-identical and the
transmittance state evolves bitwise-identically.  Only the accumulation
order of the colour buffer differs (a batched sum instead of a left fold),
which keeps rendered images within ``atol=1e-9`` of the reference.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.gaussians.covariance import mahalanobis_sq
from repro.render.blending import alpha_from_maha
from repro.render.boundary import BlockTraversalResult, _alpha_chi2, _clamp_to_bounds

#: Default number of depth-ordered Gaussians evaluated per tile chunk.  Small
#: enough that early termination does not waste much work, large enough to
#: amortise the Python dispatch overhead.
TILE_CHUNK = 256


# ----------------------------------------------------------------------
# Stage-level span hook
# ----------------------------------------------------------------------
class NullStageHook:
    """Default no-op stage hook: ``stage()`` returns a shared null CM.

    The render path calls ``stage_hook().stage("project"|"pair_build"|
    "blend")`` around its pipeline stages.  By default that is this
    do-nothing hook (one attribute lookup and a pre-built context
    manager — no timing, no allocation), so rendering pays essentially
    nothing when observability is off.  ``repro.obs.TracerStageHook``
    swaps in real span recording via :func:`set_stage_hook`.
    """

    class _NullContext:
        __slots__ = ()

        def __enter__(self):
            return None

        def __exit__(self, exc_type, exc, tb):
            return False

    _NULL = _NullContext()

    def stage(self, name, **attrs):
        return self._NULL


_stage_hook = NullStageHook()


def stage_hook():
    """The currently installed stage hook (never None)."""
    return _stage_hook


def set_stage_hook(hook):
    """Install ``hook`` (``None`` restores the no-op); returns the previous.

    Process-global by design: worker processes install their own hook
    bound to their private tracer, and the executor's sequential path
    installs/restores one around each job.
    """
    global _stage_hook
    previous = _stage_hook
    _stage_hook = hook if hook is not None else NullStageHook()
    return previous


# ----------------------------------------------------------------------
# Tile-wise (standard dataflow) kernels
# ----------------------------------------------------------------------
def shard_intervals(num_tiles: int, num_shards: int) -> list[tuple[int, int]]:
    """Split the tile-id range ``[0, num_tiles)`` into contiguous shards.

    Returns exactly ``num_shards`` half-open ``(lo, hi)`` intervals that
    partition ``[0, num_tiles)`` in order, each of size
    ``floor(num_tiles / num_shards)`` or one more.  When ``num_shards``
    exceeds ``num_tiles`` the trailing intervals are empty — rendering an
    empty shard is a no-op and the compositor ignores it, so any shard
    count is valid.
    """
    if num_tiles < 0:
        raise ValueError("num_tiles must be non-negative")
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    bounds = [(i * num_tiles) // num_shards for i in range(num_shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(num_shards)]


def tile_interval_slice(tile_ids: np.ndarray, lo: int, hi: int) -> slice:
    """Slice of a tile-id-sorted array whose ids lie in ``[lo, hi)``.

    ``tile_ids`` must be sorted ascending (the (tile, depth) radix sort of
    the standard pipeline guarantees this for the pair stream, and
    ``np.unique`` for the occupied-tile list), so a shard's pairs are one
    contiguous slice recovered by binary search — the tile-range entry
    point of the kernels layer.
    """
    if lo > hi:
        raise ValueError(f"empty-ordered tile interval: [{lo}, {hi})")
    start = int(np.searchsorted(tile_ids, lo, side="left"))
    stop = int(np.searchsorted(tile_ids, hi, side="left"))
    return slice(start, stop)


def batched_tile_alpha(
    means2d: np.ndarray,
    conics: np.ndarray,
    opacities: np.ndarray,
    x0: int,
    y0: int,
    x1: int,
    y1: int,
    alpha_min: float,
    alpha_max: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Alpha and Mahalanobis^2 of ``K`` Gaussians over one pixel tile.

    Returns ``(alpha, maha)`` of shape ``(K, y1 - y0, x1 - x0)``.  The
    elementwise operations match :func:`repro.render.blending.compute_alpha`
    exactly, so the values are bitwise-identical to the reference loop.
    The pixel grid inherits the dtype of ``means2d``, keeping the float32
    engine mode in single precision without a separate kernel.
    """
    xs = np.arange(x0, x1, dtype=means2d.dtype)
    ys = np.arange(y0, y1, dtype=means2d.dtype)
    dx = xs[None, None, :] - means2d[:, 0, None, None]
    dy = ys[None, :, None] - means2d[:, 1, None, None]
    maha = mahalanobis_sq(conics[:, None, None, :], dx, dy)
    alpha = alpha_from_maha(
        maha, opacities[:, None, None], alpha_min=alpha_min, alpha_max=alpha_max
    )
    return alpha, maha


def sequential_blend(
    tile_color: np.ndarray,
    tile_trans: np.ndarray,
    alphas: np.ndarray,
    colors: np.ndarray,
    transmittance_eps: float,
) -> tuple[int, np.ndarray]:
    """Blend a depth-ordered chunk of Gaussians into a tile, in place.

    Parameters
    ----------
    tile_color:
        ``(P, 3)`` accumulated colour (modified in place).
    tile_trans:
        ``(P,)`` accumulated transmittance (modified in place).
    alphas:
        ``(K, P)`` per-Gaussian, per-pixel alpha, front-to-back order.
    colors:
        ``(K, 3)`` per-Gaussian RGB.

    Returns
    -------
    ``(num_processed, counts)`` where ``num_processed`` is how many leading
    Gaussians of the chunk the reference loop would have processed before its
    all-pixels-saturated early exit, and ``counts[i]`` is the number of
    pixels Gaussian ``i`` contributed to (only the first ``num_processed``
    entries are meaningful).

    The recurrence ``T <- T * (1 - alpha)`` is evaluated as a cumulative
    product with the initial transmittance as the first factor, which is the
    same left-to-right association as the reference loop; a pixel whose
    transmittance crosses ``transmittance_eps`` keeps its crossing value
    (the reference freezes saturated pixels), which is recovered exactly
    because the sequence is non-increasing.
    """
    num, pixels = alphas.shape
    factors = np.empty((num + 1, pixels), dtype=tile_trans.dtype)
    factors[0] = tile_trans
    np.subtract(1.0, alphas, out=factors[1:])
    trans_seq = np.cumprod(factors, axis=0)

    # trans_seq[i] is the transmittance before Gaussian i (ignoring the
    # freeze); it is non-increasing, so the first crossing below eps is both
    # the frozen value and the point after which nothing is active.
    saturated_last = trans_seq[-1] <= transmittance_eps
    first_sat = np.where(
        saturated_last, np.argmax(trans_seq <= transmittance_eps, axis=0), num + 1
    )
    num_processed = int(min(num, first_sat.max())) if pixels else num

    active = (alphas[:num_processed] > 0.0) & (
        trans_seq[:num_processed] > transmittance_eps
    )
    weights = np.where(active, trans_seq[:num_processed] * alphas[:num_processed], 0.0)
    tile_color += np.einsum("kp,kc->pc", weights, colors[:num_processed])

    stop = np.minimum(first_sat, num_processed)
    tile_trans[:] = trans_seq[stop, np.arange(pixels)]
    counts = np.count_nonzero(active, axis=1)
    return num_processed, counts


def subtile_evaluation_count(maha: np.ndarray, subtile: int) -> int:
    """GSCore subtile-skip alpha-evaluation count for a chunk of Gaussians.

    Mirrors the reference double loop: a subtile is evaluated when the
    minimum Mahalanobis^2 inside it is within the 3-sigma footprint (<= 9),
    and then contributes its full pixel count.
    """
    num, th, tw = maha.shape
    if num == 0:
        return 0
    if th % subtile == 0 and tw % subtile == 0:
        # Full tiles: every subtile has subtile**2 pixels, no padding needed.
        mins = maha.reshape(num, th // subtile, subtile, tw // subtile, subtile).min(
            axis=(2, 4)
        )
        return int(np.count_nonzero(mins <= 9.0)) * subtile * subtile
    nby = -(-th // subtile)
    nbx = -(-tw // subtile)
    padded = np.full((num, nby * subtile, nbx * subtile), np.inf)
    padded[:, :th, :tw] = maha
    mins = padded.reshape(num, nby, subtile, nbx, subtile).min(axis=(2, 4))
    rows = np.minimum(subtile, th - np.arange(nby) * subtile)
    cols = np.minimum(subtile, tw - np.arange(nbx) * subtile)
    sizes = rows[:, None] * cols[None, :]
    return int(np.sum((mins <= 9.0) * sizes[None, :, :]))


# ----------------------------------------------------------------------
# Gaussian-wise (GCC dataflow) kernels
# ----------------------------------------------------------------------
@dataclass
class FootprintRegion:
    """Precomputed screen-space footprint of one Gaussian.

    The region is a block-aligned pixel rectangle that covers the alpha
    (chi^2) ellipse plus a one-block ring, the clamped start block, and —
    when requested — the bounding-radius box, clamped to the image.  All the
    per-block quantities Algorithm 1 needs (occupancy and boundary-edge
    bits) are reduced from one vectorized Mahalanobis evaluation instead of
    one PE-array pass per visited block.
    """

    #: Pixel origin (x, y) of the region; always block-aligned.
    px0: int
    py0: int
    #: Mahalanobis^2 over the region pixels, shape ``(rh, rw)``.
    maha: np.ndarray
    #: chi^2 threshold for the alpha condition, or None when the opacity
    #: cannot reach ``alpha_min`` anywhere.
    chi2: float | None
    #: Global block index (by, bx) of the region's top-left block.
    block_origin: tuple[int, int]
    #: Per-block any-influence bits as nested Python lists (None if no
    #: chi2); plain lists keep the traversal's inner loop off numpy scalar
    #: indexing, which dominates at this grain.
    block_any: list[list[bool]] | None
    #: Per-block boundary-edge any-influence bits keyed right/left/down/up.
    edges: dict[str, list[list[bool]]] | None
    #: Clamped start block (by, bx) in global block coordinates.
    start_block: tuple[int, int]


def compute_footprint_region(
    mean2d: np.ndarray,
    conic: np.ndarray,
    cov2d: np.ndarray,
    opacity: float,
    width: int,
    height: int,
    block_size: int,
    alpha_min: float,
    extra_radius: float = 0.0,
) -> FootprintRegion:
    """Evaluate one Gaussian's footprint over a block-aligned pixel region.

    ``extra_radius`` additionally grows the region to cover the
    bounding-radius box (needed by the ``"aabb"`` boundary ablation, whose
    block set is derived from the radius rather than the alpha ellipse).
    """
    blocks_x = (width + block_size - 1) // block_size
    blocks_y = (height + block_size - 1) // block_size
    mx, my = float(mean2d[0]), float(mean2d[1])
    # Same containing-pixel clamp as boundary._clamp_to_bounds, inlined with
    # math.floor to avoid per-Gaussian numpy scalar overhead.
    cx = int(min(max(math.floor(mx), 0), width - 1))
    cy = int(min(max(math.floor(my), 0), height - 1))
    start = (cy // block_size, cx // block_size)

    chi2 = _alpha_chi2(opacity, alpha_min)
    chi2_span = max(chi2, 0.0) if chi2 is not None else 0.0
    # Maximum |dx| (|dy|) over the chi^2 ellipse is sqrt(chi2 * Sigma_xx).
    half_x = max(float(np.sqrt(chi2_span * max(cov2d[0, 0], 0.0))), extra_radius)
    half_y = max(float(np.sqrt(chi2_span * max(cov2d[1, 1], 0.0))), extra_radius)

    # The pixel region covers exactly the blocks intersecting the ellipse
    # bounding box (plus the clamped start block).  Any pixel outside that
    # box is outside the ellipse, so the one-block traversal ring around it
    # carries all-False occupancy bits and needs no pixel evaluation; it is
    # synthesised below by list padding.
    bx_lo = min(max(int(math.floor((mx - half_x) / block_size)), 0), start[1])
    bx_hi = max(min(int(math.floor((mx + half_x) / block_size)), blocks_x - 1), start[1])
    by_lo = min(max(int(math.floor((my - half_y) / block_size)), 0), start[0])
    by_hi = max(min(int(math.floor((my + half_y) / block_size)), blocks_y - 1), start[0])

    px0, py0 = bx_lo * block_size, by_lo * block_size
    px1 = min((bx_hi + 1) * block_size, width)
    py1 = min((by_hi + 1) * block_size, height)
    dx = np.arange(px0, px1, dtype=np.float64) - mx
    dy = np.arange(py0, py1, dtype=np.float64) - my
    dx, dy = dx[None, :], dy[:, None]
    # Inlined mahalanobis_sq with scalar coefficients: identical elementwise
    # operations and order, without per-Gaussian array-wrapping overhead.
    a, b, c = float(conic[0]), float(conic[1]), float(conic[2])
    maha = a * dx * dx + 2.0 * b * dx * dy + c * dy * dy

    block_any = None
    edges = None
    if chi2 is not None:
        nby, nbx = by_hi - by_lo + 1, bx_hi - bx_lo + 1
        padded = np.zeros((nby * block_size, nbx * block_size), dtype=bool)
        padded[: maha.shape[0], : maha.shape[1]] = maha <= chi2
        blocks = padded.reshape(nby, block_size, nbx, block_size)
        # Padded rows/columns are all-False; an edge facing the padding is
        # only ever consulted for an in-grid neighbour, in which case the
        # block is full in that direction and the padding does not alias.
        # The down/up (right/left) edge bits are slices of the per-row
        # (per-column) occupancy reduction, so three reductions cover all
        # five bit planes.
        row_hits = blocks.any(axis=3)  # (nby, bs, nbx)
        col_hits = blocks.any(axis=1)  # (nby, nbx, bs)

        def ring_pad(rows: list[list[bool]]) -> list[list[bool]]:
            false_row = [False] * (nbx + 2)
            return (
                [false_row]
                + [[False] + row + [False] for row in rows]
                + [false_row]
            )

        block_any = ring_pad(row_hits.any(axis=1).tolist())
        edges = {
            "right": ring_pad(col_hits[:, :, -1].tolist()),
            "left": ring_pad(col_hits[:, :, 0].tolist()),
            "down": ring_pad(row_hits[:, -1, :].tolist()),
            "up": ring_pad(row_hits[:, 0, :].tolist()),
        }
    return FootprintRegion(
        px0=px0,
        py0=py0,
        maha=maha,
        chi2=chi2,
        block_origin=(by_lo - 1, bx_lo - 1),
        block_any=block_any,
        edges=edges,
        start_block=start,
    )


def traverse_region_blocks(
    region: FootprintRegion,
    width: int,
    height: int,
    block_size: int,
    saturated_set: set[tuple[int, int]] | None = None,
) -> BlockTraversalResult:
    """Replay Algorithm 1's block traversal over a precomputed region.

    Produces a :class:`BlockTraversalResult` identical (including the block
    order and the visited/skipped counters) to
    :func:`repro.render.boundary.identify_influence_blocks`; the per-block
    PE-array passes are replaced by reads of the precomputed occupancy bits.

    Parameters
    ----------
    saturated_set:
        Set of saturated ``(by, bx)`` blocks in global block coordinates —
        the T_mask kept as a Python set so membership tests stay cheap at
        per-block grain.  ``None`` disables the mask (CC off).
    """
    if region.chi2 is None:
        return BlockTraversalResult([], 0, 0)
    blocks_x = (width + block_size - 1) // block_size
    blocks_y = (height + block_size - 1) // block_size
    if blocks_x <= 0 or blocks_y <= 0:
        return BlockTraversalResult([], 0, 0)

    by0, bx0 = region.block_origin
    block_any = region.block_any
    edges = region.edges
    nby = len(block_any)
    nbx = len(block_any[0])
    visited = [[False] * nbx for _ in range(nby)]

    result_blocks: list[tuple[int, int]] = []
    skipped_tmask = 0
    start = region.start_block
    ly, lx = start[0] - by0, start[1] - bx0
    visited[ly][lx] = True
    blocks_visited = 1
    queue: deque[tuple[int, int]] = deque()
    if block_any[ly][lx]:
        queue.append((ly, lx))
        if saturated_set is not None and start in saturated_set:
            skipped_tmask += 1
        else:
            result_blocks.append(start)

    edge_right, edge_left = edges["right"], edges["left"]
    edge_down, edge_up = edges["down"], edges["up"]
    # Probe order matches identify_influence_blocks: right, left, down, up.
    # The region already clamps to the block grid, so a local index is
    # in-bounds iff the global one is.
    while queue:
        ly, lx = queue.popleft()
        gy, gx = ly + by0, lx + bx0
        for ny, nx, gny, gnx, edge_hit in (
            (ly, lx + 1, gy, gx + 1, edge_right[ly][lx]),
            (ly, lx - 1, gy, gx - 1, edge_left[ly][lx]),
            (ly + 1, lx, gy + 1, gx, edge_down[ly][lx]),
            (ly - 1, lx, gy - 1, gx, edge_up[ly][lx]),
        ):
            if not (0 <= gny < blocks_y and 0 <= gnx < blocks_x):
                continue
            if visited[ny][nx] or not edge_hit:
                continue
            visited[ny][nx] = True
            blocks_visited += 1
            if not block_any[ny][nx]:
                continue
            queue.append((ny, nx))
            if saturated_set is not None and (gny, gnx) in saturated_set:
                skipped_tmask += 1
            else:
                result_blocks.append((gny, gnx))
    return BlockTraversalResult(result_blocks, blocks_visited, skipped_tmask)


def blend_region_blocks(
    color_flat: np.ndarray,
    trans_flat: np.ndarray,
    region: FootprintRegion,
    blocks: list[tuple[int, int]],
    color: np.ndarray,
    opacity: float,
    width: int,
    height: int,
    block_size: int,
    alpha_min: float,
    alpha_max: float,
    transmittance_eps: float,
) -> tuple[np.ndarray, int, np.ndarray]:
    """Alpha-evaluate and blend all influence blocks of one Gaussian at once.

    Parameters
    ----------
    color_flat, trans_flat:
        ``(H * W, 3)`` and ``(H * W,)`` flattened image state (modified in
        place).  Blocks are disjoint pixel sets, so a single gather/scatter
        is equivalent to the reference per-block loop.

    Returns
    -------
    ``(counts, pixel_evaluations, block_trans_max)`` where ``counts[i]`` is
    the number of pixels block ``i`` contributed, ``pixel_evaluations`` is
    the total per-pixel alpha evaluations (the sum of valid block pixels)
    and ``block_trans_max[i]`` is the post-blend maximum transmittance of
    block ``i`` (used to update the T_mask exactly as the reference does).
    """
    barr = np.asarray(blocks, dtype=np.int64)
    offsets = np.arange(block_size, dtype=np.int64)
    ys = barr[:, 0, None] * block_size + offsets[None, :]
    xs = barr[:, 1, None] * block_size + offsets[None, :]
    valid = (ys < height)[:, :, None] & (xs < width)[:, None, :]
    ys = np.minimum(ys, height - 1)
    xs = np.minimum(xs, width - 1)

    row_idx = (ys - region.py0)[:, :, None]
    col_idx = (xs - region.px0)[:, None, :]
    maha = region.maha[row_idx, col_idx]
    alpha = alpha_from_maha(maha, opacity, alpha_min=alpha_min, alpha_max=alpha_max)

    flat_idx = (ys[:, :, None] * width + xs[:, None, :])[valid]
    alpha_v = alpha[valid]
    trans_v = trans_flat[flat_idx]
    active = (alpha_v > 0.0) & (trans_v > transmittance_eps)

    active_idx = flat_idx[active]
    weight = trans_v[active] * alpha_v[active]
    color_flat[active_idx] += weight[:, None] * color[None, :]
    trans_after = np.where(active, trans_v * (1.0 - alpha_v), trans_v)
    trans_flat[flat_idx] = trans_after

    active_grid = np.zeros(valid.shape, dtype=bool)
    active_grid[valid] = active
    counts = np.count_nonzero(active_grid, axis=(1, 2))

    trans_grid = np.full(valid.shape, -np.inf)
    trans_grid[valid] = trans_after
    block_trans_max = trans_grid.max(axis=(1, 2))
    return counts, int(np.count_nonzero(valid)), block_trans_max
