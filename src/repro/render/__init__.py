"""Functional 3DGS renderers and footprint analysis.

Two renderers are provided, matching the two dataflows the paper compares:

* :func:`~repro.render.tile_raster.render_tilewise` — the standard
  "preprocess-then-render" tile-wise rasteriser used by the GPU reference and
  by the GSCore baseline accelerator.
* :func:`~repro.render.gaussian_raster.render_gaussianwise` — the GCC
  dataflow: depth-grouped, Gaussian-wise rendering with cross-stage
  conditional skipping and alpha-based boundary identification.

Both return the rendered image *and* a statistics object; the hardware models
in :mod:`repro.arch` consume those statistics to produce cycle and energy
estimates.

Each renderer runs on one of two engines selected by
``RenderConfig(backend=...)``:

* ``"vectorized"`` (default) — batched kernels (:mod:`repro.render.kernels`)
  process whole tiles/chunks of Gaussians and whole block sets at once.
* ``"reference"`` — the original per-Gaussian/per-block Python loops that
  mirror the hardware pipelines operation by operation.

The backends are observationally equivalent: statistics counters are
integer-identical and images agree to ``atol=1e-9`` (see
``tests/test_engine_equivalence.py`` and ``benchmarks/bench_engine_speed.py``).
"""

from repro.render.common import RenderConfig
from repro.render.gaussian_raster import GaussianWiseStats, render_gaussianwise
from repro.render.metrics import lpips_proxy, mse, psnr, ssim
from repro.render.preprocess import ProjectedGaussians, project_scene
from repro.render.tile_raster import TileWiseStats, render_tilewise

__all__ = [
    "GaussianWiseStats",
    "ProjectedGaussians",
    "RenderConfig",
    "TileWiseStats",
    "lpips_proxy",
    "mse",
    "project_scene",
    "psnr",
    "render_gaussianwise",
    "render_tilewise",
    "ssim",
]
