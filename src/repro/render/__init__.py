"""Functional 3DGS renderers and footprint analysis.

Two renderers are provided, matching the two dataflows the paper compares:

* :func:`~repro.render.tile_raster.render_tilewise` — the standard
  "preprocess-then-render" tile-wise rasteriser used by the GPU reference and
  by the GSCore baseline accelerator.
* :func:`~repro.render.gaussian_raster.render_gaussianwise` — the GCC
  dataflow: depth-grouped, Gaussian-wise rendering with cross-stage
  conditional skipping and alpha-based boundary identification.

Both return the rendered image *and* a statistics object; the hardware models
in :mod:`repro.arch` consume those statistics to produce cycle and energy
estimates.
"""

from repro.render.common import RenderConfig
from repro.render.gaussian_raster import GaussianWiseStats, render_gaussianwise
from repro.render.metrics import lpips_proxy, mse, psnr, ssim
from repro.render.preprocess import ProjectedGaussians, project_scene
from repro.render.tile_raster import TileWiseStats, render_tilewise

__all__ = [
    "GaussianWiseStats",
    "ProjectedGaussians",
    "RenderConfig",
    "TileWiseStats",
    "lpips_proxy",
    "mse",
    "project_scene",
    "psnr",
    "render_gaussianwise",
    "render_tilewise",
    "ssim",
]
