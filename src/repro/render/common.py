"""Shared configuration and constants for the functional renderers."""

from __future__ import annotations

from dataclasses import dataclass

#: Minimum alpha that contributes to blending (the paper's 1/255 threshold).
ALPHA_MIN = 1.0 / 255.0

#: Maximum alpha after clamping (Equation 3/9 clamps at 0.99).
ALPHA_MAX = 0.99

#: Transmittance threshold below which a pixel is considered saturated and
#: further Gaussians are skipped (the 3DGS early-termination criterion).
TRANSMITTANCE_EPS = 1.0e-4

#: Depth below which Gaussians are culled in Stage I (the paper's Z pivot).
DEPTH_NEAR = 0.2

#: Tile edge length (pixels) used by the standard dataflow.
TILE_SIZE = 16

#: Pixel-block edge length used by GCC's Alpha Unit (an 8x8 PE array).
BLOCK_SIZE = 8

#: The rasterisation engines every renderer can run on.
BACKENDS: tuple[str, ...] = ("vectorized", "reference")

#: Floating-point modes the tile-wise engine can compute in.  ``"float64"``
#: is the historical default with the bitwise backend-equivalence contract;
#: ``"float32"`` is the fast path: alpha evaluation and blending run in
#: single precision (counters stay integer-identical across backends, images
#: are held to a PSNR floor against the float64 oracle instead of bitwise).
DTYPES: tuple[str, ...] = ("float64", "float32")


@dataclass(frozen=True)
class RenderConfig:
    """Configuration shared by both rasterisers.

    Attributes
    ----------
    tile_size:
        Tile edge length of the standard (tile-wise) pipeline.
    block_size:
        Pixel-block edge length of the Gaussian-wise pipeline (Alpha Unit PE
        array dimension; the paper uses 8).
    alpha_min:
        Minimum alpha contribution (1/255).
    alpha_max:
        Alpha clamp value (0.99).
    transmittance_eps:
        Early-termination threshold on accumulated transmittance.
    depth_near:
        Near-plane depth used for Stage I culling (0.2 in the paper).
    radius_rule:
        ``"3sigma"`` for the conventional fixed envelope or ``"omega-sigma"``
        for the paper's opacity-aware radius (Equation 8).
    sh_degree:
        Spherical-harmonics degree used for colour evaluation.
    group_capacity:
        Maximum Gaussians per depth group (N = 256 in the paper).
    background:
        Background colour blended behind the scene.
    backend:
        Execution engine for both rasterisers.  ``"vectorized"`` (default)
        batches alpha evaluation, boundary identification and blending with
        the kernels in :mod:`repro.render.kernels`; ``"reference"`` runs the
        original per-Gaussian/per-block Python loops.  The two backends
        produce identical statistics counters and images equal to
        ``atol=1e-9``.
    dtype:
        Floating-point mode of the tile-wise rendering stage, one of
        :data:`DTYPES`.  Projection, depth sorting and tile assignment
        always run in float64 (so the pair stream — and therefore every
        statistics counter — is independent of the mode); ``"float32"``
        switches the per-pixel alpha/blending arithmetic and the image
        accumulators to single precision.  The Gaussian-wise dataflow only
        supports ``"float64"``.
    """

    tile_size: int = TILE_SIZE
    block_size: int = BLOCK_SIZE
    alpha_min: float = ALPHA_MIN
    alpha_max: float = ALPHA_MAX
    transmittance_eps: float = TRANSMITTANCE_EPS
    depth_near: float = DEPTH_NEAR
    radius_rule: str = "3sigma"
    sh_degree: int = 3
    group_capacity: int = 256
    background: tuple[float, float, float] = (0.0, 0.0, 0.0)
    backend: str = "vectorized"
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.dtype not in DTYPES:
            raise ValueError(f"dtype must be one of {DTYPES}")
        if self.tile_size <= 0 or self.block_size <= 0:
            raise ValueError("tile_size and block_size must be positive")
        if not 0.0 < self.alpha_min < self.alpha_max <= 1.0:
            raise ValueError("require 0 < alpha_min < alpha_max <= 1")
        if self.transmittance_eps <= 0 or self.transmittance_eps >= 1:
            raise ValueError("transmittance_eps must be in (0, 1)")
        if self.radius_rule not in ("3sigma", "omega-sigma"):
            raise ValueError("radius_rule must be '3sigma' or 'omega-sigma'")
        if self.sh_degree not in (0, 1, 2, 3):
            raise ValueError("sh_degree must be in [0, 3]")
        if self.group_capacity <= 0:
            raise ValueError("group_capacity must be positive")
