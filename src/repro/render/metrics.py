"""Image quality metrics: PSNR, SSIM and a perceptual-distance proxy.

Table 2 of the paper reports PSNR and LPIPS to show that the GCC dataflow is
visually lossless relative to the GPU reference.  LPIPS requires a pretrained
VGG network which is unavailable offline, so :func:`lpips_proxy` provides a
deterministic multi-scale structural dissimilarity in the same [0, ~1] range:
0 for identical images, growing with perceptual difference.  The reproduction
only relies on the *relative* statement (GCC == GSCore == GPU), which any
consistent metric demonstrates.
"""

from __future__ import annotations

import numpy as np


def _as_float_image(image: np.ndarray) -> np.ndarray:
    """Validate and convert an image to float64 ``(H, W, C)`` or ``(H, W)``."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim not in (2, 3):
        raise ValueError(f"expected a 2D or 3D image, got shape {image.shape}")
    return image


def mse(image_a: np.ndarray, image_b: np.ndarray) -> float:
    """Mean squared error between two images of identical shape."""
    a = _as_float_image(image_a)
    b = _as_float_image(image_b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.mean((a - b) ** 2))


def psnr(image_a: np.ndarray, image_b: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical images."""
    error = mse(image_a, image_b)
    if error <= 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range * data_range / error))


def _to_gray(image: np.ndarray) -> np.ndarray:
    """Convert an RGB image to luminance; pass grayscale through."""
    image = _as_float_image(image)
    if image.ndim == 2:
        return image
    weights = np.array([0.299, 0.587, 0.114])
    return image[..., :3] @ weights


def _box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Separable box filter via cumulative sums (no SciPy dependency)."""
    if radius <= 0:
        return image.copy()
    padded = np.pad(image, radius, mode="edge")
    window = 2 * radius + 1

    cumsum = np.cumsum(padded, axis=0)
    rows = (cumsum[window - 1 :, :] - np.vstack(
        [np.zeros((1, padded.shape[1])), cumsum[:-window, :]]
    )) / window
    cumsum = np.cumsum(rows, axis=1)
    cols = (cumsum[:, window - 1 :] - np.hstack(
        [np.zeros((rows.shape[0], 1)), cumsum[:, :-window]]
    )) / window
    return cols


def ssim(
    image_a: np.ndarray,
    image_b: np.ndarray,
    data_range: float = 1.0,
    radius: int = 3,
) -> float:
    """Structural similarity index (box-window variant) in [-1, 1]."""
    a = _to_gray(image_a)
    b = _to_gray(image_b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    mu_a = _box_filter(a, radius)
    mu_b = _box_filter(b, radius)
    sigma_a = _box_filter(a * a, radius) - mu_a * mu_a
    sigma_b = _box_filter(b * b, radius) - mu_b * mu_b
    sigma_ab = _box_filter(a * b, radius) - mu_a * mu_b

    numerator = (2 * mu_a * mu_b + c1) * (2 * sigma_ab + c2)
    denominator = (mu_a**2 + mu_b**2 + c1) * (sigma_a + sigma_b + c2)
    return float(np.mean(numerator / denominator))


def _downsample(image: np.ndarray) -> np.ndarray:
    """2x average-pool downsample (pads odd dimensions by edge replication)."""
    h, w = image.shape
    if h % 2:
        image = np.vstack([image, image[-1:, :]])
    if w % 2:
        image = np.hstack([image, image[:, -1:]])
    return 0.25 * (
        image[0::2, 0::2] + image[1::2, 0::2] + image[0::2, 1::2] + image[1::2, 1::2]
    )


def lpips_proxy(image_a: np.ndarray, image_b: np.ndarray, num_scales: int = 4) -> float:
    """Multi-scale gradient-structure dissimilarity standing in for LPIPS.

    At each scale the images' horizontal/vertical gradients are compared with
    a normalised L2 distance; scales are averaged.  The result is 0 for
    identical images and grows toward ~1 for unrelated images.
    """
    a = _to_gray(image_a)
    b = _to_gray(image_b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")

    distances = []
    for _ in range(num_scales):
        if min(a.shape) < 4:
            break
        for axis in (0, 1):
            grad_a = np.diff(a, axis=axis)
            grad_b = np.diff(b, axis=axis)
            norm = np.sqrt(np.mean(grad_a**2) + np.mean(grad_b**2)) + 1e-8
            distances.append(np.sqrt(np.mean((grad_a - grad_b) ** 2)) / norm)
        a = _downsample(a)
        b = _downsample(b)
    if not distances:
        return 0.0
    return float(np.mean(distances))
