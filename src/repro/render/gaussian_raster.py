"""GCC-dataflow renderer: Gaussian-wise rendering with cross-stage conditions.

This renderer implements the four-stage pipeline of Figure 3:

* **Stage I** — depth computation and grouping: only the 3D means are needed;
  Gaussians closer than the near plane are culled and the rest are organised
  into front-to-back depth groups.
* **Stage II** — position and shape projection of one group at a time, with
  omega-sigma screen culling.
* **Stage III** — spherical-harmonics colour evaluation and intra-group depth
  sorting.  Under cross-stage conditional (CC) processing the SH coefficients
  of a Gaussian are only fetched/evaluated if its footprint still overlaps
  unsaturated pixels.
* **Stage IV** — alpha computation over the blocks found by alpha-based
  boundary identification, and front-to-back blending with a per-block
  transmittance mask.

The produced image matches the tile-wise reference (Table 2 of the paper):
every Gaussian/pixel pair skipped by the GCC dataflow would have contributed
nothing under the standard dataflow either.

Two execution backends are provided, selected by ``RenderConfig.backend``:

* ``"vectorized"`` (default) — each Gaussian's footprint is evaluated once
  over a block-aligned pixel region (:mod:`repro.render.kernels`); the
  Algorithm 1 traversal replays over precomputed block-occupancy bits and
  Stage IV blends every influence block in a single batched gather/scatter.
* ``"reference"`` — the original per-block Python loops, kept as the oracle
  the vectorized backend is validated against.

The Gaussian-level sequencing (and therefore the transmittance mask
evolution) is identical in both backends, so images and every statistics
counter match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianScene
from repro.gaussians.sh import evaluate_sh_colors
from repro.render.blending import blend_pixels, compute_alpha, finalize_image
from repro.render.boundary import identify_influence_blocks
from repro.render.common import RenderConfig
from repro.render.grouping import group_by_depth
from repro.render.kernels import (
    blend_region_blocks,
    compute_footprint_region,
    traverse_region_blocks,
)
from repro.render.preprocess import frustum_cull_depths, project_geometry


@dataclass
class GaussianWiseStats:
    """Work and data-movement statistics of one Gaussian-wise rendered frame."""

    width: int = 0
    height: int = 0
    block_size: int = 8
    enable_cc: bool = True
    #: Gaussians in the model.
    num_total: int = 0
    #: Gaussians culled by the Stage I depth test.
    num_depth_culled: int = 0
    #: Gaussians entering the group pipeline (passed Stage I).
    num_stage1_passed: int = 0
    #: Total depth groups formed.
    num_groups: int = 0
    #: Groups actually processed (Stages II-IV executed).
    num_groups_processed: int = 0
    #: Groups skipped entirely by cross-stage early termination.
    num_groups_skipped: int = 0
    #: Gaussians inside skipped groups (never projected, never loaded beyond
    #: their mean).
    num_skipped_by_termination: int = 0
    #: Gaussians projected in Stage II.
    num_projected: int = 0
    #: Gaussians surviving the Stage II screen cull.
    num_screen_passed: int = 0
    #: Gaussians skipped because every influence block was saturated in the
    #: transmittance mask (a genuine T_mask skip: the SH load is avoided).
    num_skipped_tmask: int = 0
    #: Gaussians whose alpha footprint covered no block at all (e.g. an
    #: off-screen centre whose clamped start fails the alpha condition).
    #: These never saturated anything and are not T_mask savings.
    num_empty_footprint: int = 0
    #: Gaussians whose SH colour was evaluated (Stage III work / SH loads).
    num_sh_evaluated: int = 0
    #: Gaussians that contributed at least one blended pixel.
    num_rendered: int = 0
    #: Per-pixel alpha evaluations performed in Stage IV.
    alpha_evaluations: int = 0
    #: Pixels that received a blending contribution.
    pixels_blended: int = 0
    #: Pixel blocks visited by boundary identification (evaluated or rejected).
    blocks_visited: int = 0
    #: Pixel blocks whose alphas were computed and blended.
    blocks_evaluated: int = 0
    #: Pixel blocks skipped thanks to the transmittance mask.
    blocks_skipped_tmask: int = 0
    #: Sort operations (elements pushed through the intra-group sorter).
    sort_elements: int = 0
    #: Gaussian indices (into the original scene) that were rendered.
    rendered_indices: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def rendered_fraction(self) -> float:
        """Fraction of screen-passed Gaussians that were actually rendered."""
        if self.num_screen_passed == 0:
            return 0.0
        return self.num_rendered / self.num_screen_passed

    @property
    def preprocessing_savings(self) -> float:
        """Fraction of Gaussians whose full preprocessing was avoided.

        Counts Gaussians that were never projected (skipped groups) plus
        those whose SH evaluation was skipped by the transmittance mask,
        relative to the total the standard dataflow would have preprocessed.
        Gaussians with an empty footprint are *not* counted: the standard
        dataflow would not have rendered them either, so skipping them is
        not a dataflow saving.
        """
        if self.num_stage1_passed == 0:
            return 0.0
        avoided = self.num_skipped_by_termination + self.num_skipped_tmask
        return avoided / self.num_stage1_passed


@dataclass
class GaussianWiseResult:
    """Image plus statistics returned by :func:`render_gaussianwise`."""

    image: np.ndarray
    stats: GaussianWiseStats


def _blocks_from_radius(
    mean2d: np.ndarray,
    radius: float,
    width: int,
    height: int,
    block_size: int,
) -> list[tuple[int, int]]:
    """All blocks overlapped by the axis-aligned radius box (ablation mode)."""
    x0 = max(int((mean2d[0] - radius) // block_size), 0)
    x1 = min(int((mean2d[0] + radius) // block_size), (width - 1) // block_size)
    y0 = max(int((mean2d[1] - radius) // block_size), 0)
    y1 = min(int((mean2d[1] + radius) // block_size), (height - 1) // block_size)
    if x1 < x0 or y1 < y0:
        return []
    return [(by, bx) for by in range(y0, y1 + 1) for bx in range(x0, x1 + 1)]


def render_gaussianwise(
    scene: GaussianScene,
    camera: Camera,
    config: RenderConfig | None = None,
    enable_cc: bool = True,
    boundary_mode: str = "alpha",
) -> GaussianWiseResult:
    """Render ``scene`` with the GCC Gaussian-wise dataflow.

    Parameters
    ----------
    enable_cc:
        Enable cross-stage conditional processing.  When disabled (the "GW
        only" ablation of Figure 11), every Gaussian that passes screen
        culling has its SH colour evaluated and its full footprint
        alpha-evaluated, and no depth group is skipped.
    boundary_mode:
        ``"alpha"`` uses alpha-based boundary identification (Algorithm 1);
        ``"aabb"`` evaluates every block under the bounding-radius box (the
        ablation quantifying the identifier's contribution, Figure 11c).

    Returns
    -------
    :class:`GaussianWiseResult` with the ``(H, W, 3)`` image and statistics.
    """
    config = config or RenderConfig(radius_rule="omega-sigma")
    if boundary_mode not in ("alpha", "aabb"):
        raise ValueError("boundary_mode must be 'alpha' or 'aabb'")
    width, height = camera.width, camera.height
    block_size = config.block_size
    blocks_x = (width + block_size - 1) // block_size
    blocks_y = (height + block_size - 1) // block_size
    vectorized = config.backend == "vectorized"

    stats = GaussianWiseStats(
        width=width,
        height=height,
        block_size=block_size,
        enable_cc=enable_cc,
        num_total=scene.num_gaussians,
    )

    color_accum = np.zeros((height, width, 3), dtype=np.float64)
    transmittance = np.ones((height, width), dtype=np.float64)
    # Flat views used by the batched Stage IV scatter (same memory).
    color_flat = color_accum.reshape(-1, 3)
    trans_flat = transmittance.reshape(-1)

    if scene.num_gaussians == 0:
        image = finalize_image(color_accum, transmittance, config.background)
        return GaussianWiseResult(image=image, stats=stats)

    # ------------------------------------------------------------------
    # Stage I: depth computation, culling, grouping.
    # ------------------------------------------------------------------
    depths_all, keep = frustum_cull_depths(scene, camera, config.depth_near)
    visible_indices = np.nonzero(keep)[0]
    stats.num_depth_culled = scene.num_gaussians - int(visible_indices.size)
    stats.num_stage1_passed = int(visible_indices.size)

    groups = group_by_depth(depths_all[visible_indices], capacity=config.group_capacity)
    stats.num_groups = len(groups)

    # Per-block saturation mask (the hardware T_mask): True when every pixel
    # in the block has terminated.  The vectorized backend keeps the same
    # mask as a set of (by, bx) coordinates so per-block membership tests
    # stay off numpy scalar indexing.
    saturated_blocks = np.zeros((blocks_y, blocks_x), dtype=bool)
    saturated_set: set[tuple[int, int]] = set()
    rendered_sources: list[int] = []
    camera_position = camera.position

    def refresh_block_mask(block_coords: list[tuple[int, int]]) -> None:
        """Update the saturation mask for the given blocks after blending."""
        for by, bx in block_coords:
            y0, x0 = by * block_size, bx * block_size
            y1, x1 = min(y0 + block_size, height), min(x0 + block_size, width)
            if np.all(transmittance[y0:y1, x0:x1] <= config.transmittance_eps):
                saturated_blocks[by, bx] = True

    terminated = False
    for group_index, group in enumerate(groups):
        if enable_cc and terminated:
            stats.num_groups_skipped += 1
            stats.num_skipped_by_termination += group.size
            continue

        stats.num_groups_processed += 1
        source_idx = visible_indices[group.indices]

        # ------------------------------------------------------------------
        # Stage II: position/shape projection and screen culling.
        # ------------------------------------------------------------------
        geometry = project_geometry(scene, camera, source_idx, config)
        stats.num_projected += geometry.num_input
        stats.num_screen_passed += geometry.num_visible
        if geometry.num_visible == 0:
            continue

        # ------------------------------------------------------------------
        # Stage III: intra-group front-to-back sort (colour is evaluated
        # lazily per Gaussian under CC).
        # ------------------------------------------------------------------
        order = np.argsort(geometry.depths, kind="stable")
        stats.sort_elements += geometry.num_visible

        # ------------------------------------------------------------------
        # Stage IV: boundary identification, alpha computation, blending.
        # ------------------------------------------------------------------
        for row in order:
            mean2d = geometry.means2d[row]
            conic = geometry.conics[row]
            opacity = float(geometry.opacities[row])
            region = None

            if boundary_mode == "alpha":
                if vectorized:
                    region = compute_footprint_region(
                        mean2d,
                        conic,
                        geometry.cov2d[row],
                        opacity,
                        width,
                        height,
                        block_size,
                        config.alpha_min,
                    )
                    traversal = traverse_region_blocks(
                        region,
                        width,
                        height,
                        block_size,
                        saturated_set=saturated_set if enable_cc else None,
                    )
                else:
                    traversal = identify_influence_blocks(
                        mean2d,
                        conic,
                        opacity,
                        width,
                        height,
                        block_size=block_size,
                        alpha_min=config.alpha_min,
                        saturated_blocks=saturated_blocks if enable_cc else None,
                    )
                blocks = traversal.blocks
                stats.blocks_visited += traversal.blocks_visited
                stats.blocks_skipped_tmask += traversal.blocks_skipped_tmask
                skipped_here = traversal.blocks_skipped_tmask
            else:
                blocks = _blocks_from_radius(
                    mean2d, float(geometry.radii[row]), width, height, block_size
                )
                stats.blocks_visited += len(blocks)
                skipped_here = 0
                if enable_cc:
                    if vectorized:
                        kept = [b for b in blocks if b not in saturated_set]
                    else:
                        kept = [b for b in blocks if not saturated_blocks[b]]
                    skipped_here = len(blocks) - len(kept)
                    stats.blocks_skipped_tmask += skipped_here
                    blocks = kept

            if not blocks:
                # Nothing to render.  Only count a T_mask skip when the
                # saturation mask actually removed blocks; a footprint that
                # covered no block to begin with was never going to render
                # and is not a preprocessing saving.
                if skipped_here > 0:
                    stats.num_skipped_tmask += 1
                else:
                    stats.num_empty_footprint += 1
                if enable_cc:
                    # Under CC this Gaussian's SH coefficients are never
                    # fetched.
                    continue

            # Stage III colour evaluation (conditional under CC).
            direction = scene.means[geometry.source_indices[row]] - camera_position
            color = evaluate_sh_colors(
                scene.sh_coeffs[geometry.source_indices[row]][None, :, :],
                direction[None, :],
                degree=config.sh_degree,
            )[0]
            stats.num_sh_evaluated += 1

            if not blocks:
                continue

            if vectorized:
                if region is None:
                    # "aabb" mode derives blocks from the bounding radius,
                    # which can exceed the alpha ellipse; grow the region to
                    # cover it.
                    region = compute_footprint_region(
                        mean2d,
                        conic,
                        geometry.cov2d[row],
                        opacity,
                        width,
                        height,
                        block_size,
                        config.alpha_min,
                        extra_radius=float(geometry.radii[row]),
                    )
                counts, pixel_evals, block_trans_max = blend_region_blocks(
                    color_flat,
                    trans_flat,
                    region,
                    blocks,
                    color,
                    opacity,
                    width,
                    height,
                    block_size,
                    config.alpha_min,
                    config.alpha_max,
                    config.transmittance_eps,
                )
                stats.alpha_evaluations += pixel_evals
                stats.blocks_evaluated += len(blocks)
                contributed_any = int(counts.sum())
                stats.pixels_blended += contributed_any
                if contributed_any:
                    touched = counts > 0
                    newly_saturated = touched & (
                        block_trans_max <= config.transmittance_eps
                    )
                    for b_index in np.nonzero(newly_saturated)[0]:
                        saturated_set.add(blocks[b_index])
            else:
                contributed_any = 0
                touched_blocks: list[tuple[int, int]] = []
                for by, bx in blocks:
                    y0, x0 = by * block_size, bx * block_size
                    y1, x1 = min(y0 + block_size, height), min(x0 + block_size, width)
                    xs = np.arange(x0, x1, dtype=np.float64)
                    ys = np.arange(y0, y1, dtype=np.float64)
                    grid_x, grid_y = np.meshgrid(xs, ys)
                    dx = grid_x - mean2d[0]
                    dy = grid_y - mean2d[1]

                    stats.alpha_evaluations += dx.size
                    stats.blocks_evaluated += 1
                    alpha = compute_alpha(
                        conic,
                        opacity,
                        dx,
                        dy,
                        alpha_min=config.alpha_min,
                        alpha_max=config.alpha_max,
                    )

                    block_color = color_accum[y0:y1, x0:x1].reshape(-1, 3)
                    block_trans = transmittance[y0:y1, x0:x1].reshape(-1)
                    contributed = blend_pixels(
                        block_color,
                        block_trans,
                        alpha.reshape(-1),
                        color,
                        config.transmittance_eps,
                    )
                    color_accum[y0:y1, x0:x1] = block_color.reshape(y1 - y0, x1 - x0, 3)
                    transmittance[y0:y1, x0:x1] = block_trans.reshape(y1 - y0, x1 - x0)
                    stats.pixels_blended += contributed
                    contributed_any += contributed
                    if contributed:
                        touched_blocks.append((by, bx))
                if contributed_any:
                    refresh_block_mask(touched_blocks)

            if contributed_any:
                rendered_sources.append(int(geometry.source_indices[row]))

        # Cross-stage conditional check: if every block is saturated, the
        # remaining (deeper) groups are skipped entirely.
        if enable_cc:
            if vectorized:
                terminated = terminated or len(saturated_set) == blocks_x * blocks_y
            elif bool(np.all(saturated_blocks)):
                terminated = True

    stats.num_rendered = len(rendered_sources)
    if rendered_sources:
        stats.rendered_indices = np.asarray(sorted(rendered_sources), dtype=np.int64)

    image = finalize_image(color_accum, transmittance, config.background)
    return GaussianWiseResult(image=image, stats=stats)
