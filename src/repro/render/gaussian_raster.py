"""GCC-dataflow renderer: Gaussian-wise rendering with cross-stage conditions.

This renderer implements the four-stage pipeline of Figure 3:

* **Stage I** — depth computation and grouping: only the 3D means are needed;
  Gaussians closer than the near plane are culled and the rest are organised
  into front-to-back depth groups.
* **Stage II** — position and shape projection of one group at a time, with
  omega-sigma screen culling.
* **Stage III** — spherical-harmonics colour evaluation and intra-group depth
  sorting.  Under cross-stage conditional (CC) processing the SH coefficients
  of a Gaussian are only fetched/evaluated if its footprint still overlaps
  unsaturated pixels.
* **Stage IV** — alpha computation over the blocks found by alpha-based
  boundary identification, and front-to-back blending with a per-block
  transmittance mask.

The produced image matches the tile-wise reference (Table 2 of the paper):
every Gaussian/pixel pair skipped by the GCC dataflow would have contributed
nothing under the standard dataflow either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianScene
from repro.gaussians.sh import evaluate_sh_colors
from repro.render.blending import blend_pixels, compute_alpha, finalize_image
from repro.render.boundary import identify_influence_blocks
from repro.render.common import RenderConfig
from repro.render.grouping import group_by_depth
from repro.render.preprocess import frustum_cull_depths, project_geometry


@dataclass
class GaussianWiseStats:
    """Work and data-movement statistics of one Gaussian-wise rendered frame."""

    width: int = 0
    height: int = 0
    block_size: int = 8
    enable_cc: bool = True
    #: Gaussians in the model.
    num_total: int = 0
    #: Gaussians culled by the Stage I depth test.
    num_depth_culled: int = 0
    #: Gaussians entering the group pipeline (passed Stage I).
    num_stage1_passed: int = 0
    #: Total depth groups formed.
    num_groups: int = 0
    #: Groups actually processed (Stages II-IV executed).
    num_groups_processed: int = 0
    #: Groups skipped entirely by cross-stage early termination.
    num_groups_skipped: int = 0
    #: Gaussians inside skipped groups (never projected, never loaded beyond
    #: their mean).
    num_skipped_by_termination: int = 0
    #: Gaussians projected in Stage II.
    num_projected: int = 0
    #: Gaussians surviving the Stage II screen cull.
    num_screen_passed: int = 0
    #: Gaussians whose footprint was entirely saturated (SH load skipped).
    num_skipped_tmask: int = 0
    #: Gaussians whose SH colour was evaluated (Stage III work / SH loads).
    num_sh_evaluated: int = 0
    #: Gaussians that contributed at least one blended pixel.
    num_rendered: int = 0
    #: Per-pixel alpha evaluations performed in Stage IV.
    alpha_evaluations: int = 0
    #: Pixels that received a blending contribution.
    pixels_blended: int = 0
    #: Pixel blocks visited by boundary identification (evaluated or rejected).
    blocks_visited: int = 0
    #: Pixel blocks whose alphas were computed and blended.
    blocks_evaluated: int = 0
    #: Pixel blocks skipped thanks to the transmittance mask.
    blocks_skipped_tmask: int = 0
    #: Sort operations (elements pushed through the intra-group sorter).
    sort_elements: int = 0
    #: Gaussian indices (into the original scene) that were rendered.
    rendered_indices: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def rendered_fraction(self) -> float:
        """Fraction of screen-passed Gaussians that were actually rendered."""
        if self.num_screen_passed == 0:
            return 0.0
        return self.num_rendered / self.num_screen_passed

    @property
    def preprocessing_savings(self) -> float:
        """Fraction of Gaussians whose full preprocessing was avoided.

        Counts Gaussians that were never projected (skipped groups) plus
        those whose SH evaluation was skipped, relative to the total the
        standard dataflow would have preprocessed.
        """
        if self.num_stage1_passed == 0:
            return 0.0
        avoided = self.num_skipped_by_termination + self.num_skipped_tmask
        return avoided / self.num_stage1_passed


@dataclass
class GaussianWiseResult:
    """Image plus statistics returned by :func:`render_gaussianwise`."""

    image: np.ndarray
    stats: GaussianWiseStats


def _blocks_from_radius(
    mean2d: np.ndarray,
    radius: float,
    width: int,
    height: int,
    block_size: int,
) -> list[tuple[int, int]]:
    """All blocks overlapped by the axis-aligned radius box (ablation mode)."""
    x0 = max(int((mean2d[0] - radius) // block_size), 0)
    x1 = min(int((mean2d[0] + radius) // block_size), (width - 1) // block_size)
    y0 = max(int((mean2d[1] - radius) // block_size), 0)
    y1 = min(int((mean2d[1] + radius) // block_size), (height - 1) // block_size)
    if x1 < x0 or y1 < y0:
        return []
    return [(by, bx) for by in range(y0, y1 + 1) for bx in range(x0, x1 + 1)]


def render_gaussianwise(
    scene: GaussianScene,
    camera: Camera,
    config: RenderConfig | None = None,
    enable_cc: bool = True,
    boundary_mode: str = "alpha",
) -> GaussianWiseResult:
    """Render ``scene`` with the GCC Gaussian-wise dataflow.

    Parameters
    ----------
    enable_cc:
        Enable cross-stage conditional processing.  When disabled (the "GW
        only" ablation of Figure 11), every Gaussian that passes screen
        culling has its SH colour evaluated and its full footprint
        alpha-evaluated, and no depth group is skipped.
    boundary_mode:
        ``"alpha"`` uses alpha-based boundary identification (Algorithm 1);
        ``"aabb"`` evaluates every block under the bounding-radius box (the
        ablation quantifying the identifier's contribution, Figure 11c).

    Returns
    -------
    :class:`GaussianWiseResult` with the ``(H, W, 3)`` image and statistics.
    """
    config = config or RenderConfig(radius_rule="omega-sigma")
    if boundary_mode not in ("alpha", "aabb"):
        raise ValueError("boundary_mode must be 'alpha' or 'aabb'")
    width, height = camera.width, camera.height
    block_size = config.block_size
    blocks_x = (width + block_size - 1) // block_size
    blocks_y = (height + block_size - 1) // block_size

    stats = GaussianWiseStats(
        width=width,
        height=height,
        block_size=block_size,
        enable_cc=enable_cc,
        num_total=scene.num_gaussians,
    )

    color_accum = np.zeros((height, width, 3), dtype=np.float64)
    transmittance = np.ones((height, width), dtype=np.float64)

    if scene.num_gaussians == 0:
        image = finalize_image(color_accum, transmittance, config.background)
        return GaussianWiseResult(image=image, stats=stats)

    # ------------------------------------------------------------------
    # Stage I: depth computation, culling, grouping.
    # ------------------------------------------------------------------
    depths_all, keep = frustum_cull_depths(scene, camera, config.depth_near)
    visible_indices = np.nonzero(keep)[0]
    stats.num_depth_culled = scene.num_gaussians - int(visible_indices.size)
    stats.num_stage1_passed = int(visible_indices.size)

    groups = group_by_depth(depths_all[visible_indices], capacity=config.group_capacity)
    stats.num_groups = len(groups)

    # Per-block saturation mask (the hardware T_mask): True when every pixel
    # in the block has terminated.
    saturated_blocks = np.zeros((blocks_y, blocks_x), dtype=bool)
    rendered_sources: list[int] = []
    camera_position = camera.position

    def refresh_block_mask(block_coords: list[tuple[int, int]]) -> None:
        """Update the saturation mask for the given blocks after blending."""
        for by, bx in block_coords:
            y0, x0 = by * block_size, bx * block_size
            y1, x1 = min(y0 + block_size, height), min(x0 + block_size, width)
            if np.all(transmittance[y0:y1, x0:x1] <= config.transmittance_eps):
                saturated_blocks[by, bx] = True

    terminated = False
    for group_index, group in enumerate(groups):
        if enable_cc and terminated:
            stats.num_groups_skipped += 1
            stats.num_skipped_by_termination += group.size
            continue

        stats.num_groups_processed += 1
        source_idx = visible_indices[group.indices]

        # ------------------------------------------------------------------
        # Stage II: position/shape projection and screen culling.
        # ------------------------------------------------------------------
        geometry = project_geometry(scene, camera, source_idx, config)
        stats.num_projected += geometry.num_input
        stats.num_screen_passed += geometry.num_visible
        if geometry.num_visible == 0:
            continue

        # ------------------------------------------------------------------
        # Stage III: intra-group front-to-back sort (colour is evaluated
        # lazily per Gaussian under CC).
        # ------------------------------------------------------------------
        order = np.argsort(geometry.depths, kind="stable")
        stats.sort_elements += geometry.num_visible

        # ------------------------------------------------------------------
        # Stage IV: boundary identification, alpha computation, blending.
        # ------------------------------------------------------------------
        for row in order:
            mean2d = geometry.means2d[row]
            conic = geometry.conics[row]
            opacity = float(geometry.opacities[row])

            if boundary_mode == "alpha":
                traversal = identify_influence_blocks(
                    mean2d,
                    conic,
                    opacity,
                    width,
                    height,
                    block_size=block_size,
                    alpha_min=config.alpha_min,
                    saturated_blocks=saturated_blocks if enable_cc else None,
                )
                blocks = traversal.blocks
                stats.blocks_visited += traversal.blocks_visited
                stats.blocks_skipped_tmask += traversal.blocks_skipped_tmask
            else:
                blocks = _blocks_from_radius(
                    mean2d, float(geometry.radii[row]), width, height, block_size
                )
                stats.blocks_visited += len(blocks)
                if enable_cc:
                    kept = [b for b in blocks if not saturated_blocks[b]]
                    stats.blocks_skipped_tmask += len(blocks) - len(kept)
                    blocks = kept

            if not blocks:
                # Nothing to render: either the footprint is empty or every
                # covered block is already saturated.  Under CC this Gaussian's
                # SH coefficients are never fetched.
                if enable_cc:
                    stats.num_skipped_tmask += 1
                    continue

            # Stage III colour evaluation (conditional under CC).
            direction = scene.means[geometry.source_indices[row]] - camera_position
            color = evaluate_sh_colors(
                scene.sh_coeffs[geometry.source_indices[row]][None, :, :],
                direction[None, :],
                degree=config.sh_degree,
            )[0]
            stats.num_sh_evaluated += 1

            contributed_any = 0
            touched_blocks: list[tuple[int, int]] = []
            for by, bx in blocks:
                y0, x0 = by * block_size, bx * block_size
                y1, x1 = min(y0 + block_size, height), min(x0 + block_size, width)
                xs = np.arange(x0, x1, dtype=np.float64)
                ys = np.arange(y0, y1, dtype=np.float64)
                grid_x, grid_y = np.meshgrid(xs, ys)
                dx = grid_x - mean2d[0]
                dy = grid_y - mean2d[1]

                stats.alpha_evaluations += dx.size
                stats.blocks_evaluated += 1
                alpha = compute_alpha(
                    conic,
                    opacity,
                    dx,
                    dy,
                    alpha_min=config.alpha_min,
                    alpha_max=config.alpha_max,
                )

                block_color = color_accum[y0:y1, x0:x1].reshape(-1, 3)
                block_trans = transmittance[y0:y1, x0:x1].reshape(-1)
                contributed = blend_pixels(
                    block_color,
                    block_trans,
                    alpha.reshape(-1),
                    color,
                    config.transmittance_eps,
                )
                color_accum[y0:y1, x0:x1] = block_color.reshape(y1 - y0, x1 - x0, 3)
                transmittance[y0:y1, x0:x1] = block_trans.reshape(y1 - y0, x1 - x0)
                stats.pixels_blended += contributed
                contributed_any += contributed
                if contributed:
                    touched_blocks.append((by, bx))

            if contributed_any:
                rendered_sources.append(int(geometry.source_indices[row]))
                refresh_block_mask(touched_blocks)

        # Cross-stage conditional check: if every block is saturated, the
        # remaining (deeper) groups are skipped entirely.
        if enable_cc and bool(np.all(saturated_blocks)):
            terminated = True

    stats.num_rendered = len(rendered_sources)
    if rendered_sources:
        stats.rendered_indices = np.asarray(sorted(rendered_sources), dtype=np.int64)

    image = finalize_image(color_accum, transmittance, config.background)
    return GaussianWiseResult(image=image, stats=stats)
