"""Alpha computation and front-to-back blending primitives (Equations 3, 4, 9).

These helpers are shared by both rasterisers.  They operate on flat arrays of
pixel offsets so the callers can blend arbitrary pixel sets: full 16x16 tiles
for the standard dataflow, 8x8 blocks for GCC's Alpha/Blending Units.
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.covariance import mahalanobis_sq
from repro.render.common import ALPHA_MAX, ALPHA_MIN


def alpha_from_maha(
    maha: np.ndarray,
    opacity,
    alpha_min: float = ALPHA_MIN,
    alpha_max: float = ALPHA_MAX,
) -> np.ndarray:
    """Alpha from precomputed Mahalanobis^2 values (Equation 9).

    ``opacity`` may be a scalar or an array broadcasting against ``maha``.
    This is the single definition of the clamp/threshold semantics shared by
    the reference loops and the vectorized kernels, so the two backends
    cannot drift apart.
    """
    alpha = np.minimum(opacity * np.exp(-0.5 * maha), alpha_max)
    return np.where(alpha < alpha_min, 0.0, alpha)


def compute_alpha(
    conic: np.ndarray,
    opacity: float,
    dx: np.ndarray,
    dy: np.ndarray,
    alpha_min: float = ALPHA_MIN,
    alpha_max: float = ALPHA_MAX,
) -> np.ndarray:
    """Per-pixel alpha of one Gaussian (Equation 9).

    Values below ``alpha_min`` are zeroed (they are excluded from blending,
    matching the reference rasteriser and the paper's 1/255 criterion);
    values above ``alpha_max`` are clamped.
    """
    return alpha_from_maha(
        mahalanobis_sq(conic, dx, dy), opacity, alpha_min=alpha_min, alpha_max=alpha_max
    )


def blend_pixels(
    color_accum: np.ndarray,
    transmittance: np.ndarray,
    alpha: np.ndarray,
    color: np.ndarray,
    transmittance_eps: float,
) -> int:
    """Blend one Gaussian's contribution into a set of pixels, in place.

    Parameters
    ----------
    color_accum:
        ``(P, 3)`` accumulated colour for the target pixels (modified).
    transmittance:
        ``(P,)`` accumulated transmittance for the target pixels (modified).
    alpha:
        ``(P,)`` this Gaussian's alpha at each pixel (zero where it does not
        contribute).
    color:
        ``(3,)`` the Gaussian's RGB colour.
    transmittance_eps:
        Early-termination threshold: pixels whose transmittance is already
        below this value are skipped.

    Returns
    -------
    The number of pixels that actually received a contribution.  The caller
    uses this both to mark the Gaussian as "rendered" and to count blending
    work for the hardware models.
    """
    active = (alpha > 0.0) & (transmittance > transmittance_eps)
    count = int(np.count_nonzero(active))
    if count == 0:
        return 0
    weight = transmittance[active] * alpha[active]
    color_accum[active] += weight[:, None] * color[None, :]
    transmittance[active] *= 1.0 - alpha[active]
    return count


def finalize_image(
    color_accum: np.ndarray,
    transmittance: np.ndarray,
    background: tuple[float, float, float],
) -> np.ndarray:
    """Composite the accumulated colour over the background colour.

    The background is cast to the accumulator dtype so the float32 engine
    mode stays in single precision end to end.
    """
    background_arr = np.asarray(background, dtype=color_accum.dtype)
    return color_accum + transmittance[..., None] * background_arr
