"""Depth grouping (Stage I of the GCC dataflow).

Gaussians are assigned to depth bins, front-to-back, so that the Gaussian-wise
pipeline can process whole groups in order and skip the remaining (deeper)
groups once rendering has terminated.  The paper uses a two-level scheme: a
coarse pass through the Reconfigurable Comparator Array (RCA) splits the depth
range into bins, and any bin holding more than ``N`` Gaussians (N = 256) is
recursively subdivided so no group exceeds the on-chip sort capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DepthGroup:
    """One depth group: indices into the caller's arrays plus its depth span."""

    indices: np.ndarray
    depth_min: float
    depth_max: float

    @property
    def size(self) -> int:
        """Number of Gaussians in the group."""
        return int(self.indices.size)


def group_by_depth(
    depths: np.ndarray,
    capacity: int = 256,
    num_coarse_bins: int = 64,
) -> list[DepthGroup]:
    """Partition Gaussians into front-to-back depth groups of at most ``capacity``.

    Parameters
    ----------
    depths:
        ``(K,)`` view-space depths of the Gaussians that passed the Stage I
        near-plane cull.
    capacity:
        Maximum group size (the paper's N = 256).
    num_coarse_bins:
        Number of equal-width coarse bins over the depth range (the RCA's
        pivot count).  Bins exceeding ``capacity`` are subdivided by sorting
        and chunking, mirroring the recursive subdivision in Section 4.2.

    Returns
    -------
    Groups ordered front-to-back; every depth in group ``k`` is <= every depth
    in group ``k + 1`` (up to the subdivision chunk boundaries, which are
    exactly depth-sorted).  The union of all group indices is exactly
    ``range(len(depths))``.
    """
    depths = np.asarray(depths, dtype=np.float64)
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if num_coarse_bins <= 0:
        raise ValueError("num_coarse_bins must be positive")
    count = depths.size
    if count == 0:
        return []

    d_min, d_max = float(depths.min()), float(depths.max())
    if d_max <= d_min:
        # All Gaussians at the same depth: chunk arbitrarily.
        order = np.arange(count)
        return [
            DepthGroup(order[start : start + capacity], d_min, d_max)
            for start in range(0, count, capacity)
        ]

    edges = np.linspace(d_min, d_max, num_coarse_bins + 1)
    bin_ids = np.clip(np.digitize(depths, edges[1:-1]), 0, num_coarse_bins - 1)

    groups: list[DepthGroup] = []
    for bin_id in range(num_coarse_bins):
        members = np.nonzero(bin_ids == bin_id)[0]
        if members.size == 0:
            continue
        if members.size <= capacity:
            member_depths = depths[members]
            groups.append(
                DepthGroup(members, float(member_depths.min()), float(member_depths.max()))
            )
            continue
        # Recursive subdivision: sort within the bin and chunk.
        order = members[np.argsort(depths[members], kind="stable")]
        for start in range(0, order.size, capacity):
            chunk = order[start : start + capacity]
            chunk_depths = depths[chunk]
            groups.append(
                DepthGroup(chunk, float(chunk_depths.min()), float(chunk_depths.max()))
            )
    return groups


def grouping_comparison_count(
    num_gaussians: int, num_coarse_bins: int = 64, capacity: int = 256
) -> int:
    """Approximate comparator operations the RCA performs for grouping.

    The coarse pass compares each Gaussian against ``log2(num_coarse_bins)``
    pivots (a binary search through the cascaded comparator tree); the
    subdivision pass is bounded by a bitonic-style ``n log^2 n`` term on the
    (rare) oversized bins, approximated here by one extra pass.
    """
    if num_gaussians <= 0:
        return 0
    coarse = num_gaussians * max(int(np.ceil(np.log2(num_coarse_bins))), 1)
    subdivision = num_gaussians * max(int(np.ceil(np.log2(capacity))), 1) // 4
    return coarse + subdivision
