"""Execution subsystem: the persistent, frame-concurrent render service.

This package is the layer between the scene store and the serving front
ends (``engine -> store -> exec -> serve -> sched``):

* :mod:`repro.exec.frames` — the single-frame primitives
  (:class:`FrameSpec`, :func:`render_frame`, :class:`FrameRecord`,
  :class:`JobResult`) shared by the evaluation runner, the render farm and
  the executor workers — the structural basis of every bitwise-equality
  guarantee in the serving stack;
* :mod:`repro.exec.payload` — scene resolution and encoded-payload
  publication (lossless ``.npz`` or the quantized store container);
* :mod:`repro.exec.worker` — the long-lived worker process loop with its
  bounded resident scene cache (a tier is shipped and decoded at most once
  per worker while resident);
* :mod:`repro.exec.executor` — :class:`RenderExecutor`: persistent
  workers, ``submit(job) -> JobHandle`` concurrent dispatch, crash
  recovery, and hit/miss/ship-byte accounting.

Quickstart::

    from repro.exec import RenderExecutor
    from repro.serve import RenderJob, make_trajectory

    job = RenderJob("train", make_trajectory("orbit", num_frames=16))
    with RenderExecutor(num_workers=4) as executor:
        first = executor.submit(job).result()       # cold: ship + decode
        again = executor.submit(job).result()       # warm: resident scenes
    print(first.frames_per_second, again.frames_per_second, again.warm)
"""

from repro.exec.executor import (
    DEFAULT_RESIDENT_CACHE_SIZE,
    ExecutorStats,
    JobHandle,
    RenderExecutor,
)
from repro.exec.frames import (
    DATAFLOWS,
    FrameCallback,
    FrameRecord,
    FrameRenderError,
    FrameResult,
    FrameSpec,
    JobResult,
    render_frame,
    usable_cpu_count,
)
from repro.exec.payload import SCENE_FORMATS, SceneRef
from repro.exec.worker import DEFAULT_WORKER_CACHE_SIZE

__all__ = [
    "DATAFLOWS",
    "DEFAULT_RESIDENT_CACHE_SIZE",
    "DEFAULT_WORKER_CACHE_SIZE",
    "ExecutorStats",
    "FrameCallback",
    "FrameRecord",
    "FrameRenderError",
    "FrameResult",
    "FrameSpec",
    "JobHandle",
    "JobResult",
    "RenderExecutor",
    "SCENE_FORMATS",
    "SceneRef",
    "render_frame",
    "usable_cpu_count",
]
