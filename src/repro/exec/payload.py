"""Scene resolution and encoded-payload publication for the executor.

Two concerns live here, both shared by the sequential path and the worker
pool so that their outputs stay *bitwise identical*:

* **Resolution** — turning a :class:`~repro.serve.trajectories.RenderJob`
  (or a caller-supplied scene) into the pruned LOD scene
  (:func:`resolve_lod_scene`) and the decoded render-ready scene at the
  job's quant tier (:func:`resolve_render_scene`).  Store-backed presets go
  through :func:`repro.store.store.default_store`, so repeated jobs at one
  tier reuse the store's cached preparation, exactly as the render farm
  always did.
* **Publication** — encoding the pruned scene once into an on-disk payload
  (:class:`SceneRef`) that workers load lazily: lossless tiers ship the
  bit-exact ``.npz`` archive (or the debug text format), lossy tiers ship
  the quantized store container, so the bytes crossing the process boundary
  shrink with the tier.  Decoding is deterministic, which is what keeps the
  concurrent path bitwise identical to the sequential one at every tier.

Import-cycle invariant: ``repro.store.store`` pulls ``repro.serve.cache``
back in, so it is imported lazily inside the resolution helpers — this
module may only import ``repro.store.codec``/``repro.store.lod`` and
``repro.gaussians`` at module level.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.exec.frames import SCENE_FORMATS  # noqa: F401 - canonical home
from repro.gaussians.io import save_scene_npz, save_scene_text
from repro.gaussians.model import GaussianScene
from repro.gaussians.synthetic import make_scene
from repro.store.codec import QuantSpec, quant_spec, roundtrip_scene, save_scene_store
from repro.store.lod import select_lod

_SCENE_SAVERS = {"npz": save_scene_npz, "text": save_scene_text}


@dataclass(frozen=True)
class SceneRef:
    """One published scene payload a worker can load by path.

    ``key`` is the residency key — ``(scene, lod, quant)`` for jobs served
    from a named preset, or a unique ``("custom", n, lod, quant)`` key for
    caller-supplied scenes (which therefore never alias each other in a
    worker's resident cache).  ``fmt`` selects the worker-side loader and
    ``nbytes`` is the exact on-disk size, the unit of ship accounting.
    """

    key: tuple
    path: str
    fmt: str
    nbytes: int


def scene_key(job) -> tuple:
    """The resident-cache key of ``job``'s scene tier."""
    return (job.scene.lower(), job.lod, quant_spec(job.quant).name)


def resolve_lod_scene(job, scene: GaussianScene | None = None) -> GaussianScene:
    """The pruned (pre-quantization) scene ``job`` renders.

    A caller-supplied ``scene`` is LOD-pruned directly; a store-backed
    preset resolves (and caches) through the default scene store, honouring
    the store's own ``lod_ratio``; anything else is instantiated exactly as
    :mod:`repro.eval.runner` does (``make_scene(preset.name, scale=...)``)
    and pruned.
    """
    preset = job.preset()
    if scene is not None:
        return select_lod(scene, job.lod)
    if preset.store is not None:
        from repro.store.store import default_store

        return default_store().get(preset.store, lod=job.lod)
    return select_lod(make_scene(preset.name, scale=preset.scale), job.lod)


def resolve_render_scene(job, scene: GaussianScene | None = None) -> GaussianScene:
    """The decoded, render-ready scene of ``job``'s full ``(lod, quant)`` tier.

    This is what the sequential path renders in-process; the worker pool
    arrives at the *same bits* by decoding the published payload (the codec
    round-trip and the save/load trip are the same deterministic transform).
    """
    preset = job.preset()
    if scene is None and preset.store is not None:
        from repro.store.store import default_store

        return default_store().get(preset.store, lod=job.lod, quant=job.quant)
    return roundtrip_scene(resolve_lod_scene(job, scene), quant_spec(job.quant))


def publish_payload(
    lod_scene: GaussianScene,
    key: tuple,
    directory: str | Path,
    tier: QuantSpec,
    scene_format: str,
    serial: int,
) -> SceneRef:
    """Encode ``lod_scene`` under ``key`` into ``directory`` and describe it.

    Lossless tiers use ``scene_format`` (bit-exact ``.npz`` by default);
    lossy tiers always ship the quantized store container so the payload
    crosses the process boundary at its compressed size.
    """
    if tier.is_lossless:
        fmt = scene_format
        suffix = ".txt" if fmt == "text" else ".npz"
    else:
        fmt = "store"
        suffix = ".npz"
    path = Path(directory) / f"payload-{serial}{suffix}"
    if fmt == "store":
        save_scene_store(lod_scene, path, tier)
    else:
        _SCENE_SAVERS[fmt](lod_scene, path)
    return SceneRef(key=key, path=str(path), fmt=fmt, nbytes=path.stat().st_size)
