"""Single-frame execution primitives shared by every scheduling layer.

This module is the bottom of the execution stack: the :class:`FrameSpec`
describing how one frame renders, :func:`render_frame` (the single-frame
entry point the evaluation runner, the render farm and the executor workers
all call), the :class:`FrameRecord` a finished frame becomes, and the
:class:`JobResult` aggregate a whole trajectory job returns.

History note: these types were born in :mod:`repro.serve.farm` (PR 2) and
moved here when the persistent :class:`~repro.exec.executor.RenderExecutor`
was extracted, because both the farm facade and the executor need them and
the farm now sits *above* the executor.  :mod:`repro.serve.farm` re-exports
every public name, so existing imports keep working.

Import-cycle invariants (:mod:`repro.eval.runner` and
:mod:`repro.serve.farm` import from here): this module must not import
``repro.serve``, ``repro.eval`` or ``repro.store`` at module level — even
:mod:`repro.store.codec` triggers ``repro.store.__init__``, which reaches
back through ``repro.serve`` into ``repro.exec``.  Tier validation imports
the codec lazily.  ``RenderJob`` appears in annotations only, which
PEP 563 keeps as strings.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianScene
from repro.render.common import DTYPES, RenderConfig
from repro.render.gaussian_raster import GaussianWiseResult, render_gaussianwise
from repro.render.kernels import shard_intervals
from repro.render.tile_raster import (
    TileWiseResult,
    compose_tile_shards,
    frame_tile_count,
    render_tilewise,
)

FrameResult = Union[TileWiseResult, GaussianWiseResult]

#: Shipping formats a caller may select for lossless scenes ("store" — the
#: quantized codec container — is engaged automatically whenever a job
#: requests a quantized tier).  Defined here rather than next to the
#: payload code so the serving layer can import it without touching the
#: store package (see the import-cycle note above).
SCENE_FORMATS: tuple[str, ...] = ("npz", "text")

#: The rendering dataflows a job can request (standard tile-wise pipeline or
#: the paper's Gaussian-wise pipeline).
DATAFLOWS: tuple[str, ...] = ("tilewise", "gaussianwise")

#: Per-frame stats fields that are frame-invariant configuration, not
#: accumulable work counters.  When adding a field to TileWiseStats or
#: GaussianWiseStats, classify it here if it is config-valued — the exact
#: counter sets are pinned by tests/test_serve_farm.py
#: (``test_counter_field_classification_is_exhaustive``), which fails on any
#: unclassified addition.
_NON_COUNTER_FIELDS = frozenset(
    {"width", "height", "tile_size", "block_size", "enable_cc"}
)


def usable_cpu_count() -> int:
    """CPUs this process may actually run on (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - platforms without affinity
        return os.cpu_count() or 1


@dataclass(frozen=True)
class FrameSpec:
    """Render parameters of one frame, mirroring the evaluation runner.

    ``tilewise`` frames use ``tile_size``/``obb_subtile_skip`` and the
    conventional 3-sigma radius rule; ``gaussianwise`` frames use
    ``enable_cc``/``block_size``/``boundary_mode`` and the paper's
    omega-sigma rule — exactly the configurations
    :func:`repro.eval.runner.run_tilewise` and
    :func:`repro.eval.runner.run_gaussianwise` build.
    """

    dataflow: str = "tilewise"
    backend: str = "vectorized"
    tile_size: int = 16
    obb_subtile_skip: bool = True
    enable_cc: bool = True
    block_size: int = 8
    boundary_mode: str = "alpha"
    #: Quality tier the job's scene was prepared at.  These two fields are
    #: provenance, not render parameters: the executor applies them to the
    #: scene *before* any frame is rendered (LOD pruning + codec
    #: round-trip), and :func:`render_frame` itself never consults them — a
    #: worker holding a decoded scene renders it exactly as a lossless one.
    lod: int = 0
    quant: str = "lossless"
    #: Floating-point engine mode (``repro.render.common.DTYPES``).  Unlike
    #: ``lod``/``quant`` this *is* a render parameter — it changes the bits
    #: of the output image — so it participates in every cache key that
    #: distinguishes rendered results (see ``repro.eval.runner``).
    dtype: str = "float64"

    def __post_init__(self) -> None:
        # Lazy tier lookup: importing repro.store at module level here would
        # close the import cycle described in the module docstring.
        from repro.store.codec import QUANT_SPECS

        if self.dataflow not in DATAFLOWS:
            raise ValueError(f"dataflow must be one of {DATAFLOWS}")
        if self.lod < 0:
            raise ValueError("lod must be non-negative")
        if self.quant not in QUANT_SPECS:
            raise ValueError(f"quant must be one of {sorted(QUANT_SPECS)}")
        if self.dtype not in DTYPES:
            raise ValueError(f"dtype must be one of {DTYPES}")
        if self.dataflow == "gaussianwise" and self.dtype != "float64":
            raise ValueError(
                "the gaussianwise dataflow only supports dtype='float64'; "
                "the float32 engine mode is a tile-wise fast path"
            )

    @classmethod
    def for_job(cls, job: RenderJob, **overrides) -> "FrameSpec":
        """The spec a :class:`RenderJob` renders its frames with."""
        return cls(
            dataflow=job.dataflow,
            backend=job.backend,
            lod=job.lod,
            quant=job.quant,
            dtype=job.dtype,
            **overrides,
        )


@dataclass(frozen=True)
class ShardSpec:
    """One tile-range shard of a frame: which slice of the tile grid it owns.

    ``index`` is the shard's position among its frame's ``num_shards``
    siblings and ``[tile_lo, tile_hi)`` its half-open row-major tile-id
    interval.  A :class:`ShardSpec` is pure routing data — it never changes
    *what* is rendered, only which worker renders which tiles — which is why
    sharding is absent from :class:`FrameSpec` and from every result cache
    key.
    """

    index: int
    num_shards: int
    tile_lo: int
    tile_hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.num_shards:
            raise ValueError("shard index out of range")
        if self.tile_lo > self.tile_hi:
            raise ValueError("tile_lo must not exceed tile_hi")

    @property
    def interval(self) -> tuple[int, int]:
        return (self.tile_lo, self.tile_hi)


def plan_shards(camera: Camera, spec: FrameSpec, num_shards: int) -> list[ShardSpec]:
    """Partition ``camera``'s tile grid into ``num_shards`` shard specs.

    Only the tile-wise dataflow shards (Gaussian-wise blending is not
    per-tile, so no exact compositor exists for it).
    """
    if spec.dataflow != "tilewise":
        raise ValueError("only the tilewise dataflow supports tile-range sharding")
    num_tiles = frame_tile_count(camera.width, camera.height, spec.tile_size)
    return [
        ShardSpec(index=i, num_shards=num_shards, tile_lo=lo, tile_hi=hi)
        for i, (lo, hi) in enumerate(shard_intervals(num_tiles, num_shards))
    ]


def render_frame(
    scene: GaussianScene,
    camera: Camera,
    spec: FrameSpec,
    tile_shard: tuple[int, int] | None = None,
) -> FrameResult:
    """Render one frame (or one tile-range shard) under ``spec``.

    This is the single-frame primitive shared by the evaluation runner, the
    render farm and the executor workers; both dataflows construct their
    :class:`RenderConfig` here and nowhere else.  ``tile_shard`` restricts
    the tile-wise pipeline to a half-open tile-id interval (see
    :func:`repro.render.tile_raster.render_tilewise`).
    """
    if spec.dataflow == "tilewise":
        config = RenderConfig(
            tile_size=spec.tile_size,
            radius_rule="3sigma",
            backend=spec.backend,
            dtype=spec.dtype,
        )
        return render_tilewise(
            scene,
            camera,
            config,
            obb_subtile_skip=spec.obb_subtile_skip,
            tile_shard=tile_shard,
        )
    if tile_shard is not None:
        raise ValueError("tile_shard is only supported by the tilewise dataflow")
    config = RenderConfig(
        radius_rule="omega-sigma", block_size=spec.block_size, backend=spec.backend
    )
    return render_gaussianwise(
        scene,
        camera,
        config,
        enable_cc=spec.enable_cc,
        boundary_mode=spec.boundary_mode,
    )


@dataclass
class FrameRecord:
    """One finished frame: image, statistics and render latency."""

    index: int
    image: np.ndarray
    stats: object
    render_ms: float


#: Per-frame completion callback: called in the parent process as each
#: frame finishes (index order on the sequential path, completion order on
#: the executor's concurrent path), before the job's aggregate result
#: exists — the hook the request scheduler uses to observe latency mid-job.
FrameCallback = Callable[[FrameRecord], None]


class FrameRenderError(RuntimeError):
    """A frame failed to render; carries the frame index and scene name.

    Raised on every scheduling path instead of letting a raw worker
    traceback escape the pool, so callers can tell *which* frame of *which*
    scene died.  ``__cause__`` holds the original exception on the
    sequential path; worker failures embed the worker-side traceback in the
    message (the exception object itself may not survive pickling back
    across the process boundary), and a hard worker crash reports the
    worker's exit code.
    """

    def __init__(self, scene: str, frame_index: int, message: str) -> None:
        super().__init__(
            f"frame {frame_index} of scene {scene!r} failed to render: {message}"
        )
        self.scene = scene
        self.frame_index = frame_index


@dataclass
class _WorkerFailure:
    """Pickle-safe record of a worker-side frame failure."""

    index: int
    error: str
    traceback: str


@dataclass
class JobResult:
    """Aggregated output of one render job (farm or executor)."""

    job: RenderJob
    spec: FrameSpec
    frames: list[FrameRecord]
    #: Workers the job actually ran with (0 = in-process sequential path).
    num_workers: int
    #: End-to-end wall time.  On the executor this spans submit to last
    #: frame (payload encoding, worker-side decoding and any queueing
    #: behind concurrent jobs included); the farm facade's transient
    #: executor additionally pays pool start-up inside this window, which
    #: is exactly the cold cost the persistent executor amortises away.
    wall_seconds: float
    #: Gaussians in the scene the frames were rendered from (after the
    #: job's LOD level was applied).
    num_gaussians: int = 0
    #: On-disk bytes of the encoded scene payload this job had to publish
    #: for its worker pool (0 on the sequential path — nothing crosses a
    #: process boundary — and 0 for a job whose ``(scene, lod, quant)``
    #: tier was already published by an earlier job on the same executor).
    ship_bytes: int = 0
    #: Worker-resident scene-cache accounting, aggregated to the parent:
    #: frames served from a worker's resident scene vs frames that had to
    #: load (decode) the payload first, plus the bytes those loads read.
    cache_hits: int = 0
    cache_misses: int = 0
    loaded_bytes: int = 0

    # ------------------------------------------------------------------
    # Throughput / latency accounting
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def frames_per_second(self) -> float:
        """End-to-end throughput of the job."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.num_frames / self.wall_seconds

    @property
    def frame_times_ms(self) -> np.ndarray:
        """Per-frame render latencies (worker-side, excludes queueing)."""
        return np.array([f.render_ms for f in self.frames])

    @property
    def p50_ms(self) -> float:
        """Median per-frame render latency."""
        return float(np.percentile(self.frame_times_ms, 50)) if self.frames else 0.0

    @property
    def p95_ms(self) -> float:
        """95th-percentile per-frame render latency."""
        return float(np.percentile(self.frame_times_ms, 95)) if self.frames else 0.0

    @property
    def warm(self) -> bool:
        """True when every frame hit a resident scene (nothing shipped/decoded)."""
        return self.cache_misses == 0 and self.ship_bytes == 0

    def aggregate_counters(self) -> dict[str, int]:
        """Sum every integer work counter across the job's frames.

        Configuration fields (image size, tile/block size, CC flag) and
        array-valued fields are excluded; what remains are the additive
        per-frame work counters (Gaussians preprocessed, alpha evaluations,
        pixels blended, ...) totalled over the whole trajectory.
        """
        totals: dict[str, int] = {}
        for record in self.frames:
            for f in dataclasses.fields(record.stats):
                if f.name in _NON_COUNTER_FIELDS:
                    continue
                value = getattr(record.stats, f.name)
                if isinstance(value, (bool, np.ndarray)):
                    continue
                if isinstance(value, (int, np.integer)):
                    totals[f.name] = totals.get(f.name, 0) + int(value)
        return totals

    def summary(self) -> dict:
        """A JSON-serialisable report of the job."""
        preset = self.job.preset()
        return {
            "scene": self.job.scene,
            "quick": self.job.quick,
            "trajectory": self.job.trajectory.kind,
            "dataflow": self.job.dataflow,
            "backend": self.spec.backend,
            "lod": self.spec.lod,
            "quant": self.spec.quant,
            "dtype": self.spec.dtype,
            "shards": getattr(self.job, "shards", 1),
            "num_gaussians": self.num_gaussians,
            "ship_bytes": self.ship_bytes,
            "residency": {
                "warm": self.warm,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "loaded_bytes": self.loaded_bytes,
            },
            "num_frames": self.num_frames,
            "num_workers": self.num_workers,
            "image_size": [self.frames[0].stats.width, self.frames[0].stats.height]
            if self.frames
            else [0, 0],
            "scene_scale": preset.scale,
            "wall_seconds": self.wall_seconds,
            "frames_per_second": self.frames_per_second,
            "p50_frame_ms": self.p50_ms,
            "p95_frame_ms": self.p95_ms,
            "counters": self.aggregate_counters(),
        }


def _render_one(
    scene: GaussianScene, task: tuple[int, Camera], spec: FrameSpec
) -> FrameRecord:
    """Render and time one frame — the unit of work on every scheduling path."""
    index, camera = task
    start = time.perf_counter()
    result = render_frame(scene, camera, spec)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return FrameRecord(
        index=index, image=result.image, stats=result.stats, render_ms=elapsed_ms
    )


@dataclass
class ShardRecord:
    """One rendered tile-range shard of a frame — the pool's partial result.

    Pickle-safe (image + stats + routing data only; the projected arrays
    never cross back over the process boundary).  ``num_shards`` sibling
    records merge into one :class:`FrameRecord` via
    :func:`merge_shard_records`.
    """

    index: int
    shard: ShardSpec
    image: np.ndarray
    stats: object
    render_ms: float


def _render_one_shard(
    scene: GaussianScene,
    task: tuple[int, Camera],
    spec: FrameSpec,
    shard: ShardSpec,
) -> ShardRecord:
    """Render and time one tile-range shard of a frame."""
    index, camera = task
    start = time.perf_counter()
    result = render_frame(scene, camera, spec, tile_shard=shard.interval)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return ShardRecord(
        index=index,
        shard=shard,
        image=result.image,
        stats=result.stats,
        render_ms=elapsed_ms,
    )


def merge_shard_records(records: list[ShardRecord]) -> FrameRecord:
    """Compose a frame's shard records into its whole-frame record.

    Pure and exact: image and statistics counters are bitwise identical to
    an unsharded render (see
    :func:`repro.render.tile_raster.compose_tile_shards`).  ``render_ms``
    is the *maximum* shard time — the frame's critical path when shards run
    on parallel workers — so per-frame latency percentiles report what a
    caller actually waited.
    """
    if not records:
        raise ValueError("merge_shard_records needs at least one shard record")
    index = records[0].index
    if any(r.index != index for r in records):
        raise ValueError("shard records belong to different frames")
    partials = [
        TileWiseResult(
            image=r.image, stats=r.stats, projected=None, tile_shard=r.shard.interval
        )
        for r in records
    ]
    merged = compose_tile_shards(partials)
    return FrameRecord(
        index=index,
        image=merged.image,
        stats=merged.stats,
        render_ms=max(r.render_ms for r in records),
    )


def _render_frame_task(
    scene: GaussianScene,
    task: tuple[int, Camera],
    spec: FrameSpec,
    num_shards: int = 1,
) -> FrameRecord:
    """Render one frame, sharded in-process when ``num_shards > 1``.

    The sequential executor path uses this so that a sharded job exercises
    exactly the same shard render + compositor code as the worker pool —
    which is what keeps pool output bitwise comparable to the sequential
    oracle at any shard count.
    """
    if num_shards <= 1:
        return _render_one(scene, task, spec)
    shards = plan_shards(task[1], spec, num_shards)
    records = [_render_one_shard(scene, task, spec, shard) for shard in shards]
    return merge_shard_records(records)
