"""Worker-process side of the persistent render executor.

Each worker is a long-lived process running :func:`worker_main`: it reads
frame tasks off its end of a duplex :func:`multiprocessing.Pipe`, renders
them against a **bounded resident scene cache**, and sends results (or
pickle-safe failure tuples) back on the same connection.

One pipe per worker — deliberately, instead of shared queues:

* ``Connection.send`` is synchronous (no feeder thread), so a result a
  worker finished sending survives in the kernel buffer even if the worker
  dies the next instant, and the parent reads it *before* the EOF that
  announces the death — results are never lost or reordered around a
  crash.
* A hard worker death (OOM kill, segfault) surfaces to the parent as
  ``EOFError`` on the connection, which the dispatcher handles by failing
  the in-flight frame and spawning a replacement — no liveness polling.
* No hidden threads exist on either side, so spawning a replacement
  worker from the dispatcher thread cannot fork mid-operation queue
  feeder state.

Residency contract: a scene tier — keyed by the payload's
``(scene, lod, quant)`` :class:`~repro.exec.payload.SceneRef.key` — is
loaded (read + decoded) *at most once per worker* while it stays resident.
The first frame of a tier pays the load and reports ``loaded_bytes``; every
later frame of the same tier reports a cache hit and renders immediately.
The cache is a small LRU (:data:`DEFAULT_WORKER_CACHE_SIZE` tiers) so a
worker serving many tenants cannot grow without bound; an evicted tier is
simply re-loaded on next touch (and counted as a fresh miss).

Messages (all plain tuples, pickle-friendly):

* parent -> worker: ``("task", job_id, frame_index, camera, spec,
  scene_ref, shard)`` — ``shard`` is a
  :class:`~repro.exec.frames.ShardSpec` for a tile-range shard of the
  frame, or ``None`` for a whole frame — or ``("stop",)``;
* worker -> parent: ``("ok", worker_id, job_id, record, hit,
  loaded_bytes, obs)`` where ``record`` is a
  :class:`~repro.exec.frames.FrameRecord` (whole frame) or a
  :class:`~repro.exec.frames.ShardRecord` (shard partial, merged by the
  parent), or ``("err", worker_id, job_id, frame_index, error_repr,
  traceback_str, obs)``.  ``obs`` piggybacks observability on the result
  pipe: ``None`` when the executor runs without an
  :class:`~repro.obs.ObsContext`, else ``(spans, metrics_snapshot)`` —
  the spans drained since the previous reply (the parent re-parents them
  under its own dispatch span, preserving lane attribution) and the
  *cumulative* metrics snapshot of this worker (the parent keeps the
  latest per worker, so nothing double-counts and the tallies survive a
  later crash of the worker).

Exceptions inside a frame surface as ``"err"`` tuples rather than killing
the worker.
"""

from __future__ import annotations

import contextlib
import os
import time
import traceback
from collections import OrderedDict

from repro.exec.frames import _render_one, _render_one_shard
from repro.gaussians.io import load_scene_npz, load_scene_text
from repro.store.codec import load_scene_store

#: Worker-side scene loaders per shipping format.  ``"store"`` is the
#: quantized codec container: the parent ships the *encoded* payload and
#: the worker's load decodes it, so quantized tiers cross the process
#: boundary at their compressed size.
_SCENE_LOADERS = {
    "npz": load_scene_npz,
    "text": load_scene_text,
    "store": load_scene_store,
}

#: Resident scene tiers each worker keeps decoded (LRU-bounded).
DEFAULT_WORKER_CACHE_SIZE = 8

#: Test-only crash injection: set to ``"<scene>:<frame_index>"`` in the
#: parent's environment *before the executor starts* and the worker that
#: picks up that frame dies hard (``os._exit``) without replying — the
#: deterministic stand-in for an OOM kill / segfault that the
#: crash-recovery tests use to exercise worker replacement.  Unset in any
#: normal deployment.
CRASH_ENV = "REPRO_EXEC_TEST_CRASH"
_CRASH_EXIT_CODE = 87

#: Test-only stall injection: set to ``"<scene>:<frame_index>:<seconds>"``
#: and the worker that picks up that frame sleeps that long *before*
#: rendering — the deterministic stand-in for a wedged worker that the
#: watchdog tests use.  The sleep happens outside the render, so the
#: frame's bytes are exactly what they would have been: the health plane
#: observes the stall, it never changes the output.  Unset in any normal
#: deployment.
STALL_ENV = "REPRO_EXEC_TEST_STALL"


def _crash_requested(scene: str, frame_index: int) -> bool:
    directive = os.environ.get(CRASH_ENV)
    return directive is not None and directive == f"{scene}:{frame_index}"


def _stall_requested(scene: str, frame_index: int) -> float:
    directive = os.environ.get(STALL_ENV)
    if not directive:
        return 0.0
    scene_frame, _, seconds = directive.rpartition(":")
    if scene_frame == f"{scene}:{frame_index}":
        return float(seconds)
    return 0.0


def _span(tracer, name: str, attrs: dict | None = None):
    return contextlib.nullcontext() if tracer is None else tracer.span(name, attrs=attrs)


def _tier_label(ref) -> str:
    # key is (scene, lod, quant) or ("custom", n, lod, quant).
    return "/".join(str(part) for part in ref.key[1:])


def _run_task(cache, cache_size, job_id, index, camera, spec, ref, shard, tracer, metrics):
    """Render one task; record spans/metrics when observability is on."""
    with _span(tracer, "job", {"job": job_id, "frame": index, "scene": ref.key[0]}):
        scene = cache.get(ref.key)
        hit = scene is not None
        loaded = 0
        if not hit:
            with _span(
                tracer, "decode", {"tier": _tier_label(ref), "bytes": ref.nbytes}
            ) as decode_span:
                scene = _SCENE_LOADERS[ref.fmt](ref.path)
            loaded = ref.nbytes
            cache[ref.key] = scene
            if len(cache) > cache_size:
                cache.popitem(last=False)
            if metrics is not None:
                metrics.counter("repro_scene_cache_misses_total").inc()
                metrics.counter("repro_loaded_bytes_total").inc(loaded)
                metrics.histogram("repro_decode_ms").observe(decode_span.dur_ms)
        else:
            cache.move_to_end(ref.key)
            if metrics is not None:
                metrics.counter("repro_scene_cache_hits_total").inc()
        with _span(tracer, "frame", {"frame": index}):
            if shard is None:
                with _span(tracer, "render"):
                    record = _render_one(scene, (index, camera), spec)
            else:
                with _span(
                    tracer,
                    "shard",
                    {
                        "shard": shard.index,
                        "num_shards": shard.num_shards,
                        "tiles": [shard.tile_lo, shard.tile_hi],
                    },
                ):
                    record = _render_one_shard(scene, (index, camera), spec, shard)
        if metrics is not None:
            metrics.histogram("repro_render_ms").observe(record.render_ms)
            kind = "repro_frames_rendered_total" if shard is None else "repro_shards_rendered_total"
            metrics.counter(kind).inc()
    return record, hit, loaded


def worker_main(worker_id: int, conn, cache_size: int, obs_enabled: bool = False) -> None:
    """Run one worker: render tasks forever against a resident scene cache."""
    cache: OrderedDict[tuple, object] = OrderedDict()
    tracer = metrics = None
    if obs_enabled:
        # Private per-process collectors; drained spans and cumulative
        # metric snapshots ship back with every reply.  The stage hook is
        # installed here (this process) so kernel-level project/pair/blend
        # spans nest under this worker's frame spans.
        from repro.obs import MetricsRegistry, Tracer, TracerStageHook
        from repro.render.kernels import set_stage_hook

        tracer = Tracer(origin=f"w{worker_id}", default_lane=f"worker-{worker_id}")
        metrics = MetricsRegistry()
        set_stage_hook(TracerStageHook(tracer))
    while True:
        try:
            message = conn.recv()
        except EOFError:  # parent went away; nothing left to serve
            return
        if message[0] == "stop":
            return
        _, job_id, index, camera, spec, ref, shard = message
        if _crash_requested(ref.key[0], index):  # pragma: no cover - exits
            os._exit(_CRASH_EXIT_CODE)
        stall_s = _stall_requested(ref.key[0], index)
        if stall_s > 0.0:
            time.sleep(stall_s)
        try:
            record, hit, loaded = _run_task(
                cache, cache_size, job_id, index, camera, spec, ref, shard, tracer, metrics
            )
        except Exception as exc:
            if metrics is not None:
                metrics.counter("repro_task_errors_total").inc()
            obs = None if tracer is None else (tracer.drain(), metrics.snapshot())
            conn.send(
                ("err", worker_id, job_id, index, repr(exc), traceback.format_exc(), obs)
            )
            continue
        obs = None if tracer is None else (tracer.drain(), metrics.snapshot())
        conn.send(("ok", worker_id, job_id, record, hit, loaded, obs))
