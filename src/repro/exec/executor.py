"""Persistent render executor: long-lived workers, concurrent job dispatch.

The seed farm built a fresh ``multiprocessing.Pool`` per job and re-shipped
the scene through the pool initialiser every time, so a serving process
paid pool spin-up, scene encoding and worker-side decoding on *every* job,
and two requests could never overlap on the data plane.
:class:`RenderExecutor` extracts the execution layer out from under the
farm:

* **Long-lived workers.**  ``num_workers`` processes are spawned once
  (lazily, on the first pooled submit) and reused by every subsequent job;
  each holds a bounded resident scene cache (see :mod:`repro.exec.worker`),
  so a ``(scene, lod, quant)`` tier is shipped encoded and decoded *at most
  once per worker* while resident.
* **Concurrent job dispatch.**  :meth:`submit` returns a
  :class:`JobHandle` immediately; frames from every in-flight job sit in
  one FIFO and dispatch onto free worker slots as they open, so two jobs'
  frames interleave across the pool instead of serialising job-by-job.
  Per-frame streaming (``on_frame``) is preserved on both paths.
* **Crash containment.**  A worker that raises surfaces the frame as a
  :class:`~repro.exec.frames.FrameRenderError` (index + scene + worker
  traceback) and keeps serving; a worker that *dies* (OOM kill, segfault)
  is detected by liveness, its in-flight frame fails the owning job the
  same way, and a replacement worker is spawned so the executor keeps its
  capacity.  Other jobs are never affected.
* **Accounting.**  Worker cache hits/misses and shipped/loaded bytes are
  aggregated to the parent, per job (:class:`~repro.exec.frames.JobResult`)
  and executor-wide (:class:`ExecutorStats`) — the numbers behind the
  warm/cold reporting in the ``repro-serve``/``repro-sched`` CLIs and the
  ``bench_exec_residency`` guard.

Determinism: rendering is a pure function of (scene, camera, spec), the
encoded payload decodes deterministically, and frames are re-sorted by
index in the aggregate — so executor output (images *and* statistics
counters) is bitwise identical to the sequential path at every tier, with
any number of concurrent jobs.  ``num_workers <= 1`` selects an in-process
sequential mode with no processes or threads at all, which keeps a parent
LRU of decoded tiers so warm/cold accounting works there too.
"""

from __future__ import annotations

import contextlib
import itertools
import tempfile
import threading
import time
from collections import OrderedDict, deque
from pathlib import Path
from dataclasses import dataclass, field
from typing import Optional

from repro.exec.frames import (
    FrameCallback,
    FrameRecord,
    FrameRenderError,
    FrameSpec,
    JobResult,
    ShardRecord,
    ShardSpec,
    _render_frame_task,
    merge_shard_records,
    plan_shards,
    usable_cpu_count,
)
from repro.exec.payload import (
    SCENE_FORMATS,
    SceneRef,
    publish_payload,
    resolve_lod_scene,
    resolve_render_scene,
    scene_key,
)
from repro.exec.worker import DEFAULT_WORKER_CACHE_SIZE, worker_main
from repro.gaussians.model import GaussianScene
from repro.obs import DEFAULT_BYTE_BUCKETS, MetricsRegistry, ObsContext, TracerStageHook
from repro.obs.health import HEARTBEAT_GAUGE, REPLIES_COUNTER, Watchdog, summarize_states
from repro.obs.resources import ResourceSampler, record_resource_gauges
from repro.render.kernels import set_stage_hook
from repro.store.codec import quant_spec

# Layering invariant: this package sits *below* repro.serve (the farm is a
# facade over the executor), so nothing under repro.exec may import
# repro.serve — importing repro.exec first would then re-enter the
# half-initialised package chain.  The resident cache below is therefore a
# local OrderedDict LRU rather than repro.serve.cache.LRUCache.

#: Decoded scene tiers the sequential path keeps resident in the parent.
DEFAULT_RESIDENT_CACHE_SIZE = 16

#: Dispatcher poll interval (seconds): bounds result latency and the
#: worker-liveness detection delay without busy-spinning.
_POLL_S = 0.02


def _maybe_span(tracer, name: str, lane: str | None = None, attrs: dict | None = None):
    """A tracer span, or a no-op context manager when tracing is off."""
    if tracer is None:
        return contextlib.nullcontext()
    return tracer.span(name, lane=lane, attrs=attrs)


@dataclass
class ExecutorStats:
    """Executor-wide accounting, aggregated in the parent."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    frames_rendered: int = 0
    #: Worker resident-cache events (sequential mode counts its parent LRU).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Encoded payloads written by the parent (once per distinct tier).
    published_payloads: int = 0
    published_bytes: int = 0
    #: Bytes workers read+decoded on cache misses ("shipped" per worker).
    loaded_bytes: int = 0
    workers_replaced: int = 0

    def as_dict(self) -> dict:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "frames_rendered": self.frames_rendered,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "published_payloads": self.published_payloads,
            "published_bytes": self.published_bytes,
            "loaded_bytes": self.loaded_bytes,
            "workers_replaced": self.workers_replaced,
        }


class JobHandle:
    """Futures-style handle of one submitted job.

    Frames accumulate as workers complete them; :meth:`result` blocks until
    the job finishes and returns the aggregate
    :class:`~repro.exec.frames.JobResult` (frames sorted by index), or
    re-raises the job's failure — a
    :class:`~repro.exec.frames.FrameRenderError` for frame/worker failures,
    or the original exception when an ``on_frame`` callback raised.
    """

    def __init__(
        self,
        job,
        spec: FrameSpec,
        num_frames: int,
        num_workers: int,
        on_frame: Optional[FrameCallback],
        trace: dict | None = None,
    ) -> None:
        self.job = job
        self.spec = spec
        self.num_frames = num_frames
        self.num_workers = num_workers
        #: Caller-supplied span attributes (request/client ids) stamped on
        #: every dispatch span of this job when tracing is enabled.
        self.trace_attrs = dict(trace) if trace else {}
        self.num_gaussians = 0
        self.ship_bytes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.loaded_bytes = 0
        #: Payload of a caller-supplied scene (unique per submission);
        #: deleted by the executor when the job finishes so long-lived
        #: executors do not accumulate one file per custom-scene submit.
        self._custom_ref = None
        self._on_frame = on_frame
        self._frames: list[FrameRecord] = []
        self._error: BaseException | None = None
        self._finished = threading.Event()
        self._start = time.perf_counter()
        self._wall = 0.0
        self._result: JobResult | None = None

    # -- parent/dispatcher side -----------------------------------------
    def _add_frame(self, record: FrameRecord) -> None:
        """Deliver one finished frame: stream it, then accumulate it."""
        if self._on_frame is not None:
            self._on_frame(record)
        self._frames.append(record)
        if len(self._frames) >= self.num_frames:
            self._finish()

    def _finish(self) -> None:
        self._wall = time.perf_counter() - self._start
        self._finished.set()

    def _fail(self, error: BaseException) -> None:
        if self._finished.is_set():
            return
        self._error = error
        self._finish()

    # -- caller side ----------------------------------------------------
    def done(self) -> bool:
        """True once the job completed or failed."""
        return self._finished.is_set()

    def result(self, timeout: float | None = None) -> JobResult:
        """Block until the job finishes; return (or raise) its outcome."""
        if not self._finished.wait(timeout):
            raise TimeoutError(
                f"job on scene {self.job.scene!r} did not finish within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        if self._result is None:
            self._frames.sort(key=lambda record: record.index)
            self._result = JobResult(
                job=self.job,
                spec=self.spec,
                frames=self._frames,
                num_workers=self.num_workers,
                wall_seconds=self._wall,
                num_gaussians=self.num_gaussians,
                ship_bytes=self.ship_bytes,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                loaded_bytes=self.loaded_bytes,
            )
        return self._result


@dataclass
class _FrameTask:
    """One pending work unit: which job, which camera, which payload.

    ``shard`` is ``None`` for a whole-frame unit; a sharded frame enqueues
    one task per :class:`~repro.exec.frames.ShardSpec`, all carrying the
    same frame ``index``, and the parent composites the shard partials
    before the frame is delivered.
    """

    job_id: int
    index: int
    camera: object
    spec: FrameSpec
    ref: SceneRef
    shard: ShardSpec | None = None


@dataclass
class _WorkerSlot:
    """Parent-side view of one worker process.

    ``conn`` is the parent end of the worker's duplex pipe: tasks go down
    it, results come back up it, and a hard worker death surfaces as EOF
    on it (after any results the worker finished sending — kernel socket
    buffers survive the writer, so a crash never loses or reorders
    completed frames).
    """

    worker_id: int
    process: object
    conn: object
    inflight: _FrameTask | None = field(default=None)
    #: Wall time (``time.time_ns``) the in-flight task was sent; with
    #: tracing on this anchors the parent-side dispatch ("request") span
    #: the worker's shipped spans are re-parented under.
    sent_ns: int = 0
    #: Heartbeat stamps for the health plane, updated by the dispatcher
    #: as replies drain the pipe — liveness piggybacks on the results the
    #: worker already sends, no extra protocol traffic.
    spawned_ns: int = 0
    last_reply_ns: int = 0
    tasks_done: int = 0


class RenderExecutor:
    """A persistent, frame-concurrent render service.

    Parameters
    ----------
    num_workers:
        Worker processes to keep alive.  ``0`` or ``1`` selects the
        in-process sequential mode (no processes, no threads); ``None``
        uses the number of CPUs actually usable by this process.
    mp_context:
        ``multiprocessing`` start-method name (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``None`` for the platform default.  Spawned
        workers re-import :mod:`repro`, so the package must be importable
        when using ``"spawn"``.
    scene_format:
        Serialisation of *lossless* scene payloads: ``"npz"`` (default,
        bit-exact) or ``"text"`` (9-significant-digit debug format).
        Quantized tiers always ship the compressed store container.
    worker_cache_size:
        Scene tiers each worker keeps decoded (LRU).
    resident_cache_size:
        Decoded tiers the sequential mode keeps in the parent (LRU).
    obs:
        Optional :class:`repro.obs.ObsContext`.  When given, the executor
        records dispatch/render spans with per-worker lane attribution
        and feeds counters/histograms into the registry; workers collect
        locally and piggyback on the result pipe.  Pure side-channel:
        rendered output is bitwise identical with or without it.
    watchdog:
        Thresholds for :meth:`health`'s live/slow/stalled classification
        (:class:`repro.obs.health.Watchdog`; default thresholds when
        ``None``).  Strictly report-only.

    The executor is a context manager; :meth:`shutdown` stops the workers
    and deletes the published payloads.  ``submit`` is thread-safe.
    """

    def __init__(
        self,
        num_workers: int | None = None,
        mp_context: str | None = None,
        scene_format: str = "npz",
        worker_cache_size: int = DEFAULT_WORKER_CACHE_SIZE,
        resident_cache_size: int = DEFAULT_RESIDENT_CACHE_SIZE,
        obs: ObsContext | None = None,
        watchdog: Watchdog | None = None,
        name: str | None = None,
    ) -> None:
        #: Fleet identity of this executor (e.g. ``executor-0``).  When
        #: set, trace lanes become ``<name>/worker-K`` and per-worker
        #: metric series gain an ``executor`` label, so one shared obs
        #: context can attribute spans and gauges across a whole fleet.
        #: ``None`` (the default) keeps the historical unprefixed lanes.
        self.name = name
        if num_workers is None:
            num_workers = usable_cpu_count()
        if num_workers < 0:
            raise ValueError("num_workers must be non-negative")
        if scene_format not in SCENE_FORMATS:
            raise ValueError(f"scene_format must be one of {sorted(SCENE_FORMATS)}")
        if worker_cache_size <= 0:
            raise ValueError("worker_cache_size must be positive")
        if resident_cache_size <= 0:
            raise ValueError("resident_cache_size must be positive")
        self.num_workers = num_workers
        self.mp_context = mp_context
        self.scene_format = scene_format
        self.worker_cache_size = worker_cache_size
        self.stats = ExecutorStats()
        #: Report-only stall classifier for :meth:`health`; never acts on
        #: what it sees (intervention would break bitwise determinism).
        self.watchdog = watchdog if watchdog is not None else Watchdog()
        self._obs = obs
        #: Latest cumulative metrics snapshot per worker id (replaced on
        #: every reply, merged into ``obs.metrics`` at shutdown) — replace
        #: semantics make the tallies crash-safe without delta tracking.
        self._worker_metrics: dict[int, list] = {}
        #: Per-worker ``/proc`` sampler: the parent reads each worker's
        #: CPU/RSS/ctx-switches by pid on replies and health polls, so the
        #: resource plane costs zero new protocol traffic.
        self._resources = ResourceSampler()

        self._lock = threading.RLock()
        self._resident: "OrderedDict[tuple, GaussianScene]" = OrderedDict()
        self._resident_cache_size = resident_cache_size
        self._payloads: dict[tuple, SceneRef] = {}
        self._pending: deque[_FrameTask] = deque()
        #: Shard partials awaiting siblings, keyed by (job_id, frame index).
        self._shard_parts: dict[tuple[int, int], list[ShardRecord]] = {}
        self._handles: dict[int, JobHandle] = {}
        self._workers: dict[int, _WorkerSlot] = {}
        self._job_seq = itertools.count()
        self._worker_seq = itertools.count()
        self._custom_seq = itertools.count()
        self._payload_seq = itertools.count()
        self._tmpdir = None
        self._dispatcher: threading.Thread | None = None
        self._stop = threading.Event()
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def sequential(self) -> bool:
        """True when jobs render in-process (no worker pool)."""
        return self.num_workers <= 1

    def _lane(self, base: str) -> str:
        """Trace lane for ``base``: ``<name>/<base>`` on named executors.

        An unnamed executor keeps the historical bare lanes
        (``worker-K``, ``main``); a fleet member named ``executor-E``
        yields ``executor-E/worker-K`` so one trace distinguishes lanes
        across the whole fleet.
        """
        return f"{self.name}/{base}" if self.name else base

    def _worker_label(self, worker_id: int) -> dict:
        """Metric labels of one worker (plus ``executor`` when named)."""
        label = {"worker": str(worker_id)}
        if self.name:
            label["executor"] = self.name
        return label

    def submit(
        self,
        job,
        scene: GaussianScene | None = None,
        on_frame: Optional[FrameCallback] = None,
        trace: dict | None = None,
    ) -> JobHandle:
        """Queue every frame of ``job`` for rendering; return its handle.

        ``scene`` optionally overrides the job's preset scene (it is
        LOD-pruned and tier-encoded exactly like a resolved one, but never
        shares residency with other submissions).  ``on_frame`` fires in
        the parent as each frame completes — in index order on the
        sequential path, in completion order on the pool path, serialised
        by the executor's single dispatcher thread; an exception it raises
        fails the job (surfaced by :meth:`JobHandle.result`).  ``trace``
        optionally carries caller span attributes (e.g. the scheduler's
        request/client ids) onto every dispatch span of this job; it is
        ignored without an :class:`~repro.obs.ObsContext`.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is shut down")
            self.stats.jobs_submitted += 1
        if self.sequential:
            return self._submit_sequential(job, scene, on_frame, trace)
        return self._submit_pool(job, scene, on_frame, trace)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor: drain (or abort) jobs, stop workers, clean up.

        With ``wait=True`` (default) every submitted job is allowed to
        finish first; with ``wait=False`` unfinished jobs fail with
        ``RuntimeError``.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles.values())
        if self._started:
            if wait:
                for handle in handles:
                    handle._finished.wait()
            else:
                with self._lock:
                    self._pending.clear()
                    for handle in handles:
                        handle._fail(RuntimeError("executor shut down"))
                    self._handles.clear()
            self._stop.set()
            if self._dispatcher is not None:
                self._dispatcher.join(timeout=10.0)
            for slot in self._workers.values():
                try:
                    slot.conn.send(("stop",))
                except (BrokenPipeError, OSError):  # pragma: no cover - dead
                    pass
            for slot in self._workers.values():
                slot.process.join(timeout=5.0)
                if slot.process.is_alive():  # pragma: no cover - stuck worker
                    slot.process.terminate()
                    slot.process.join(timeout=1.0)
                try:
                    slot.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            if self._tmpdir is not None:
                try:
                    self._tmpdir.cleanup()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        if self._obs is not None:
            # Fold the final per-worker tallies into the shared registry so
            # exporters see worker-side counters after the pool is gone.
            with self._lock:
                snapshots = list(self._worker_metrics.values())
                self._worker_metrics.clear()
            for snapshot in snapshots:
                self._obs.metrics.merge(snapshot)

    def collect_metrics(self) -> MetricsRegistry:
        """Aggregate executor metrics into a fresh registry (live or final).

        Merges the shared parent registry with the latest cumulative
        snapshot of every worker (replace semantics per worker, so nothing
        double-counts) and derives ``repro_cache_hit_ratio``.  Safe to call
        mid-run or after shutdown; returns an empty registry when the
        executor runs without an :class:`~repro.obs.ObsContext`.
        """
        registry = MetricsRegistry()
        if self._obs is not None:
            registry.merge(self._obs.metrics.snapshot())
            with self._lock:
                snapshots = list(self._worker_metrics.values())
            for snapshot in snapshots:
                registry.merge(snapshot)
            hits = registry.value("repro_scene_cache_hits_total") or 0
            misses = registry.value("repro_scene_cache_misses_total") or 0
            if hits + misses:
                registry.gauge("repro_cache_hit_ratio").set(hits / (hits + misses))
        return registry

    def worker_metrics(self) -> list:
        """Latest cumulative metrics snapshot of every live worker.

        Fleet aggregation uses this to fold many executors sharing one
        obs context into a single registry: the shared parent registry is
        merged once by the caller, and these per-worker snapshots carry
        the executor-local tallies without double-counting it.
        """
        with self._lock:
            return list(self._worker_metrics.values())

    def health(self) -> dict:
        """Live health of the executor: per-worker states + queue depth.

        Reads the heartbeat stamps the dispatcher keeps on each worker
        slot (updated on every reply already flowing through the result
        pipe) and classifies each worker through the :class:`Watchdog`
        from how long its current task has been in flight.  Purely
        observational — safe to call from any thread, mid-run or idle,
        with or without an obs context — and never intervenes: a
        ``stalled`` verdict is a report, not a kill.

        Sequential mode returns the same shape with an empty worker
        list, so callers can surface the report unconditionally.
        """
        now_ns = time.time_ns()
        with self._lock:
            pending = len(self._pending)
            replaced = self.stats.workers_replaced
            slots = [
                (
                    slot.worker_id,
                    slot.inflight,
                    slot.sent_ns,
                    slot.last_reply_ns or slot.spawned_ns,
                    slot.tasks_done,
                    slot.process.pid,
                )
                for slot in self._workers.values()
            ]
        workers = []
        for worker_id, inflight, sent_ns, beat_ns, tasks_done, pid in sorted(slots):
            busy_s = (now_ns - sent_ns) / 1e9 if inflight is not None else None
            # /proc sampling happens outside the dispatcher lock: it's a
            # couple of file reads per worker and must not stall dispatch.
            resources = self._resources.sample(pid) if pid is not None else None
            cpu = resources["cpu_percent"] if resources is not None else None
            workers.append(
                {
                    "worker": worker_id,
                    # CPU% refines the slow band: a busy-but-progressing
                    # worker on a loaded machine stays live (report-only).
                    "state": self.watchdog.classify(busy_s, cpu),
                    "busy_ms": None if busy_s is None else round(busy_s * 1e3, 3),
                    "cpu_percent": None if cpu is None else round(cpu, 1),
                    "rss_bytes": None if resources is None else resources["rss_bytes"],
                    "inflight": None
                    if inflight is None
                    else {
                        "job": inflight.job_id,
                        "frame": inflight.index,
                        "shard": None if inflight.shard is None else inflight.shard.index,
                    },
                    "last_reply_age_ms": round((now_ns - beat_ns) / 1e6, 3)
                    if beat_ns
                    else None,
                    "tasks_done": tasks_done,
                }
            )
        report = {
            "mode": "sequential" if self.sequential else "pool",
            "num_workers": self.num_workers,
            "pending_tasks": pending,
            "workers": workers,
            "states": summarize_states(workers),
            "workers_replaced": replaced,
        }
        if self.name is not None:
            # Only named (fleet) executors carry their identity; the
            # historical single-executor health shape is unchanged.
            report["executor"] = self.name
        return report

    def __enter__(self) -> "RenderExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Sequential mode
    # ------------------------------------------------------------------
    def _submit_sequential(self, job, scene, on_frame, trace=None) -> JobHandle:
        """Render in-process immediately; return an already-finished handle.

        The parent keeps an LRU of decoded tiers, so repeated jobs on one
        tier skip scene preparation (the sequential analogue of worker
        residency); hits and misses feed the same accounting.  With an
        :class:`~repro.obs.ObsContext` the same request→job→frame span
        chain as the pool path is recorded on the ``main`` lane, with the
        kernel stage hook installed for the duration of the job.
        """
        spec = FrameSpec.for_job(job)
        handle = JobHandle(job, spec, job.num_frames, 0, on_frame, trace)
        obs = self._obs
        tracer = obs.tracer if obs is not None else None
        previous_hook = (
            set_stage_hook(TracerStageHook(tracer)) if tracer is not None else None
        )
        try:
            with _maybe_span(
                tracer,
                "request",
                lane=self._lane("main"),
                attrs={**handle.trace_attrs, "scene": job.scene},
            ), _maybe_span(tracer, "job", attrs={"frames": job.num_frames}):
                if scene is None:
                    key = scene_key(job)
                    with self._lock:
                        hit = key in self._resident
                        if hit:
                            self._resident.move_to_end(key)
                            render_scene = self._resident[key]
                        else:
                            with _maybe_span(
                                tracer, "decode", attrs={"tier": "/".join(map(str, key[1:]))}
                            ) as decode_span:
                                render_scene = resolve_render_scene(job)
                            if obs is not None:
                                obs.metrics.histogram("repro_decode_ms").observe(
                                    decode_span.dur_ms
                                )
                            self._resident[key] = render_scene
                            if len(self._resident) > self._resident_cache_size:
                                self._resident.popitem(last=False)
                else:
                    hit = False
                    with _maybe_span(tracer, "decode", attrs={"tier": "custom"}):
                        render_scene = resolve_render_scene(job, scene)
                handle.num_gaussians = render_scene.num_gaussians
                with self._lock:
                    if hit:
                        handle.cache_hits += 1
                        self.stats.cache_hits += 1
                    else:
                        handle.cache_misses += 1
                        self.stats.cache_misses += 1
                    if obs is not None:
                        kind = "hits" if hit else "misses"
                        obs.metrics.counter(f"repro_scene_cache_{kind}_total").inc()
                # A sharded job renders each frame as shard partials merged by
                # the same compositor as the pool path, so sequential output is
                # the bitwise oracle at every shard count, not just shards=1.
                num_shards = getattr(job, "shards", 1)
                for task in enumerate(job.cameras()):
                    try:
                        with _maybe_span(tracer, "frame", attrs={"frame": task[0]}):
                            record = _render_frame_task(
                                render_scene, task, spec, num_shards
                            )
                    except Exception as exc:
                        error = FrameRenderError(job.scene, task[0], repr(exc))
                        error.__cause__ = exc
                        raise error
                    handle._add_frame(record)
                    with self._lock:
                        self.stats.frames_rendered += 1
                        if obs is not None:
                            obs.metrics.counter("repro_frames_rendered_total").inc()
                            obs.metrics.histogram("repro_render_ms").observe(
                                record.render_ms
                            )
        except Exception as exc:
            # Recorded on the handle, not raised: result() re-raises, so
            # sequential and pooled failures reach callers the same way.
            handle._fail(exc)
            with self._lock:
                self.stats.jobs_failed += 1
            return handle
        finally:
            if tracer is not None:
                set_stage_hook(previous_hook)
        with self._lock:
            self.stats.jobs_completed += 1
        return handle

    # ------------------------------------------------------------------
    # Pool mode
    # ------------------------------------------------------------------
    def _submit_pool(self, job, scene, on_frame, trace=None) -> JobHandle:
        spec = FrameSpec.for_job(job)
        cameras = job.cameras()
        num_shards = getattr(job, "shards", 1)
        work_units = len(cameras) * max(num_shards, 1)
        handle = JobHandle(
            job, spec, len(cameras), min(self.num_workers, work_units), on_frame, trace
        )
        lod_scene = resolve_lod_scene(job, scene)
        handle.num_gaussians = lod_scene.num_gaussians
        with self._lock:
            # Re-check under the lock: a shutdown may have completed since
            # submit()'s entry check, and a job enqueued after the
            # dispatcher stopped would never finish.
            if self._closed:
                raise RuntimeError("executor is shut down")
            self._ensure_started()
            ref, published = self._publish(job, lod_scene, custom=scene is not None)
            if published:
                handle.ship_bytes = ref.nbytes
            if scene is not None:
                handle._custom_ref = ref
            job_id = next(self._job_seq)
            self._handles[job_id] = handle
            for index, camera in enumerate(cameras):
                if num_shards > 1:
                    # One task per tile-range shard; partials reassemble in
                    # _handle_message before the frame is delivered, so the
                    # shards of one frame spread across free worker slots.
                    for shard in plan_shards(camera, spec, num_shards):
                        self._pending.append(
                            _FrameTask(job_id, index, camera, spec, ref, shard)
                        )
                else:
                    self._pending.append(_FrameTask(job_id, index, camera, spec, ref))
        return handle

    def _publish(self, job, lod_scene, custom: bool) -> tuple[SceneRef, bool]:
        """Encode ``job``'s tier once; reuse the payload for later jobs."""
        tier = quant_spec(job.quant)
        if custom:
            key = ("custom", next(self._custom_seq), job.lod, tier.name)
        else:
            key = scene_key(job)
            existing = self._payloads.get(key)
            if existing is not None:
                return existing, False
        ref = publish_payload(
            lod_scene,
            key,
            self._tmpdir.name,
            tier,
            self.scene_format,
            next(self._payload_seq),
        )
        self._payloads[key] = ref
        self.stats.published_payloads += 1
        self.stats.published_bytes += ref.nbytes
        if self._obs is not None:
            self._obs.metrics.counter("repro_published_payloads_total").inc()
            self._obs.metrics.counter("repro_ship_bytes_total").inc(ref.nbytes)
            self._obs.metrics.histogram(
                "repro_ship_bytes", buckets=DEFAULT_BYTE_BUCKETS
            ).observe(ref.nbytes)
        return ref, True

    def _ensure_started(self) -> None:
        if self._started:
            return
        import multiprocessing

        self._ctx = multiprocessing.get_context(self.mp_context)
        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-exec-")
        for _ in range(self.num_workers):
            self._spawn_worker()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-exec-dispatch", daemon=True
        )
        self._dispatcher.start()
        self._started = True

    def _spawn_worker(self) -> None:
        worker_id = next(self._worker_seq)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, child_conn, self.worker_cache_size, self._obs is not None),
            name=f"repro-exec-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the child end: the child's death must
        # be the last writer closing, so EOF reaches the dispatcher.
        child_conn.close()
        self._workers[worker_id] = _WorkerSlot(
            worker_id, process, parent_conn, spawned_ns=time.time_ns()
        )

    # ------------------------------------------------------------------
    # Dispatcher (parent-side thread)
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        from multiprocessing import connection as mp_connection

        while not self._stop.is_set():
            self._assign_free_workers()
            with self._lock:
                by_conn = {slot.conn: slot for slot in self._workers.values()}
            ready = mp_connection.wait(list(by_conn), timeout=_POLL_S)
            for conn in ready:
                slot = by_conn[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._on_worker_death(slot)
                    continue
                self._handle_message(slot, message)

    def _assign_free_workers(self) -> None:
        with self._lock:
            for slot in list(self._workers.values()):
                if slot.inflight is not None:
                    continue
                task = self._next_task()
                if task is None:
                    return
                slot.inflight = task
                slot.sent_ns = time.time_ns()
                try:
                    slot.conn.send(
                        (
                            "task",
                            task.job_id,
                            task.index,
                            task.camera,
                            task.spec,
                            task.ref,
                            task.shard,
                        )
                    )
                except (BrokenPipeError, OSError):
                    # The worker died before the task reached it: the frame
                    # is innocent, so requeue it (front, keeping order) and
                    # let the death path replace the worker.
                    slot.inflight = None
                    self._pending.appendleft(task)
                    self._on_worker_death(slot, requeue_inflight=False)

    def _next_task(self) -> _FrameTask | None:
        """Pop the next live pending frame (skipping frames of failed jobs)."""
        while self._pending:
            task = self._pending.popleft()
            if task.job_id in self._handles:
                return task
        return None

    def _handle_message(self, slot: _WorkerSlot, message) -> None:
        # Heartbeat: every reply (ok or err) proves the worker alive.
        slot.last_reply_ns = time.time_ns()
        slot.tasks_done += 1
        kind = message[0]
        if kind == "ok":
            _, _, job_id, record, hit, loaded, obs_payload = message
            self._ingest_worker_obs(slot, obs_payload)
            with self._lock:
                slot.inflight = None
                if hit:
                    self.stats.cache_hits += 1
                else:
                    self.stats.cache_misses += 1
                    self.stats.loaded_bytes += loaded
                handle = self._handles.get(job_id)
                if handle is not None:
                    if hit:
                        handle.cache_hits += 1
                    else:
                        handle.cache_misses += 1
                        handle.loaded_bytes += loaded
                if isinstance(record, ShardRecord):
                    if handle is None:  # job already failed; drop the partial
                        return
                    # Bank the shard partial; the frame is delivered only
                    # once every sibling has arrived and the compositor has
                    # reassembled the whole-frame record.
                    parts_key = (job_id, record.index)
                    parts = self._shard_parts.setdefault(parts_key, [])
                    parts.append(record)
                    if len(parts) < record.shard.num_shards:
                        return
                    del self._shard_parts[parts_key]
                    record = merge_shard_records(parts)
                self.stats.frames_rendered += 1
            if handle is None:  # job already failed; drop the late frame
                return
            # Deliver outside the lock: on_frame is user code — run under
            # the lock it would stall every assignment and deadlock any
            # callback that synchronises with a thread calling submit().
            try:
                handle._add_frame(record)
            except Exception as exc:  # on_frame callback raised
                with self._lock:
                    self._fail_job(job_id, exc)
                return
            if handle.done():
                with self._lock:
                    self._handles.pop(job_id, None)
                    self.stats.jobs_completed += 1
                    self._release_custom_payload(handle)
        else:  # "err"
            _, _, job_id, index, error, tb, obs_payload = message
            self._ingest_worker_obs(slot, obs_payload, error=error)
            with self._lock:
                slot.inflight = None
                handle = self._handles.get(job_id)
                scene_name = handle.job.scene if handle is not None else "?"
                self._fail_job(
                    job_id,
                    FrameRenderError(
                        scene_name,
                        index,
                        f"{error}\n--- worker traceback ---\n{tb}",
                    ),
                )

    def _ingest_worker_obs(self, slot: _WorkerSlot, obs_payload, error=None) -> None:
        """Adopt one reply's piggybacked spans/metrics into the parent trace.

        The parent-side dispatch window (``sent_ns`` → now) becomes the
        ``request`` span on the worker's lane; the worker's shipped span
        trees (job → frame → shard/render → stages) are re-parented under
        it, and the worker's cumulative metrics snapshot replaces the
        previous one for that worker id.
        """
        if self._obs is None or obs_payload is None:
            return
        recv_ns = time.time_ns()
        spans, metrics_snapshot = obs_payload
        tracer = self._obs.tracer
        lane = self._lane(f"worker-{slot.worker_id}")
        task = slot.inflight
        attrs = {"worker": slot.worker_id}
        if task is not None:
            with self._lock:
                handle = self._handles.get(task.job_id)
            if handle is not None:
                attrs.update(handle.trace_attrs)
            attrs.update(job=task.job_id, frame=task.index, scene=task.ref.key[0])
            if task.shard is not None:
                attrs["shard"] = task.shard.index
        if error is not None:
            attrs["error"] = error
        unit = tracer.record(
            "request",
            lane=lane,
            t0_ms=slot.sent_ns / 1e6,
            dur_ms=(recv_ns - slot.sent_ns) / 1e6,
            attrs=attrs,
        )
        tracer.ingest(spans, parent=unit)
        # Mirror the heartbeat into per-worker gauges so exported metrics
        # carry liveness without any extra worker->parent traffic.
        worker_label = self._worker_label(slot.worker_id)
        self._obs.metrics.gauge(HEARTBEAT_GAUGE, worker_label).set(recv_ns / 1e6)
        self._obs.metrics.counter(REPLIES_COUNTER, worker_label).inc()
        # Piggyback the resource plane on the same reply: a couple of
        # /proc reads by pid, no extra worker->parent traffic.
        if slot.process.pid is not None:
            sample = self._resources.sample(slot.process.pid)
            if sample is not None:
                record_resource_gauges(self._obs.metrics, sample, worker_label)
        with self._lock:
            self._worker_metrics[slot.worker_id] = metrics_snapshot

    def _fail_job(self, job_id: int, error: BaseException) -> None:
        """Abort one job: drop its queued frames, fail its handle."""
        handle = self._handles.pop(job_id, None)
        if handle is None:
            return
        self._pending = deque(t for t in self._pending if t.job_id != job_id)
        for parts_key in [k for k in self._shard_parts if k[0] == job_id]:
            del self._shard_parts[parts_key]
        handle._fail(error)
        self.stats.jobs_failed += 1
        self._release_custom_payload(handle)

    def _release_custom_payload(self, handle: JobHandle) -> None:
        """Delete a finished job's caller-supplied payload (never reused).

        Named-preset payloads stay resident for reuse; custom-scene keys
        are unique per submission, so keeping them would leak one on-disk
        file per submit for the executor's lifetime.  A worker still
        holding an in-flight frame of a *failed* custom job may lose the
        race and find the file gone — its error lands on the already-dead
        job and is dropped.
        """
        ref = handle._custom_ref
        if ref is None:
            return
        self._payloads.pop(ref.key, None)
        try:
            Path(ref.path).unlink()
        except OSError:  # pragma: no cover - already gone
            pass

    def _on_worker_death(self, slot: _WorkerSlot, requeue_inflight: bool = True) -> None:
        """Replace a dead worker; fail the frame it was holding (if any).

        Death reaches the dispatcher as EOF on the worker's pipe, strictly
        *after* every result the worker finished sending, so only the
        genuinely unfinished in-flight frame is charged to the crash.
        """
        with self._lock:
            if self._workers.get(slot.worker_id) is not slot:
                return  # already reaped
            del self._workers[slot.worker_id]
            if slot.process.pid is not None:
                # Drop the CPU baseline so a recycled pid can't inherit it.
                self._resources.forget(slot.process.pid)
            slot.process.join(timeout=5.0)
            code = slot.process.exitcode
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            task = slot.inflight
            if self._obs is not None:
                # Close the lane in the trace: mark the death, and flush a
                # partial dispatch span for the task the worker was holding
                # (its worker-side spans died with it; the parent-side
                # window is all that remains).
                tracer = self._obs.tracer
                lane = self._lane(f"worker-{slot.worker_id}")
                now_ms = time.time_ns() / 1e6
                tracer.instant(
                    "lane_closed",
                    lane=lane,
                    t_ms=now_ms,
                    attrs={"worker": slot.worker_id, "exit_code": code},
                )
                if task is not None:
                    tracer.record(
                        "request",
                        lane=lane,
                        t0_ms=slot.sent_ns / 1e6,
                        dur_ms=now_ms - slot.sent_ns / 1e6,
                        attrs={
                            "worker": slot.worker_id,
                            "job": task.job_id,
                            "frame": task.index,
                            "error": f"worker process died (exit code {code})",
                        },
                    )
                self._obs.metrics.counter("repro_workers_replaced_total").inc()
            if requeue_inflight and task is not None and task.job_id in self._handles:
                scene_name = self._handles[task.job_id].job.scene
                self._fail_job(
                    task.job_id,
                    FrameRenderError(
                        scene_name,
                        task.index,
                        f"worker process died (exit code {code}); "
                        "a replacement worker was spawned",
                    ),
                )
            self._spawn_worker()
            self.stats.workers_replaced += 1
