"""Multi-executor fleet: placement, autoscaling and tenant fairness.

This package generalises the scheduler's control plane from one
executor to N.  All of it runs on the *decision plane* — the same
deterministic virtual clock as :mod:`repro.sched.scheduler` — so fleet
placement, scale events and failure handling are pure functions of the
workload seed and the :class:`FleetPolicy`, and decision logs replay
byte-identically.

* :mod:`repro.fleet.ring` — a seed- and process-stable consistent-hash
  ring (sha256, virtual nodes) mapping ``(scene, lod, quant)`` residency
  keys onto executors with bounded key movement on add/remove.
* :mod:`repro.fleet.router` — :class:`FleetPolicy` (the knobs) and
  :class:`FleetRouter` (cache-aware placement with a cost-model
  tiebreak, plus ``random`` and ``least-loaded`` baselines).
* :mod:`repro.fleet.autoscaler` — queue-depth / SLO-headroom scaling on
  the virtual clock with an explicit cold-start cost.
* :mod:`repro.fleet.usage` — per-tenant usage metering and the
  weighted-fair queue ordering used by ``fair`` dispatch.
"""

from repro.fleet.autoscaler import Autoscaler, AutoscalePolicy
from repro.fleet.ring import ConsistentHashRing
from repro.fleet.router import ExecutorLane, FleetPolicy, FleetRouter, ROUTINGS
from repro.fleet.usage import FairQueue, UsageMeter

__all__ = [
    "Autoscaler",
    "AutoscalePolicy",
    "ConsistentHashRing",
    "ExecutorLane",
    "FairQueue",
    "FleetPolicy",
    "FleetRouter",
    "ROUTINGS",
    "UsageMeter",
]
