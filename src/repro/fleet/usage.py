"""Per-tenant usage metering and weighted-fair dispatch ordering.

Both halves run on the decision plane.  The :class:`UsageMeter` tallies
what each tenant *modeled-consumed* — frames rendered, cold-dispatch
ship bytes, worker-seconds — which is what quota enforcement and the
CLI's usage table read.  The :class:`FairQueue` keeps the per-tenant
virtual-time tags of weighted-fair queueing: each tenant's tag advances
by ``service / weight`` when it is served, and dispatch picks the
queued tenant with the smallest tag, so a weight-2 tenant drains twice
the work of a weight-1 tenant under contention while an idle tenant
cannot bank credit (its tag is floored to the active minimum when it
returns).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TenantUsage:
    """Cumulative modeled consumption of one tenant."""

    requests: int = 0
    frames: int = 0
    ship_bytes: int = 0
    worker_ms: float = 0.0

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "frames": self.frames,
            "ship_bytes": self.ship_bytes,
            "worker_seconds": round(self.worker_ms / 1000.0, 6),
        }


@dataclass
class UsageMeter:
    """Per-tenant :class:`TenantUsage` tallies plus fleet-wide totals."""

    tenants: dict = field(default_factory=dict)
    total_worker_ms: float = 0.0
    total_ship_bytes: int = 0

    def tenant(self, client_id: int) -> TenantUsage:
        usage = self.tenants.get(client_id)
        if usage is None:
            usage = self.tenants[client_id] = TenantUsage()
        return usage

    def record_dispatch(
        self, client_id: int, worker_ms: float, ship_bytes: int
    ) -> None:
        usage = self.tenant(client_id)
        usage.requests += 1
        usage.worker_ms += worker_ms
        usage.ship_bytes += ship_bytes
        self.total_worker_ms += worker_ms
        self.total_ship_bytes += ship_bytes

    def record_frames(self, client_id: int, frames: int) -> None:
        self.tenant(client_id).frames += frames

    def over_quota(self, client_id: int, worker_ms: float, quota: float) -> bool:
        """Would serving ``worker_ms`` push the tenant past its share?

        The share is measured against *consumed* fleet worker-time
        including the candidate job, so the first jobs of a run are never
        quota-shed (a lone tenant's share of its own consumption is 1.0
        only when it is the only consumer — quota 1.0 admits it).
        """
        if self.total_worker_ms <= 0.0:
            return False
        projected = self.tenant(client_id).worker_ms + worker_ms
        return projected > quota * (self.total_worker_ms + worker_ms)

    def summary(self) -> dict:
        return {
            str(client_id): usage.summary()
            for client_id, usage in sorted(self.tenants.items())
        }


class FairQueue:
    """Virtual-time tags of per-tenant weighted-fair queueing."""

    def __init__(self, weights: dict | None = None) -> None:
        self._weights = dict(weights or {})
        self._vtime: dict[int, float] = {}

    def weight(self, client_id: int) -> float:
        weight = float(self._weights.get(client_id, 1.0))
        return weight if weight > 0 else 1.0

    def tag(self, client_id: int) -> float:
        """Current virtual finish tag (dispatch picks the smallest)."""
        return self._vtime.get(client_id, 0.0)

    def activate(self, client_id: int, floor: float) -> None:
        """Admit a tenant's request: floor its tag to the active minimum.

        Without the floor a long-idle tenant would return with a stale
        (small) tag and starve everyone until it caught up — the classic
        WFQ re-activation rule.
        """
        self._vtime[client_id] = max(self._vtime.get(client_id, 0.0), floor)

    def charge(self, client_id: int, service_ms: float) -> None:
        """Advance the tenant's tag by its weighted service."""
        self._vtime[client_id] = (
            self._vtime.get(client_id, 0.0) + service_ms / self.weight(client_id)
        )


__all__ = ["FairQueue", "TenantUsage", "UsageMeter"]
